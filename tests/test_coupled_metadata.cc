/**
 * @file
 * Tests for cache-coupled metadata storage (the most faithful §3.6
 * model): HARD's candidate sets are dropped exactly when the
 * *simulated* L2 displaces the line, rather than when the detector's
 * own mirror store overflows.
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

TEST(CoupledMetadata, EvictionEventsFireOnL2Displacement)
{
    // A tiny L2 forces displacements; the observer hook must fire.
    struct EvictCounter : AccessObserver
    {
        std::uint64_t n = 0;
        void
        onLineEvicted(Addr, Cycle) override
        {
            ++n;
        }
    };

    WorkloadBuilder b("t", 1);
    Addr buf = b.alloc("buf", 64 * 1024, 32);
    SiteId s = b.site("stream");
    for (Addr a = buf; a < buf + 64 * 1024; a += 32)
        b.read(0, a, 8, s);
    Program p = b.finish();

    SimConfig cfg;
    cfg.memsys.l2.sizeBytes = 8 * 1024; // much smaller than the stream
    System sys(cfg, p);
    EvictCounter counter;
    sys.addObserver(&counter);
    sys.run();
    EXPECT_GT(counter.n, 1000u);
    EXPECT_EQ(counter.n, sys.memsys().stats().value("l2Evictions"));
}

TEST(CoupledMetadata, CoupledHardLosesMetadataWithTheRealL2)
{
    // Same displacement scenario as the mirror-store test in
    // test_hard_detector.cc, but with the metadata riding the real
    // (small) simulated L2.
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        Addr spill = b.alloc("spill", 64 * 1024, 32);
        LockAddr l = b.allocLock("l");
        SiteId s = b.site("cs");
        SiteId s_bad = b.site("unlocked.read");
        SiteId s_spill = b.site("spill");

        b.write(0, x, 8, s);
        b.compute(1, 2000);
        b.lock(1, l, s);
        b.read(1, x, 8, s);
        b.unlock(1, l, s);
        b.read(1, x, 8, s_bad); // silent empty candidate set
        b.compute(0, 4000);
        for (Addr a = spill; a < spill + 64 * 1024; a += 32)
            b.read(0, a, 8, s_spill);
        b.lock(0, l, s);
        b.write(0, x, 8, s); // would report if metadata survived
        b.unlock(0, l, s);
        return b.finish();
    };

    SimConfig small_l2;
    small_l2.memsys.l2.sizeBytes = 4 * 1024;

    // Coupled to the small L2: the spill displaces x's line and the
    // race evidence with it.
    {
        Program p = build();
        HardConfig cfg;
        cfg.coupleToCaches = true;
        HardDetector det("hard.coupled", cfg);
        System sys(small_l2, p);
        sys.addObserver(&det);
        sys.run();
        EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
        EXPECT_GT(det.hardStats().metadataEvictions, 0u);
    }

    // Coupled to a big (default) L2: everything fits, race caught.
    {
        Program p = build();
        HardConfig cfg;
        cfg.coupleToCaches = true;
        HardDetector det("hard.coupled", cfg);
        System sys(SimConfig{}, p);
        sys.addObserver(&det);
        sys.run();
        EXPECT_GT(det.sink().distinctSiteCount(), 0u);
    }
}

TEST(CoupledMetadata, CoupledAndMirroredAgreeOnDetectionShape)
{
    // The mirror store approximates the real L2 from the data-access
    // stream alone; the coupled store is exact. On the workload
    // models the two must agree on the alarm sites up to a small
    // difference (the real L2 also holds lock words and sync lines).
    WorkloadParams params;
    params.scale = 0.05;
    for (const char *app : {"cholesky", "water-nsquared"}) {
        Program p = buildWorkload(app, params);
        HardDetector mirrored("hard.mirror", HardConfig{});
        HardConfig coupled_cfg;
        coupled_cfg.coupleToCaches = true;
        HardDetector coupled("hard.coupled", coupled_cfg);
        runProgram(p, {&mirrored, &coupled});

        // Same source-level alarms in both models at this scale.
        EXPECT_EQ(mirrored.sink().sites(), coupled.sink().sites())
            << app;
    }
}

TEST(CoupledMetadata, ReplayPreservesCoupledSemantics)
{
    // Eviction events are recorded in traces, so offline analysis of
    // a coupled detector matches the online run exactly.
    WorkloadParams params;
    params.scale = 0.05;
    Program prog = buildWorkload("ocean", params);

    HardConfig cfg;
    cfg.coupleToCaches = true;
    TraceRecorder recorder(prog);
    HardDetector online("hard", cfg);
    {
        // A small L2 guarantees displacements at test scale.
        SimConfig sim;
        sim.memsys.l2.sizeBytes = 64 * 1024;
        System sys(sim, prog);
        sys.addObserver(&recorder);
        sys.addObserver(&online);
        sys.run();
    }

    Trace trace = recorder.take();
    bool has_evictions = false;
    for (const TraceEvent &ev : trace.events)
        has_evictions |= ev.kind == TraceKind::LineEvicted;
    EXPECT_TRUE(has_evictions);

    HardDetector offline("hard", cfg);
    replayTrace(trace, {&offline});
    EXPECT_EQ(offline.sink().sites(), online.sink().sites());
    EXPECT_EQ(offline.hardStats().metadataEvictions,
              online.hardStats().metadataEvictions);
}

} // namespace
} // namespace hard
