/**
 * @file
 * Tests for the post-mortem trace infrastructure: pack/unpack
 * round-trips, file round-trips, format validation, and the central
 * guarantee that offline replay reproduces online detection exactly.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return ::testing::TempDir() + "hard_trace_" + tag + ".trc";
}

TEST(TraceEventTest, MemoryEventPackRoundTrip)
{
    TraceEvent ev;
    ev.kind = TraceKind::Write;
    ev.tid = 3;
    ev.addr = 0x123456789abcull;
    ev.size = 8;
    ev.site = 77;
    ev.at = 987654321;
    ev.stateAfter = CState::Modified;
    ev.sharers = 4;

    TraceEvent back = TraceEvent::unpack(ev.pack());
    EXPECT_EQ(back.kind, ev.kind);
    EXPECT_EQ(back.tid, ev.tid);
    EXPECT_EQ(back.addr, ev.addr);
    EXPECT_EQ(back.size, ev.size);
    EXPECT_EQ(back.site, ev.site);
    EXPECT_EQ(back.at, ev.at);
    EXPECT_EQ(back.stateAfter, ev.stateAfter);
    EXPECT_EQ(back.sharers, ev.sharers);
}

TEST(TraceEventTest, BarrierEventPackRoundTrip)
{
    TraceEvent ev;
    ev.kind = TraceKind::Barrier;
    ev.addr = 0x4000;
    ev.at = 5555;
    ev.episode = 12;
    ev.participants = 4;

    TraceEvent back = TraceEvent::unpack(ev.pack());
    EXPECT_EQ(back.kind, TraceKind::Barrier);
    EXPECT_EQ(back.addr, ev.addr);
    EXPECT_EQ(back.episode, 12u);
    EXPECT_EQ(back.participants, 4u);
}

TEST(TraceEventTest, KindNamesCovered)
{
    for (int k = 0; k <= static_cast<int>(TraceKind::LineEvicted); ++k)
        EXPECT_STRNE(traceKindName(static_cast<TraceKind>(k)), "?");
}

TEST(TraceFile, WriteReadRoundTrip)
{
    Trace t;
    t.siteNames = {"a:one", "a:two"};
    TraceEvent ev;
    ev.kind = TraceKind::Read;
    ev.tid = 1;
    ev.addr = 0x1000;
    ev.size = 8;
    ev.site = 1;
    ev.at = 42;
    t.events.push_back(ev);
    ev.kind = TraceKind::ThreadEnd;
    t.events.push_back(ev);

    std::string path = tmpPath("roundtrip");
    writeTrace(path, t);
    Trace back = readTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(back.siteNames, t.siteNames);
    ASSERT_EQ(back.events.size(), 2u);
    EXPECT_EQ(back.events[0].addr, 0x1000u);
    EXPECT_EQ(back.events[1].kind, TraceKind::ThreadEnd);
    EXPECT_EQ(back.threadCount(), 1u);
}

TEST(TraceFileDeath, RejectsGarbageFiles)
{
    std::string path = tmpPath("garbage");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("definitely not a trace", f);
        std::fclose(f);
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "not a HARD trace");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, RejectsTruncatedEvents)
{
    Trace t;
    t.siteNames = {"s"};
    TraceEvent ev;
    ev.kind = TraceKind::Read;
    t.events.assign(4, ev);
    std::string path = tmpPath("trunc");
    writeTrace(path, t);
    // Chop the last record in half.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        std::fseek(f, 0, SEEK_END);
        long sz = std::ftell(f);
        std::fclose(f);
        ASSERT_EQ(::truncate(path.c_str(), sz - 12), 0);
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated at event");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace("/nonexistent/dir/x.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

/**
 * The central post-mortem guarantee: replaying a recorded run into a
 * fresh detector yields byte-identical reports to the online run.
 */
class TraceReplayFidelity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TraceReplayFidelity, OfflineAnalysisMatchesOnline)
{
    WorkloadParams params;
    params.scale = 0.05;

    // Online: record while detecting.
    Program prog = buildWorkload(GetParam(), params);
    TraceRecorder recorder(prog);
    HardDetector online_hard("hard", HardConfig{});
    HappensBeforeDetector online_hb("hb", HbConfig{});
    IdealLocksetDetector online_ls("ls", IdealLocksetConfig{});
    {
        System sys(SimConfig{}, prog);
        sys.addObserver(&recorder);
        sys.addObserver(&online_hard);
        sys.addObserver(&online_hb);
        sys.addObserver(&online_ls);
        sys.run();
    }

    // Round-trip through the file format.
    std::string path = tmpPath(GetParam());
    writeTrace(path, recorder.take());
    Trace trace = readTrace(path);
    std::remove(path.c_str());

    // Offline: fresh detectors over the replay.
    HardDetector off_hard("hard", HardConfig{});
    HappensBeforeDetector off_hb("hb", HbConfig{});
    IdealLocksetDetector off_ls("ls", IdealLocksetConfig{});
    std::size_t replayed =
        replayTrace(trace, {&off_hard, &off_hb, &off_ls});
    EXPECT_GT(replayed, 0u);

    EXPECT_EQ(off_hard.sink().sites(), online_hard.sink().sites());
    EXPECT_EQ(off_hard.sink().dynamicCount(),
              online_hard.sink().dynamicCount());
    EXPECT_EQ(off_hard.hardStats().metaBroadcasts,
              online_hard.hardStats().metaBroadcasts);
    EXPECT_EQ(off_hb.sink().sites(), online_hb.sink().sites());
    EXPECT_EQ(off_hb.sink().dynamicCount(),
              online_hb.sink().dynamicCount());
    EXPECT_EQ(off_ls.sink().sites(), online_ls.sink().sites());
    EXPECT_EQ(off_ls.sink().dynamicCount(),
              online_ls.sink().dynamicCount());
}

INSTANTIATE_TEST_SUITE_P(Apps, TraceReplayFidelity,
                         ::testing::Values("cholesky", "barnes", "fmm",
                                           "ocean", "water-nsquared",
                                           "raytrace", "server"));

} // namespace
} // namespace hard
