/**
 * @file
 * Behavioural tests for the happens-before baseline, including the
 * paper's Figure 1 scenario (interleaving sensitivity) and the
 * synchronization edges (locks, barriers, semaphores).
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"

namespace hard
{
namespace
{

TEST(HappensBefore, DetectsManifestUnorderedRace)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    // Two unsynchronized writers, interleaved in time.
    for (int i = 0; i < 5; ++i) {
        b.write(0, x, 8, s0);
        b.compute(0, 100);
        b.write(1, x, 8, s1);
        b.compute(1, 100);
    }
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, LockOrderingSuppressesReports)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    for (int i = 0; i < 10; ++i) {
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, l, s);
            b.read(t, x, 8, s);
            b.write(t, x, 8, s);
            b.unlock(t, l, s);
        }
    }
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, Figure1InterleavingHidesRaceFromHbButNotLockset)
{
    // Paper Figure 1: thread 1 writes x unprotected, then both
    // threads use lock L for y. In the monitored interleaving thread
    // 2's x access comes temporally after thread 1's lock release, so
    // happens-before orders the two x accesses through L and misses
    // the race; lockset is interleaving-insensitive and catches it.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr y = b.alloc("y", 8, 32);
    LockAddr l = b.allocLock("L");
    SiteId sx1 = b.site("t1.x.write");
    SiteId sy = b.site("y.cs");
    SiteId sx2 = b.site("t2.x.write");

    // Thread 1: x = 1; lock(L); y++; unlock(L);
    b.write(0, x, 8, sx1);
    b.lock(0, l, sy);
    b.read(0, y, 8, sy);
    b.write(0, y, 8, sy);
    b.unlock(0, l, sy);

    // Thread 2 (runs later): lock(L); y++; unlock(L); x = 2;
    b.compute(1, 5000);
    b.lock(1, l, sy);
    b.read(1, y, 8, sy);
    b.write(1, y, 8, sy);
    b.unlock(1, l, sy);
    b.write(1, x, 8, sx2);
    Program p = b.finish();

    HappensBeforeDetector hb("hb", HbConfig::ideal());
    IdealLocksetDetector ls("lockset", IdealLocksetConfig{});
    HardDetector hd("hard", HardConfig{});
    runProgram(p, {&hb, &ls, &hd});

    // Happens-before: ordered through L's release->acquire, silent.
    EXPECT_EQ(hb.sink().distinctSiteCount(), 0u);
    // Lockset (ideal and HARD): x has no consistent lock -> caught.
    EXPECT_TRUE(reportedAt(ls.sink(), sx2));
    EXPECT_GT(hd.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, BarrierCreatesOrder)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr bar = b.allocBarrier("bar");
    SiteId s0 = b.site("pre");
    SiteId s1 = b.site("post");
    SiteId sb = b.site("bar");
    b.write(0, x, 8, s0);
    b.barrierAll(bar, sb);
    b.write(1, x, 8, s1);
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, SemaphoreCreatesOrderButLocksetCannotSeeIt)
{
    // Hand-crafted synchronization (§5.1): a producer/consumer pair
    // ordered by a semaphore. Happens-before is silent; the lockset
    // algorithm false-alarms because no common lock protects the data.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr sema = b.allocSema("sema");
    SiteId sw = b.site("producer.write");
    SiteId sr = b.site("consumer.rw");
    SiteId sp = b.site("post");
    SiteId swt = b.site("wait");

    b.write(0, x, 8, sw);
    b.semaPost(0, sema, sp);
    b.semaWait(1, sema, swt);
    b.read(1, x, 8, sr);
    b.write(1, x, 8, sr);
    Program p = b.finish();

    HappensBeforeDetector hb("hb", HbConfig::ideal());
    IdealLocksetDetector ls("lockset", IdealLocksetConfig{});
    runProgram(p, {&hb, &ls});
    EXPECT_EQ(hb.sink().distinctSiteCount(), 0u);
    EXPECT_GT(ls.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, WithoutSemaphoreEdgeTheSamePatternRaces)
{
    // Sanity check for the test above: remove the semaphore and the
    // pattern is a real race that happens-before reports.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId sw = b.site("producer.write");
    SiteId sr = b.site("consumer.rw");
    b.write(0, x, 8, sw);
    b.compute(1, 3000);
    b.read(1, x, 8, sr);
    b.write(1, x, 8, sr);
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, ReadSharingDoesNotRace)
{
    WorkloadBuilder b("t", 4);
    Addr x = b.alloc("x", 8, 32);
    Addr bar = b.allocBarrier("bar");
    SiteId si = b.site("init");
    SiteId sr = b.site("readers");
    SiteId sb = b.site("bar");
    b.write(0, x, 8, si);
    b.barrierAll(bar, sb);
    for (unsigned t = 0; t < 4; ++t)
        for (int i = 0; i < 5; ++i)
            b.read(t, x, 8, sr);
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, LineGranularityFalselySharesLikeTable3)
{
    // Per-thread counters in one line, no locks: clean at 4B,
    // reported at 32B (timestamp conflation).
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr pair = b.alloc("pair", 8, 32);
        SiteId s0 = b.site("t0.own");
        SiteId s1 = b.site("t1.own");
        for (int i = 0; i < 6; ++i) {
            b.write(0, pair, 4, s0);
            b.compute(0, 50);
            b.write(1, pair + 4, 4, s1);
            b.compute(1, 50);
        }
        return b.finish();
    };
    HbConfig coarse;
    coarse.granularityBytes = 32;
    HbConfig fine = HbConfig::ideal();
    HappensBeforeDetector dc("hb32", coarse), df("hb4", fine);
    Program p = build();
    runProgram(p, {&dc, &df});
    EXPECT_GT(dc.sink().distinctSiteCount(), 0u);
    EXPECT_EQ(df.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, StorageDisplacementLosesHistory)
{
    // The default (cache-limited) variant loses its timestamps when
    // the line is displaced, missing a manifest race the ideal
    // variant reports.
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        Addr spill = b.alloc("spill", 64 * 1024, 32);
        SiteId s0 = b.site("t0.write");
        SiteId s1 = b.site("t1.write");
        SiteId ss = b.site("spill");
        b.write(0, x, 8, s0);
        for (Addr a = spill; a < spill + 64 * 1024; a += 32)
            b.read(0, a, 8, ss);
        b.compute(1, 3'000'000);
        b.write(1, x, 8, s1); // races with t0's write
        return b.finish();
    };
    HbConfig small;
    small.granularityBytes = 32;
    small.metaGeometry = CacheConfig{4 * 1024, 8, 32, 0};
    HappensBeforeDetector limited("hb.small", small);
    HappensBeforeDetector ideal("hb.ideal", HbConfig::ideal());
    Program p = build();
    runProgram(p, {&limited, &ideal});
    EXPECT_EQ(limited.sink().distinctSiteCount(), 0u);
    EXPECT_GT(ideal.sink().distinctSiteCount(), 0u);
}

TEST(HappensBefore, WriteAfterReadByOtherThreadRaces)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId sr = b.site("reader");
    SiteId sw = b.site("writer");
    b.read(0, x, 8, sr);
    b.compute(1, 2000);
    b.write(1, x, 8, sw); // unordered write-after-read
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), sw));
}

TEST(HappensBefore, ReportsNameTheRacingPartner)
{
    WorkloadBuilder b("t", 3);
    Addr x = b.alloc("x", 8, 32);
    SiteId s0 = b.site("t0.write");
    SiteId s2 = b.site("t2.write");
    b.write(0, x, 8, s0);
    b.compute(2, 3000);
    b.write(2, x, 8, s2); // races with thread 0's write
    Program p = b.finish();

    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    ASSERT_FALSE(det.sink().reports().empty());
    const RaceReport &r = det.sink().reports().front();
    EXPECT_EQ(r.tid, 2u);
    EXPECT_EQ(r.other, 0u) << "the prior unordered writer is named";
}

} // namespace
} // namespace hard
