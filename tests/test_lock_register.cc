/**
 * @file
 * Tests for the Lock Register / Counter Register pair (paper §3.3).
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "core/lock_register.hh"

namespace hard
{
namespace
{

TEST(LockRegister, StartsEmpty)
{
    LockRegister lr(16, 2);
    EXPECT_EQ(lr.vector().raw(), 0u);
    EXPECT_TRUE(lr.vector().setEmpty());
}

TEST(LockRegister, AcquireSetsSignatureBits)
{
    LockRegister lr(16, 2);
    Addr lock = 0x1a4;
    lr.acquire(lock);
    EXPECT_EQ(lr.vector().raw(), BfVector::signatureBits(lock, 16));
    EXPECT_TRUE(lr.vector().mayContain(lock));
}

TEST(LockRegister, ReleaseClearsOwnBits)
{
    LockRegister lr(16, 2);
    lr.acquire(0x1a4);
    lr.release(0x1a4);
    EXPECT_EQ(lr.vector().raw(), 0u);
}

TEST(LockRegister, CollidingLocksSurviveOneRelease)
{
    // Two locks that share at least one BFVector bit: releasing one
    // must not clear the shared bit (the counter protects it). Use
    // two locks with identical part-0 index but different others.
    Addr l1 = (2ull << 2) | (1ull << 4);
    Addr l2 = (2ull << 2) | (3ull << 4);
    std::uint32_t shared =
        BfVector::signatureBits(l1, 16) & BfVector::signatureBits(l2, 16);
    ASSERT_NE(shared, 0u);

    LockRegister lr(16, 2);
    lr.acquire(l1);
    lr.acquire(l2);
    lr.release(l1);
    // l2 must still test positive.
    EXPECT_TRUE(lr.vector().mayContain(l2));
    lr.release(l2);
    EXPECT_EQ(lr.vector().raw(), 0u);
}

TEST(LockRegister, CounterTracksPerBitMultiplicity)
{
    Addr l1 = (2ull << 2);
    LockRegister lr(16, 2);
    lr.acquire(l1);
    lr.acquire(l1 | (1ull << 16)); // same signature, different lock
    unsigned bit = floorLog2(
        BfVector::signatureBits(l1, 16) & 0xf); // part-0 bit index
    EXPECT_EQ(lr.counter(bit), 2u);
    lr.release(l1);
    EXPECT_EQ(lr.counter(bit), 1u);
    EXPECT_TRUE(lr.vector().mayContain(l1));
}

TEST(LockRegister, TwoBitCountersSaturateAtThree)
{
    LockRegister lr(16, 2);
    Addr l = 0x0; // all part indices 0
    for (int i = 0; i < 6; ++i)
        lr.acquire(l + (std::uint64_t(i) << 20)); // same signature
    EXPECT_EQ(lr.counter(0), 3u);  // saturated
    EXPECT_GT(lr.saturations(), 0u);
    // After 3 releases the (saturated, lossy) counter reaches zero and
    // the bit clears even though 3 logical locks remain — the paper's
    // accepted rare-case inaccuracy of 2-bit counters.
    for (int i = 0; i < 3; ++i)
        lr.release(l + (std::uint64_t(i) << 20));
    EXPECT_EQ(lr.counter(0), 0u);
}

TEST(LockRegister, WiderCountersDoNotSaturate)
{
    LockRegister lr(16, 8);
    Addr l = 0x0;
    for (int i = 0; i < 6; ++i)
        lr.acquire(l + (std::uint64_t(i) << 20));
    EXPECT_EQ(lr.counter(0), 6u);
    EXPECT_EQ(lr.saturations(), 0u);
    for (int i = 0; i < 5; ++i)
        lr.release(l + (std::uint64_t(i) << 20));
    EXPECT_TRUE(lr.vector().mayContain(l));
}

TEST(LockRegister, ResetClearsEverything)
{
    LockRegister lr(16, 2);
    lr.acquire(0x1a4);
    lr.acquire(0x2b8);
    lr.reset();
    EXPECT_EQ(lr.vector().raw(), 0u);
    for (unsigned b = 0; b < 16; ++b)
        EXPECT_EQ(lr.counter(b), 0u);
}

/**
 * Property: for nested acquire/release sequences without saturation,
 * the Lock Register exactly equals the union of the signatures of the
 * currently held locks.
 */
class LockRegisterProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LockRegisterProperty, MatchesExactUnionWithoutSaturation)
{
    const unsigned width = GetParam();
    LockRegister lr(width, 8); // wide counters: no saturation
    Rng rng(width * 31);
    std::vector<Addr> held;

    for (int step = 0; step < 2000; ++step) {
        if (held.size() < 3 && (held.empty() || rng.chance(0.5))) {
            Addr lock = (rng.next64() & 0xfffff) << 2;
            bool dup = false;
            for (Addr h : held)
                dup |= h == lock;
            if (dup)
                continue;
            held.push_back(lock);
            lr.acquire(lock);
        } else {
            std::size_t i = rng.below(held.size());
            lr.release(held[i]);
            held.erase(held.begin() +
                       static_cast<std::ptrdiff_t>(i));
        }
        std::uint32_t expect = 0;
        for (Addr h : held)
            expect |= BfVector::signatureBits(h, width);
        ASSERT_EQ(lr.vector().raw(), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, LockRegisterProperty,
                         ::testing::Values(16u, 32u));

} // namespace
} // namespace hard
