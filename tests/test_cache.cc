/**
 * @file
 * Unit tests for the set-associative tag store.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "throw_test_util.hh"

namespace hard
{
namespace
{

CacheConfig
smallCfg()
{
    // 4 sets x 2 ways x 32B lines = 256B.
    return CacheConfig{256, 2, 32, 1};
}

TEST(CacheConfig, GeometryDerivation)
{
    CacheConfig l1{16 * 1024, 4, 32, 3}; // Table 1 L1
    EXPECT_EQ(l1.numSets(), 128u);
    EXPECT_EQ(l1.lineAddr(0x1234), 0x1220u);
    EXPECT_EQ(l1.setIndex(0x1220), (0x1220u / 32) % 128);
    CacheConfig l2{1024 * 1024, 8, 32, 10}; // Table 1 L2
    EXPECT_EQ(l2.numSets(), 4096u);
}

TEST(CacheConfig, TagDisambiguatesAliasedLines)
{
    CacheConfig cfg = smallCfg();
    Addr a = 0x100;
    Addr b = a + cfg.numSets() * cfg.lineBytes; // same set, new tag
    EXPECT_EQ(cfg.setIndex(a), cfg.setIndex(b));
    EXPECT_NE(cfg.tag(a), cfg.tag(b));
}

TEST(CacheConfigDeath, RejectsBadGeometry)
{
    CacheConfig bad{100, 2, 32, 1};
    HARD_EXPECT_THROW_MSG(bad.validate("t"), ConfigError,
                          "not divisible");
    CacheConfig bad2{256, 2, 33, 1};
    HARD_EXPECT_THROW_MSG(bad2.validate("t"), ConfigError,
                          "power of two");
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c("c", smallCfg());
    EXPECT_EQ(c.findLine(0x40), nullptr);
    c.insert(0x40, CState::Exclusive);
    ASSERT_NE(c.findLine(0x40), nullptr);
    EXPECT_EQ(c.state(0x40), CState::Exclusive);
    // Any address in the same line hits.
    EXPECT_NE(c.findLine(0x5f), nullptr);
    EXPECT_EQ(c.findLine(0x60), nullptr);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache c("c", smallCfg()); // 2-way
    const Addr set_stride = smallCfg().numSets() * 32;
    Addr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;

    c.insert(a, CState::Shared);
    c.insert(b, CState::Shared);
    c.touch(a); // b is now LRU
    auto ev = c.insert(d, CState::Shared);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, b);
    EXPECT_FALSE(ev->dirty);
    EXPECT_NE(c.findLine(a), nullptr);
    EXPECT_EQ(c.findLine(b), nullptr);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    SetAssocCache c("c", smallCfg());
    const Addr set_stride = smallCfg().numSets() * 32;
    c.insert(0x0, CState::Modified);
    c.insert(set_stride, CState::Shared);
    c.touch(set_stride);
    // 0x0 is LRU and dirty.
    auto ev = c.insert(2 * set_stride, CState::Shared);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, 0x0u);
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(c.stats().value("writebacks"), 1u);
}

TEST(Cache, InvalidateFreesWay)
{
    SetAssocCache c("c", smallCfg());
    c.insert(0x40, CState::Shared);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.invalidate(0x40));
    EXPECT_EQ(c.findLine(0x40), nullptr);
    // Reinsert does not evict anything.
    auto ev = c.insert(0x40, CState::Exclusive);
    EXPECT_FALSE(ev.has_value());
}

TEST(Cache, SetStateAndForEach)
{
    SetAssocCache c("c", smallCfg());
    c.insert(0x40, CState::Shared);
    c.setState(0x40, CState::Modified);
    EXPECT_EQ(c.state(0x40), CState::Modified);

    unsigned count = 0;
    c.forEachLine([&](Addr line, const CacheLine &l) {
        EXPECT_EQ(line, 0x40u);
        EXPECT_EQ(l.cstate, CState::Modified);
        ++count;
    });
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(CacheDeath, DoubleFillPanics)
{
    SetAssocCache c("c", smallCfg());
    c.insert(0x40, CState::Shared);
    EXPECT_DEATH(c.insert(0x44, CState::Shared), "double fill");
}

TEST(CacheDeath, TouchAbsentPanics)
{
    SetAssocCache c("c", smallCfg());
    EXPECT_DEATH(c.touch(0x40), "touch of absent");
}

/** Random-traffic property: capacity and residency invariants. */
class CacheProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheProperty, ResidencyNeverExceedsCapacityAndHitsAreStable)
{
    auto [size_kb, assoc] = GetParam();
    CacheConfig cfg{size_kb * 1024ull, assoc, 32, 1};
    SetAssocCache c("c", cfg);
    Rng rng(size_kb * 131 + assoc);

    const std::size_t capacity = cfg.numSets() * cfg.assoc;
    for (int i = 0; i < 20000; ++i) {
        Addr a = rng.below(8 * size_kb * 1024ull);
        if (c.findLine(a) != nullptr) {
            c.touch(a);
        } else {
            c.insert(a, CState::Shared);
        }
        // The line just accessed must be resident now.
        ASSERT_NE(c.findLine(a), nullptr);
    }
    EXPECT_LE(c.validLines(), capacity);
    EXPECT_GT(c.stats().value("fills"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Combine(::testing::Values(1u, 4u, 16u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace hard
