/**
 * @file
 * Tests for the failure-containment layer inside System::run(): the
 * structural deadlock detector, the forward-progress watchdog, the
 * diagnostic thread snapshots carried by DeadlockError, and the
 * absence of false positives on the healthy paper workloads.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"
#include "sim/system.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

SimConfig
cfg()
{
    return SimConfig{};
}

TEST(Watchdog, DeadlockWorkloadThrowsStructuralDeadlockImmediately)
{
    Program p = buildWorkload("deadlock", WorkloadParams{});
    System sys(cfg(), p);
    try {
        sys.run();
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Deadlock);
        EXPECT_STREQ(e.outcome(), "deadlock");
        // Structural detection: both threads crossed in WaitSema long
        // before the watchdog horizon.
        EXPECT_LT(e.cycle(), SimConfig{}.watchdogCycles);
        EXPECT_NE(std::string(e.what()).find("deadlock"),
                  std::string::npos);
    }
}

TEST(Watchdog, DeadlockSnapshotNamesWaitersAndHeldLocks)
{
    Program p = buildWorkload("deadlock", WorkloadParams{});
    System sys(cfg(), p);
    try {
        sys.run();
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        ASSERT_EQ(e.threads().size(), 2u);
        for (const ThreadSnapshot &s : e.threads()) {
            EXPECT_EQ(s.status, "WaitSema");
            EXPECT_EQ(s.waitKind, "sema");
            // Warmup (3 ops) plus the lock retired before the wait.
            EXPECT_EQ(s.pc, 4u);
            EXPECT_EQ(s.opCount, 7u);
            // Each thread still holds its guard lock.
            ASSERT_EQ(s.heldLocks.size(), 1u);
            // The human-readable line carries the same facts.
            const std::string line = s.describe();
            EXPECT_NE(line.find("WaitSema"), std::string::npos);
            EXPECT_NE(line.find("holds"), std::string::npos);
        }
        // The two threads wait on different semaphores (the cycle).
        EXPECT_NE(e.threads()[0].waitAddr, e.threads()[1].waitAddr);
        EXPECT_NE(e.threads()[0].heldLocks[0],
                  e.threads()[1].heldLocks[0]);
    }
}

TEST(Watchdog, LivelockWorkloadTripsForwardProgressWatchdog)
{
    Program p = buildWorkload("livelock", WorkloadParams{});
    SimConfig c = cfg();
    c.watchdogCycles = 20'000; // small horizon for a fast test
    System sys(c, p);
    try {
        sys.run();
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
        EXPECT_GE(e.stalledFor(), c.watchdogCycles);
        // Both threads are schedulable spinners holding the other's
        // inner lock — the ABBA signature.
        ASSERT_EQ(e.threads().size(), 2u);
        for (const ThreadSnapshot &s : e.threads()) {
            EXPECT_EQ(s.status, "WaitLock");
            EXPECT_EQ(s.waitKind, "lock");
            ASSERT_EQ(s.heldLocks.size(), 1u);
        }
        EXPECT_EQ(e.threads()[0].waitAddr, e.threads()[1].heldLocks[0]);
        EXPECT_EQ(e.threads()[1].waitAddr, e.threads()[0].heldLocks[0]);
    }
}

TEST(Watchdog, WithWatchdogOffTheCycleBudgetStillBoundsALivelock)
{
    Program p = buildWorkload("livelock", WorkloadParams{});
    SimConfig c = cfg();
    c.watchdogCycles = 0;  // watchdog disabled
    c.maxCycles = 50'000;  // finite budget catches the spin instead
    System sys(c, p);
    try {
        sys.run();
        FAIL() << "expected CycleBudgetError";
    } catch (const CycleBudgetError &e) {
        EXPECT_STREQ(e.outcome(), "budget_exceeded");
        EXPECT_EQ(e.budget(), 50'000u);
        EXPECT_GT(e.cycle(), 50'000u);
    }
}

TEST(Watchdog, CleanPaperWorkloadsNeverTripTheDefaultWatchdog)
{
    // All six SPLASH-like models (small scale) complete under the
    // default watchdog: barrier waits, lock convoys and semaphore
    // hand-offs must all be recognised as legitimate progress.
    WorkloadParams wp;
    wp.scale = 0.05;
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build(wp);
        System sys(cfg(), p);
        EXPECT_NO_THROW(sys.run()) << w.name;
    }
}

TEST(Watchdog, SingleLongComputeIsNotMistakenForAStall)
{
    // Regression: one thread issues a Compute far beyond the watchdog
    // horizon while its sibling retires quick ops at small cycles and
    // finishes. The progress clock must extend to the Compute's end
    // and must not be pulled backwards by the sibling's earlier
    // retirements.
    WorkloadBuilder b("longcompute", 2);
    Addr x = b.alloc("x", 64, 32);
    SiteId s = b.site("w");
    for (int i = 0; i < 8; ++i)
        b.write(0, x, 8, s);
    b.compute(1, 200'000);
    b.write(1, x + 32, 8, s);
    Program p = b.finish();

    SimConfig c = cfg();
    c.watchdogCycles = 50'000; // far below the Compute length
    System sys(c, p);
    RunResult res;
    ASSERT_NO_THROW(res = sys.run());
    EXPECT_GE(res.totalCycles, 200'000u);
}

} // namespace
} // namespace hard
