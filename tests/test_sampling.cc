/**
 * @file
 * Detection-sampling contracts (sim/sampling.hh):
 *
 *  - granule decisions nest across rates (lowering r only removes
 *    granules), the mechanism that makes sampled overhead monotone;
 *  - epoch duty cycles are deterministic and proportional to r;
 *  - rate 1.0 is byte-identical to an unsampled run, whatever the
 *    other sampling fields say (active() gates every call site);
 *  - sampled sweeps are deterministic at any --jobs;
 *  - a granule-sampled per-granule-independent detector reports a
 *    subset of its unsampled twin (the fuzzer's sampled-subset
 *    invariants, exercised here both directly and through
 *    runFuzzSeeds);
 *  - the sampled legs stay out of default fuzz documents and
 *    signatures (conditional-field byte identity).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "fuzz/generator.hh"
#include "fuzz/invariants.hh"
#include "fuzz/runner.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"
#include "sim/sampling.hh"
#include "trace/record.hh"
#include "trace/replayer.hh"

namespace hard
{
namespace
{

TEST(SamplingSpec, GranuleDecisionsNestAcrossRates)
{
    const std::vector<double> rates = {0.05, 0.25, 0.5, 0.9, 1.0};
    SamplingSpec spec;
    spec.mode = SamplingSpec::Mode::granule;
    spec.seed = 42;
    for (Addr addr = 0; addr < 64 * 1024; addr += 13) {
        bool prev = false;
        for (double rate : rates) {
            spec.rate = rate;
            const bool on = sampleGranule(spec, addr);
            EXPECT_TRUE(!prev || on)
                << "addr " << addr << ": monitored at a lower rate "
                << "but not at rate " << rate;
            prev = on;
        }
        EXPECT_TRUE(prev) << "rate 1.0 must monitor every granule";
    }
}

TEST(SamplingSpec, GranuleRateIsHonoredApproximately)
{
    SamplingSpec spec;
    spec.rate = 0.25;
    spec.seed = 7;
    unsigned on = 0;
    const unsigned granules = 20000;
    for (unsigned g = 0; g < granules; ++g)
        if (sampleGranule(spec, static_cast<Addr>(g) * spec.granuleBytes))
            ++on;
    const double got = static_cast<double>(on) / granules;
    EXPECT_NEAR(got, 0.25, 0.02);
}

TEST(SamplingSpec, EpochDutyCycleDeterministicAndProportional)
{
    SamplingSpec spec;
    spec.mode = SamplingSpec::Mode::epoch;
    spec.rate = 0.3;
    spec.seed = 9;
    spec.period = 1000;
    unsigned on = 0;
    for (Cycle at = 0; at < spec.period; ++at) {
        const bool a = sampleEpoch(spec, at);
        EXPECT_EQ(a, sampleEpoch(spec, at)); // pure function
        EXPECT_EQ(a, sampleEpoch(spec, at + spec.period)); // periodic
        if (a)
            ++on;
    }
    // Exactly ceil(r * period) on-cycles per period.
    EXPECT_EQ(on, 300u);
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

std::vector<BatchItem>
sampledItems(const SamplingSpec &spec)
{
    std::vector<BatchItem> items;
    for (const char *app : {"barnes", "water-nsquared"}) {
        BatchItem item;
        item.workload = app;
        item.wp = tinyParams();
        item.sim = defaultSimConfig();
        item.sim.sampling = spec;
        item.factory = table2Detectors();
        item.runs = 2;
        item.seed0 = 900;
        items.push_back(std::move(item));
    }
    return items;
}

std::string
batchDump(const std::vector<BatchItem> &items, unsigned jobs)
{
    RunPool pool(jobs);
    BatchOptions opts;
    opts.keepGoing = true;
    return batchJson(runBatch(items, pool, opts), ExecMode::Cycle)
        .dump(2);
}

TEST(SamplingBatch, RateOneByteIdenticalToUnsampled)
{
    const std::string reference = batchDump(sampledItems({}), 2);

    // Rate 1.0 with every other sampling field changed: active() is
    // false, so no wrapper attaches and no byte can move.
    SamplingSpec one;
    one.mode = SamplingSpec::Mode::epoch;
    one.rate = 1.0;
    one.seed = 999;
    one.period = 128;
    EXPECT_EQ(batchDump(sampledItems(one), 2), reference);
}

TEST(SamplingBatch, SampledSweepDeterministicAtAnyJobs)
{
    SamplingSpec spec;
    spec.rate = 0.5;
    spec.seed = 3;
    const std::string reference = batchDump(sampledItems(spec), 1);
    EXPECT_EQ(batchDump(sampledItems(spec), 4), reference);

    // And the schedule is a real degree of freedom: a different seed
    // at the same rate yields a different document.
    SamplingSpec other = spec;
    other.seed = 4;
    EXPECT_NE(batchDump(sampledItems(other), 1), reference);
}

/** Record one fuzz program and return (full, sampled) report keys of
 * an ideal-lockset + ideal-HB pair replayed over it. */
void
replayFullAndSampled(std::uint64_t seed, const SamplingSpec &spec,
                     KeySet &idealFull, KeySet &idealSampled,
                     KeySet &hbFull, KeySet &hbSampled)
{
    FuzzGenConfig gen;
    gen.maxOps = 24;
    gen.maxPhases = 3;
    const Program prog = generateFuzzProgram(seed, gen);
    const Trace trace = recordRun(prog, fuzzSimConfig(prog));

    IdealLocksetConfig ic;
    IdealLocksetDetector full("ideal", ic), part("ideal-sampled", ic);
    HappensBeforeDetector hbf("hb", HbConfig::ideal()),
        hbp("hb-sampled", HbConfig::ideal());
    SamplingObserver idealTap(part, spec), hbTap(hbp, spec);
    replayTrace(trace, {&full, &hbf, &idealTap, &hbTap});
    for (RaceDetector *d :
         std::vector<RaceDetector *>{&full, &part, &hbf, &hbp})
        d->finalize();
    idealFull = reportKeys(full.sink());
    idealSampled = reportKeys(part.sink());
    hbFull = reportKeys(hbf.sink());
    hbSampled = reportKeys(hbp.sink());
}

TEST(SamplingSubset, GranuleSampledReportsAreSubsetOfUnsampled)
{
    SamplingSpec spec;
    spec.rate = 0.4;
    spec.seed = 11;
    std::size_t full_total = 0, sampled_total = 0;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        KeySet idealFull, idealSampled, hbFull, hbSampled;
        replayFullAndSampled(seed, spec, idealFull, idealSampled,
                             hbFull, hbSampled);
        for (const ReportKey &k : idealSampled)
            EXPECT_TRUE(idealFull.count(k))
                << "seed " << seed << ": sampled ideal report not in "
                << "the unsampled set";
        for (const ReportKey &k : hbSampled)
            EXPECT_TRUE(hbFull.count(k))
                << "seed " << seed << ": sampled HB report not in the "
                << "unsampled set";
        full_total += idealFull.size() + hbFull.size();
        sampled_total += idealSampled.size() + hbSampled.size();
    }
    // Sampling at 0.4 actually sheds coverage somewhere across the
    // seeds — the subset is proper, not vacuous.
    EXPECT_GT(full_total, 0u);
    EXPECT_LT(sampled_total, full_total);
}

TEST(SamplingFuzz, SampledInvariantsHoldAcrossSeeds)
{
    FuzzOptions opts;
    opts.seeds = {0, 1, 2, 3, 4, 5};
    opts.jobs = 2;
    opts.gen.maxOps = 16;
    opts.gen.maxPhases = 2;
    opts.minimize = false;
    opts.cfg.sampleRate = 0.5;
    opts.cfg.sampleSeed = 5;

    const std::vector<SeedResult> results = runFuzzSeeds(opts);
    for (const SeedResult &sr : results) {
        EXPECT_EQ(sr.outcome, "ok") << "seed " << sr.seed;
        EXPECT_TRUE(sr.detectorKeys.count("ideal-lockset-sampled"));
        EXPECT_TRUE(sr.detectorKeys.count("happens-before-sampled"));
    }

    const std::string doc = fuzzJson(opts, results).dump(2);
    EXPECT_NE(doc.find("sampled-subset-of-ideal"), std::string::npos);
    EXPECT_NE(doc.find("\"sample_rate\""), std::string::npos);
    EXPECT_NE(fuzzSignature(opts).find(";sample-rate=0.5:5"),
              std::string::npos);
}

TEST(SamplingFuzz, DefaultSweepCarriesNoSamplingFields)
{
    FuzzOptions opts;
    opts.seeds = {0, 1};
    opts.gen.maxOps = 10;
    opts.gen.maxPhases = 2;
    opts.minimize = false;

    const std::vector<SeedResult> results = runFuzzSeeds(opts);
    const std::string doc = fuzzJson(opts, results).dump(2);
    EXPECT_EQ(doc.find("sample"), std::string::npos);
    EXPECT_EQ(fuzzSignature(opts).find("sample"), std::string::npos);
    for (const SeedResult &sr : results)
        EXPECT_FALSE(sr.detectorKeys.count("ideal-lockset-sampled"));
}

} // namespace
} // namespace hard
