/**
 * @file
 * Unit and property tests for the snoopy MESI memory system.
 */

#include <gtest/gtest.h>

#include "coherence/memsys.hh"
#include "common/rng.hh"

namespace hard
{
namespace
{

MemSysConfig
smallSys()
{
    MemSysConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = CacheConfig{1024, 2, 32, 3};
    cfg.l2 = CacheConfig{8192, 4, 32, 10};
    cfg.memLatency = 200;
    return cfg;
}

TEST(MemSys, ColdReadMissGoesToMemoryAndFillsExclusive)
{
    MemorySystem m(smallSys());
    AccessOutcome out = m.access(0, 0x1000, 8, false, 0);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_EQ(out.source, AccessSource::Memory);
    EXPECT_EQ(out.stateAfter, CState::Exclusive);
    EXPECT_EQ(out.sharers, 1u);
    EXPECT_TRUE(out.lineTransferred);
    EXPECT_GE(out.completeAt, 200u);
}

TEST(MemSys, SecondReadHitsL1)
{
    MemorySystem m(smallSys());
    Cycle t = m.access(0, 0x1000, 8, false, 0).completeAt;
    AccessOutcome out = m.access(0, 0x1000, 8, false, t);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_EQ(out.source, AccessSource::L1);
    EXPECT_EQ(out.completeAt, t + 3);
}

TEST(MemSys, ReadSharingDemotesExclusiveToShared)
{
    MemorySystem m(smallSys());
    m.access(0, 0x1000, 8, false, 0);
    AccessOutcome out = m.access(1, 0x1000, 8, false, 300);
    EXPECT_EQ(out.stateAfter, CState::Shared);
    EXPECT_EQ(out.sharers, 2u);
    EXPECT_EQ(m.l1(0).state(0x1000), CState::Shared);
}

TEST(MemSys, SilentExclusiveToModifiedUpgrade)
{
    MemorySystem m(smallSys());
    m.access(0, 0x1000, 8, false, 0);
    AccessOutcome out = m.access(0, 0x1000, 8, true, 300);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_EQ(out.stateAfter, CState::Modified);
    // No bus transaction for the silent upgrade.
    EXPECT_EQ(m.bus().stats().value("txn.BusUpgr"), 0u);
}

TEST(MemSys, WriteToSharedIssuesUpgradeAndInvalidates)
{
    MemorySystem m(smallSys());
    m.access(0, 0x1000, 8, false, 0);
    m.access(1, 0x1000, 8, false, 300);
    AccessOutcome out = m.access(0, 0x1000, 8, true, 600);
    EXPECT_EQ(out.stateAfter, CState::Modified);
    EXPECT_EQ(out.sharers, 1u);
    EXPECT_EQ(m.l1(1).state(0x1000), CState::Invalid);
    EXPECT_EQ(m.bus().stats().value("txn.BusUpgr"), 1u);
}

TEST(MemSys, WriteMissInvalidatesAllOtherCopies)
{
    MemorySystem m(smallSys());
    m.access(0, 0x1000, 8, false, 0);
    m.access(1, 0x1000, 8, false, 300);
    AccessOutcome out = m.access(2, 0x1000, 8, true, 600);
    EXPECT_EQ(out.stateAfter, CState::Modified);
    EXPECT_EQ(out.sharers, 1u);
    EXPECT_EQ(m.l1(0).state(0x1000), CState::Invalid);
    EXPECT_EQ(m.l1(1).state(0x1000), CState::Invalid);
}

TEST(MemSys, DirtyLineSuppliedCacheToCache)
{
    MemorySystem m(smallSys());
    m.access(0, 0x1000, 8, true, 0); // core 0 owns M
    AccessOutcome out = m.access(1, 0x1000, 8, false, 300);
    EXPECT_EQ(out.source, AccessSource::OtherL1);
    EXPECT_EQ(out.stateAfter, CState::Shared);
    EXPECT_EQ(m.l1(0).state(0x1000), CState::Shared);
    EXPECT_EQ(m.stats().value("cacheToCache"), 1u);
}

TEST(MemSys, WriteTakesOwnershipFromModifiedOwner)
{
    MemorySystem m(smallSys());
    m.access(0, 0x1000, 8, true, 0);
    AccessOutcome out = m.access(1, 0x1000, 8, true, 300);
    EXPECT_EQ(out.stateAfter, CState::Modified);
    EXPECT_EQ(m.l1(0).state(0x1000), CState::Invalid);
    EXPECT_EQ(out.sharers, 1u);
}

TEST(MemSys, L2HitIsFasterThanMemory)
{
    MemorySystem m(smallSys());
    // Fill the line, then push it out of the small L1 only.
    m.access(0, 0x1000, 8, false, 0);
    // Alias into the same L1 set (L1: 16 sets) but different L2 set
    // (L2: 64 sets): strides of 16*32 = 512B.
    m.access(0, 0x1000 + 512, 8, false, 300);
    m.access(0, 0x1000 + 1024, 8, false, 600);
    // 2-way L1: 0x1000 is now evicted from L1 but still in L2.
    AccessOutcome out = m.access(0, 0x1000, 8, false, 900);
    EXPECT_EQ(out.source, AccessSource::L2);
    EXPECT_LT(out.completeAt - 900, 200u);
}

TEST(MemSys, InclusiveL2EvictionBackInvalidatesL1)
{
    MemSysConfig cfg = smallSys();
    cfg.l2 = CacheConfig{1024, 1, 32, 10}; // tiny direct-mapped L2
    MemorySystem m(cfg);
    m.access(0, 0x0, 8, false, 0);
    // Alias to the same L2 set: stride = 32 sets * 32B = 1024.
    m.access(1, 0x0 + 1024, 8, false, 300);
    // L2 evicted 0x0 -> core 0's copy must be gone (inclusivity).
    EXPECT_EQ(m.l1(0).state(0x0), CState::Invalid);
    EXPECT_GE(m.stats().value("l2Evictions"), 1u);
    EXPECT_GE(m.stats().value("backInvalidations"), 1u);
}

TEST(MemSysDeath, LineCrossingAccessPanics)
{
    MemorySystem m(smallSys());
    EXPECT_DEATH(m.access(0, 0x101e, 8, false, 0), "crosses");
}

TEST(Bus, TransactionsSerialize)
{
    Bus bus(BusConfig{});
    Cycle t1 = bus.transact(TxnType::BusRd, 0);
    Cycle t2 = bus.transact(TxnType::BusRd, 0);
    EXPECT_EQ(t1, BusConfig{}.occupancy(TxnType::BusRd));
    EXPECT_EQ(t2, 2 * BusConfig{}.occupancy(TxnType::BusRd));
    // A later request after the bus is free starts immediately.
    Cycle t3 = bus.transact(TxnType::BusUpgr, t2 + 100);
    EXPECT_EQ(t3, t2 + 100 + BusConfig{}.occupancy(TxnType::BusUpgr));
}

TEST(Bus, MetaBroadcastIsCheap)
{
    BusConfig cfg;
    EXPECT_LT(cfg.occupancy(TxnType::MetaBroadcast),
              cfg.occupancy(TxnType::BusRd));
    Bus bus(cfg);
    bus.transact(TxnType::MetaBroadcast, 0);
    EXPECT_EQ(bus.stats().value("metaBytes"), 3u);
    EXPECT_EQ(bus.stats().value("dataBytes"), 0u);
}

TEST(MemSysMsi, CleanFillsAreSharedAndFirstWritePaysUpgrade)
{
    MemSysConfig cfg = smallSys();
    cfg.protocol = CoherenceProtocol::MSI;
    MemorySystem m(cfg);
    AccessOutcome rd = m.access(0, 0x1000, 8, false, 0);
    EXPECT_EQ(rd.stateAfter, CState::Shared); // no E state under MSI
    AccessOutcome wr = m.access(0, 0x1000, 8, true, 300);
    EXPECT_EQ(wr.stateAfter, CState::Modified);
    // The write needed an upgrade transaction MESI would have saved.
    EXPECT_EQ(m.bus().stats().value("txn.BusUpgr"), 1u);
}

TEST(MemSysMsi, MsiCostsMoreUpgradeTrafficThanMesi)
{
    // Read-then-write over many private lines: MESI upgrades
    // silently, MSI pays one BusUpgr per line.
    auto run = [](CoherenceProtocol proto) {
        MemSysConfig cfg = smallSys();
        cfg.protocol = proto;
        MemorySystem m(cfg);
        Cycle now = 0;
        for (Addr line = 0; line < 64; ++line) {
            now = m.access(0, 0x4000 + line * 32, 8, false, now)
                      .completeAt;
            now = m.access(0, 0x4000 + line * 32, 8, true, now)
                      .completeAt;
        }
        return m.bus().stats().value("txn.BusUpgr");
    };
    EXPECT_EQ(run(CoherenceProtocol::MESI), 0u);
    EXPECT_EQ(run(CoherenceProtocol::MSI), 64u);
}

/**
 * MESI invariant property test: under random traffic, (a) at most one
 * M/E copy exists and it excludes any other copies, (b) the requester
 * always ends with a usable copy, (c) inclusivity holds.
 */
class MesiProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MesiProperty, InvariantsHoldUnderRandomTraffic)
{
    MemSysConfig cfg = smallSys();
    if (GetParam() % 2 == 0)
        cfg.protocol = CoherenceProtocol::MSI;
    MemorySystem m(cfg);
    Rng rng(GetParam());
    Cycle now = 0;

    for (int i = 0; i < 5000; ++i) {
        CoreId core = static_cast<CoreId>(rng.below(cfg.numCores));
        Addr line = rng.below(64) * 32; // 64 hot lines
        bool write = rng.chance(0.4);
        AccessOutcome out = m.access(core, line + rng.below(4) * 8, 8,
                                     write, now);
        now = out.completeAt;

        // (b) requester has a usable copy.
        CState mine = m.l1(core).state(line);
        ASSERT_TRUE(write ? canWrite(mine) : canRead(mine));

        // (a) single-writer invariant across all L1s.
        unsigned owners = 0, holders = 0;
        for (CoreId c2 = 0; c2 < cfg.numCores; ++c2) {
            CState s = m.l1(c2).state(line);
            if (s != CState::Invalid)
                ++holders;
            if (s == CState::Modified || s == CState::Exclusive)
                ++owners;
        }
        ASSERT_LE(owners, 1u);
        if (owners == 1) {
            ASSERT_EQ(holders, 1u);
        }

        // (c) inclusivity: every valid L1 line is in the L2.
        for (CoreId c2 = 0; c2 < cfg.numCores; ++c2) {
            if (m.l1(c2).state(line) != CState::Invalid) {
                ASSERT_NE(m.l2().findLine(line), nullptr);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MesiProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

} // namespace
} // namespace hard
