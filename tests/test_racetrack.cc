/**
 * @file
 * Tests for the RaceTrack-style adaptive lockset/happens-before
 * hybrid: unprotected sharing is reported, synchronized hand-offs are
 * suppressed (the adaptive part), reader-mode rwlock holds protect
 * reads but not writes, and the detector stays a subset of the ideal
 * lockset detector on the same run.
 */

#include <gtest/gtest.h>

#include "detector_test_util.hh"
#include "detectors/ideal_lockset.hh"
#include "detectors/racetrack.hh"
#include "workloads/builder.hh"

namespace hard
{
namespace
{

RaceTrackConfig
rtCfg()
{
    RaceTrackConfig cfg;
    cfg.granularityBytes = 4;
    return cfg;
}

TEST(RaceTrack, DetectsUnprotectedWriteWrite)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    b.write(0, x, 8, s0);
    b.compute(1, 2000);
    b.write(1, x, 8, s1);
    Program p = b.finish();

    RaceTrackDetector det("rt", rtCfg());
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), s1));
    EXPECT_EQ(det.suppressed(), 0u);
}

TEST(RaceTrack, SemaphoreHandOffSuppressesLocksetAlarm)
{
    // Plain Eraser flags the unlocked shared write in t1; RaceTrack's
    // full happens-before relation sees the semaphore edge ordering
    // it after t0's write and suppresses the alarm.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr sema = b.allocSema("s");
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    b.write(0, x, 8, s0);
    b.semaPost(0, sema, s0);
    b.semaWait(1, sema, s1);
    b.write(1, x, 8, s1);
    Program p = b.finish();

    RaceTrackDetector rt("rt", rtCfg());
    IdealLocksetConfig ic;
    ic.granularityBytes = 4;
    IdealLocksetDetector ideal("ideal", ic);
    runProgram(p, {&rt, &ideal});

    EXPECT_EQ(rt.sink().distinctSiteCount(), 0u);
    EXPECT_GE(rt.suppressed(), 1u);
    // The pure lockset detector still alarms: racetrack ⊂ ideal.
    EXPECT_TRUE(reportedAt(ideal.sink(), s1));
}

TEST(RaceTrack, LockReleaseAcquireEdgeIsHonored)
{
    // Unlike HARD's hybrid (whose prune clock deliberately excludes
    // lock edges), RaceTrack's full happens-before relation includes
    // release->acquire edges. Disciplined sections stay silent: the
    // candidate set never empties and the sections are HB-ordered.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    for (int i = 0; i < 4; ++i) {
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, l, s);
            b.write(t, x, 8, s);
            b.unlock(t, l, s);
        }
    }
    Program p = b.finish();

    RaceTrackDetector det("rt", rtCfg());
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(RaceTrack, CondvarHandOffSuppressesLocksetAlarm)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr cv = b.allocCond("cv");
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    b.write(0, x, 8, s0);
    b.condBroadcast(0, cv, s0);
    b.condWait(1, cv, s1);
    b.write(1, x, 8, s1);
    Program p = b.finish();

    RaceTrackDetector det("rt", rtCfg());
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
    EXPECT_GE(det.suppressed(), 1u);
}

TEST(RaceTrack, ReaderHoldProtectsReadsButNotWrites)
{
    // Two threads hold the same rwlock in reader mode concurrently.
    // Concurrent READS under the shared hold are fine; a WRITE under
    // only a read hold (the injector's downgrade bug) has an empty
    // effective write set, no HB ordering against the other reader,
    // and must be reported.
    WorkloadBuilder b("t", 3);
    Addr x = b.alloc("x", 8, 32);
    LockAddr rw = b.allocRwLock("rw");
    SiteId sr = b.site("reader");
    SiteId sw = b.site("downgraded-writer");
    // t0 seeds the granule so it leaves Virgin/Exclusive state.
    b.read(0, x, 8, sr);
    b.compute(1, 1000);
    b.rdlock(1, rw, sr);
    b.read(1, x, 8, sr);
    b.compute(1, 4000); // keep the read hold while t2 writes
    b.rdunlock(1, rw, sr);
    b.compute(2, 2000);
    b.rdlock(2, rw, sw);
    b.write(2, x, 8, sw);
    b.rdunlock(2, rw, sw);
    Program p = b.finish();

    RaceTrackDetector det("rt", rtCfg());
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), sw));
}

TEST(RaceTrack, WriterModeSectionsAreSilent)
{
    // Proper writer-mode discipline: candidate sets stay nonempty and
    // writer release -> next acquire edges order the sections.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr rw = b.allocRwLock("rw");
    SiteId s = b.site("wr");
    for (int i = 0; i < 4; ++i) {
        for (unsigned t = 0; t < 2; ++t) {
            b.wrlock(t, rw, s);
            b.write(t, x, 8, s);
            b.read(t, x, 8, s);
            b.wrunlock(t, rw, s);
        }
    }
    Program p = b.finish();

    RaceTrackDetector det("rt", rtCfg());
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(RaceTrack, TracksHeldSetsByMode)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr rw = b.allocRwLock("rw");
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("s");
    b.lock(0, l, s);
    b.rdlock(0, rw, s);
    b.read(0, x, 8, s);
    b.rdunlock(0, rw, s);
    b.unlock(0, l, s);
    b.compute(1, 100);
    b.read(1, x, 8, s);
    Program p = b.finish();

    RaceTrackDetector det("rt", rtCfg());
    runProgram(p, {&det});
    // After the run both hold sets are empty again.
    EXPECT_TRUE(det.lockset(0).empty());
    EXPECT_TRUE(det.readLockset(0).empty());
}

} // namespace
} // namespace hard
