/**
 * @file
 * Edge-case tests for the harness and runtime: zero-injection runs
 * (used by the Table 5 bench), the maxCycles safety valve, bus reset,
 * and the detection-criterion site filter.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "throw_test_util.hh"

namespace hard
{
namespace
{

TEST(HarnessEdge, ZeroRunsStillMeasuresFalseAlarms)
{
    WorkloadParams wp;
    wp.scale = 0.05;
    EffectivenessResult res =
        runEffectiveness("ocean", wp, defaultSimConfig(),
                         table2Detectors(), 0, 1);
    ASSERT_EQ(res.size(), 4u);
    for (const auto &[name, score] : res) {
        EXPECT_EQ(score.runsAttempted, 0u) << name;
        EXPECT_EQ(score.bugsDetected, 0u) << name;
    }
    // The race-free run still populated the alarm counts.
    EXPECT_GT(res.at("hard.default").falseAlarms, 0u);
}

TEST(HarnessEdgeDeath, MaxCyclesThrowsBudgetError)
{
    WorkloadParams wp;
    wp.scale = 0.1;
    Program p = buildWorkload("barnes", wp);
    SimConfig cfg;
    cfg.maxCycles = 1000; // far too small for the workload
    System sys(cfg, p);
    try {
        sys.run();
        FAIL() << "expected CycleBudgetError";
    } catch (const CycleBudgetError &e) {
        EXPECT_STREQ(e.outcome(), "budget_exceeded");
        EXPECT_EQ(e.budget(), 1000u);
        EXPECT_GT(e.cycle(), 1000u);
        EXPECT_NE(std::string(e.what()).find("exceeded maxCycles"),
                  std::string::npos);
    }
}

TEST(HarnessEdge, DefaultCycleBudgetScalesWithProgramSize)
{
    WorkloadParams wp;
    wp.scale = 0.05;
    Program small = buildWorkload("ocean", wp);
    wp.scale = 0.2;
    Program big = buildWorkload("ocean", wp);
    EXPECT_GT(defaultCycleBudget(small), 1'000'000u);
    EXPECT_GT(defaultCycleBudget(big), defaultCycleBudget(small));
    // The budget must be far above what the run actually needs.
    System sys(SimConfig{}, small);
    RunResult r = sys.run();
    EXPECT_GT(defaultCycleBudget(small), 4 * r.totalCycles);
}

TEST(HarnessEdgeDeath, RunTwiceIsFatal)
{
    WorkloadParams wp;
    wp.scale = 0.04;
    Program p = buildWorkload("raytrace", wp);
    System sys(SimConfig{}, p);
    sys.run();
    EXPECT_EXIT(sys.run(), ::testing::ExitedWithCode(1),
                "run\\(\\) called twice");
}

TEST(HarnessEdge, BusResetClearsOccupancyAndStats)
{
    Bus bus(BusConfig{});
    bus.transact(TxnType::BusRd, 0);
    EXPECT_GT(bus.freeAt(), 0u);
    bus.reset();
    EXPECT_EQ(bus.freeAt(), 0u);
    EXPECT_EQ(bus.stats().value("txn.BusRd"), 0u);
}

TEST(HarnessEdge, DetectionCriterionRejectsWrongSiteReports)
{
    // A report overlapping the ground-truth bytes but raised at a
    // site that never touches them (false-sharing coincidence) must
    // not count as detecting the bug.
    Injection inj;
    inj.valid = true;
    inj.ranges.emplace_back(0x1000, 8);
    std::set<SiteId> true_sites{7};

    ReportSink sink;
    sink.report(RaceReport{0, 0x1000, 32, /*site=*/9, true, 1});
    EXPECT_FALSE(detectedInjection(sink, inj, true_sites));
    sink.report(RaceReport{0, 0x1000, 32, /*site=*/7, true, 2});
    EXPECT_TRUE(detectedInjection(sink, inj, true_sites));
}

TEST(HarnessEdge, SitesTouchingFindsAllAccessors)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr y = b.alloc("y", 8, 32);
    SiteId sx0 = b.site("x.t0");
    SiteId sx1 = b.site("x.t1");
    SiteId sy = b.site("y.only");
    b.write(0, x, 8, sx0);
    b.read(1, x, 8, sx1);
    b.write(1, y, 8, sy);
    Program p = b.finish();

    Injection inj;
    inj.valid = true;
    inj.ranges.emplace_back(x, 8);
    std::set<SiteId> sites = sitesTouching(p, inj);
    EXPECT_EQ(sites, (std::set<SiteId>{sx0, sx1}));
}

} // namespace
} // namespace hard
