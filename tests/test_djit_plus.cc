/**
 * @file
 * Tests for the DJIT+ full-vector-clock detector: hand-built traces
 * covering write-write races, read-share-then-write, the non-latest
 * write race the epoch representation misses, and ordering through
 * every sync primitive of the extended grammar (rwlock, condvar,
 * atomic release-acquire).
 */

#include <gtest/gtest.h>

#include "detector_test_util.hh"
#include "detectors/djit_plus.hh"
#include "detectors/happens_before.hh"
#include "workloads/builder.hh"

namespace hard
{
namespace
{

TEST(DjitPlus, DetectsUnorderedWriteWrite)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    b.write(0, x, 8, s0);
    b.compute(1, 2000);
    b.write(1, x, 8, s1);
    Program p = b.finish();

    DjitPlusDetector det("djit");
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), s1));
    EXPECT_GT(det.granulesTracked(), 0u);
}

TEST(DjitPlus, ReadShareThenWriteRacesAgainstEveryReader)
{
    // Two unordered readers, then an unordered writer: the write
    // conflicts with BOTH read components of the granule's read
    // vector (and is reported), unlike a last-access-only shadow.
    WorkloadBuilder b("t", 3);
    Addr x = b.alloc("x", 8, 32);
    SiteId sr = b.site("readers");
    SiteId sw = b.site("writer");
    b.read(0, x, 8, sr);
    b.compute(1, 1000);
    b.read(1, x, 8, sr);
    b.compute(2, 3000);
    b.write(2, x, 8, sw);
    Program p = b.finish();

    DjitPlusDetector det("djit");
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), sw));
}

TEST(DjitPlus, KeepsNonLatestWritesTheEpochDetectorDrops)
{
    // t0 writes x first; t1's unordered write races with it (both
    // detectors see that) and becomes the LATEST write. t2, ordered
    // after t1 by a semaphore but not after t0, then writes x. The
    // epoch detector's last-write slot holds t1 — ordered — so it is
    // silent at t2's write; only the full write vector still carries
    // t0's conflicting component.
    WorkloadBuilder b("t", 3);
    Addr x = b.alloc("x", 8, 32);
    Addr sema = b.allocSema("s");
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    SiteId s2 = b.site("w2");
    b.write(0, x, 8, s0);
    b.compute(1, 2000);
    b.write(1, x, 8, s1);
    b.semaPost(1, sema, s1);
    b.semaWait(2, sema, s2);
    b.write(2, x, 8, s2);
    Program p = b.finish();

    DjitPlusDetector djit("djit");
    HappensBeforeDetector hb("hb", HbConfig::ideal());
    runProgram(p, {&djit, &hb});

    // Both see the t0/t1 write-write race ...
    EXPECT_TRUE(reportedAt(djit.sink(), s1));
    EXPECT_TRUE(reportedAt(hb.sink(), s1));
    // ... but only DJIT+ still sees t2 conflicting with t0.
    EXPECT_TRUE(reportedAt(djit.sink(), s2));
    EXPECT_FALSE(reportedAt(hb.sink(), s2));
    EXPECT_GE(djit.nonLatestWriteRaces(), 1u);
    // Every epoch-detector report is also a DJIT+ report (hb ⊆ djit).
    for (SiteId s : hb.sink().sites())
        EXPECT_TRUE(reportedAt(djit.sink(), s));
}

TEST(DjitPlus, CondvarHandOffOrdersAccesses)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr cv = b.allocCond("cv");
    SiteId s = b.site("handoff");
    b.write(0, x, 8, s);
    b.condBroadcast(0, cv, s);
    b.condWait(1, cv, s);
    b.write(1, x, 8, s);
    Program p = b.finish();

    DjitPlusDetector det("djit");
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(DjitPlus, AtomicReleaseAcquireOrdersAccesses)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr flag = b.allocAtomic("flag");
    SiteId s = b.site("pub");
    b.write(0, x, 8, s);
    b.atomicStore(0, flag, s);
    b.compute(1, 5000);
    b.atomicLoad(1, flag, s);
    b.write(1, x, 8, s);
    Program p = b.finish();

    DjitPlusDetector det("djit");
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(DjitPlus, RwlockWriterSectionsOrderButReadersShare)
{
    // Writer release -> reader acquire carries an HB edge, so the
    // reader's read is ordered after the writer's write. A third
    // thread writing with no hold races against both.
    WorkloadBuilder b("t", 3);
    Addr x = b.alloc("x", 8, 32);
    LockAddr rw = b.allocRwLock("rw");
    SiteId sw = b.site("writer");
    SiteId sr = b.site("reader");
    SiteId sx = b.site("rogue");
    b.wrlock(0, rw, sw);
    b.write(0, x, 8, sw);
    b.wrunlock(0, rw, sw);
    b.compute(1, 2000);
    b.rdlock(1, rw, sr);
    b.read(1, x, 8, sr);
    b.rdunlock(1, rw, sr);
    b.compute(2, 8000);
    b.write(2, x, 8, sx);
    Program p = b.finish();

    DjitPlusDetector det("djit");
    runProgram(p, {&det});
    // Reader ordered after writer: the reader's site is clean.
    EXPECT_FALSE(reportedAt(det.sink(), sr));
    // The unprotected write races with the earlier accesses.
    EXPECT_TRUE(reportedAt(det.sink(), sx));
}

} // namespace
} // namespace hard
