/**
 * @file
 * Regression tests proving the parallel batch runner is *bit-identical*
 * to the serial experiment harness: same aggregate EffectivenessResult,
 * same per-run detection outcomes and ReportSink site sets, same
 * OverheadResult — for any worker count, on every attempt.
 */

#include <gtest/gtest.h>

#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"
#include "throw_test_util.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

void
expectSameScores(const EffectivenessResult &serial,
                 const EffectivenessResult &parallel,
                 const std::string &what)
{
    ASSERT_EQ(serial.size(), parallel.size()) << what;
    for (const auto &[name, s] : serial) {
        ASSERT_TRUE(parallel.count(name)) << what << ": " << name;
        const DetectorScore &p = parallel.at(name);
        EXPECT_EQ(s.bugsDetected, p.bugsDetected) << what << ": " << name;
        EXPECT_EQ(s.runsAttempted, p.runsAttempted)
            << what << ": " << name;
        EXPECT_EQ(s.falseAlarms, p.falseAlarms) << what << ": " << name;
        EXPECT_EQ(s.dynamicReports, p.dynamicReports)
            << what << ": " << name;
    }
}

void
expectSameRunDetail(const std::vector<EffectivenessRun> &a,
                    const std::vector<EffectivenessRun> &b,
                    const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(what + ": run " + std::to_string(i));
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].raceFree, b[i].raceFree);
        EXPECT_EQ(a[i].injectionValid, b[i].injectionValid);
        ASSERT_EQ(a[i].byDetector.size(), b[i].byDetector.size());
        for (const auto &[name, oa] : a[i].byDetector) {
            SCOPED_TRACE(name);
            ASSERT_TRUE(b[i].byDetector.count(name));
            const RunOutcome &ob = b[i].byDetector.at(name);
            EXPECT_EQ(oa.detected, ob.detected);
            // The paper's key per-run artifact: the exact set of
            // distinct source sites each detector reported.
            EXPECT_EQ(oa.sites, ob.sites);
            EXPECT_EQ(oa.dynamicReports, ob.dynamicReports);
        }
    }
}

TEST(BatchEquivalence, ParallelEffectivenessMatchesSerialBarnes)
{
    EffectivenessResult serial =
        runEffectiveness("barnes", tinyParams(), defaultSimConfig(),
                         table2Detectors(), 3, 500);
    RunPool pool(4);
    EffectivenessResult parallel = runEffectivenessParallel(
        "barnes", tinyParams(), defaultSimConfig(), table2Detectors(), 3,
        500, pool);
    expectSameScores(serial, parallel, "barnes");
}

TEST(BatchEquivalence, ParallelEffectivenessMatchesSerialWater)
{
    EffectivenessResult serial =
        runEffectiveness("water-nsquared", tinyParams(),
                         defaultSimConfig(), table2Detectors(), 3, 900);
    RunPool pool(4);
    EffectivenessResult parallel = runEffectivenessParallel(
        "water-nsquared", tinyParams(), defaultSimConfig(),
        table2Detectors(), 3, 900, pool);
    expectSameScores(serial, parallel, "water-nsquared");
}

TEST(BatchEquivalence, RunDetailIdenticalAcrossWorkerCounts)
{
    auto makeItems = [] {
        std::vector<BatchItem> items;
        for (const char *app : {"barnes", "water-nsquared"}) {
            BatchItem item;
            item.workload = app;
            item.wp = tinyParams();
            item.sim = defaultSimConfig();
            item.factory = table2Detectors();
            item.runs = 3;
            item.seed0 = 500;
            items.push_back(std::move(item));
        }
        return items;
    };

    RunPool serial_pool(1);
    RunPool parallel_pool(4);
    std::vector<BatchItemResult> serial =
        runBatch(makeItems(), serial_pool);
    std::vector<BatchItemResult> parallel =
        runBatch(makeItems(), parallel_pool);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        expectSameScores(serial[i].effectiveness,
                         parallel[i].effectiveness, serial[i].workload);
        expectSameRunDetail(serial[i].runDetail, parallel[i].runDetail,
                            serial[i].workload);
    }
}

TEST(BatchEquivalence, ParallelRunsAreRepeatable)
{
    RunPool pool(4);
    EffectivenessResult first = runEffectivenessParallel(
        "barnes", tinyParams(), defaultSimConfig(), table2Detectors(), 3,
        500, pool);
    EffectivenessResult second = runEffectivenessParallel(
        "barnes", tinyParams(), defaultSimConfig(), table2Detectors(), 3,
        500, pool);
    expectSameScores(first, second, "repeat");
}

TEST(BatchEquivalence, AggregateIsFoldOfRunDetail)
{
    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.factory = table2Detectors();
    item.runs = 3;
    item.seed0 = 500;

    RunPool pool(4);
    std::vector<BatchItemResult> results = runBatch({item}, pool);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].runDetail.size(), 4u); // 3 injected + race-free
    EXPECT_TRUE(results[0].runDetail.back().raceFree);
    expectSameScores(foldEffectiveness(results[0].runDetail),
                     results[0].effectiveness, "fold");
}

TEST(BatchEquivalence, BatchOverheadMatchesDirectMeasurement)
{
    OverheadResult direct = measureOverhead(
        "barnes", tinyParams(), defaultSimConfig(), HardConfig{});

    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.effectiveness = false;
    item.overhead = true;

    RunPool pool(4);
    std::vector<BatchItemResult> results = runBatch({item}, pool);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].haveOverhead);
    const OverheadResult &batch = results[0].overhead;
    EXPECT_EQ(direct.baseCycles, batch.baseCycles);
    EXPECT_EQ(direct.hardCycles, batch.hardCycles);
    EXPECT_EQ(direct.overheadPct, batch.overheadPct);
    EXPECT_EQ(direct.metaBroadcasts, batch.metaBroadcasts);
    EXPECT_EQ(direct.dataBytes, batch.dataBytes);
    EXPECT_EQ(direct.metaBytes, batch.metaBytes);
}

TEST(BatchEquivalenceDeath, BatchRejectsHardTimingForEffectiveness)
{
    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.sim.hardTiming.enabled = true;
    item.factory = table2Detectors();
    item.runs = 1;

    RunPool pool(1);
    HARD_EXPECT_THROW_MSG(runBatch({item}, pool), ConfigError,
                          "identical executions");
}

} // namespace
} // namespace hard
