/**
 * @file
 * Fast-mode identity: the trace-once/replay-many execution path must be
 * *bit-identical* to cycle-level simulation for every detector, on
 * every registered workload, across several injection seeds — report
 * sets, dynamic counts, explain attributions, and whole hard.batch.v2
 * documents (the only permitted difference is the top-level
 * "mode":"fast" marker). Both the cold path (record + store) and the
 * warm path (cache-hit replay) are held to the same bar.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/hard_detector.hh"
#include "core/hybrid.hh"
#include "detectors/fasttrack.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"
#include "trace/trace_cache.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

/** A fresh (pre-wiped) cache directory under the test temp root. */
std::string
freshCacheDir(const std::string &leaf)
{
    const std::string dir = ::testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

/** All six detector families from the fuzzer's battery, as a harness
 * factory: HARD, exact lockset at line and word granularity, hybrid,
 * happens-before, FastTrack. */
DetectorFactory
sixDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        dets.push_back(
            std::make_unique<HardDetector>("hard", HardConfig{}));
        dets.push_back(std::make_unique<IdealLocksetDetector>(
            "ideal", IdealLocksetConfig{}));
        IdealLocksetConfig fine;
        fine.granularityBytes = 4;
        dets.push_back(
            std::make_unique<IdealLocksetDetector>("ideal.fine", fine));
        dets.push_back(
            std::make_unique<HybridDetector>("hybrid", HardConfig{}));
        dets.push_back(std::make_unique<HappensBeforeDetector>(
            "hb", HbConfig::ideal()));
        dets.push_back(
            std::make_unique<FastTrackDetector>("fasttrack", 4));
        return dets;
    };
}

std::vector<std::string>
allRegisteredWorkloads()
{
    std::vector<std::string> names;
    for (const WorkloadInfo &w : allWorkloads())
        names.push_back(w.name);
    for (const WorkloadInfo &w : extensionWorkloads())
        names.push_back(w.name);
    return names;
}

std::string
runDump(const std::string &workload, unsigned index, unsigned num_runs,
        std::uint64_t seed0, ExecMode mode, TraceCache *cache)
{
    const WorkloadParams wp = tinyParams();
    const SharedMap shared(buildWorkload(workload, wp));
    const HardConfig explain_hard{};
    EffectivenessRun run = runEffectivenessUnit(
        workload, wp, defaultSimConfig(), sixDetectors(), index, num_runs,
        seed0, shared, /*collect_stats=*/false, &explain_hard, mode,
        cache);
    return toJson(run).dump(2);
}

// ---------------------------------------------------------------------
// Per-unit identity: every workload, injected + race-free units,
// several seeds, explain attributions included

class FastModeIdentity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FastModeIdentity, ColdAndWarmFastRunsMatchCycleExactly)
{
    const std::string workload = GetParam();
    TraceCache cache(freshCacheDir("fast_identity_" + workload));

    constexpr unsigned kRuns = 2;
    for (std::uint64_t seed0 : {500ull, 1000ull}) {
        // index == kRuns is the race-free unit.
        for (unsigned index = 0; index <= kRuns; ++index) {
            SCOPED_TRACE(workload + " seed0=" + std::to_string(seed0) +
                         " unit " + std::to_string(index));
            const std::string cycle = runDump(workload, index, kRuns,
                                              seed0, ExecMode::Cycle,
                                              nullptr);
            const std::string cold = runDump(workload, index, kRuns,
                                             seed0, ExecMode::Fast,
                                             &cache);
            const std::string warm = runDump(workload, index, kRuns,
                                             seed0, ExecMode::Fast,
                                             &cache);
            EXPECT_EQ(cycle, cold);
            EXPECT_EQ(cycle, warm);
        }
    }
    // Injected units were recorded once per (seed0, index) and hit on
    // their warm pass. The race-free unit's key has no injection seed,
    // so the second seed0's cold pass already hits the first's entry:
    // 2*kRuns + 1 distinct recordings, the other 2*(kRuns+1)*2 - that
    // many unit executions were hits.
    const TraceCache::Counters c = cache.counters();
    EXPECT_EQ(c.stores, 2 * kRuns + 1);
    EXPECT_EQ(c.hits, 4 * (kRuns + 1) - (2 * kRuns + 1));
    EXPECT_EQ(c.evictedCorrupt, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FastModeIdentity,
                         ::testing::ValuesIn(allRegisteredWorkloads()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

// ---------------------------------------------------------------------
// Whole-batch identity: hard.batch.v2 documents byte-for-byte

std::vector<BatchItem>
batchItems(ExecMode mode, TraceCache *cache)
{
    std::vector<BatchItem> items;
    for (const char *app : {"barnes", "ocean"}) {
        BatchItem item;
        item.workload = app;
        item.wp = tinyParams();
        item.sim = defaultSimConfig();
        item.factory = sixDetectors();
        item.runs = 2;
        item.seed0 = 500;
        item.collectExplain = true;
        item.mode = mode;
        item.traceCache = cache;
        items.push_back(std::move(item));
    }
    return items;
}

TEST(FastModeBatch, BatchJsonIsByteIdenticalIncludingExplain)
{
    TraceCache cache(freshCacheDir("fast_identity_batch"));
    RunPool pool(4);

    std::vector<BatchItemResult> cycle =
        runBatch(batchItems(ExecMode::Cycle, nullptr), pool);
    std::vector<BatchItemResult> cold =
        runBatch(batchItems(ExecMode::Fast, &cache), pool);
    std::vector<BatchItemResult> warm =
        runBatch(batchItems(ExecMode::Fast, &cache), pool);

    // Content identity: serialize all three without the mode marker.
    const std::string cycleDump = batchJson(cycle).dump(2);
    EXPECT_EQ(cycleDump, batchJson(cold).dump(2));
    EXPECT_EQ(cycleDump, batchJson(warm).dump(2));

    // The fast-mode document differs from the cycle document in exactly
    // the top-level "mode" marker; cycle-mode output carries none.
    std::string fastDump = batchJson(warm, ExecMode::Fast).dump(2);
    const std::string marker = "\n  \"mode\": \"fast\",";
    const std::size_t at = fastDump.find(marker);
    ASSERT_NE(at, std::string::npos) << fastDump.substr(0, 200);
    fastDump.erase(at, marker.size());
    EXPECT_EQ(cycleDump, fastDump);
    EXPECT_EQ(cycleDump.find("\"mode\""), std::string::npos);

    EXPECT_EQ(cache.counters().hits, cache.counters().stores);
}

// ---------------------------------------------------------------------
// Guard rails

TEST(FastModeGuards, FastModeRefusesPerRunStatsCollection)
{
    TraceCache cache(freshCacheDir("fast_identity_guard"));
    const WorkloadParams wp = tinyParams();
    const SharedMap shared(buildWorkload("barnes", wp));
    EXPECT_THROW(runEffectivenessUnit("barnes", wp, defaultSimConfig(),
                                      sixDetectors(), 0, 1, 500, shared,
                                      /*collect_stats=*/true, nullptr,
                                      ExecMode::Fast, &cache),
                 ConfigError);
}

TEST(FastModeGuards, ParseExecModeRoundTripsAndRejectsTypos)
{
    EXPECT_EQ(parseExecMode("fast"), ExecMode::Fast);
    EXPECT_EQ(parseExecMode("cycle"), ExecMode::Cycle);
    EXPECT_STREQ(execModeName(ExecMode::Fast), "fast");
    EXPECT_STREQ(execModeName(ExecMode::Cycle), "cycle");
    EXPECT_THROW(parseExecMode("warp"), ConfigError);
}

} // namespace
} // namespace hard
