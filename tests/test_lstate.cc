/**
 * @file
 * Exhaustive tests of the Figure 2 LState machine.
 */

#include <gtest/gtest.h>

#include "detectors/lockset_state.hh"

namespace hard
{
namespace
{

TEST(LState, VirginFirstTouchBecomesExclusive)
{
    for (bool write : {false, true}) {
        LStateStep s = lstateAccess(LState::Virgin, invalidThread, 3,
                                    write);
        EXPECT_EQ(s.next, LState::Exclusive);
        EXPECT_EQ(s.owner, 3u);
        EXPECT_FALSE(s.updateCandidate);
        EXPECT_FALSE(s.reportIfEmpty);
    }
}

TEST(LState, ExclusiveSameThreadStaysExclusive)
{
    for (bool write : {false, true}) {
        LStateStep s = lstateAccess(LState::Exclusive, 3, 3, write);
        EXPECT_EQ(s.next, LState::Exclusive);
        EXPECT_EQ(s.owner, 3u);
        EXPECT_FALSE(s.updateCandidate);
        EXPECT_FALSE(s.reportIfEmpty);
    }
}

TEST(LState, ExclusiveSecondThreadReadGoesShared)
{
    LStateStep s = lstateAccess(LState::Exclusive, 3, 1, false);
    EXPECT_EQ(s.next, LState::Shared);
    EXPECT_TRUE(s.updateCandidate);
    EXPECT_FALSE(s.reportIfEmpty); // read-only sharing is silent
}

TEST(LState, ExclusiveSecondThreadWriteGoesSharedModified)
{
    LStateStep s = lstateAccess(LState::Exclusive, 3, 1, true);
    EXPECT_EQ(s.next, LState::SharedModified);
    EXPECT_TRUE(s.updateCandidate);
    EXPECT_TRUE(s.reportIfEmpty);
}

TEST(LState, SharedReadStaysSharedAndSilent)
{
    LStateStep s = lstateAccess(LState::Shared, invalidThread, 2, false);
    EXPECT_EQ(s.next, LState::Shared);
    EXPECT_TRUE(s.updateCandidate);
    EXPECT_FALSE(s.reportIfEmpty);
}

TEST(LState, SharedWriteEscalatesToSharedModified)
{
    LStateStep s = lstateAccess(LState::Shared, invalidThread, 2, true);
    EXPECT_EQ(s.next, LState::SharedModified);
    EXPECT_TRUE(s.updateCandidate);
    EXPECT_TRUE(s.reportIfEmpty);
}

TEST(LState, SharedModifiedIsAbsorbing)
{
    for (bool write : {false, true}) {
        LStateStep s = lstateAccess(LState::SharedModified,
                                    invalidThread, 0, write);
        EXPECT_EQ(s.next, LState::SharedModified);
        EXPECT_TRUE(s.updateCandidate);
        EXPECT_TRUE(s.reportIfEmpty);
    }
}

TEST(LState, Names)
{
    EXPECT_STREQ(lstateName(LState::Virgin), "Virgin");
    EXPECT_STREQ(lstateName(LState::Exclusive), "Exclusive");
    EXPECT_STREQ(lstateName(LState::Shared), "Shared");
    EXPECT_STREQ(lstateName(LState::SharedModified), "SharedModified");
}

/**
 * Exhaustive sweep over (state, same/different thread, read/write):
 * invariants of the Figure 2 diagram.
 */
class LStateSweep
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>>
{
};

TEST_P(LStateSweep, InvariantsHold)
{
    auto [st, same_thread, write] = GetParam();
    LState cur = static_cast<LState>(st);
    ThreadId owner = cur == LState::Exclusive ? 5u : invalidThread;
    ThreadId tid = same_thread ? 5u : 2u;
    LStateStep s = lstateAccess(cur, owner, tid, write);

    // Reports only ever happen in SharedModified.
    if (s.reportIfEmpty) {
        EXPECT_EQ(s.next, LState::SharedModified);
    }
    // Candidate updates happen exactly outside Virgin/own-Exclusive.
    bool exclusive_path = cur == LState::Virgin ||
        (cur == LState::Exclusive && same_thread);
    EXPECT_EQ(s.updateCandidate, !exclusive_path);
    // The state lattice only moves forward:
    // Virgin < Exclusive < Shared < SharedModified.
    EXPECT_GE(static_cast<int>(s.next), static_cast<int>(cur));
    // Writes by a non-owner always land in SharedModified.
    if (write && !exclusive_path) {
        EXPECT_EQ(s.next, LState::SharedModified);
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, LStateSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Bool(), ::testing::Bool()));

} // namespace
} // namespace hard
