/**
 * @file
 * Shape-regression tests: small-scale versions of the paper's
 * evaluation claims that must keep holding as the code evolves.
 * These mirror the headline statements of §5, not exact counts.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace hard
{
namespace
{

WorkloadParams
shapeParams()
{
    WorkloadParams p;
    p.scale = 0.08;
    return p;
}

/** Sum a score field across all apps for one detector name. */
struct Totals
{
    unsigned bugs = 0;
    unsigned runs = 0;
    std::size_t fas = 0;
};

std::map<std::string, Totals>
runAllApps(const DetectorFactory &factory, unsigned runs)
{
    std::map<std::string, Totals> totals;
    for (const WorkloadInfo &w : allWorkloads()) {
        EffectivenessResult res =
            runEffectiveness(w.name, shapeParams(), defaultSimConfig(),
                             factory, runs, 4242);
        for (const auto &[name, score] : res) {
            totals[name].bugs += score.bugsDetected;
            totals[name].runs += score.runsAttempted;
            totals[name].fas += score.falseAlarms;
        }
    }
    return totals;
}

TEST(Shapes, HardDetectsMoreBugsThanHappensBeforeInAggregate)
{
    // §5.1 headline: HARD detects ~20% more injected bugs than the
    // happens-before baseline on identical executions.
    auto totals = runAllApps(table2Detectors(), 4);
    const Totals &hard = totals.at("hard.default");
    const Totals &hb = totals.at("hb.default");
    EXPECT_EQ(hard.runs, 24u);
    EXPECT_GT(hard.bugs, hb.bugs);
    // HARD catches a strong majority of the injected bugs.
    EXPECT_GE(hard.bugs * 10, hard.runs * 8);
}

TEST(Shapes, IdealLocksetIsTheDetectionUpperBound)
{
    auto totals = runAllApps(table2Detectors(), 4);
    EXPECT_GE(totals.at("hard.ideal").bugs,
              totals.at("hb.ideal").bugs);
    // The exact, unbounded lockset catches nearly everything.
    EXPECT_GE(totals.at("hard.ideal").bugs * 10,
              totals.at("hard.ideal").runs * 8);
}

TEST(Shapes, FalseAlarmsGrowWithGranularity)
{
    // Table 3 shape: per-app alarms are monotone (weakly) from 4B to
    // 32B for HARD, and strictly higher in aggregate.
    auto factory = [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (unsigned g : {4u, 32u}) {
            HardConfig c;
            c.granularityBytes = g;
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + std::to_string(g), c));
        }
        return dets;
    };
    std::size_t fine = 0, coarse = 0;
    for (const WorkloadInfo &w : allWorkloads()) {
        EffectivenessResult res = runEffectiveness(
            w.name, shapeParams(), defaultSimConfig(), factory, 0, 1);
        std::size_t f = res.at("hard.4").falseAlarms;
        std::size_t c = res.at("hard.32").falseAlarms;
        EXPECT_LE(f, c) << w.name;
        fine += f;
        coarse += c;
    }
    EXPECT_LT(fine, coarse);
}

TEST(Shapes, LocksetHasMoreFalseAlarmsThanHappensBeforeOnHandSync)
{
    // §5.1: hand-crafted synchronization (semaphores) is opaque to
    // lockset but visible to happens-before, so on the apps that use
    // it the ideal lockset raises at least as many alarms as ideal
    // happens-before — and strictly more in aggregate.
    std::size_t ls = 0, hb = 0;
    for (const char *app : {"cholesky", "fmm"}) {
        EffectivenessResult res =
            runEffectiveness(app, shapeParams(), defaultSimConfig(),
                             table2Detectors(), 0, 1);
        EXPECT_GE(res.at("hard.ideal").falseAlarms,
                  res.at("hb.ideal").falseAlarms)
            << app;
        ls += res.at("hard.ideal").falseAlarms;
        hb += res.at("hb.ideal").falseAlarms;
    }
    EXPECT_GT(ls, hb);
}

TEST(Shapes, BloomWidthDoesNotChangeDetection)
{
    // Table 6 shape.
    auto factory = [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (unsigned bits : {16u, 32u}) {
            HardConfig c;
            c.bloomBits = bits;
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + std::to_string(bits), c));
        }
        return dets;
    };
    for (const WorkloadInfo &w : allWorkloads()) {
        EffectivenessResult res = runEffectiveness(
            w.name, shapeParams(), defaultSimConfig(), factory, 3, 77);
        EXPECT_EQ(res.at("hard.16").bugsDetected,
                  res.at("hard.32").bugsDetected)
            << w.name;
    }
}

TEST(Shapes, LargerMetadataCapacityNeverHurtsDetection)
{
    // Table 4 shape: more L2 -> (weakly) more bugs detected.
    auto factory = [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (std::uint64_t l2 : {32ull * 1024, 1024ull * 1024}) {
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + std::to_string(l2 / 1024),
                HardConfig::withL2(l2)));
        }
        return dets;
    };
    unsigned small = 0, large = 0;
    for (const WorkloadInfo &w : allWorkloads()) {
        EffectivenessResult res = runEffectiveness(
            w.name, shapeParams(), defaultSimConfig(), factory, 3, 11);
        small += res.at("hard.32").bugsDetected;
        large += res.at("hard.1024").bugsDetected;
    }
    EXPECT_LE(small, large);
}

TEST(Shapes, OverheadStaysSmallAcrossApps)
{
    // Figure 8 shape: low single-digit percent overhead.
    for (const WorkloadInfo &w : allWorkloads()) {
        OverheadResult oh = measureOverhead(w.name, shapeParams(),
                                            defaultSimConfig(),
                                            HardConfig{});
        EXPECT_GE(oh.overheadPct, 0.0) << w.name;
        EXPECT_LT(oh.overheadPct, 10.0) << w.name;
    }
}

} // namespace
} // namespace hard
