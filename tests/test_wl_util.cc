/**
 * @file
 * Tests for the workload-authoring helpers (scaled sizing, unpadded
 * statistics blocks, init/warm region emitters) and assorted config
 * death tests on the detector constructors.
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "core/hybrid.hh"
#include "detector_test_util.hh"
#include "detectors/fasttrack.hh"
#include "detectors/happens_before.hh"
#include "workloads/wl_util.hh"

namespace hard
{
namespace
{

TEST(WlUtil, ScaledClampsAtFloor)
{
    WorkloadParams p;
    p.scale = 0.001;
    EXPECT_EQ(scaled(4096, p, 64), 64u);
    p.scale = 1.0;
    EXPECT_EQ(scaled(4096, p, 64), 4096u);
    p.scale = 2.0;
    EXPECT_EQ(scaled(4096, p, 64), 8192u);
}

TEST(WlUtil, UnpaddedStatsFalselySharesAtLineGranularity)
{
    // The whole point of the helper: per-thread counters land in the
    // same 32-byte line.
    WorkloadBuilder b("t", 4);
    UnpaddedStats stats(b, "s", 2);
    for (unsigned t = 0; t < 4; ++t)
        for (int i = 0; i < 4; ++i)
            stats.bump(b, t, i % 2);
    Program p = b.finish();

    HardConfig coarse;
    HardDetector det32("hard32", coarse);
    HardConfig fine;
    fine.granularityBytes = 4;
    HardDetector det4("hard4", fine);
    runProgram(p, {&det32, &det4});
    EXPECT_GT(det32.sink().distinctSiteCount(), 0u);
    EXPECT_EQ(det4.sink().distinctSiteCount(), 0u);
}

TEST(WlUtil, InitRegionCoversEveryGranule)
{
    WorkloadBuilder b("t", 2);
    Addr base = b.alloc("r", 256, 32);
    SiteId s = b.site("init");
    initRegion(b, base, 256, 8, s);
    Program p = b.finish();
    // 256 / 8 = 32 writes, all by thread 0.
    EXPECT_EQ(p.threads[0].ops.size(), 32u);
    EXPECT_TRUE(p.threads[1].ops.empty());
    std::set<Addr> covered;
    for (const Op &op : p.threads[0].ops) {
        EXPECT_EQ(op.type, OpType::Write);
        covered.insert(op.addr);
    }
    EXPECT_EQ(covered.size(), 32u);
}

TEST(WlUtil, WarmRegionPartitionsAcrossWorkers)
{
    WorkloadBuilder b("t", 4);
    Addr base = b.alloc("r", 240, 32);
    SiteId s = b.site("warm");
    warmRegion(b, base, 240, 8, s);
    Program p = b.finish();
    // Thread 0 (the master) never participates in the sweep.
    EXPECT_TRUE(p.threads[0].ops.empty());
    std::size_t total = 0;
    for (unsigned t = 1; t < 4; ++t) {
        for (const Op &op : p.threads[t].ops)
            EXPECT_EQ(op.type, OpType::Read);
        total += p.threads[t].ops.size();
    }
    EXPECT_EQ(total, 240u / 8);
}

TEST(WlUtil, WarmRegionIsNoOpSingleThreaded)
{
    WorkloadBuilder b("t", 1);
    Addr base = b.alloc("r", 64, 32);
    warmRegion(b, base, 64, 8, b.site("warm"));
    Program p = b.finish();
    EXPECT_EQ(p.totalOps(), 0u);
}

TEST(DetectorConfigDeath, BadGranularitiesAreFatal)
{
    HardConfig bad;
    bad.granularityBytes = 3;
    EXPECT_EXIT(HardDetector("h", bad), ::testing::ExitedWithCode(1),
                "granularity");
    HardConfig toofine;
    toofine.granularityBytes = 2; // > 8 granules per 32B line
    EXPECT_EXIT(HardDetector("h", toofine),
                ::testing::ExitedWithCode(1), "granules");
    EXPECT_EXIT(HybridDetector("h", bad), ::testing::ExitedWithCode(1),
                "granularity");
    EXPECT_EXIT(FastTrackDetector("f", 3), ::testing::ExitedWithCode(1),
                "granularity");
    HbConfig hb_bad;
    hb_bad.granularityBytes = 24;
    EXPECT_EXIT(HappensBeforeDetector("hb", hb_bad),
                ::testing::ExitedWithCode(1), "granularity");
}

TEST(DetectorConfigDeath, BadCounterWidthIsFatal)
{
    HardConfig bad;
    bad.counterBits = 0;
    EXPECT_EXIT(HardDetector("h", bad), ::testing::ExitedWithCode(1),
                "counter width");
}

} // namespace
} // namespace hard
