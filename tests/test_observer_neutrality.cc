/**
 * @file
 * Integration invariant behind the whole evaluation methodology:
 * attaching detectors must NOT perturb the simulated execution. Every
 * detector variant therefore observes the identical interleaving
 * (§5.1 "identical executions"), and any combination of observers
 * yields the same timing as none — except when the HARD *timing
 * model* is explicitly enabled for overhead runs.
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "core/hybrid.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "harness/experiment.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.05;
    return p;
}

class ObserverNeutrality : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ObserverNeutrality, DetectorsDoNotPerturbTiming)
{
    const char *app = GetParam();

    Program bare = buildWorkload(app, tinyParams());
    System s0(defaultSimConfig(), bare);
    RunResult r0 = s0.run();

    Program observed = buildWorkload(app, tinyParams());
    System s1(defaultSimConfig(), observed);
    HardDetector hard("hard", HardConfig{});
    HybridDetector hybrid("hybrid", HardConfig{});
    IdealLocksetDetector ideal("ls", IdealLocksetConfig{});
    HappensBeforeDetector hb("hb", HbConfig{});
    s1.addObserver(&hard);
    s1.addObserver(&hybrid);
    s1.addObserver(&ideal);
    s1.addObserver(&hb);
    RunResult r1 = s1.run();

    EXPECT_EQ(r0.totalCycles, r1.totalCycles);
    EXPECT_EQ(r0.dataReads, r1.dataReads);
    EXPECT_EQ(r0.dataWrites, r1.dataWrites);
    EXPECT_EQ(r0.lockAcquires, r1.lockAcquires);
    EXPECT_EQ(r0.barrierEpisodes, r1.barrierEpisodes);
}

TEST_P(ObserverNeutrality, DetectorResultsIndependentOfCoObservers)
{
    const char *app = GetParam();

    // HARD alone...
    Program p1 = buildWorkload(app, tinyParams());
    System s1(defaultSimConfig(), p1);
    HardDetector alone("hard", HardConfig{});
    s1.addObserver(&alone);
    s1.run();

    // ... and HARD next to three other detectors.
    Program p2 = buildWorkload(app, tinyParams());
    System s2(defaultSimConfig(), p2);
    HardDetector with("hard", HardConfig{});
    HappensBeforeDetector hb("hb", HbConfig::ideal());
    IdealLocksetDetector ideal("ls", IdealLocksetConfig{});
    s2.addObserver(&with);
    s2.addObserver(&hb);
    s2.addObserver(&ideal);
    s2.run();

    EXPECT_EQ(alone.sink().distinctSiteCount(),
              with.sink().distinctSiteCount());
    EXPECT_EQ(alone.sink().dynamicCount(), with.sink().dynamicCount());
    EXPECT_EQ(alone.sink().sites(), with.sink().sites());
    EXPECT_EQ(alone.hardStats().metaBroadcasts,
              with.hardStats().metaBroadcasts);
}

INSTANTIATE_TEST_SUITE_P(Apps, ObserverNeutrality,
                         ::testing::Values("cholesky", "barnes", "fmm",
                                           "ocean", "water-nsquared",
                                           "raytrace", "server"));

TEST(ObserverNeutrality, HardTimingModeDoesPerturb)
{
    // Contrast: the explicit overhead mode slows the run down.
    Program p1 = buildWorkload("barnes", tinyParams());
    System s1(defaultSimConfig(), p1);
    Cycle base = s1.run().totalCycles;

    Program p2 = buildWorkload("barnes", tinyParams());
    SimConfig timed = defaultSimConfig();
    timed.hardTiming.enabled = true;
    System s2(timed, p2);
    HardDetector hard("hard", HardConfig{}, &s2.memsys().bus());
    s2.addObserver(&hard);
    Cycle with = s2.run().totalCycles;

    EXPECT_GT(with, base);
}

} // namespace
} // namespace hard
