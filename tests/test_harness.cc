/**
 * @file
 * Tests for the experiment harness (effectiveness + overhead runs).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "throw_test_util.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

TEST(Harness, EffectivenessProducesScoresForEveryDetector)
{
    EffectivenessResult res =
        runEffectiveness("barnes", tinyParams(), defaultSimConfig(),
                         table2Detectors(), 3, 500);
    ASSERT_EQ(res.size(), 4u);
    EXPECT_TRUE(res.count("hard.default"));
    EXPECT_TRUE(res.count("hard.ideal"));
    EXPECT_TRUE(res.count("hb.default"));
    EXPECT_TRUE(res.count("hb.ideal"));
    for (const auto &[name, score] : res) {
        EXPECT_EQ(score.runsAttempted, 3u) << name;
        EXPECT_LE(score.bugsDetected, score.runsAttempted) << name;
    }
    // The ideal lockset detector catches (essentially) every
    // injected bug; allow one epoch-first escape at tiny test scale.
    EXPECT_GE(res["hard.ideal"].bugsDetected, 2u);
}

TEST(Harness, HardDetectsAtLeastAsMuchAsHappensBefore)
{
    // The paper's headline: lockset-in-hardware catches bugs that
    // happens-before misses; never the other way round in aggregate.
    EffectivenessResult res =
        runEffectiveness("water-nsquared", tinyParams(),
                         defaultSimConfig(), table2Detectors(), 4, 900);
    EXPECT_GE(res["hard.default"].bugsDetected,
              res["hb.default"].bugsDetected);
    EXPECT_GE(res["hard.ideal"].bugsDetected,
              res["hb.ideal"].bugsDetected);
}

TEST(Harness, FalseAlarmsComeFromTheRaceFreeRun)
{
    EffectivenessResult res =
        runEffectiveness("ocean", tinyParams(), defaultSimConfig(),
                         table2Detectors(), 1, 42);
    // The ideal happens-before detector sees only the benign races.
    EXPECT_LE(res["hb.ideal"].falseAlarms, 3u);
    // Lockset at line granularity sees false sharing too.
    EXPECT_GE(res["hard.default"].falseAlarms,
              res["hb.ideal"].falseAlarms);
}

TEST(Harness, OverheadIsPositiveButSmall)
{
    OverheadResult oh = measureOverhead("barnes", tinyParams(),
                                        defaultSimConfig(), HardConfig{});
    EXPECT_GT(oh.baseCycles, 0u);
    EXPECT_GE(oh.hardCycles, oh.baseCycles);
    EXPECT_GE(oh.overheadPct, 0.0);
    EXPECT_LT(oh.overheadPct, 25.0); // sanity bound at tiny scale
    EXPECT_GT(oh.dataBytes, 0u);
}

TEST(Harness, OverheadChargesMetadataTraffic)
{
    OverheadResult oh = measureOverhead("cholesky", tinyParams(),
                                        defaultSimConfig(), HardConfig{});
    EXPECT_GT(oh.metaBroadcasts, 0u);
    EXPECT_GT(oh.metaBytes, 0u);
    // Metadata traffic is small next to data traffic (§3.4).
    EXPECT_LT(oh.metaBytes, oh.dataBytes / 10);
}

TEST(HarnessDeath, EffectivenessRejectsHardTiming)
{
    SimConfig cfg = defaultSimConfig();
    cfg.hardTiming.enabled = true;
    HARD_EXPECT_THROW_MSG(runEffectiveness("barnes", tinyParams(), cfg,
                                           table2Detectors(), 1, 1),
                          ConfigError, "identical executions");
}

TEST(Harness, RunWithDetectorsAttachesAll)
{
    Program p = buildWorkload("raytrace", tinyParams());
    HardDetector d1("a", HardConfig{});
    HappensBeforeDetector d2("b", HbConfig{});
    RunResult res = runWithDetectors(p, defaultSimConfig(), {&d1, &d2});
    EXPECT_GT(res.totalCycles, 0u);
}

TEST(Harness, DefaultSimConfigMatchesTable1)
{
    SimConfig cfg = defaultSimConfig();
    EXPECT_EQ(cfg.memsys.numCores, 4u);
    EXPECT_EQ(cfg.memsys.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.memsys.l1.assoc, 4u);
    EXPECT_EQ(cfg.memsys.l1.lineBytes, 32u);
    EXPECT_EQ(cfg.memsys.l1.hitLatency, 3u);
    EXPECT_EQ(cfg.memsys.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.memsys.l2.assoc, 8u);
    EXPECT_EQ(cfg.memsys.l2.hitLatency, 10u);
    EXPECT_EQ(cfg.memsys.memLatency, 200u);
}

} // namespace
} // namespace hard
