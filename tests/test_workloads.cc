/**
 * @file
 * Tests for the six SPLASH-2-like workload generators: structural
 * validity, determinism, footprint, injectability, and end-to-end
 * execution at reduced scale.
 */

#include <gtest/gtest.h>

#include "detector_test_util.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "throw_test_util.hh"
#include "workloads/injector.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

WorkloadParams
testParams()
{
    WorkloadParams p;
    p.scale = 0.05; // keep unit tests fast
    return p;
}

TEST(Workloads, RegistryHasTheSixPaperApplications)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_STREQ(all[0].name, "cholesky");
    EXPECT_STREQ(all[1].name, "barnes");
    EXPECT_STREQ(all[2].name, "fmm");
    EXPECT_STREQ(all[3].name, "ocean");
    EXPECT_STREQ(all[4].name, "water-nsquared");
    EXPECT_STREQ(all[5].name, "raytrace");
}

TEST(WorkloadsDeath, UnknownNameThrows)
{
    HARD_EXPECT_THROW_MSG(buildWorkload("nosuch", testParams()),
                          ConfigError, "unknown workload");
}

TEST(Workloads, FaultRegistryHasTheBrokenMicroWorkloads)
{
    const auto &faults = faultWorkloads();
    ASSERT_EQ(faults.size(), 2u);
    EXPECT_STREQ(faults[0].name, "deadlock");
    EXPECT_STREQ(faults[1].name, "livelock");
    // Buildable by name, but never part of the default sweep set.
    for (const WorkloadInfo &f : faults) {
        Program p = buildWorkload(f.name, testParams());
        EXPECT_EQ(p.threads.size(), 2u);
        for (const WorkloadInfo &w : allWorkloads())
            EXPECT_STRNE(w.name, f.name);
    }
}

class WorkloadSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadSweep, BuildsValidNonTrivialProgram)
{
    // finish() validates lock balance, barrier alignment, bounds and
    // line crossing; surviving it is itself a strong check.
    Program p = buildWorkload(GetParam(), testParams());
    EXPECT_EQ(p.threads.size(), 4u);
    EXPECT_GT(p.totalOps(), 1000u);
    EXPECT_FALSE(p.locks.empty());
    EXPECT_GT(p.dataLimit, p.dataBase);
}

TEST_P(WorkloadSweep, DeterministicForSameSeed)
{
    Program a = buildWorkload(GetParam(), testParams());
    Program b = buildWorkload(GetParam(), testParams());
    ASSERT_EQ(a.totalOps(), b.totalOps());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        for (std::size_t i = 0; i < a.threads[t].ops.size(); ++i) {
            ASSERT_EQ(a.threads[t].ops[i].type,
                      b.threads[t].ops[i].type);
            ASSERT_EQ(a.threads[t].ops[i].addr,
                      b.threads[t].ops[i].addr);
        }
    }
}

TEST_P(WorkloadSweep, RunsToCompletionOnTheSimulatedCmp)
{
    Program p = buildWorkload(GetParam(), testParams());
    System sys(SimConfig{}, p);
    RunResult res = sys.run();
    EXPECT_GT(res.totalCycles, 0u);
    EXPECT_GT(res.dataReads + res.dataWrites, 0u);
    EXPECT_GT(res.lockAcquires, 0u);
}

TEST_P(WorkloadSweep, HasInjectableSharedCriticalSections)
{
    Program clean = buildWorkload(GetParam(), testParams());
    SharedMap shared(clean);
    EXPECT_GT(shared.conflictingGranules(), 0u);

    Program p = buildWorkload(GetParam(), testParams());
    Injection inj = injectRace(p, 7, &shared);
    ASSERT_TRUE(inj.valid);
    EXPECT_TRUE(inj.hasWrite);
    EXPECT_FALSE(inj.ranges.empty());

    // The injected program still runs (no deadlock from the elision).
    System sys(SimConfig{}, p);
    EXPECT_GT(sys.run().totalCycles, 0u);
}

TEST_P(WorkloadSweep, InjectedBugsAreMostlyCaughtByIdealLockset)
{
    // The ideal lockset catches nearly every injected bug; the rare
    // escape is an elided critical section that happens to be the
    // first access to its variable within a barrier epoch (the §3.5
    // history reset re-arms Eraser's initialization heuristic).
    // Require a strong majority across seeds rather than all.
    Program clean = buildWorkload(GetParam(), testParams());
    SharedMap shared(clean);
    unsigned caught = 0;
    constexpr unsigned kRuns = 8;
    for (unsigned r = 0; r < kRuns; ++r) {
        Program p = buildWorkload(GetParam(), testParams());
        Injection inj = injectRace(p, 1000 + r, &shared);
        ASSERT_TRUE(inj.valid);
        IdealLocksetDetector det("ls", IdealLocksetConfig{});
        runProgram(p, {&det});
        for (const auto &rep : det.sink().reports()) {
            if (inj.overlaps(rep.addr, rep.size)) {
                ++caught;
                break;
            }
        }
    }
    EXPECT_GE(caught, kRuns / 2 + 1);
}

TEST_P(WorkloadSweep, ScaleControlsFootprint)
{
    WorkloadParams small = testParams();
    WorkloadParams large = testParams();
    large.scale = 0.2;
    Program ps = buildWorkload(GetParam(), small);
    Program pl = buildWorkload(GetParam(), large);
    EXPECT_GE(pl.dataLimit - pl.dataBase, ps.dataLimit - ps.dataBase);
    EXPECT_GT(pl.totalOps(), ps.totalOps());
}

INSTANTIATE_TEST_SUITE_P(Apps, WorkloadSweep,
                         ::testing::Values("cholesky", "barnes", "fmm",
                                           "ocean", "water-nsquared",
                                           "raytrace", "server",
                                           "rwcache"));

TEST(Workloads, ExtensionRegistryHasServerAndRwCache)
{
    const auto &ext = extensionWorkloads();
    ASSERT_EQ(ext.size(), 2u);
    EXPECT_STREQ(ext[0].name, "server");
    EXPECT_STREQ(ext[1].name, "rwcache");
    // Extensions never leak into the paper's six-application list.
    for (const WorkloadInfo &w : allWorkloads())
        for (const WorkloadInfo &e : ext)
            EXPECT_STRNE(w.name, e.name);
}

TEST(Workloads, RwCacheUsesTheExtendedSyncGrammar)
{
    Program p = buildWorkload("rwcache", testParams());
    bool rd = false, wr = false, cond = false, atomic = false;
    for (const auto &thread : p.threads) {
        for (const Op &op : thread.ops) {
            rd |= op.type == OpType::RwRdLock;
            wr |= op.type == OpType::RwWrLock;
            cond |= op.type == OpType::CondBroadcast ||
                    op.type == OpType::CondWait;
            atomic |= op.type == OpType::AtomicStore ||
                      op.type == OpType::AtomicLoad;
        }
    }
    EXPECT_TRUE(rd);
    EXPECT_TRUE(wr);
    EXPECT_TRUE(cond);
    EXPECT_TRUE(atomic);
}

TEST(Workloads, RwCacheIsCleanForIdealDetectors)
{
    // rwcache follows reader-writer discipline exactly (reads under
    // read holds, writes under write holds, condvar/atomic edges
    // ordering everything else), so the race-free build produces no
    // alarms under ideal happens-before.
    Program p = buildWorkload("rwcache", testParams());
    HappensBeforeDetector hb("hb", HbConfig::ideal());
    runProgram(p, {&hb});
    EXPECT_EQ(hb.sink().distinctSiteCount(), 0u);
}

TEST(Workloads, OceanIsNearlyFalseAlarmFreeForIdealHappensBefore)
{
    // The race-free ocean run should produce (almost) no alarms under
    // ideal happens-before: only the intentional benign races remain.
    Program p = buildWorkload("ocean", testParams());
    HappensBeforeDetector det("hb", HbConfig::ideal());
    runProgram(p, {&det});
    EXPECT_LE(det.sink().distinctSiteCount(), 3u);
}

TEST(Workloads, WaterIsCleanForIdealDetectors)
{
    // water-nsquared uses disciplined locking: zero false alarms for
    // ideal happens-before (paper Table 2's water row).
    Program p = buildWorkload("water-nsquared", testParams());
    HappensBeforeDetector hb("hb", HbConfig::ideal());
    runProgram(p, {&hb});
    EXPECT_EQ(hb.sink().distinctSiteCount(), 0u);
}

} // namespace
} // namespace hard
