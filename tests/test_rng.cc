/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace hard
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::uint64_t first = a.next64();
    a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(11);
    constexpr int kBuckets = 8;
    int hist[kBuckets] = {};
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i)
        ++hist[r.below(kBuckets)];
    for (int b = 0; b < kBuckets; ++b) {
        EXPECT_GT(hist[b], kDraws / kBuckets * 0.9);
        EXPECT_LT(hist[b], kDraws / kBuckets * 1.1);
    }
}

TEST(RngDeath, BelowZeroPanics)
{
    Rng r(1);
    EXPECT_DEATH(r.below(0), "bound 0");
}

} // namespace
} // namespace hard
