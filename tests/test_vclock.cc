/**
 * @file
 * Unit tests for the vector-clock primitives behind the
 * happens-before detector.
 */

#include <gtest/gtest.h>

#include "detectors/vclock.hh"

namespace hard
{
namespace
{

TEST(VClock, StartsAtZero)
{
    VClock v;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        EXPECT_EQ(v[t], 0u);
}

TEST(VClock, JoinIsComponentwiseMax)
{
    VClock a, b;
    a[0] = 5;
    a[1] = 1;
    b[0] = 3;
    b[1] = 7;
    b[2] = 2;
    a.join(b);
    EXPECT_EQ(a[0], 5u);
    EXPECT_EQ(a[1], 7u);
    EXPECT_EQ(a[2], 2u);
}

TEST(VClock, JoinIsIdempotentAndCommutative)
{
    VClock a, b;
    a[0] = 4;
    b[3] = 9;
    VClock ab = a;
    ab.join(b);
    VClock ba = b;
    ba.join(a);
    EXPECT_EQ(ab, ba);
    VClock twice = ab;
    twice.join(b);
    EXPECT_EQ(twice, ab);
}

TEST(Epoch, EmptyEpochIsAlwaysOrdered)
{
    Epoch e;
    VClock v;
    EXPECT_TRUE(e.ordered(v));
}

TEST(Epoch, OrderedIffClockCovered)
{
    Epoch e{2, 5};
    VClock v;
    v[2] = 4;
    EXPECT_FALSE(e.ordered(v)); // writer's epoch not yet observed
    v[2] = 5;
    EXPECT_TRUE(e.ordered(v));
    v[2] = 9;
    EXPECT_TRUE(e.ordered(v));
}

TEST(Epoch, OtherComponentsIrrelevant)
{
    Epoch e{1, 3};
    VClock v;
    v[0] = 100;
    v[2] = 100;
    EXPECT_FALSE(e.ordered(v));
    v[1] = 3;
    EXPECT_TRUE(e.ordered(v));
}

} // namespace
} // namespace hard
