/**
 * @file
 * Unit tests for stats, table and site-registry utilities.
 */

#include <gtest/gtest.h>

#include "common/site.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace hard
{
namespace
{

TEST(Stats, CountersStartAtZeroAndAccumulate)
{
    StatGroup g("test");
    EXPECT_EQ(g.value("x"), 0u);
    ++g.counter("x");
    g.counter("x") += 4;
    EXPECT_EQ(g.value("x"), 5u);
}

TEST(Stats, ResetAllClearsEveryCounter)
{
    StatGroup g("test");
    g.counter("a") += 3;
    g.counter("b") += 9;
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(Stats, DumpIsPrefixedAndSorted)
{
    StatGroup g("grp");
    g.counter("b") += 2;
    g.counter("a") += 1;
    auto d = g.dump();
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0].first, "grp.a");
    EXPECT_EQ(d[1].first, "grp.b");
}

TEST(Table, RendersAlignedCells)
{
    Table t("Caption");
    t.setHeader({"app", "bugs"});
    t.addRow({"cholesky", "9/10"});
    std::string s = t.render();
    EXPECT_NE(s.find("Caption"), std::string::npos);
    EXPECT_NE(s.find("cholesky"), std::string::npos);
    EXPECT_NE(s.find("9/10"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t("");
    t.setHeader({"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableDeath, RowArityMismatchPanics)
{
    Table t("x");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row has 1 cells");
}

TEST(Table, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtDouble(0.1, 1), "0.1");
}

TEST(SiteRegistry, InternIsIdempotent)
{
    SiteRegistry reg;
    SiteId a = reg.intern("file.cc:loop");
    SiteId b = reg.intern("file.cc:loop");
    SiteId c = reg.intern("file.cc:other");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name(a), "file.cc:loop");
}

TEST(SiteRegistry, UnknownIdHasPlaceholderName)
{
    SiteRegistry reg;
    EXPECT_EQ(reg.name(12345), "<unknown>");
}

} // namespace
} // namespace hard
