/**
 * @file
 * End-to-end demonstration of the Figure 5 Bloom-filter false
 * negative: a genuine locking-discipline violation whose lock
 * addresses are crafted so that every part of a narrow BFVector
 * collides. The narrow (8-bit) HARD misses the race, the default
 * 16-bit HARD and the exact ideal lockset catch it — the live
 * counterpart of the analytic CR_whole model of §3.2.
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "detectors/ideal_lockset.hh"

namespace hard
{
namespace
{

/**
 * Lock addresses with chosen index fields (all on distinct lines so
 * the runtime's lock words do not interfere with the data):
 * - at 8 bits/4 parts, the index of part p is address bit 2+p;
 * - at 16 bits/4 parts, it is address bits [3+2p : 2+2p].
 */
constexpr Addr kLockBase = 0x20000000;
constexpr Addr kL1 = kLockBase | 0x00;  // 8b idx (0,0,0,0), 16b (0,0,0,0)
constexpr Addr kL2 = kLockBase | 0x3c;  // 8b idx (1,1,1,1), 16b (3,3,0,0)
constexpr Addr kL3 = kLockBase | 0x28;  // 8b idx (0,1,0,1), 16b (2,2,0,0)

Program
figure5Program()
{
    // Thread 0 protects x with {L1, L2}; thread 1 uses only L3 — a
    // true violation (no common lock ever protects x).
    Program p;
    p.name = "figure5";
    p.threads.resize(2);
    p.threads[0].tid = 0;
    p.threads[1].tid = 1;
    p.dataBase = 0;
    p.dataLimit = ~0ull;
    const Addr x = 0x10000000;
    const SiteId s = 0;

    for (int i = 0; i < 3; ++i) {
        p.threads[0].ops.push_back(opLock(kL1, s));
        p.threads[0].ops.push_back(opLock(kL2, s));
        p.threads[0].ops.push_back(opWrite(x, 8, s));
        p.threads[0].ops.push_back(opUnlock(kL2, s));
        p.threads[0].ops.push_back(opUnlock(kL1, s));
        p.threads[0].ops.push_back(opCompute(400));

        p.threads[1].ops.push_back(opLock(kL3, s));
        p.threads[1].ops.push_back(opWrite(x, 8, s));
        p.threads[1].ops.push_back(opUnlock(kL3, s));
        p.threads[1].ops.push_back(opCompute(400));
    }
    return p;
}

TEST(BloomEndToEnd, CraftedSignaturesCollideExactlyAsConstructed)
{
    // Verify the address crafting: at 8 bits, L3 collides partwise
    // with the union of L1 and L2; at 16 bits, part 0 escapes.
    std::uint32_t cand8 = BfVector::signatureBits(kL1, 8) |
        BfVector::signatureBits(kL2, 8);
    std::uint32_t l3_8 = BfVector::signatureBits(kL3, 8);
    EXPECT_FALSE(BfVector::rawSetEmpty(cand8 & l3_8, 8))
        << "8-bit: every part must collide (the Figure 5 situation)";

    std::uint32_t cand16 = BfVector::signatureBits(kL1, 16) |
        BfVector::signatureBits(kL2, 16);
    std::uint32_t l3_16 = BfVector::signatureBits(kL3, 16);
    EXPECT_TRUE(BfVector::rawSetEmpty(cand16 & l3_16, 16))
        << "16-bit: the wider parts separate the indices";
}

TEST(BloomEndToEnd, NarrowVectorHidesTheRaceWideVectorCatchesIt)
{
    Program p = figure5Program();

    HardConfig narrow;
    narrow.bloomBits = 8;
    HardDetector hard8("hard.8b", narrow);
    HardDetector hard16("hard.16b", HardConfig{});
    IdealLocksetDetector ideal("ideal", IdealLocksetConfig{});
    runProgram(p, {&hard8, &hard16, &ideal});

    // The exact detector and the 16-bit hardware catch the violation.
    EXPECT_GT(ideal.sink().distinctSiteCount(), 0u);
    EXPECT_GT(hard16.sink().distinctSiteCount(), 0u);
    // The 8-bit hardware is blinded by the whole-vector collision —
    // a live Figure 5 false negative.
    EXPECT_EQ(hard8.sink().distinctSiteCount(), 0u);
}

TEST(BloomEndToEnd, AnalyticModelPredictsTheNarrowVectorRisk)
{
    // §3.2 with part length 2 (8-bit vector) vs 4 (16-bit): the
    // whole-vector collision probability for a size-2 candidate set
    // is an order of magnitude higher at 8 bits.
    double risk8 = bloomMissProbability(2, 2);
    double risk16 = bloomMissProbability(4, 2);
    EXPECT_GT(risk8, 0.3); // (1 - (1/2)^2)^4 = 0.316
    EXPECT_LT(risk16, 0.05);
    EXPECT_GT(risk8 / risk16, 5.0);
}

} // namespace
} // namespace hard
