/**
 * @file
 * Tests for the workload builder and its program validator.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "throw_test_util.hh"
#include "workloads/builder.hh"

namespace hard
{
namespace
{

TEST(Builder, AllocationsAreAlignedAndDisjoint)
{
    WorkloadBuilder b("t", 2);
    Addr a = b.alloc("a", 100, 8);
    Addr c = b.alloc("c", 10, 32);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(c % 32, 0u);
    EXPECT_GE(c, a + 100);
    LockAddr l = b.allocLock("l");
    EXPECT_EQ(l % 32, 0u);
    EXPECT_GE(l, c + 10);
}

TEST(Builder, ProgramMetadataIsRecorded)
{
    WorkloadBuilder b("meta", 3);
    Addr d = b.alloc("d", 64);
    LockAddr l = b.allocLock("l");
    Addr bar = b.allocBarrier("bar");
    SiteId s = b.site("s");
    b.write(0, d, 8, s);
    b.barrierAll(bar, s);
    b.lock(1, l, s);
    b.unlock(1, l, s);
    Program p = b.finish();

    EXPECT_EQ(p.name, "meta");
    EXPECT_EQ(p.threads.size(), 3u);
    EXPECT_EQ(p.locks, (std::vector<LockAddr>{l}));
    EXPECT_EQ(p.barriers, (std::vector<Addr>{bar}));
    EXPECT_LE(p.dataBase, d);
    EXPECT_GT(p.dataLimit, d);
    EXPECT_EQ(p.totalOps(), 1u + 3u + 2u);
    EXPECT_EQ(p.sites.name(s), "meta:s");
}

TEST(Builder, SitesAreNamespacedByWorkload)
{
    WorkloadBuilder b("wl", 1);
    SiteId s1 = b.site("x");
    SiteId s2 = b.site("x");
    EXPECT_EQ(s1, s2);
}

TEST(BuilderDeath, UnbalancedLockThrows)
{
    WorkloadBuilder b("t", 1);
    LockAddr l = b.allocLock("l");
    b.lock(0, l, b.site("s"));
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "ends holding lock");
}

TEST(BuilderDeath, UnlockWithoutLockThrows)
{
    WorkloadBuilder b("t", 1);
    LockAddr l = b.allocLock("l");
    b.unlock(0, l, b.site("s"));
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "unlocks unheld");
}

TEST(BuilderDeath, RecursiveLockThrows)
{
    WorkloadBuilder b("t", 1);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("s");
    b.lock(0, l, s);
    b.lock(0, l, s);
    b.unlock(0, l, s);
    b.unlock(0, l, s);
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "re-acquires");
}

TEST(BuilderDeath, MismatchedBarrierSequencesThrow)
{
    WorkloadBuilder b("t", 2);
    Addr bar = b.allocBarrier("bar");
    SiteId s = b.site("s");
    // Only thread 0 arrives at the barrier.
    b.barrier(0, bar, s);
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "disagree on the barrier sequence");
}

TEST(BuilderDeath, OutOfBoundsAccessThrows)
{
    WorkloadBuilder b("t", 1);
    Addr d = b.alloc("d", 8);
    b.read(0, d + 4096, 8, b.site("s"));
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "outside allocated");
}

TEST(BuilderDeath, LineCrossingAccessThrows)
{
    WorkloadBuilder b("t", 1);
    Addr d = b.alloc("d", 64, 32);
    b.read(0, d + 28, 8, b.site("s"));
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "crosses");
}

TEST(BuilderDeath, BarrierWhileHoldingLockThrows)
{
    WorkloadBuilder b("t", 1);
    LockAddr l = b.allocLock("l");
    Addr bar = b.allocBarrier("bar");
    SiteId s = b.site("s");
    b.lock(0, l, s);
    b.barrierAll(bar, s);
    b.unlock(0, l, s);
    HARD_EXPECT_THROW_MSG(b.finish(), WorkloadError,
                          "holding a lock");
}

} // namespace
} // namespace hard
