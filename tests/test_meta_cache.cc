/**
 * @file
 * Tests for the cache-geometry-limited metadata store (§3.6).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "detectors/meta_cache.hh"

namespace hard
{
namespace
{

struct Payload
{
    int value = -1; // default-constructed == "fresh"
};

CacheConfig
tinyGeom()
{
    return CacheConfig{256, 2, 32, 0}; // 4 sets x 2 ways
}

TEST(MetaCache, LookupCreatesFresh)
{
    MetaCache<Payload> mc(tinyGeom(), false);
    bool fresh = false;
    Payload &p = mc.lookup(0x47, fresh);
    EXPECT_TRUE(fresh);
    EXPECT_EQ(p.value, -1);
    p.value = 7;

    // Same line (0x40..0x5f): metadata persists.
    Payload &q = mc.lookup(0x5f, fresh);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(q.value, 7);
}

TEST(MetaCache, EvictionLosesMetadata)
{
    MetaCache<Payload> mc(tinyGeom(), false);
    const Addr stride = tinyGeom().numSets() * 32; // same-set alias
    bool fresh;
    mc.lookup(0x0, fresh).value = 1;
    mc.lookup(stride, fresh).value = 2;
    // Third alias evicts LRU (0x0).
    mc.lookup(2 * stride, fresh).value = 3;
    EXPECT_EQ(mc.evictions(), 1u);
    EXPECT_EQ(mc.find(0x0), nullptr);

    // Re-lookup is fresh: the §3.6 detection-window loss.
    Payload &p = mc.lookup(0x0, fresh);
    EXPECT_TRUE(fresh);
    EXPECT_EQ(p.value, -1);
}

TEST(MetaCache, LruKeepsRecentlyUsed)
{
    MetaCache<Payload> mc(tinyGeom(), false);
    const Addr stride = tinyGeom().numSets() * 32;
    bool fresh;
    mc.lookup(0x0, fresh).value = 1;
    mc.lookup(stride, fresh).value = 2;
    mc.lookup(0x0, fresh); // refresh 0x0; stride is now LRU
    mc.lookup(2 * stride, fresh);
    EXPECT_NE(mc.find(0x0), nullptr);
    EXPECT_EQ(mc.find(stride), nullptr);
}

TEST(MetaCache, UnboundedNeverEvicts)
{
    MetaCache<Payload> mc(tinyGeom(), true);
    bool fresh;
    for (Addr a = 0; a < 100 * 32; a += 32)
        mc.lookup(a, fresh).value = static_cast<int>(a);
    EXPECT_EQ(mc.evictions(), 0u);
    EXPECT_EQ(mc.residentLines(), 100u);
    for (Addr a = 0; a < 100 * 32; a += 32) {
        Payload *p = mc.find(a);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->value, static_cast<int>(a));
    }
}

TEST(MetaCache, ForEachVisitsAllResidentLines)
{
    MetaCache<Payload> mc(tinyGeom(), false);
    bool fresh;
    mc.lookup(0x0, fresh).value = 1;
    mc.lookup(0x40, fresh).value = 2;
    int sum = 0;
    unsigned count = 0;
    mc.forEach([&](Addr, Payload &p) {
        sum += p.value;
        ++count;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(sum, 3);
}

TEST(MetaCache, FindDoesNotCreate)
{
    MetaCache<Payload> mc(tinyGeom(), false);
    EXPECT_EQ(mc.find(0x1000), nullptr);
    EXPECT_EQ(mc.residentLines(), 0u);
}

/** Property: bounded stores respect capacity; unbounded never lose. */
class MetaCacheProperty : public ::testing::TestWithParam<bool>
{
};

TEST_P(MetaCacheProperty, CapacityAndFreshnessInvariants)
{
    const bool unbounded = GetParam();
    MetaCache<Payload> mc(tinyGeom(), unbounded);
    const std::size_t capacity = tinyGeom().numSets() * tinyGeom().assoc;
    Rng rng(5);
    std::uint64_t created = 0;

    for (int i = 0; i < 3000; ++i) {
        Addr a = rng.below(64) * 32;
        bool fresh;
        Payload &p = mc.lookup(a, fresh);
        if (fresh) {
            ASSERT_EQ(p.value, -1) << "stale payload on fresh line";
            p.value = 1;
            ++created;
        } else {
            ASSERT_EQ(p.value, 1);
        }
        if (!unbounded) {
            ASSERT_LE(mc.residentLines(), capacity);
        }
    }
    if (unbounded) {
        EXPECT_EQ(mc.evictions(), 0u);
        EXPECT_EQ(created, 64u); // one creation per distinct line
    } else {
        // Every creation beyond the first 64 is a re-creation of a
        // previously evicted line; some evicted lines may never come
        // back, so this is an upper bound.
        EXPECT_GE(created, 64u);
        EXPECT_LE(created, 64u + mc.evictions());
        EXPECT_GT(mc.evictions(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, MetaCacheProperty, ::testing::Bool());

} // namespace
} // namespace hard
