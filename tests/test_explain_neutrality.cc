/**
 * @file
 * Zero-cost-when-off guarantees of the provenance subsystem: with
 * --explain disabled nothing changes — not the simulated execution,
 * not the detector verdicts, and not one byte of the JSON outputs.
 * With it enabled, the instrumented subject still reports exactly
 * what an uninstrumented detector reports (observation, not
 * perturbation).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/hard_detector.hh"
#include "detectors/ideal_lockset.hh"
#include "explain/classifier.hh"
#include "explain/prov.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.1;
    return p;
}

Trace
recordRun(const char *app)
{
    Program prog = buildWorkload(app, tinyParams());
    TraceRecorder recorder(prog);
    runWithDetectors(prog, defaultSimConfig(), {}, nullptr, {&recorder});
    return recorder.take();
}

TEST(ExplainNeutrality, AttachedRecorderDoesNotChangeHardVerdicts)
{
    Trace trace = recordRun("ocean");

    HardDetector plain("hard", HardConfig{});
    replayTrace(trace, {&plain});
    plain.finalize();

    HardDetector instrumented("hard", HardConfig{});
    ProvRecorder prov(HardConfig{}.granularityBytes);
    instrumented.attachProvenance(&prov);
    replayTrace(trace, {&instrumented});
    instrumented.finalize();

    EXPECT_EQ(plain.sink().dynamicCount(),
              instrumented.sink().dynamicCount());
    EXPECT_EQ(plain.sink().sites(), instrumented.sink().sites());
    EXPECT_EQ(plain.hardStats().intersections,
              instrumented.hardStats().intersections);
    EXPECT_EQ(plain.hardStats().metaBroadcasts,
              instrumented.hardStats().metaBroadcasts);
    EXPECT_EQ(plain.hardStats().barrierResets,
              instrumented.hardStats().barrierResets);
    // The report stream itself is unchanged except for the provenance-
    // filled "other" field (invalidThread without a recorder).
    ASSERT_EQ(plain.sink().reports().size(),
              instrumented.sink().reports().size());
    for (std::size_t i = 0; i < plain.sink().reports().size(); ++i) {
        const RaceReport &a = plain.sink().reports()[i];
        const RaceReport &b = instrumented.sink().reports()[i];
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.site, b.site);
        EXPECT_EQ(a.tid, b.tid);
        EXPECT_EQ(a.at, b.at);
        EXPECT_EQ(a.write, b.write);
    }
}

TEST(ExplainNeutrality, AttachedRecorderDoesNotChangeIdealVerdicts)
{
    Trace trace = recordRun("barnes");

    IdealLocksetDetector plain("ls", IdealLocksetConfig{});
    replayTrace(trace, {&plain});
    plain.finalize();

    IdealLocksetDetector instrumented("ls", IdealLocksetConfig{});
    ProvRecorder prov(IdealLocksetConfig{}.granularityBytes);
    instrumented.attachProvenance(&prov);
    replayTrace(trace, {&instrumented});
    instrumented.finalize();

    EXPECT_EQ(plain.sink().dynamicCount(),
              instrumented.sink().dynamicCount());
    EXPECT_EQ(plain.sink().sites(), instrumented.sink().sites());
}

TEST(ExplainNeutrality, ClassifierSubjectMatchesAStockDetector)
{
    // The instrumented subject inside explainTrace must report exactly
    // what a stock HardDetector reports on the same trace.
    Trace trace = recordRun("fmm");

    HardDetector stock("hard", HardConfig{});
    replayTrace(trace, {&stock});
    stock.finalize();
    ExplainKeySet stock_keys;
    for (const RaceReport &r : stock.sink().reports())
        stock_keys.insert({r.addr, r.site});

    ExplainResult res = explainTrace(trace, ExplainConfig{});
    EXPECT_EQ(res.subjectKeys, stock_keys);
    EXPECT_EQ(res.reports.size(), stock.sink().reports().size());
}

TEST(ExplainNeutrality, ExtraTraceRecorderObserverDoesNotPerturb)
{
    // hardsim --explain rides a TraceRecorder through the run; that
    // extra observer must not change timing or detector results.
    Program p1 = buildWorkload("cholesky", tinyParams());
    HardDetector d1("hard", HardConfig{});
    RunResult r1 =
        runWithDetectors(p1, defaultSimConfig(), {&d1}, nullptr, {});

    Program p2 = buildWorkload("cholesky", tinyParams());
    HardDetector d2("hard", HardConfig{});
    TraceRecorder recorder(p2);
    RunResult r2 = runWithDetectors(p2, defaultSimConfig(), {&d2},
                                    nullptr, {&recorder});

    EXPECT_EQ(r1.totalCycles, r2.totalCycles);
    EXPECT_EQ(r1.dataReads, r2.dataReads);
    EXPECT_EQ(r1.dataWrites, r2.dataWrites);
    EXPECT_EQ(d1.sink().dynamicCount(), d2.sink().dynamicCount());
    EXPECT_EQ(d1.sink().sites(), d2.sink().sites());
}

TEST(ExplainNeutrality, ExplainOffBatchJsonIsByteIdentical)
{
    auto makeItem = [](bool explain) {
        BatchItem item;
        item.workload = "water-nsquared";
        item.wp = tinyParams();
        item.sim = defaultSimConfig();
        item.factory = table2Detectors();
        item.runs = 2;
        item.seed0 = 500;
        item.collectExplain = explain;
        return item;
    };

    RunPool pool(2);
    std::string off1 = batchJson(runBatch({makeItem(false)}, pool)).dump();
    std::string off2 = batchJson(runBatch({makeItem(false)}, pool)).dump();
    std::string on = batchJson(runBatch({makeItem(true)}, pool)).dump();

    // Off is deterministic and carries no trace of the subsystem.
    EXPECT_EQ(off1, off2);
    EXPECT_EQ(off1.find("\"explain\""), std::string::npos);
    EXPECT_EQ(off1.find("\"attribution\""), std::string::npos);

    // On adds per-run blocks and the per-item aggregate — and nothing
    // else differs in the detector verdicts.
    EXPECT_NE(on.find("\"explain\""), std::string::npos);
    EXPECT_NE(on.find("\"attribution\""), std::string::npos);
    Json joff = Json::parse(off1);
    Json jon = Json::parse(on);
    EXPECT_EQ(jon["items"].at(0)["effectiveness"]["aggregate"].dump(),
              joff["items"].at(0)["effectiveness"]["aggregate"].dump());
}

TEST(ExplainNeutrality, NullExplainRoundTripsThroughRunJson)
{
    EffectivenessRun run;
    run.index = 3;
    Json j = toJson(run);
    EXPECT_FALSE(j.has("explain"));
    EffectivenessRun back = effectivenessRunFromJson(j);
    EXPECT_TRUE(back.explain.isNull());

    run.explain = Json::object();
    run.explain.set("extra", 1u);
    Json j2 = toJson(run);
    ASSERT_TRUE(j2.has("explain"));
    EffectivenessRun back2 = effectivenessRunFromJson(j2);
    EXPECT_EQ(back2.explain["extra"].asUint(), 1u);
}

} // namespace
} // namespace hard
