/**
 * @file
 * Tests for HARD's per-processor register model under thread
 * oversubscription (§3.1): per-core Lock/Counter Registers with OS
 * save/restore must behave exactly like per-thread registers, and
 * *without* the save/restore support (failure injection) lock sets
 * leak between threads and the detector mis-reports.
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

/** A properly locked 4-thread program squeezed onto 2 cores. */
Program
lockedProgram()
{
    WorkloadBuilder b("t", 4);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 30; ++i) {
            b.lock(t, l, s);
            b.read(t, x, 8, s);
            b.write(t, x, 8, s);
            b.unlock(t, l, s);
            b.compute(t, 600);
        }
    }
    return b.finish();
}

SimConfig
twoCoreConfig()
{
    SimConfig cfg;
    cfg.memsys.numCores = 2;
    cfg.quantumCycles = 3000; // force frequent switches
    return cfg;
}

TEST(ContextSwitch, PerCoreRegistersWithSaveRestoreMatchPerThread)
{
    Program p1 = lockedProgram();
    Program p2 = lockedProgram();

    HardConfig per_thread;
    HardDetector d_thread("thread-regs", per_thread);
    {
        System sys(twoCoreConfig(), p1);
        sys.addObserver(&d_thread);
        RunResult res = sys.run();
        ASSERT_GT(res.contextSwitches, 0u) << "test needs multiplexing";
    }

    HardConfig per_core;
    per_core.perCoreRegisters = true;
    per_core.saveRestoreOnSwitch = true;
    HardDetector d_core("core-regs", per_core);
    {
        System sys(twoCoreConfig(), p2);
        sys.addObserver(&d_core);
        sys.run();
    }

    // The per-processor hardware with faithful OS support is
    // indistinguishable from the per-thread idealization.
    EXPECT_EQ(d_core.sink().sites(), d_thread.sink().sites());
    EXPECT_EQ(d_core.sink().dynamicCount(),
              d_thread.sink().dynamicCount());
    EXPECT_EQ(d_thread.sink().distinctSiteCount(), 0u)
        << "the program is properly locked";
}

TEST(ContextSwitch, MissingSaveRestoreHidesARealRace)
{
    // Threads 0 and 2 share core 0 (round-robin binding on 2 cores).
    // Thread 0 is preempted in the middle of its critical section;
    // thread 2 then writes x with NO lock — a real race against
    // thread 1's properly locked accesses. Without OS save/restore,
    // thread 2 inherits thread 0's Lock Register bits ({L}) and the
    // violation is hidden; with save/restore it is caught.
    auto build = [] {
        WorkloadBuilder b("t", 3);
        Addr x = b.alloc("x", 8, 32);
        LockAddr l = b.allocLock("L");
        SiteId s = b.site("cs");
        SiteId s_bad = b.site("unlocked.write");

        // Thread 1 (core 1): proper locked use of x throughout.
        for (int i = 0; i < 20; ++i) {
            b.lock(1, l, s);
            b.read(1, x, 8, s);
            b.write(1, x, 8, s);
            b.unlock(1, l, s);
            b.compute(1, 500);
        }
        // Thread 0 (core 0): holds L across long computes so the
        // quantum preempts it mid-critical-section (and it stays
        // inside the critical section while thread 2 runs).
        b.compute(0, 2000);
        b.lock(0, l, s);
        b.compute(0, 40000);
        b.compute(0, 40000);
        b.write(0, x, 8, s);
        b.unlock(0, l, s);
        // Thread 2 (also core 0): a short burst of unlocked writes to
        // x, all landing inside its first quantum slice while thread 0
        // sits preempted inside its critical section.
        b.compute(2, 6000);
        for (int i = 0; i < 3; ++i) {
            b.write(2, x, 8, s_bad);
            b.compute(2, 400);
        }
        return b.finish();
    };

    auto run = [&](bool save_restore) {
        Program p = build();
        HardConfig cfg;
        cfg.perCoreRegisters = true;
        cfg.saveRestoreOnSwitch = save_restore;
        HardDetector det("hard", cfg);
        SimConfig sim = twoCoreConfig();
        System sys(sim, p);
        sys.addObserver(&det);
        RunResult res = sys.run();
        EXPECT_GT(res.contextSwitches, 0u);
        return det.sink().distinctSiteCount();
    };

    EXPECT_GT(run(true), 0u)
        << "with OS save/restore the race must be caught";
    EXPECT_EQ(run(false), 0u)
        << "without save/restore the leaked lock bits hide the race "
           "(a false negative)";
}

TEST(ContextSwitch, PerCoreModeEquivalentOnRealWorkload)
{
    WorkloadParams params;
    params.scale = 0.04;
    Program p1 = buildWorkload("water-nsquared", params);
    Program p2 = buildWorkload("water-nsquared", params);

    SimConfig cfg;
    cfg.memsys.numCores = 2; // 4 threads on 2 cores
    cfg.quantumCycles = 20000;

    HardDetector d_thread("thread-regs", HardConfig{});
    {
        System sys(cfg, p1);
        sys.addObserver(&d_thread);
        sys.run();
    }

    HardConfig per_core;
    per_core.perCoreRegisters = true;
    HardDetector d_core("core-regs", per_core);
    {
        System sys(cfg, p2);
        sys.addObserver(&d_core);
        sys.run();
    }
    EXPECT_EQ(d_core.sink().sites(), d_thread.sink().sites());
}

TEST(ContextSwitch, WorkloadsRunCorrectlyOversubscribed)
{
    // Every workload model completes on a 2-core machine (threads are
    // oversubscribed 2:1) with the same detection semantics.
    WorkloadParams params;
    params.scale = 0.04;
    SimConfig cfg;
    cfg.memsys.numCores = 2;
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = buildWorkload(w.name, params);
        System sys(cfg, p);
        RunResult res = sys.run();
        EXPECT_GT(res.totalCycles, 0u) << w.name;
    }
}

} // namespace
} // namespace hard
