/**
 * @file
 * Provenance + divergence-classifier tests: the ProvRecorder ring/
 * summary mechanics, classifier attribution on hand-built traces that
 * exercise one HARD mechanism each, the hard.explain.v1 serialization,
 * corpus replay (weakened cases must name the sabotaged mechanism),
 * and the acceptance bar: on the default configuration every
 * divergence across the six paper workloads is attributed — the
 * "unknown" bucket stays empty.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/hard_detector.hh"
#include "explain/classifier.hh"
#include "explain/explain_json.hh"
#include "explain/prov.hh"
#include "fuzz/corpus.hh"
#include "fuzz/explain_case.hh"
#include "fuzz/runner.hh"
#include "harness/experiment.hh"
#include "replay_test_util.hh"
#include "trace/trace.hh"

namespace hard
{
namespace
{

// ---------------------------------------------------------------------
// ProvRecorder mechanics

TEST(ProvRecorder, RingBoundsEventsButSummaryNeverDrops)
{
    ProvRecorder prov(32, 16, 2);
    for (unsigned i = 0; i < 5; ++i)
        prov.recordNarrow(0x100, 0, 0, true, 10 + i, LState::Shared,
                          LState::SharedModified, 0xffff, 0x1111, 0x1111,
                          0);
    const GranuleProv *g = prov.find(0x100);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->ring.size(), 2u);
    EXPECT_EQ(g->dropped, 3u);
    EXPECT_EQ(g->narrows, 5u);
    EXPECT_TRUE(g->narrowed);
    EXPECT_EQ(g->firstNarrowAt, 10u);
    // Oldest surviving event is the 4th narrow.
    EXPECT_EQ(g->ring.front().at, 13u);
    EXPECT_EQ(g->ring.back().at, 14u);
}

TEST(ProvRecorder, LastOtherTracksTheConflictingAccessor)
{
    ProvRecorder prov(32);
    EXPECT_EQ(prov.lastOther(0x100), invalidThread);
    prov.noteAccess(0x100, 0, 5);
    EXPECT_EQ(prov.lastOther(0x100), invalidThread); // single-threaded
    prov.noteAccess(0x100, 0, 6);
    EXPECT_EQ(prov.lastOther(0x100), invalidThread);
    prov.noteAccess(0x100, 1, 7);
    EXPECT_EQ(prov.lastOther(0x100), 0u);
    prov.noteAccess(0x100, 0, 8);
    EXPECT_EQ(prov.lastOther(0x100), 1u);
}

TEST(ProvRecorder, MetaLossHitsOnlyGranulesInsideTheLine)
{
    ProvRecorder prov(32);
    prov.noteAccess(0x100, 0, 1);
    prov.noteAccess(0x120, 0, 2); // next line (32B lines)
    prov.recordMetaLoss(0x100, 32, 9);
    EXPECT_EQ(prov.find(0x100)->losses, 1u);
    EXPECT_EQ(prov.find(0x120)->losses, 0u);
    // Refetch of a never-lost line is not an event.
    prov.recordRefetch(0x120, 32, 10);
    EXPECT_EQ(prov.find(0x120)->refetches, 0u);
    prov.recordRefetch(0x100, 32, 11);
    EXPECT_EQ(prov.find(0x100)->refetches, 1u);
}

TEST(ProvRecorder, FlashResetsAreGlobalAndQueryableByWindow)
{
    ProvRecorder prov(32);
    prov.noteAccess(0x100, 0, 1);
    prov.noteAccess(0x200, 1, 2);
    prov.recordFlashReset(50, 0);
    EXPECT_EQ(prov.find(0x100)->flashes, 1u);
    EXPECT_EQ(prov.find(0x200)->flashes, 1u);
    EXPECT_TRUE(prov.flashBetween(0, 50));
    EXPECT_FALSE(prov.flashBetween(50, 100));
    ASSERT_EQ(prov.flashResets().size(), 1u);
    EXPECT_EQ(prov.flashResets()[0].second, 0u);
}

TEST(ProvRecorder, KindNamesMatchTheJsonVocabulary)
{
    EXPECT_STREQ(provKindName(ProvKind::Narrow), "narrow");
    EXPECT_STREQ(provKindName(ProvKind::ExactNarrow), "exact-narrow");
    EXPECT_STREQ(provKindName(ProvKind::Report), "report");
    EXPECT_STREQ(provKindName(ProvKind::MetaLoss), "meta-loss");
    EXPECT_STREQ(provKindName(ProvKind::Refetch), "refetch");
    EXPECT_STREQ(provKindName(ProvKind::Broadcast), "broadcast");
    EXPECT_STREQ(provKindName(ProvKind::FlashReset), "flash-reset");
}

// ---------------------------------------------------------------------
// Hand-built single-mechanism traces

TraceEvent
mem(TraceKind kind, ThreadId tid, Addr addr, SiteId site, Cycle at)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.addr = addr;
    e.size = 4;
    e.site = site;
    e.at = at;
    return e;
}

TraceEvent
sync(TraceKind kind, ThreadId tid, Addr lock, Cycle at)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.addr = lock;
    e.site = 0;
    e.at = at;
    return e;
}

TraceEvent
barrier(Cycle at, unsigned episode)
{
    TraceEvent e;
    e.kind = TraceKind::Barrier;
    e.addr = 0xb000;
    e.episode = episode;
    e.participants = 2;
    e.at = at;
    return e;
}

unsigned
count(const ExplainResult &res, const char *category)
{
    auto it = res.categoryCounts.find(category);
    return it == res.categoryCounts.end() ? 0 : it->second;
}

// Locks 0x1000 and 0x2000 differ only above address bit 9, so their
// Figure 4 signatures (built from bits 2..9) are identical — the
// classic aliasing pair. Locks 0x04 and 0x08 differ inside bits 2..9,
// so their signatures are Bloom-disjoint (part 0 indices 1 vs 2).
constexpr Addr kAliasLockA = 0x1000;
constexpr Addr kAliasLockB = 0x2000;
constexpr Addr kLockA = 0x04;
constexpr Addr kLockB = 0x08;

TEST(Classifier, AliasedLockSignaturesYieldBloomAliasingMiss)
{
    ASSERT_EQ(BfVector::signatureBits(kAliasLockA, 16),
              BfVector::signatureBits(kAliasLockB, 16));

    Trace t;
    t.siteNames = {"sync", "t0.write", "t1.write"};
    t.events = {
        sync(TraceKind::LockAcquire, 0, kAliasLockA, 10),
        mem(TraceKind::Write, 0, 0x100, 1, 20),
        sync(TraceKind::LockRelease, 0, kAliasLockA, 30),
        sync(TraceKind::LockAcquire, 1, kAliasLockB, 40),
        mem(TraceKind::Write, 1, 0x100, 2, 50),
        sync(TraceKind::LockRelease, 1, kAliasLockB, 60),
        sync(TraceKind::LockAcquire, 0, kAliasLockA, 70),
        mem(TraceKind::Write, 0, 0x100, 1, 80),
        sync(TraceKind::LockRelease, 0, kAliasLockA, 90),
    };

    ExplainResult res = explainTrace(t, ExplainConfig{});
    // The exact references report the empty {A} ∩ {B} lock set; HARD's
    // identical signatures keep the BFVector alive — a missed race.
    EXPECT_TRUE(res.subjectKeys.empty());
    EXPECT_FALSE(res.referenceKeys.empty());
    ASSERT_EQ(res.divergences.size(), res.referenceKeys.size());
    EXPECT_EQ(count(res, "bloom-aliasing"), res.divergences.size());
    EXPECT_TRUE(res.unknownFree());
    for (const Divergence &d : res.divergences)
        EXPECT_FALSE(d.extra);
}

TEST(Classifier, SaturatedCounterClearsBitEarlyAndIsAttributed)
{
    // Four distinct locks with one shared signature saturate the 2-bit
    // counters; three releases then drain them to zero although one
    // lock is still held, so the Lock Register goes empty.
    const Addr locks[4] = {0x1000, 0x2000, 0x4000, 0x8000};
    for (Addr l : locks)
        ASSERT_EQ(BfVector::signatureBits(l, 16),
                  BfVector::signatureBits(locks[0], 16));

    Trace t;
    t.siteNames = {"sync", "t1.write", "t0.write"};
    t.events.push_back(mem(TraceKind::Write, 1, 0x100, 1, 10));
    Cycle at = 20;
    for (Addr l : locks)
        t.events.push_back(sync(TraceKind::LockAcquire, 0, l, at++));
    t.events.push_back(mem(TraceKind::Write, 0, 0x100, 2, 30));
    for (unsigned i = 0; i < 3; ++i)
        t.events.push_back(
            sync(TraceKind::LockRelease, 0, locks[i], 40 + i));
    t.events.push_back(mem(TraceKind::Write, 0, 0x100, 2, 50));

    ExplainResult res = explainTrace(t, ExplainConfig{});
    // Subject reports (register drained early); the exact reference
    // still holds the fourth lock and stays quiet.
    ASSERT_EQ(res.subjectKeys.size(), 1u);
    EXPECT_TRUE(res.referenceKeys.empty());
    EXPECT_TRUE(res.sameGranKeys.empty());
    ASSERT_EQ(res.divergences.size(), 1u);
    EXPECT_TRUE(res.divergences[0].extra);
    EXPECT_EQ(res.divergences[0].category,
              DivergenceCategory::CounterSaturation);
    EXPECT_TRUE(res.unknownFree());
}

TEST(Classifier, DisplacedMetadataYieldsMetadataEvictionMiss)
{
    // Two conflicting lock disciplines on X, but a tiny direct-mapped
    // metadata store (2 sets x 1 way) loses X's history to the write
    // of Y (same set) before the second discipline shows up.
    ExplainConfig ec;
    ec.hard.metaGeometry = CacheConfig{64, 1, 32, 0};

    Trace t;
    t.siteNames = {"sync", "t0.writeX", "t1.writeX", "t0.writeY"};
    t.events = {
        sync(TraceKind::LockAcquire, 0, kLockA, 10),
        mem(TraceKind::Write, 0, 0x100, 1, 20),
        sync(TraceKind::LockRelease, 0, kLockA, 30),
        sync(TraceKind::LockAcquire, 1, kLockB, 40),
        mem(TraceKind::Write, 1, 0x100, 2, 50),
        sync(TraceKind::LockRelease, 1, kLockB, 60),
        mem(TraceKind::Write, 0, 0x140, 3, 70), // evicts X's metadata
        sync(TraceKind::LockAcquire, 0, kLockA, 80),
        mem(TraceKind::Write, 0, 0x100, 1, 90),
        sync(TraceKind::LockRelease, 0, kLockA, 100),
    };

    ExplainResult res = explainTrace(t, ec);
    EXPECT_TRUE(res.subjectKeys.empty()); // refetched line restarts Virgin
    ASSERT_FALSE(res.referenceKeys.empty());
    EXPECT_EQ(count(res, "metadata-eviction"), res.divergences.size());
    EXPECT_GT(count(res, "metadata-eviction"), 0u);
    EXPECT_TRUE(res.unknownFree());
}

TEST(Classifier, DisabledFlashResetIsAttributedToBarrierReset)
{
    // Consistent lock A before the barrier, consistent lock B after;
    // only a subject that ignores §3.5 holds them against each other.
    ExplainConfig ec;
    ec.hard.barrierReset = false;

    Trace t;
    t.siteNames = {"sync", "t0.write", "t1.write"};
    t.events = {
        sync(TraceKind::LockAcquire, 0, kLockA, 10),
        mem(TraceKind::Write, 0, 0x100, 1, 20),
        sync(TraceKind::LockRelease, 0, kLockA, 30),
        sync(TraceKind::LockAcquire, 1, kLockA, 40),
        mem(TraceKind::Write, 1, 0x100, 2, 50),
        sync(TraceKind::LockRelease, 1, kLockA, 60),
        barrier(70, 0),
        sync(TraceKind::LockAcquire, 0, kLockB, 80),
        mem(TraceKind::Write, 0, 0x100, 1, 90),
        sync(TraceKind::LockRelease, 0, kLockB, 100),
    };

    ExplainResult res = explainTrace(t, ec);
    ASSERT_EQ(res.subjectKeys.size(), 1u);
    EXPECT_TRUE(res.referenceKeys.empty());
    ASSERT_EQ(res.divergences.size(), 1u);
    EXPECT_TRUE(res.divergences[0].extra);
    EXPECT_EQ(res.divergences[0].category,
              DivergenceCategory::BarrierReset);
    EXPECT_TRUE(res.unknownFree());

    // The honest configuration flash-resets and stays clean.
    ExplainResult honest = explainTrace(t, ExplainConfig{});
    EXPECT_TRUE(honest.subjectKeys.empty());
    EXPECT_TRUE(honest.divergences.empty());
}

TEST(Classifier, CoarseGranuleFalseSharingIsAttributedToGranularity)
{
    // Each thread owns its own 4-byte variable; only the 32-byte
    // granule makes them look shared.
    Trace t;
    t.siteNames = {"t0.write", "t1.write"};
    t.events = {
        mem(TraceKind::Write, 0, 0x100, 0, 10),
        mem(TraceKind::Write, 1, 0x104, 1, 20),
    };

    ExplainResult res = explainTrace(t, ExplainConfig{});
    ASSERT_EQ(res.subjectKeys.size(), 1u);
    EXPECT_TRUE(res.referenceKeys.empty());
    ASSERT_EQ(res.divergences.size(), 1u);
    EXPECT_TRUE(res.divergences[0].extra);
    EXPECT_EQ(res.divergences[0].category,
              DivergenceCategory::Granularity);
    EXPECT_TRUE(res.unknownFree());

    // The subject report carries its causal chain, ending in the
    // report event, and knows the conflicting thread.
    ASSERT_EQ(res.reports.size(), 1u);
    ASSERT_FALSE(res.reports[0].chain.empty());
    EXPECT_EQ(res.reports[0].chain.back().kind, ProvKind::Report);
    EXPECT_EQ(res.reports[0].report.other, 0u);
    EXPECT_EQ(res.reports[0].report.tid, 1u);
}

// ---------------------------------------------------------------------
// hard.explain.v1 serialization

TEST(ExplainJson, DocumentCarriesSchemaChainsAndFullCategoryVocabulary)
{
    Trace t;
    t.siteNames = {"t0.write", "t1.write"};
    t.events = {
        mem(TraceKind::Write, 0, 0x100, 0, 10),
        mem(TraceKind::Write, 1, 0x104, 1, 20),
    };
    ExplainResult res = explainTrace(t, ExplainConfig{});

    Json doc = explainJson(res, t, "unit");
    EXPECT_EQ(doc["schema"].asString(), "hard.explain.v1");
    EXPECT_EQ(doc["workload"].asString(), "unit");
    EXPECT_EQ(doc["subject"].asString(), "hard");
    EXPECT_EQ(doc["config"]["granularityBytes"].asUint(), 32u);
    ASSERT_EQ(doc["reports"].size(), 1u);
    const Json &chain = doc["reports"].at(0)["chain"];
    ASSERT_GT(chain.size(), 0u);
    EXPECT_EQ(chain.at(chain.size() - 1)["kind"].asString(), "report");

    const Json &div = doc["divergence"];
    EXPECT_EQ(div["extra"].asUint() + div["missing"].asUint(),
              div["divergences"].size());
    for (const std::string &name : divergenceCategoryNames())
        EXPECT_TRUE(div["categories"].has(name)) << name;

    Json attr = attributionJson(res);
    EXPECT_EQ(attr["extra"].asUint(), 1u);
    EXPECT_EQ(attr["missing"].asUint(), 0u);
    EXPECT_EQ(attr["categories"]["granularity"].asUint(), 1u);
    EXPECT_EQ(attr["categories"]["unknown"].asUint(), 0u);

    std::string text = renderExplain(res, t);
    EXPECT_NE(text.find("granularity"), std::string::npos);
    EXPECT_NE(text.find("t1.write"), std::string::npos);
}

// ---------------------------------------------------------------------
// Corpus replay: weakened cases must name the sabotaged mechanism

Json
corpusExplain(const std::string &stem)
{
    const std::string dir = HARD_CORPUS_DIR;
    const CorpusCase c = loadCorpusCase(dir + "/" + stem + ".case.json");
    return explainFuzzCase(c.trace, c.cfg);
}

TEST(CorpusExplain, DeafHardCaseAttributesToBloomAliasing)
{
    Json j = corpusExplain("weakened-hard-bloom-deaf");
    EXPECT_EQ(j["subject"].asString(), "hard");
    EXPECT_EQ(j["weaken"].asString(), "hard");
    const Json &cats = j["attribution"]["categories"];
    EXPECT_GT(cats["bloom-aliasing"].asUint(), 0u);
    EXPECT_EQ(cats["unknown"].asUint(), 0u);
}

TEST(CorpusExplain, NoResetIdealCaseAttributesToBarrierReset)
{
    Json j = corpusExplain("weakened-ideal-no-barrier-reset");
    EXPECT_EQ(j["subject"].asString(), "ideal-lockset");
    const Json &cats = j["attribution"]["categories"];
    EXPECT_GT(cats["barrier-reset"].asUint(), 0u);
    EXPECT_EQ(cats["unknown"].asUint(), 0u);
}

TEST(CorpusExplain, DeafHbCaseAttributesToSemaphoreEdges)
{
    Json j = corpusExplain("weakened-hb-sema-deaf");
    EXPECT_EQ(j["subject"].asString(), "happens-before");
    const Json &cats = j["attribution"]["categories"];
    EXPECT_GT(cats[kSemaEdgesCategory].asUint(), 0u);
    EXPECT_EQ(cats["unknown"].asUint(), 0u);
}

TEST(CorpusExplain, HonestCaseHasNoUnknownAttribution)
{
    Json j = corpusExplain("honest-battery-clean");
    EXPECT_EQ(j["attribution"]["categories"]["unknown"].asUint(), 0u);
}

// ---------------------------------------------------------------------
// Acceptance: default config, six workloads, zero unknowns

class ExplainWorkloads : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ExplainWorkloads, EveryDivergenceIsAttributedOnTheDefaultConfig)
{
    WorkloadParams wp;
    wp.scale = 0.1;
    Trace trace = recordWorkloadTrace(GetParam(), wp, defaultSimConfig());

    // Table 6 default HARD: 16-bit BFVector, 32B granules, 1MB
    // metadata — exactly HardConfig's defaults.
    ExplainResult res = explainTrace(trace, ExplainConfig{});
    EXPECT_TRUE(res.unknownFree())
        << GetParam() << ": " << count(res, "unknown")
        << " unknown divergence(s)";
    // Every divergence is in the list exactly once and counted.
    unsigned total = 0;
    for (const auto &kv : res.categoryCounts)
        total += kv.second;
    EXPECT_EQ(total, res.divergences.size());
}

INSTANTIATE_TEST_SUITE_P(Apps, ExplainWorkloads,
                         ::testing::Values("cholesky", "barnes", "fmm",
                                           "ocean", "water-nsquared",
                                           "raytrace", "server",
                                           "rwcache"));

} // namespace
} // namespace hard
