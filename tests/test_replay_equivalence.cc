/**
 * @file
 * Record→replay equivalence over every workload model and the FULL
 * detector battery (HARD, exact lockset at two granularities, hybrid,
 * ideal happens-before, FastTrack, DJIT+, RaceTrack): the reports from
 * a live simulated run must equal the reports from TraceReplayer over
 * that run's recording, detector by detector. test_trace.cc asserts
 * this for three detectors; this suite closes the gap for the rest and
 * checks the full (granule, site) report keys, not just the site sets.
 * A second suite repeats the check over fuzz-generated programs with
 * the extended sync grammar (rwlocks, condvars, atomics) so the new
 * event kinds are covered by the same record→replay contract.
 */

#include <gtest/gtest.h>

#include "detector_test_util.hh"
#include "fuzz/generator.hh"
#include "fuzz/runner.hh"
#include "replay_test_util.hh"
#include "sim/system.hh"
#include "trace/recorder.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

class ReplayEquivalence : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReplayEquivalence, EveryDetectorMatchesLiveRun)
{
    WorkloadParams params;
    params.scale = 0.05;
    Program prog = buildWorkload(GetParam(), params);

    const FuzzConfig cfg;
    FuzzBattery live = makeFuzzBattery(cfg);
    TraceRecorder recorder(prog);
    {
        System sys(SimConfig{}, prog);
        for (RaceDetector *d : live.detectors())
            sys.addObserver(d);
        sys.addObserver(&recorder);
        sys.run();
        for (RaceDetector *d : live.detectors())
            d->finalize();
    }
    Trace trace = recorder.take();
    ASSERT_FALSE(trace.events.empty());

    FuzzBattery off = replayThroughBattery(trace, cfg);

    const std::vector<RaceDetector *> lives = live.detectors();
    const std::vector<RaceDetector *> offs = off.detectors();
    ASSERT_EQ(lives.size(), offs.size());
    for (std::size_t i = 0; i < lives.size(); ++i) {
        SCOPED_TRACE(lives[i]->name());
        EXPECT_EQ(reportKeys(offs[i]->sink()),
                  reportKeys(lives[i]->sink()));
        EXPECT_EQ(offs[i]->sink().dynamicCount(),
                  lives[i]->sink().dynamicCount());
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, ReplayEquivalence,
                         ::testing::Values("cholesky", "barnes", "fmm",
                                           "ocean", "water-nsquared",
                                           "raytrace"));

/** Same contract over fuzz programs with rwlocks/condvars/atomics. */
class ExtendedGrammarReplayEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ExtendedGrammarReplayEquivalence, EveryDetectorMatchesLiveRun)
{
    FuzzGenConfig gen;
    gen.maxThreads = 4;
    gen.maxPhases = 3;
    gen.numRwLocks = 2;
    gen.pRwLocked = 0.5;
    gen.pRwWriter = 0.5;
    gen.pCond = 0.5;
    gen.numAtomics = 2;
    gen.pAtomic = 0.2;
    Program prog = generateFuzzProgram(GetParam(), gen);

    const FuzzConfig cfg;
    FuzzBattery live = makeFuzzBattery(cfg);
    TraceRecorder recorder(prog);
    {
        System sys(fuzzSimConfig(prog), prog);
        for (RaceDetector *d : live.detectors())
            sys.addObserver(d);
        sys.addObserver(&recorder);
        sys.run();
        for (RaceDetector *d : live.detectors())
            d->finalize();
    }
    Trace trace = recorder.take();
    ASSERT_FALSE(trace.events.empty());

    FuzzBattery off = replayThroughBattery(trace, cfg);

    const std::vector<RaceDetector *> lives = live.detectors();
    const std::vector<RaceDetector *> offs = off.detectors();
    ASSERT_EQ(lives.size(), offs.size());
    for (std::size_t i = 0; i < lives.size(); ++i) {
        SCOPED_TRACE(lives[i]->name());
        EXPECT_EQ(reportKeys(offs[i]->sink()),
                  reportKeys(lives[i]->sink()));
        EXPECT_EQ(offs[i]->sink().dynamicCount(),
                  lives[i]->sink().dynamicCount());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendedGrammarReplayEquivalence,
                         ::testing::Values(11u, 23u, 47u, 91u));

} // namespace
} // namespace hard
