/**
 * @file
 * Unit tests for the simulated CMP: op execution, lock/barrier/
 * semaphore semantics, observer ordering, determinism, deadlock
 * detection.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "throw_test_util.hh"

namespace hard
{
namespace
{

/** Observer recording every event in arrival order. */
class Recorder : public AccessObserver
{
  public:
    struct Entry
    {
        char kind; // r/w/L/U/B/P/S/E
        ThreadId tid;
        Addr addr;
        Cycle at;
    };
    std::vector<Entry> log;

    void
    onRead(const MemEvent &ev) override
    {
        log.push_back({'r', ev.tid, ev.addr, ev.at});
    }
    void
    onWrite(const MemEvent &ev) override
    {
        log.push_back({'w', ev.tid, ev.addr, ev.at});
    }
    void
    onLockAcquire(const SyncEvent &ev) override
    {
        log.push_back({'L', ev.tid, ev.lock, ev.at});
    }
    void
    onLockRelease(const SyncEvent &ev) override
    {
        log.push_back({'U', ev.tid, ev.lock, ev.at});
    }
    void
    onBarrier(const BarrierEvent &ev) override
    {
        log.push_back({'B', invalidThread, ev.barrier, ev.at});
    }
    void
    onSemaPost(const SyncEvent &ev) override
    {
        log.push_back({'P', ev.tid, ev.lock, ev.at});
    }
    void
    onSemaWait(const SyncEvent &ev) override
    {
        log.push_back({'S', ev.tid, ev.lock, ev.at});
    }
    void
    onThreadEnd(ThreadId tid, Cycle at) override
    {
        log.push_back({'E', tid, 0, at});
    }
};

Program
makeProgram(unsigned threads)
{
    Program p;
    p.name = "test";
    p.threads.resize(threads);
    for (unsigned t = 0; t < threads; ++t)
        p.threads[t].tid = t;
    p.dataBase = 0;
    p.dataLimit = ~0ull;
    return p;
}

TEST(System, ExecutesOpsAndCountsAccesses)
{
    Program p = makeProgram(1);
    p.threads[0].ops = {opRead(0x100, 8, 0), opWrite(0x108, 8, 1),
                        opCompute(50)};
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    RunResult res = sys.run();
    EXPECT_EQ(res.dataReads, 1u);
    EXPECT_EQ(res.dataWrites, 1u);
    ASSERT_EQ(rec.log.size(), 3u); // r, w, E
    EXPECT_EQ(rec.log[0].kind, 'r');
    EXPECT_EQ(rec.log[1].kind, 'w');
    EXPECT_EQ(rec.log[2].kind, 'E');
    EXPECT_GT(res.totalCycles, 50u);
}

TEST(System, ComputeAdvancesTime)
{
    Program p = makeProgram(1);
    p.threads[0].ops = {opCompute(1000)};
    System sys(SimConfig{}, p);
    EXPECT_GE(sys.run().totalCycles, 1000u);
}

TEST(System, LockProvidesMutualExclusion)
{
    // Both threads do lock; write; unlock. The observer event order
    // must never interleave L(t1) ... L(t2) without U(t1) in between.
    Program p = makeProgram(2);
    const Addr lock = 0x1000;
    for (unsigned t = 0; t < 2; ++t) {
        for (int i = 0; i < 5; ++i) {
            p.threads[t].ops.push_back(opLock(lock, 0));
            p.threads[t].ops.push_back(opWrite(0x2000, 8, 1));
            p.threads[t].ops.push_back(opCompute(30));
            p.threads[t].ops.push_back(opUnlock(lock, 2));
        }
    }
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    sys.run();

    ThreadId holder = invalidThread;
    unsigned acquires = 0;
    for (const auto &e : rec.log) {
        if (e.kind == 'L') {
            ASSERT_EQ(holder, invalidThread)
                << "lock acquired while held";
            holder = e.tid;
            ++acquires;
        } else if (e.kind == 'U') {
            ASSERT_EQ(holder, e.tid);
            holder = invalidThread;
        } else if (e.kind == 'w') {
            ASSERT_EQ(holder, e.tid) << "write outside critical section";
        }
    }
    EXPECT_EQ(acquires, 10u);
}

TEST(System, ContendedLockBlocksAndEventuallyGrants)
{
    Program p = makeProgram(2);
    const Addr lock = 0x1000;
    // Thread 0 holds the lock across a long compute; thread 1 must
    // wait for it.
    p.threads[0].ops = {opLock(lock, 0), opCompute(5000),
                        opUnlock(lock, 0)};
    p.threads[1].ops = {opCompute(10), opLock(lock, 1),
                        opUnlock(lock, 1)};
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    sys.run();

    std::vector<char> order;
    for (const auto &e : rec.log)
        if (e.kind == 'L' || e.kind == 'U')
            order.push_back(e.kind == 'L' ? '0' + char(e.tid) : 'u');
    EXPECT_EQ(order, (std::vector<char>{'0', 'u', '1', 'u'}));
}

TEST(System, BarrierReleasesAllTogether)
{
    Program p = makeProgram(4);
    const Addr bar = 0x3000;
    for (unsigned t = 0; t < 4; ++t) {
        p.threads[t].ops = {opCompute(100 * (t + 1)),
                            opBarrier(bar, 0),
                            opWrite(0x4000 + 64 * t, 8, 1)};
    }
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    RunResult res = sys.run();
    EXPECT_EQ(res.barrierEpisodes, 1u);

    // The barrier event precedes every post-barrier write, and all
    // post-barrier writes happen at or after the release cycle.
    Cycle release = 0;
    bool saw_barrier = false;
    for (const auto &e : rec.log) {
        if (e.kind == 'B') {
            saw_barrier = true;
            release = e.at;
        }
        if (e.kind == 'w' && e.addr >= 0x4000) {
            ASSERT_TRUE(saw_barrier);
            ASSERT_GE(e.at, release);
        }
    }
}

TEST(System, BarrierEpisodesCount)
{
    Program p = makeProgram(2);
    const Addr bar = 0x3000;
    for (unsigned t = 0; t < 2; ++t)
        for (int i = 0; i < 3; ++i)
            p.threads[t].ops.push_back(opBarrier(bar, 0));
    System sys(SimConfig{}, p);
    EXPECT_EQ(sys.run().barrierEpisodes, 3u);
}

TEST(System, SemaphorePostBeforeWaitBanksToken)
{
    Program p = makeProgram(2);
    const Addr sema = 0x5000;
    p.threads[0].ops = {opSemaPost(sema, 0)};
    p.threads[1].ops = {opCompute(5000), opSemaWait(sema, 1)};
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    sys.run(); // must terminate (token banked)
    bool saw_wait = false;
    for (const auto &e : rec.log)
        saw_wait |= e.kind == 'S';
    EXPECT_TRUE(saw_wait);
}

TEST(System, SemaphoreWaitBlocksUntilPost)
{
    Program p = makeProgram(2);
    const Addr sema = 0x5000;
    p.threads[0].ops = {opCompute(5000), opSemaPost(sema, 0)};
    p.threads[1].ops = {opSemaWait(sema, 1), opWrite(0x6000, 8, 2)};
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    sys.run();
    Cycle post_at = 0, wait_at = 0, write_at = 0;
    for (const auto &e : rec.log) {
        if (e.kind == 'P')
            post_at = e.at;
        if (e.kind == 'S')
            wait_at = e.at;
        if (e.kind == 'w' && e.addr == 0x6000)
            write_at = e.at;
    }
    EXPECT_GE(post_at, 5000u);
    EXPECT_GT(wait_at, post_at);
    EXPECT_GT(write_at, wait_at);
}

TEST(System, DeterministicAcrossRuns)
{
    auto build = [] {
        Program p = makeProgram(4);
        for (unsigned t = 0; t < 4; ++t) {
            for (int i = 0; i < 50; ++i) {
                p.threads[t].ops.push_back(
                    opWrite(0x1000 + (i * 4 + t) % 16 * 32, 8, 0));
                p.threads[t].ops.push_back(opLock(0x8000, 1));
                p.threads[t].ops.push_back(opWrite(0x9000, 8, 2));
                p.threads[t].ops.push_back(opUnlock(0x8000, 1));
            }
        }
        return p;
    };
    Program p1 = build(), p2 = build();
    System s1(SimConfig{}, p1), s2(SimConfig{}, p2);
    Recorder r1, r2;
    s1.addObserver(&r1);
    s2.addObserver(&r2);
    EXPECT_EQ(s1.run().totalCycles, s2.run().totalCycles);
    ASSERT_EQ(r1.log.size(), r2.log.size());
    for (std::size_t i = 0; i < r1.log.size(); ++i) {
        EXPECT_EQ(r1.log[i].tid, r2.log[i].tid);
        EXPECT_EQ(r1.log[i].at, r2.log[i].at);
    }
}

TEST(System, ObserverEventsArriveInCycleOrderPerThread)
{
    Program p = makeProgram(2);
    for (unsigned t = 0; t < 2; ++t)
        for (int i = 0; i < 20; ++i)
            p.threads[t].ops.push_back(
                opRead(0x1000 + t * 0x1000 + i * 32, 8, 0));
    System sys(SimConfig{}, p);
    Recorder rec;
    sys.addObserver(&rec);
    sys.run();
    Cycle last[2] = {0, 0};
    for (const auto &e : rec.log) {
        if (e.kind != 'r')
            continue;
        ASSERT_GE(e.at, last[e.tid]);
        last[e.tid] = e.at;
    }
}

TEST(SystemDeath, BarrierDeadlockThrows)
{
    Program p = makeProgram(2);
    p.threads[0].ops = {opBarrier(0x3000, 0)};
    p.threads[1].ops = {}; // thread 1 exits; barrier can never fill
    System sys(SimConfig{}, p);
    HARD_EXPECT_THROW_MSG(sys.run(), DeadlockError, "deadlock");
}

TEST(SystemDeath, DeadlockErrorCarriesThreadSnapshots)
{
    Program p = makeProgram(2);
    p.threads[0].ops = {opBarrier(0x3000, 7)};
    p.threads[1].ops = {};
    System sys(SimConfig{}, p);
    try {
        sys.run();
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Deadlock);
        EXPECT_STREQ(e.outcome(), "deadlock");
        ASSERT_EQ(e.threads().size(), 2u);
        EXPECT_EQ(e.threads()[0].tid, 0u);
        EXPECT_EQ(e.threads()[0].status, "WaitBarrier");
        EXPECT_EQ(e.threads()[0].waitKind, "barrier");
        EXPECT_EQ(e.threads()[0].waitAddr, 0x3000u);
        EXPECT_EQ(e.threads()[0].waitSite, 7u);
        EXPECT_EQ(e.threads()[1].status, "Done");
    }
}

TEST(SystemDeath, UnlockWithoutLockThrows)
{
    Program p = makeProgram(1);
    p.threads[0].ops = {opUnlock(0x1000, 0)};
    System sys(SimConfig{}, p);
    HARD_EXPECT_THROW_MSG(sys.run(), WorkloadError, "does not hold");
}

TEST(SystemDeath, ExitHoldingLockThrows)
{
    Program p = makeProgram(1);
    p.threads[0].ops = {opLock(0x1000, 0)};
    System sys(SimConfig{}, p);
    HARD_EXPECT_THROW_MSG(sys.run(), WorkloadError, "exited holding");
}

TEST(SystemDeath, MoreThanEightThreadsThrows)
{
    Program p = makeProgram(9);
    HARD_EXPECT_THROW_MSG(System(SimConfig{}, p), ConfigError,
                          "at most 8");
}

/** Observer recording context switches. */
class SwitchRecorder : public AccessObserver
{
  public:
    struct Switch
    {
        CoreId core;
        ThreadId from, to;
        Cycle at;
    };
    std::vector<Switch> switches;

    void
    onContextSwitch(CoreId core, ThreadId from, ThreadId to,
                    Cycle at) override
    {
        switches.push_back({core, from, to, at});
    }
};

TEST(SystemOversubscribed, RunsMoreThreadsThanCores)
{
    // 6 threads on 2 cores: the machine must multiplex and finish.
    Program p = makeProgram(6);
    for (unsigned t = 0; t < 6; ++t) {
        for (int i = 0; i < 20; ++i) {
            p.threads[t].ops.push_back(
                opWrite(0x1000 + t * 0x100 + (i % 4) * 32, 8, 0));
            p.threads[t].ops.push_back(opCompute(100));
        }
    }
    SimConfig cfg;
    cfg.memsys.numCores = 2;
    System sys(cfg, p);
    SwitchRecorder rec;
    sys.addObserver(&rec);
    RunResult res = sys.run();
    EXPECT_EQ(res.dataWrites, 6u * 20);
    EXPECT_GT(res.contextSwitches, 0u);
    EXPECT_EQ(res.contextSwitches, rec.switches.size());
}

TEST(SystemOversubscribed, QuantumPreemptsLongRunners)
{
    // Two compute-heavy threads on one core: the quantum forces
    // alternation rather than run-to-completion.
    Program p = makeProgram(2);
    for (unsigned t = 0; t < 2; ++t)
        for (int i = 0; i < 40; ++i) {
            p.threads[t].ops.push_back(opCompute(5000));
            p.threads[t].ops.push_back(
                opWrite(0x1000 + t * 64, 8, 0));
        }
    SimConfig cfg;
    cfg.memsys.numCores = 1;
    cfg.quantumCycles = 20000;
    System sys(cfg, p);
    SwitchRecorder rec;
    sys.addObserver(&rec);
    RunResult res = sys.run();
    // 2 x 200K cycles of work with a 20K quantum: many alternations.
    EXPECT_GE(res.contextSwitches, 10u);
    // Switches alternate between the two threads on core 0.
    for (const auto &sw : rec.switches) {
        EXPECT_EQ(sw.core, 0u);
        EXPECT_NE(sw.from, sw.to);
    }
}

TEST(SystemOversubscribed, BlockedThreadYieldsTheCore)
{
    // Thread 0 holds the lock and computes; thread 1 (same core)
    // blocks on it; thread 2's work still proceeds on the core while
    // thread 1 waits.
    Program p = makeProgram(3);
    const Addr lock = 0x8000;
    p.threads[0].ops = {opLock(lock, 0), opCompute(30000),
                        opUnlock(lock, 0)};
    p.threads[1].ops = {opCompute(10), opLock(lock, 1),
                        opUnlock(lock, 1)};
    for (int i = 0; i < 50; ++i)
        p.threads[2].ops.push_back(opWrite(0x9000 + (i % 4) * 32, 8, 2));
    SimConfig cfg;
    cfg.memsys.numCores = 1;
    System sys(cfg, p);
    RunResult res = sys.run();
    EXPECT_EQ(res.dataWrites, 50u);
    EXPECT_EQ(res.lockAcquires, 2u);
}

TEST(SystemOversubscribed, NoSwitchesWhenOneThreadPerCore)
{
    Program p = makeProgram(4);
    for (unsigned t = 0; t < 4; ++t)
        p.threads[t].ops.push_back(opWrite(0x1000 + t * 64, 8, 0));
    System sys(SimConfig{}, p);
    EXPECT_EQ(sys.run().contextSwitches, 0u);
}

TEST(SystemOversubscribed, DeterministicUnderMultiplexing)
{
    auto build = [] {
        Program p = makeProgram(5);
        for (unsigned t = 0; t < 5; ++t) {
            for (int i = 0; i < 30; ++i) {
                p.threads[t].ops.push_back(opLock(0x8000, 0));
                p.threads[t].ops.push_back(opWrite(0x9000, 8, 1));
                p.threads[t].ops.push_back(opUnlock(0x8000, 0));
                p.threads[t].ops.push_back(opCompute(700));
            }
        }
        return p;
    };
    SimConfig cfg;
    cfg.memsys.numCores = 2;
    Program p1 = build(), p2 = build();
    System s1(cfg, p1), s2(cfg, p2);
    RunResult r1 = s1.run();
    RunResult r2 = s2.run();
    EXPECT_EQ(r1.totalCycles, r2.totalCycles);
    EXPECT_EQ(r1.contextSwitches, r2.contextSwitches);
}

TEST(System, HardTimingAddsLatency)
{
    auto build = [] {
        Program p = makeProgram(2);
        // Shared line ping-pong: both threads touch the same line.
        for (unsigned t = 0; t < 2; ++t)
            for (int i = 0; i < 100; ++i)
                p.threads[t].ops.push_back(opRead(0x1000, 8, 0));
        return p;
    };
    Program p1 = build(), p2 = build();
    SimConfig base, timed;
    timed.hardTiming.enabled = true;
    timed.hardTiming.sharedAccessExtraCycles = 5;
    System s1(base, p1), s2(timed, p2);
    EXPECT_GT(s2.run().totalCycles, s1.run().totalCycles);
}

} // namespace
} // namespace hard
