/**
 * @file
 * Tests for the JSON emitter: golden-format dumps, string escaping
 * (workload/detector names with hostile characters), and exact
 * round-tripping of DetectorScore / OverheadResult maps through
 * dump() + parse().
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/json.hh"
#include "harness/batch.hh"

namespace hard
{
namespace
{

TEST(Json, GoldenCompactDump)
{
    Json j = Json::object();
    j.set("name", "barnes");
    j.set("runs", 10u);
    j.set("delta", -3);
    j.set("pct", 2.5);
    j.set("ok", true);
    j.set("missing", Json());
    Json arr = Json::array();
    arr.push(1u).push(2u).push(3u);
    j.set("sites", std::move(arr));

    EXPECT_EQ(j.dump(),
              "{\"name\":\"barnes\",\"runs\":10,\"delta\":-3,"
              "\"pct\":2.5,\"ok\":true,\"missing\":null,"
              "\"sites\":[1,2,3]}");
}

TEST(Json, GoldenPrettyDump)
{
    Json j = Json::object();
    j.set("a", 1u);
    Json inner = Json::object();
    inner.set("b", 2u);
    j.set("o", std::move(inner));

    EXPECT_EQ(j.dump(2), "{\n  \"a\": 1,\n  \"o\": {\n    \"b\": 2\n  }\n}");
}

TEST(Json, EscapesHostileStrings)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("quo\"te"), "quo\\\"te");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape("new\nline"), "new\\nline");
    EXPECT_EQ(jsonEscape(std::string("ctl\x01") + "x"), "ctl\\u0001x");

    Json j(std::string("a\"b\\c\nd"));
    EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, EscapedStringsRoundTrip)
{
    const std::string hostile = "wl \"quoted\"\\slash\n\ttab\x02 end";
    Json obj = Json::object();
    obj.set(hostile, Json(hostile));
    Json back = Json::parse(obj.dump());
    ASSERT_TRUE(back.isObject());
    ASSERT_TRUE(back.has(hostile));
    EXPECT_EQ(back[hostile].asString(), hostile);
    EXPECT_EQ(back, obj);
}

TEST(Json, NumbersRoundTripExactly)
{
    Json j = Json::object();
    j.set("big", std::uint64_t{0xFFFFFFFFFFFFFFFFull});
    j.set("cycle", std::uint64_t{1} << 62);
    j.set("neg", std::int64_t{-1234567890123456789});
    j.set("pct", 0.1); // not exactly representable; %.17g round-trips
    j.set("zero", 0.0);

    Json back = Json::parse(j.dump());
    EXPECT_EQ(back["big"].asUint(), 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(back["cycle"].asUint(), std::uint64_t{1} << 62);
    EXPECT_EQ(back["neg"].asInt(), -1234567890123456789);
    EXPECT_EQ(back["pct"].asDouble(), 0.1);
    EXPECT_EQ(back["zero"].asDouble(), 0.0);
    EXPECT_EQ(back, j);
}

TEST(Json, ParseReportsErrors)
{
    std::string err;
    Json j = Json::parse("{\"a\": }", &err);
    EXPECT_TRUE(j.isNull());
    EXPECT_FALSE(err.empty());

    err.clear();
    Json trailing = Json::parse("[1,2,3] junk", &err);
    EXPECT_FALSE(err.empty());

    err.clear();
    Json ok = Json::parse(" [1, 2] ", &err);
    EXPECT_TRUE(err.empty());
    ASSERT_TRUE(ok.isArray());
    EXPECT_EQ(ok.size(), 2u);
}

TEST(JsonOutput, DetectorScoreMapRoundTrips)
{
    EffectivenessResult result;
    DetectorScore &hard = result["hard.default"];
    hard.bugsDetected = 9;
    hard.runsAttempted = 10;
    hard.falseAlarms = 7;
    hard.dynamicReports = 15324;
    // A hostile detector name must survive escaping.
    DetectorScore &odd = result["hb \"ideal\"\\v2"];
    odd.bugsDetected = 8;
    odd.runsAttempted = 10;
    odd.falseAlarms = 0;
    odd.dynamicReports = 0;

    Json j = toJson(result);
    Json back_json = Json::parse(j.dump(2));
    EXPECT_EQ(back_json, j);

    EffectivenessResult back = effectivenessFromJson(back_json);
    ASSERT_EQ(back.size(), result.size());
    for (const auto &[name, score] : result) {
        ASSERT_TRUE(back.count(name)) << name;
        EXPECT_EQ(back[name].bugsDetected, score.bugsDetected);
        EXPECT_EQ(back[name].runsAttempted, score.runsAttempted);
        EXPECT_EQ(back[name].falseAlarms, score.falseAlarms);
        EXPECT_EQ(back[name].dynamicReports, score.dynamicReports);
    }
}

TEST(JsonOutput, OverheadResultRoundTrips)
{
    OverheadResult oh;
    oh.baseCycles = 123456789012345ull;
    oh.hardCycles = 123464189012345ull;
    oh.overheadPct = 0.599;
    oh.metaBroadcasts = 421337;
    oh.dataBytes = 987654321;
    oh.metaBytes = 1234567;

    Json back_json = Json::parse(toJson(oh).dump());
    OverheadResult back = overheadFromJson(back_json);
    EXPECT_EQ(back.baseCycles, oh.baseCycles);
    EXPECT_EQ(back.hardCycles, oh.hardCycles);
    EXPECT_EQ(back.overheadPct, oh.overheadPct);
    EXPECT_EQ(back.metaBroadcasts, oh.metaBroadcasts);
    EXPECT_EQ(back.dataBytes, oh.dataBytes);
    EXPECT_EQ(back.metaBytes, oh.metaBytes);
}

TEST(JsonOutput, BatchDocumentShapeAndEscaping)
{
    BatchItemResult res;
    res.label = "wl \"weird\" name";
    res.workload = res.label;
    res.runs = 2;
    res.seed0 = 77;
    res.runDetail.resize(3);
    res.runDetail[0].index = 0;
    res.runDetail[0].injectionValid = true;
    res.runDetail[0].byDetector["hard"].detected = true;
    res.runDetail[0].byDetector["hard"].sites = {3, 5, 8};
    res.runDetail[0].byDetector["hard"].dynamicReports = 42;
    res.runDetail[1].index = 1;
    res.runDetail[2].index = 2;
    res.runDetail[2].raceFree = true;
    res.runDetail[2].byDetector["hard"].sites = {5};
    res.runDetail[2].byDetector["hard"].dynamicReports = 9;
    res.effectiveness = foldEffectiveness(res.runDetail);

    Json doc = batchJson({res});
    EXPECT_EQ(doc["schema"].asString(), "hard.batch.v2");
    ASSERT_EQ(doc["items"].size(), 1u);
    const Json &item = doc["items"].at(0);
    EXPECT_EQ(item["workload"].asString(), "wl \"weird\" name");
    EXPECT_EQ(item["runs"].asUint(), 2u);
    EXPECT_EQ(item["seed0"].asUint(), 77u);
    // All runs are healthy, so the v2 errors array is empty.
    ASSERT_TRUE(doc["errors"].isArray());
    EXPECT_EQ(doc["errors"].size(), 0u);

    const Json &eff = item["effectiveness"];
    ASSERT_EQ(eff["perRun"].size(), 3u);
    const Json &run0 = eff["perRun"].at(0);
    EXPECT_TRUE(run0["detectors"]["hard"]["detected"].asBool());
    ASSERT_EQ(run0["detectors"]["hard"]["sites"].size(), 3u);
    EXPECT_EQ(run0["detectors"]["hard"]["sites"].at(1).asUint(), 5u);
    // The race-free run has no "detected" member.
    EXPECT_FALSE(
        eff["perRun"].at(2)["detectors"]["hard"].has("detected"));
    // Aggregate: the valid injected run detected its bug.
    EXPECT_EQ(eff["aggregate"]["hard"]["bugsDetected"].asUint(), 1u);
    EXPECT_EQ(eff["aggregate"]["hard"]["runsAttempted"].asUint(), 1u);
    EXPECT_EQ(eff["aggregate"]["hard"]["falseAlarms"].asUint(), 1u);

    // The whole document survives a dump/parse cycle.
    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(JsonOutput, HealthyOverheadFlattensIntoTheItemWithOkOutcome)
{
    BatchItemResult res;
    res.label = "barnes";
    res.workload = "barnes";
    res.haveOverhead = true;
    res.overhead.baseCycles = 1000;
    res.overhead.hardCycles = 1040;
    res.overhead.overheadPct = 4.0;
    res.overhead.metaBroadcasts = 12;
    res.overhead.dataBytes = 2048;
    res.overhead.metaBytes = 96;

    Json doc = batchJson({res});
    const Json &oh = doc["items"].at(0)["overhead"];
    EXPECT_EQ(oh["outcome"].asString(), "ok");
    EXPECT_EQ(oh["baseCycles"].asUint(), 1000u);
    EXPECT_EQ(oh["hardCycles"].asUint(), 1040u);
    EXPECT_EQ(oh["overheadPct"].asDouble(), 4.0);
    EXPECT_EQ(oh["metaBytes"].asUint(), 96u);
    EXPECT_EQ(doc["errors"].size(), 0u);
    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(JsonOutput, FailedUnitsLandInTheErrorsArrayWithRepro)
{
    BatchItemResult res;
    res.label = "deadlock";
    res.workload = "deadlock";
    res.runs = 2;
    res.seed0 = 1000;
    res.reproBase = "hardsim --workload=deadlock --scale=0.5";
    res.runDetail.resize(3);
    res.runDetail[0].index = 0;
    res.runDetail[0].outcome = "deadlock";
    res.runDetail[0].errorType = "DeadlockError";
    res.runDetail[0].errorMessage = "system: deadlock at cycle 254";
    res.runDetail[1].index = 1;
    res.runDetail[1].outcome = "skipped"; // --max-failures cut-off
    res.runDetail[2].index = 2;
    res.runDetail[2].raceFree = true;
    res.effectiveness = foldEffectiveness(res.runDetail);
    res.overheadOutcome = "budget_exceeded";
    res.overheadErrorType = "CycleBudgetError";
    res.overheadErrorMessage = "exceeded maxCycles";

    Json doc = batchJson({res});
    const Json &per_run = doc["items"].at(0)["effectiveness"]["perRun"];
    EXPECT_EQ(per_run.at(0)["outcome"].asString(), "deadlock");
    EXPECT_EQ(per_run.at(0)["errorType"].asString(), "DeadlockError");
    EXPECT_EQ(per_run.at(1)["outcome"].asString(), "skipped");
    EXPECT_EQ(per_run.at(2)["outcome"].asString(), "ok");
    const Json &oh = doc["items"].at(0)["overhead"];
    EXPECT_EQ(oh["outcome"].asString(), "budget_exceeded");
    EXPECT_FALSE(oh.has("baseCycles"));

    // errors: the deadlocked run and the overhead unit, but NOT the
    // skipped run (it never executed; resume will run it).
    ASSERT_EQ(doc["errors"].size(), 2u);
    const Json &e0 = doc["errors"].at(0);
    EXPECT_EQ(e0["unit"].asUint(), 0u);
    EXPECT_EQ(e0["outcome"].asString(), "deadlock");
    EXPECT_EQ(e0["repro"].asString(),
              "hardsim --workload=deadlock --scale=0.5 --inject=1000");
    const Json &e1 = doc["errors"].at(1);
    EXPECT_EQ(e1["unit"].asString(), "overhead");
    EXPECT_EQ(e1["repro"].asString(),
              "hardsim --workload=deadlock --scale=0.5 --overhead");

    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(JsonOutput, EffectivenessRunRoundTripsThroughJournalPayload)
{
    EffectivenessRun run;
    run.index = 3;
    run.injectionValid = true;
    run.byDetector["hard"].detected = true;
    run.byDetector["hard"].sites = {2, 9};
    run.byDetector["hard"].dynamicReports = 17;

    EffectivenessRun back = effectivenessRunFromJson(toJson(run));
    EXPECT_EQ(back.index, 3u);
    EXPECT_TRUE(back.ok());
    EXPECT_TRUE(back.injectionValid);
    EXPECT_TRUE(back.byDetector["hard"].detected);
    EXPECT_EQ(back.byDetector["hard"].sites, run.byDetector["hard"].sites);
    EXPECT_EQ(back.byDetector["hard"].dynamicReports, 17u);
    EXPECT_EQ(toJson(back).dump(), toJson(run).dump());

    EffectivenessRun failed;
    failed.index = 1;
    failed.outcome = "deadlock";
    failed.errorType = "DeadlockError";
    failed.errorMessage = "stuck";
    EffectivenessRun fback = effectivenessRunFromJson(toJson(failed));
    EXPECT_FALSE(fback.ok());
    EXPECT_EQ(fback.outcome, "deadlock");
    EXPECT_EQ(fback.errorType, "DeadlockError");
    EXPECT_EQ(fback.errorMessage, "stuck");
}

TEST(JsonOutput, WriteJsonFileProducesParseableFile)
{
    Json j = Json::object();
    j.set("hello", "wor\"ld");
    j.set("n", 7u);

    std::string path = ::testing::TempDir() + "hard_json_test.json";
    writeJsonFile(path, j);

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(Json::parse(text), j);
    EXPECT_EQ(text.back(), '\n');
}

} // namespace
} // namespace hard
