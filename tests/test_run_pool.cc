/**
 * @file
 * Tests for the RunPool worker pool: deterministic index-ordered
 * merging, exception propagation, serial degeneration at jobs == 1,
 * empty-batch handling, and reuse across batches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "harness/run_pool.hh"

namespace hard
{
namespace
{

TEST(RunPool, MapMergesResultsInIndexOrder)
{
    RunPool pool(4);
    // Stagger task durations so completion order differs from index
    // order; the merged vector must still be index-ordered.
    std::vector<int> out = pool.map<int>(32, [](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((32 - i) * 50));
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 32u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i)) << "index " << i;
}

TEST(RunPool, AllTasksRunExactlyOnce)
{
    RunPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::atomic<int>> hits(100);
    pool.runIndexed(100, [&](std::size_t i) {
        sum += i;
        ++hits[i];
    });
    EXPECT_EQ(sum.load(), 99u * 100u / 2);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(RunPool, WorkerExceptionPropagatesToCaller)
{
    RunPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.runIndexed(16, [&](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            ++completed;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 7 failed");
    }
    // The batch drains fully before rethrowing: every other task ran.
    EXPECT_EQ(completed.load(), 15);
}

TEST(RunPool, LowestIndexExceptionWinsDeterministically)
{
    RunPool pool(4);
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            pool.runIndexed(24, [](std::size_t i) {
                if (i == 3 || i == 11 || i == 20)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 3");
        }
    }
}

TEST(RunPool, JobsOneRunsInlineInIndexOrder)
{
    RunPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    std::thread::id caller = std::this_thread::get_id();
    pool.runIndexed(10, [&](std::size_t i) {
        // Serial degeneration: no worker threads, caller executes.
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(RunPool, JobsOnePropagatesExceptionImmediately)
{
    RunPool pool(1);
    std::vector<std::size_t> ran;
    EXPECT_THROW(pool.runIndexed(8,
                                 [&](std::size_t i) {
                                     ran.push_back(i);
                                     if (i == 2)
                                         throw std::runtime_error("boom");
                                 }),
                 std::runtime_error);
    // Inline execution stops at the throwing task, like a plain loop.
    EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RunPool, EmptyBatchDoesNotDeadlock)
{
    RunPool pool(4);
    for (int i = 0; i < 10; ++i) {
        pool.runIndexed(0, [](std::size_t) {
            FAIL() << "task ran for an empty batch";
        });
        std::vector<int> out =
            pool.map<int>(0, [](std::size_t) { return 1; });
        EXPECT_TRUE(out.empty());
    }
}

TEST(RunPool, ReusableAcrossManyBatches)
{
    RunPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        pool.runIndexed(static_cast<std::size_t>(round),
                        [&](std::size_t) { ++count; });
        EXPECT_EQ(count.load(), round);
    }
}

TEST(RunPool, SingleTaskBatch)
{
    RunPool pool(8);
    std::atomic<int> count{0};
    pool.runIndexed(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++count;
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(RunPool, ZeroJobsSelectsHardwareDefault)
{
    RunPool pool(0);
    EXPECT_GE(pool.jobs(), 1u);
    EXPECT_EQ(pool.jobs(), RunPool::defaultJobs());
    std::atomic<int> count{0};
    pool.runIndexed(7, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 7);
}

TEST(RunPool, RunCollectKeysErrorsByIndexAndRunsEverything)
{
    RunPool pool(4);
    std::atomic<int> completed{0};
    std::vector<std::exception_ptr> errs =
        pool.runCollect(16, [&](std::size_t i) {
            if (i == 3 || i == 11)
                throw std::runtime_error("task " + std::to_string(i));
            ++completed;
        });
    ASSERT_EQ(errs.size(), 16u);
    // Every healthy task ran: failures are collected, not propagated.
    EXPECT_EQ(completed.load(), 14);
    for (std::size_t i = 0; i < errs.size(); ++i) {
        if (i == 3 || i == 11) {
            ASSERT_TRUE(errs[i]) << "index " << i;
            try {
                std::rethrow_exception(errs[i]);
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_FALSE(errs[i]) << "index " << i;
        }
    }
}

TEST(RunPool, RunCollectSerialRunsAllTasksDespiteFailures)
{
    // Unlike runIndexed at jobs == 1 (which stops at the first throw,
    // like a plain loop), runCollect must execute every task so a
    // keep-going batch sees every unit's outcome.
    RunPool pool(1);
    std::vector<std::size_t> ran;
    std::vector<std::exception_ptr> errs =
        pool.runCollect(6, [&](std::size_t i) {
            ran.push_back(i);
            if (i % 2 == 0)
                throw std::runtime_error("boom");
        });
    EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
    ASSERT_EQ(errs.size(), 6u);
    for (std::size_t i = 0; i < errs.size(); ++i)
        EXPECT_EQ(static_cast<bool>(errs[i]), i % 2 == 0) << i;
}

TEST(RunPool, RunCollectEmptyBatch)
{
    RunPool pool(4);
    std::vector<std::exception_ptr> errs =
        pool.runCollect(0, [](std::size_t) {
            FAIL() << "task ran for an empty batch";
        });
    EXPECT_TRUE(errs.empty());
}

TEST(RunPool, MoreWorkersThanTasks)
{
    RunPool pool(16);
    std::atomic<int> count{0};
    pool.runIndexed(3, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++count;
    });
    EXPECT_EQ(count.load(), 3);
}

} // namespace
} // namespace hard
