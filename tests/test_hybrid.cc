/**
 * @file
 * Tests for the hybrid lockset + happens-before detector (the §7
 * future work): it must keep lockset's interleaving-insensitive
 * detection (Figure 1 still caught) while pruning the false alarms
 * caused by hand-crafted (semaphore) synchronization.
 */

#include <gtest/gtest.h>

#include "core/hybrid.hh"
#include "detector_test_util.hh"
#include "detectors/happens_before.hh"

namespace hard
{
namespace
{

TEST(Hybrid, StillDetectsMissingLockRace)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    SiteId s_bad = b.site("bad");
    for (int i = 0; i < 4; ++i) {
        b.lock(0, l, s);
        b.write(0, x, 8, s);
        b.unlock(0, l, s);
        b.write(1, x, 8, s_bad);
        b.compute(1, 300);
    }
    Program p = b.finish();

    HybridDetector det("hybrid", HardConfig{});
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
}

TEST(Hybrid, Figure1RaceStillCaughtDespiteLockChains)
{
    // The hybrid prunes only via NON-lock ordering, so the Figure 1
    // pattern (ordered through lock L's release->acquire) must still
    // be reported — unlike a naive lockset&&happens-before AND.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr y = b.alloc("y", 8, 32);
    LockAddr l = b.allocLock("L");
    SiteId sx = b.site("x.unprotected");
    SiteId sy = b.site("y.cs");

    b.write(0, x, 8, sx);
    b.lock(0, l, sy);
    b.write(0, y, 8, sy);
    b.unlock(0, l, sy);

    b.compute(1, 5000);
    b.lock(1, l, sy);
    b.write(1, y, 8, sy);
    b.unlock(1, l, sy);
    b.write(1, x, 8, sx);
    Program p = b.finish();

    HybridDetector det("hybrid", HardConfig{});
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), sx));
}

TEST(Hybrid, PrunesSemaphoreOrderedHandoff)
{
    // Producer/consumer hand-off via a semaphore: plain HARD
    // false-alarms, the hybrid stays silent and counts the prune.
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        Addr sema = b.allocSema("sema");
        SiteId sw = b.site("producer.write");
        SiteId sr = b.site("consumer.rw");
        SiteId sp = b.site("post");
        SiteId swt = b.site("wait");
        b.write(0, x, 8, sw);
        b.write(0, x, 8, sw);
        b.semaPost(0, sema, sp);
        b.semaWait(1, sema, swt);
        b.read(1, x, 8, sr);
        b.write(1, x, 8, sr);
        return b.finish();
    };

    Program p1 = build();
    HardDetector plain("hard", HardConfig{});
    HybridDetector hybrid("hybrid", HardConfig{});
    runProgram(p1, {&plain, &hybrid});

    EXPECT_GT(plain.sink().distinctSiteCount(), 0u)
        << "plain lockset must false-alarm on the semaphore hand-off";
    EXPECT_EQ(hybrid.sink().distinctSiteCount(), 0u)
        << "the hybrid must prune the semaphore-ordered hand-off";
    EXPECT_GT(hybrid.prunedAlarms(), 0u);
}

TEST(Hybrid, DoesNotPruneGenuineRaceNextToSemaphore)
{
    // A semaphore exists but does NOT order the conflicting pair:
    // thread 1's write happens without waiting. Must still report.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr sema = b.allocSema("sema");
    SiteId sw = b.site("producer.write");
    SiteId sr = b.site("consumer.rw");
    SiteId sp = b.site("post");
    SiteId swt = b.site("wait");

    b.write(0, x, 8, sw);
    b.write(0, x, 8, sw);
    b.semaPost(0, sema, sp);
    // Thread 1 touches x BEFORE its wait: unordered conflict.
    b.compute(1, 300);
    b.write(1, x, 8, sr);
    b.semaWait(1, sema, swt);
    Program p = b.finish();

    HybridDetector det("hybrid", HardConfig{});
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
}

TEST(Hybrid, NeverReportsMoreThanPlainHard)
{
    // Property: on identical executions the hybrid's reports are a
    // subset of plain HARD's (it only ever prunes).
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed);
        WorkloadBuilder b("t", 4);
        Addr vars = b.alloc("vars", 32 * 32, 32);
        Addr sema = b.allocSema("s");
        LockAddr l = b.allocLock("l");
        SiteId site = b.site("rw");
        for (unsigned t = 0; t < 4; ++t) {
            for (int i = 0; i < 100; ++i) {
                Addr v = vars + rng.below(32) * 32;
                bool use_lock = rng.chance(0.5);
                if (use_lock)
                    b.lock(t, l, site);
                if (rng.chance(0.5))
                    b.read(t, v, 8, site);
                else
                    b.write(t, v, 8, site);
                if (use_lock)
                    b.unlock(t, l, site);
                if (t == 0 && i % 20 == 5)
                    b.semaPost(0, sema, site);
                if (t != 0 && i == 50)
                    b.semaWait(t, sema, site);
            }
        }
        // Give the waits enough posts to avoid deadlock.
        for (int i = 0; i < 8; ++i)
            b.semaPost(0, sema, site);
        Program p = b.finish();

        HardDetector plain("hard", HardConfig{});
        HybridDetector hybrid("hybrid", HardConfig{});
        runProgram(p, {&plain, &hybrid});
        EXPECT_LE(hybrid.sink().dynamicCount(),
                  plain.sink().dynamicCount())
            << "seed " << seed;
        for (SiteId s : hybrid.sink().sites())
            EXPECT_TRUE(plain.sink().sites().count(s)) << "seed " << seed;
    }
}

TEST(Hybrid, BarrierOrderingAlsoPrunes)
{
    // Figure 7 pattern: already pruned by the §3.5 reset, but the
    // hybrid prunes it even with the reset disabled, via the barrier
    // edge in the non-lock vector clocks.
    WorkloadBuilder b("t", 2);
    Addr arr = b.alloc("A", 64, 32);
    Addr bar = b.allocBarrier("bar");
    SiteId s1 = b.site("pre");
    SiteId s2 = b.site("post");
    SiteId sb = b.site("bar");
    for (unsigned i = 0; i < 8; ++i)
        b.write(0, arr + i * 8, 8, s1);
    b.barrierAll(bar, sb);
    for (unsigned i = 0; i < 8; ++i) {
        b.read(1, arr + i * 8, 8, s2);
        b.write(1, arr + i * 8, 8, s2);
    }
    Program p = b.finish();

    HardConfig cfg;
    cfg.barrierReset = false; // rely on the hybrid's VC pruning only
    HybridDetector det("hybrid", cfg);
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

} // namespace
} // namespace hard
