/**
 * @file
 * Trace-cache tests: key derivation stability (same inputs → same key,
 * any interleaving-relevant config change → a new key), cold-miss
 * record + warm-hit replay, corrupt/truncated entries evicted without
 * crashing, stale format versions treated as misses (re-record), the
 * committed on-disk layout fixture staying byte-stable, and N writers
 * racing on one key resolving cleanly through the atomic rename.
 *
 * The layout fixtures under tests/corpus/trace-cache are regenerated
 * by running this binary with HARD_REGEN_CACHE_FIXTURE=1 (see that
 * directory's README).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace.hh"
#include "trace/replayer.hh"
#include "trace/trace_cache.hh"

namespace hard
{
namespace
{

std::string
tmpDir(const std::string &leaf)
{
    const std::string dir = ::testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TraceEvent
ev(TraceKind kind, ThreadId tid, Addr addr, unsigned size, SiteId site,
   Cycle at)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.addr = addr;
    e.size = size;
    e.site = site;
    e.at = at;
    return e;
}

/**
 * The fixture trace/key pair: pure literals, independent of workloads
 * and SimConfig defaults, so the committed container bytes only change
 * when the serialization or container layout itself changes.
 */
TraceKey
fixtureKey()
{
    TraceKey k;
    k.add("traceVersion",
          static_cast<std::uint64_t>(traceFormatVersion()))
        .add("kind", "layout-fixture")
        .add("name", "v1");
    return k;
}

Trace
fixtureTrace()
{
    Trace t;
    t.siteNames = {"fixture.sync", "fixture.t0.write",
                   "fixture.t1.read"};
    t.events = {
        ev(TraceKind::LockAcquire, 0, 0x1000, 0, 0, 10),
        ev(TraceKind::Write, 0, 0x2000, 4, 1, 20),
        ev(TraceKind::LockRelease, 0, 0x1000, 0, 0, 30),
        ev(TraceKind::Read, 1, 0x2004, 4, 2, 40),
        ev(TraceKind::ThreadEnd, 0, 0, 0, 0, 50),
        ev(TraceKind::ThreadEnd, 1, 0, 0, 0, 60),
    };
    t.events[1].stateAfter = CState::Modified;
    t.events[3].stateAfter = CState::Shared;
    t.events[3].sharers = 2;
    return t;
}

void
expectSameTrace(const Trace &a, const Trace &b)
{
    EXPECT_EQ(serializeTrace(a), serializeTrace(b));
}

// ---------------------------------------------------------------------
// Key derivation

TEST(TraceKey, SameInputsSameKey)
{
    WorkloadParams wp;
    wp.scale = 0.25;
    const SimConfig sim;
    TraceKey a = makeRunKey("ocean", wp, sim, 1003);
    TraceKey b = makeRunKey("ocean", wp, sim, 1003);
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.digest().size(), 16u);
}

TEST(TraceKey, AnyInterleavingRelevantChangeYieldsANewKey)
{
    WorkloadParams wp;
    wp.scale = 0.25;
    const SimConfig sim;

    std::set<std::string> seen;
    seen.insert(makeRunKey("ocean", wp, sim, -1).digest());
    auto expectNew = [&](const TraceKey &k, const char *what) {
        EXPECT_TRUE(seen.insert(k.digest()).second)
            << what << " did not change the key";
    };

    expectNew(makeRunKey("barnes", wp, sim, -1), "workload name");
    expectNew(makeRunKey("ocean", wp, sim, 1000), "injection seed");
    expectNew(makeRunKey("ocean", wp, sim, 1001), "other injection seed");

    {
        WorkloadParams v = wp;
        v.numThreads = 8;
        expectNew(makeRunKey("ocean", v, sim, -1), "thread count");
    }
    {
        WorkloadParams v = wp;
        v.seed = 2;
        expectNew(makeRunKey("ocean", v, sim, -1), "workload seed");
    }
    {
        WorkloadParams v = wp;
        v.scale = 0.5;
        expectNew(makeRunKey("ocean", v, sim, -1), "scale");
    }

    // Every interleaving-relevant SimConfig field participates.
    auto simVariant = [&](void (*mutate)(SimConfig &), const char *what) {
        SimConfig v;
        mutate(v);
        expectNew(makeRunKey("ocean", wp, v, -1), what);
    };
    simVariant([](SimConfig &s) { s.memsys.numCores = 8; }, "cores");
    simVariant([](SimConfig &s) {
        s.memsys.protocol = CoherenceProtocol::MSI;
    }, "protocol");
    simVariant([](SimConfig &s) { s.memsys.l1.sizeBytes *= 2; },
               "L1 size");
    simVariant([](SimConfig &s) { s.memsys.l1.assoc *= 2; }, "L1 assoc");
    simVariant([](SimConfig &s) { s.memsys.l1.hitLatency += 1; },
               "L1 latency");
    simVariant([](SimConfig &s) { s.memsys.l2.sizeBytes *= 2; },
               "L2 size");
    simVariant([](SimConfig &s) { s.memsys.l2.hitLatency += 1; },
               "L2 latency");
    simVariant([](SimConfig &s) { s.memsys.memLatency += 50; },
               "memory latency");
    simVariant([](SimConfig &s) { s.memsys.bus.addressCycles += 1; },
               "bus address cycles");
    simVariant([](SimConfig &s) { s.memsys.bus.metaPayloadCycles += 1; },
               "bus metadata cycles");
    simVariant([](SimConfig &s) { s.spinPollInterval += 10; },
               "spin poll interval");
    simVariant([](SimConfig &s) { s.barrierReleaseCycles += 10; },
               "barrier release cycles");
    simVariant([](SimConfig &s) { s.maxCycles = 123456; },
               "cycle budget");
    simVariant([](SimConfig &s) { s.watchdogCycles += 1; }, "watchdog");
    simVariant([](SimConfig &s) { s.quantumCycles += 1; }, "quantum");
    simVariant([](SimConfig &s) { s.contextSwitchCycles += 1; },
               "context-switch cost");
}

TEST(TraceKey, FormatVersionIsPartOfEveryRunKey)
{
    WorkloadParams wp;
    const TraceKey k = makeRunKey("ocean", wp, SimConfig{}, -1);
    EXPECT_NE(k.canonical().find(
                  "traceVersion=" +
                  std::to_string(traceFormatVersion()) + ";"),
              std::string::npos)
        << k.canonical();
}

// ---------------------------------------------------------------------
// Cold miss → record → warm hit

TEST(TraceCacheRoundTrip, ColdMissRecordThenWarmHit)
{
    TraceCache cache(tmpDir("tcache_roundtrip"));
    const TraceKey key = fixtureKey();
    const Trace trace = fixtureTrace();

    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.store(key, trace);
    EXPECT_TRUE(std::filesystem::exists(cache.pathFor(key)));

    std::optional<Trace> warm = cache.lookup(key);
    ASSERT_TRUE(warm.has_value());
    expectSameTrace(*warm, trace);

    const TraceCache::Counters c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.evictedCorrupt, 0u);
    EXPECT_EQ(c.evictedStale, 0u);

    Json stats = cache.statsJson();
    EXPECT_EQ(stats["schema"].asString(), "hard.stats.v1");
    const Json &g = stats["groups"]["traceCache"]["counters"];
    EXPECT_EQ(g["hits"].asUint(), 1u);
    EXPECT_EQ(g["misses"].asUint(), 1u);
    EXPECT_EQ(g["stores"].asUint(), 1u);
    EXPECT_DOUBLE_EQ(
        stats["groups"]["traceCache"]["formulas"]["hitRate"].asDouble(),
        0.5);
}

TEST(TraceCacheRoundTrip, DistinctKeysGetDistinctEntries)
{
    TraceCache cache(tmpDir("tcache_distinct"));
    TraceKey a = fixtureKey();
    TraceKey b = fixtureKey();
    b.add("extra", std::uint64_t{1});

    Trace ta = fixtureTrace();
    Trace tb = fixtureTrace();
    tb.events.pop_back();

    cache.store(a, ta);
    cache.store(b, tb);
    EXPECT_NE(cache.pathFor(a), cache.pathFor(b));

    std::optional<Trace> ga = cache.lookup(a);
    std::optional<Trace> gb = cache.lookup(b);
    ASSERT_TRUE(ga && gb);
    EXPECT_EQ(ga->events.size(), ta.events.size());
    EXPECT_EQ(gb->events.size(), tb.events.size());
}

// ---------------------------------------------------------------------
// Integrity: corrupt and truncated entries are evicted, never fatal

TEST(TraceCacheIntegrity, TruncatedEntryIsEvictedAndReRecorded)
{
    TraceCache cache(tmpDir("tcache_trunc"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    const std::string path = cache.pathFor(key);
    std::string bytes = readFileBytes(path);
    ASSERT_GT(bytes.size(), 16u);
    writeFileBytes(path, bytes.substr(0, bytes.size() / 2));

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_FALSE(std::filesystem::exists(path)) << "not evicted";
    EXPECT_EQ(cache.counters().evictedCorrupt, 1u);
    EXPECT_EQ(cache.counters().misses, 1u);

    // The slot is usable again: re-record, then hit.
    cache.store(key, fixtureTrace());
    EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(TraceCacheIntegrity, FlippedPayloadByteFailsTheChecksum)
{
    TraceCache cache(tmpDir("tcache_flip"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    const std::string path = cache.pathFor(key);
    std::string bytes = readFileBytes(path);
    // Flip one byte in the payload region (well past the header and
    // canonical key, well before the trailing checksum).
    bytes[bytes.size() - 16] ^= 0x40;
    writeFileBytes(path, bytes);

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().evictedCorrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TraceCacheIntegrity, GarbageFileIsEvictedWithoutCrashing)
{
    TraceCache cache(tmpDir("tcache_garbage"));
    const TraceKey key = fixtureKey();
    writeFileBytes(cache.pathFor(key), "definitely not a container");
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().evictedCorrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(cache.pathFor(key)));
}

TEST(TraceCacheIntegrity, EmbeddedKeyMismatchCountsAsCollision)
{
    TraceCache cache(tmpDir("tcache_collide"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    // Present the same file under a different key (simulating a digest
    // collision): the entry is intact, but it is not ours.
    TraceKey other = fixtureKey();
    other.add("other", std::uint64_t{7});
    std::filesystem::copy_file(cache.pathFor(key), cache.pathFor(other));
    EXPECT_FALSE(cache.lookup(other).has_value());
    EXPECT_EQ(cache.counters().collisions, 1u);
}

// ---------------------------------------------------------------------
// Streaming warm path: replayCached() dispatches exactly what
// replayTrace(lookup()) would, and never dispatches from a bad entry

/** Observer that logs every callback it receives, in order. */
struct EventLog final : AccessObserver
{
    std::vector<std::string> lines;

    void add(const char *what, std::uint64_t a, std::uint64_t b,
             std::uint64_t c)
    {
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s %llu %llu %llu", what,
                      static_cast<unsigned long long>(a),
                      static_cast<unsigned long long>(b),
                      static_cast<unsigned long long>(c));
        lines.push_back(buf);
    }

    void onRead(const MemEvent &ev) override
    {
        add("read", ev.tid, ev.addr, ev.at);
    }
    void onWrite(const MemEvent &ev) override
    {
        add("write", ev.tid, ev.addr, ev.at);
    }
    void onLockAcquire(const SyncEvent &ev) override
    {
        add("acq", ev.tid, ev.lock, ev.at);
    }
    void onLockRelease(const SyncEvent &ev) override
    {
        add("rel", ev.tid, ev.lock, ev.at);
    }
    void onThreadEnd(ThreadId tid, Cycle at) override
    {
        add("end", tid, 0, at);
    }
};

TEST(TraceCacheStreaming, StreamedReplayMatchesLookupReplay)
{
    TraceCache cache(tmpDir("tcache_stream"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    EventLog via_lookup;
    std::optional<Trace> cached = cache.lookup(key);
    ASSERT_TRUE(cached.has_value());
    replayTrace(*cached, {&via_lookup});

    EventLog via_stream;
    std::optional<std::size_t> n =
        cache.replayCached(key, {&via_stream});
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, fixtureTrace().events.size());
    EXPECT_EQ(via_stream.lines, via_lookup.lines);
    EXPECT_EQ(cache.counters().hits, 2u);
}

TEST(TraceCacheStreaming, MissOnAbsentKeyDispatchesNothing)
{
    TraceCache cache(tmpDir("tcache_stream_miss"));
    EventLog log;
    EXPECT_FALSE(cache.replayCached(fixtureKey(), {&log}).has_value());
    EXPECT_TRUE(log.lines.empty());
    EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(TraceCacheStreaming, CorruptEntryIsEvictedBeforeAnyDispatch)
{
    TraceCache cache(tmpDir("tcache_stream_corrupt"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    const std::string path = cache.pathFor(key);
    std::string bytes = readFileBytes(path);
    bytes[bytes.size() - 16] ^= 0x40;
    writeFileBytes(path, bytes);

    // A corrupt tail must never leave the battery half-replayed:
    // validation completes before the first event is dispatched.
    EventLog log;
    EXPECT_FALSE(cache.replayCached(key, {&log}).has_value());
    EXPECT_TRUE(log.lines.empty());
    EXPECT_EQ(cache.counters().evictedCorrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TraceCacheStreaming, StaleContainerIsAMissThenReRecord)
{
    TraceCache cache(tmpDir("tcache_stream_stale"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    const std::string path = cache.pathFor(key);
    std::string bytes = readFileBytes(path);
    bytes[8] = 1; // a container-v1 entry is stale
    writeFileBytes(path, bytes);

    EventLog log;
    EXPECT_FALSE(cache.replayCached(key, {&log}).has_value());
    EXPECT_TRUE(log.lines.empty());
    EXPECT_EQ(cache.counters().evictedStale, 1u);

    cache.store(key, fixtureTrace());
    EXPECT_TRUE(cache.replayCached(key, {&log}).has_value());
    EXPECT_FALSE(log.lines.empty());
}

// ---------------------------------------------------------------------
// Versioning: bumped format versions are misses, not crashes

TEST(TraceCacheVersioning, BumpedTraceVersionFieldIsStaleMiss)
{
    TraceCache cache(tmpDir("tcache_stale"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    // Container layout: magic(8) + u32 containerVersion + u32
    // traceVersion. Bump the embedded trace format version.
    const std::string path = cache.pathFor(key);
    std::string bytes = readFileBytes(path);
    bytes[12] = static_cast<char>(traceFormatVersion() + 1);
    writeFileBytes(path, bytes);

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().evictedStale, 1u);
    EXPECT_EQ(cache.counters().evictedCorrupt, 0u);
    EXPECT_FALSE(std::filesystem::exists(path));

    // Re-record restores service under the current version.
    cache.store(key, fixtureTrace());
    EXPECT_TRUE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(TraceCacheVersioning, BumpedContainerVersionIsStaleMiss)
{
    TraceCache cache(tmpDir("tcache_stale_container"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());

    const std::string path = cache.pathFor(key);
    std::string bytes = readFileBytes(path);
    bytes[8] = 1; // u32 container version (little-endian low byte):
                  // a v1 entry (serial-FNV checksum era) is stale
    writeFileBytes(path, bytes);

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().evictedStale, 1u);
}

// ---------------------------------------------------------------------
// Committed layout fixtures (tests/corpus/trace-cache)

#ifdef HARD_CACHE_FIXTURE_DIR

std::string
fixturePath(const char *name)
{
    return std::string(HARD_CACHE_FIXTURE_DIR) + "/" + name;
}

/** Build the stale-version fixture bytes from the good container. */
std::string
staleFixtureBytes(std::string bytes)
{
    bytes[12] = static_cast<char>(traceFormatVersion() + 1);
    return bytes;
}

TEST(TraceCacheFixture, CommittedContainerBytesAreStable)
{
    TraceCache cache(tmpDir("tcache_fixture_gen"));
    const TraceKey key = fixtureKey();
    cache.store(key, fixtureTrace());
    const std::string produced = readFileBytes(cache.pathFor(key));

    if (std::getenv("HARD_REGEN_CACHE_FIXTURE") != nullptr) {
        writeFileBytes(fixturePath("layout-v2.tcache"), produced);
        writeFileBytes(fixturePath("layout-v2-stale.tcache"),
                       staleFixtureBytes(produced));
        GTEST_SKIP() << "fixtures regenerated";
    }

    EXPECT_EQ(produced, readFileBytes(fixturePath("layout-v2.tcache")))
        << "on-disk cache layout changed; bump the container/trace "
           "format version and regenerate the fixture (see "
           "tests/corpus/trace-cache/README.md)";
}

TEST(TraceCacheFixture, CommittedFixtureLoadsFromACopiedCache)
{
    if (std::getenv("HARD_REGEN_CACHE_FIXTURE") != nullptr)
        GTEST_SKIP();
    // Copy into a scratch cache first: a failed load evicts, and the
    // committed fixture must never be deleted by a test run.
    TraceCache cache(tmpDir("tcache_fixture_load"));
    const TraceKey key = fixtureKey();
    std::filesystem::copy_file(fixturePath("layout-v2.tcache"),
                               cache.pathFor(key));
    std::optional<Trace> got = cache.lookup(key);
    ASSERT_TRUE(got.has_value());
    expectSameTrace(*got, fixtureTrace());
}

TEST(TraceCacheFixture, CommittedStaleFixtureIsMissThenReRecord)
{
    if (std::getenv("HARD_REGEN_CACHE_FIXTURE") != nullptr)
        GTEST_SKIP();
    TraceCache cache(tmpDir("tcache_fixture_stale"));
    const TraceKey key = fixtureKey();
    std::filesystem::copy_file(fixturePath("layout-v2-stale.tcache"),
                               cache.pathFor(key));
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().evictedStale, 1u);

    cache.store(key, fixtureTrace());
    std::optional<Trace> got = cache.lookup(key);
    ASSERT_TRUE(got.has_value());
    expectSameTrace(*got, fixtureTrace());
}

#endif // HARD_CACHE_FIXTURE_DIR

// ---------------------------------------------------------------------
// Concurrency: racing writers and readers on one key

TEST(TraceCacheConcurrency, RacingWritersAndReadersNeverSeeTornFiles)
{
    const std::string dir = tmpDir("tcache_race");
    const TraceKey key = fixtureKey();
    const Trace trace = fixtureTrace();

    // Writers share one cache (as --jobs workers share one); readers
    // use their own instance so their counters are isolated.
    TraceCache writers(dir);
    TraceCache readers(dir);

    constexpr unsigned kWriters = 4;
    constexpr unsigned kStoresPerWriter = 25;
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> readerHits{0};

    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kWriters; ++w)
        threads.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            for (unsigned i = 0; i < kStoresPerWriter; ++i)
                writers.store(key, trace);
        });
    for (unsigned r = 0; r < 2; ++r)
        threads.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            for (unsigned i = 0; i < 50; ++i) {
                std::optional<Trace> got = readers.lookup(key);
                if (got) {
                    ++readerHits;
                    EXPECT_EQ(serializeTrace(*got),
                              serializeTrace(trace));
                }
            }
        });
    go.store(true);
    for (std::thread &t : threads)
        t.join();

    // Atomic rename: a reader either misses (entry not yet published)
    // or sees a complete, intact entry — never corruption.
    EXPECT_EQ(readers.counters().evictedCorrupt, 0u);
    EXPECT_EQ(writers.counters().stores, kWriters * kStoresPerWriter);

    std::optional<Trace> finalGot = readers.lookup(key);
    ASSERT_TRUE(finalGot.has_value());
    expectSameTrace(*finalGot, trace);

    // No temp files left behind.
    unsigned files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(TraceCache, OrphanTempFilesSweptOnOpen)
{
    // A writer killed between the temp write and the publishing
    // rename (crash, SIGKILL, power loss) leaves ".tmp.*" litter; the
    // next open sweeps it and counts the sweep separately from entry
    // evictions.
    const std::string dir = tmpDir("tcache_orphan");
    {
        TraceCache seedCache(dir);
        seedCache.store(fixtureKey(), fixtureTrace());
    }
    const std::string orphanA = dir + "/.tmp.deadbeef.12345.0";
    const std::string orphanB = dir + "/.tmp.deadbeef.12345.1";
    writeFileBytes(orphanA, "torn partial container bytes");
    writeFileBytes(orphanB, "");

    // TTL 0 = sweep regardless of age (tests/offline maintenance).
    TraceCache cache(dir, /*orphanTtlSeconds=*/0);
    EXPECT_FALSE(std::filesystem::exists(orphanA));
    EXPECT_FALSE(std::filesystem::exists(orphanB));
    EXPECT_EQ(cache.counters().evictedOrphan, 2u);

    // The published entry survives the sweep.
    std::optional<Trace> got = cache.lookup(fixtureKey());
    ASSERT_TRUE(got.has_value());
    expectSameTrace(*got, fixtureTrace());

    // A long TTL leaves fresh temp files alone: they may belong to a
    // live writer racing this open.
    writeFileBytes(orphanA, "live writer in flight");
    TraceCache cautious(dir, /*orphanTtlSeconds=*/3600);
    EXPECT_TRUE(std::filesystem::exists(orphanA));
    EXPECT_EQ(cautious.counters().evictedOrphan, 0u);
}

} // namespace
} // namespace hard
