/**
 * @file
 * Tests for fault-tolerant batches: keep-going failure containment,
 * --max-failures skipping, the per-run journal, and the headline
 * resume guarantee — a sweep killed mid-flight and resumed produces a
 * batch JSON byte-identical to an uninterrupted run at any job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/error.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"
#include "throw_test_util.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

/** Two healthy items, as a bench sweep would build them. */
std::vector<BatchItem>
healthyItems()
{
    std::vector<BatchItem> items;
    for (const char *app : {"barnes", "water-nsquared"}) {
        BatchItem item;
        item.workload = app;
        item.wp = tinyParams();
        item.sim = defaultSimConfig();
        item.factory = table2Detectors();
        item.runs = 2;
        item.seed0 = 700;
        items.push_back(std::move(item));
    }
    return items;
}

const char *const kSignature = "apps=barnes,water-nsquared;runs=2;"
                               "seed0=700;--scale=0.04";

std::string
tempJournalPath(const char *name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

TEST(BatchResume, KilledSweepResumesToByteIdenticalJson)
{
    // Reference: the uninterrupted sweep, at two worker counts. The
    // v2 document carries no worker-dependent fields, so the dumps
    // must already be byte-identical across --jobs.
    RunPool pool4(4);
    std::string uninterrupted =
        batchJson(runBatch(healthyItems(), pool4)).dump(2);
    {
        RunPool pool1(1);
        EXPECT_EQ(batchJson(runBatch(healthyItems(), pool1)).dump(2),
                  uninterrupted);
    }

    // Interrupted sweep: the unit-start hook throws once a few units
    // have started, outside the containment — exactly like the
    // process dying. Completed units are already journaled.
    const std::string path =
        tempJournalPath("hard_resume_kill.journal.jsonl");
    {
        BatchJournal journal(path, kSignature);
        std::atomic<unsigned> started{0};
        BatchOptions opts;
        opts.journal = &journal;
        opts.unitStartHook = [&](std::size_t, std::int64_t) {
            if (++started > 3)
                throw std::runtime_error("simulated crash");
        };
        EXPECT_THROW(runBatch(healthyItems(), pool4, opts),
                     std::runtime_error);
    }

    // Resume: restore the journaled units, run only the rest, and the
    // final document is byte-identical to the uninterrupted sweep.
    JournalEntries restored = loadJournal(path, kSignature);
    EXPECT_GE(restored.size(), 1u);
    EXPECT_LT(restored.size(), 6u); // something must be left to re-run
    {
        BatchJournal journal(path, kSignature, /*resume=*/true);
        BatchOptions opts;
        opts.journal = &journal;
        opts.restored = &restored;
        std::string resumed =
            batchJson(runBatch(healthyItems(), pool4, opts)).dump(2);
        EXPECT_EQ(resumed, uninterrupted);
    }

    // After the resumed sweep the journal holds every unit, so a
    // second resume restores everything and re-runs nothing.
    JournalEntries full = loadJournal(path, kSignature);
    EXPECT_EQ(full.size(), 6u); // 2 items x (2 injected + race-free)
    {
        BatchOptions opts;
        opts.restored = &full;
        opts.unitStartHook = [](std::size_t, std::int64_t) {
            FAIL() << "fully-journaled sweep must not re-run units";
        };
        std::string replayed =
            batchJson(runBatch(healthyItems(), pool4, opts)).dump(2);
        EXPECT_EQ(replayed, uninterrupted);
    }
    std::remove(path.c_str());
}

TEST(BatchResume, KeepGoingContainsADeadlockedItem)
{
    // One deliberately-hanging item next to a healthy one: with
    // keep-going the sweep completes, the hang is recorded as a
    // "deadlock" outcome with a repro command, and the healthy item's
    // scores are exactly what a solo run produces.
    std::vector<BatchItem> items = healthyItems();
    BatchItem bad;
    bad.workload = "deadlock";
    bad.wp = tinyParams();
    bad.sim = defaultSimConfig();
    bad.factory = table2Detectors();
    bad.runs = 1;
    bad.seed0 = 700;
    bad.reproBase = "hardsim --workload=deadlock --scale=0.04";
    items.insert(items.begin(), std::move(bad));

    RunPool pool(4);
    BatchOptions opts;
    opts.keepGoing = true;
    std::vector<BatchItemResult> results = runBatch(items, pool, opts);
    ASSERT_EQ(results.size(), 3u);

    // The race-free run of the deadlock item actually executes the
    // program and hits the structural deadlock.
    const EffectivenessRun &hung = results[0].runDetail.back();
    EXPECT_EQ(hung.outcome, "deadlock");
    EXPECT_EQ(hung.errorType, "DeadlockError");
    EXPECT_NE(hung.errorMessage.find("deadlock"), std::string::npos);

    // Healthy neighbours are untouched by the contained failure.
    RunPool solo(1);
    std::vector<BatchItemResult> reference =
        runBatch(healthyItems(), solo);
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(toJson(results[i + 1].effectiveness).dump(),
                  toJson(reference[i].effectiveness).dump());

    // The v2 document lists the failure with its repro command.
    Json doc = batchJson(results);
    ASSERT_GE(doc["errors"].size(), 1u);
    bool found = false;
    for (std::size_t i = 0; i < doc["errors"].size(); ++i) {
        const Json &e = doc["errors"].at(i);
        if (e["outcome"].asString() != "deadlock")
            continue;
        found = true;
        EXPECT_EQ(e["errorType"].asString(), "DeadlockError");
        EXPECT_NE(e["repro"].asString().find("--workload=deadlock"),
                  std::string::npos);
    }
    EXPECT_TRUE(found);
}

TEST(BatchResume, MaxFailuresSkipsLaterUnitsAndLeavesThemUnjournaled)
{
    // Item 0 cannot even build (unknown workload), so every one of
    // its runs fails during the shared-map phase — exceeding the
    // failure budget before any healthy unit starts.
    std::vector<BatchItem> items;
    BatchItem broken;
    broken.workload = "no-such-workload";
    broken.factory = table2Detectors();
    broken.runs = 2;
    items.push_back(std::move(broken));
    items.push_back(healthyItems()[0]);

    const std::string path =
        tempJournalPath("hard_resume_skip.journal.jsonl");
    RunPool pool(2);
    std::vector<BatchItemResult> results;
    {
        BatchJournal journal(path, kSignature);
        BatchOptions opts;
        opts.keepGoing = true;
        opts.maxFailures = 1;
        opts.journal = &journal;
        results = runBatch(items, pool, opts);
    }

    for (const EffectivenessRun &run : results[0].runDetail) {
        EXPECT_EQ(run.outcome, "failed");
        EXPECT_EQ(run.errorType, "ConfigError");
        EXPECT_NE(run.errorMessage.find("unknown workload"),
                  std::string::npos);
    }
    for (const EffectivenessRun &run : results[1].runDetail)
        EXPECT_EQ(run.outcome, "skipped");

    // Failed units are journaled (deterministic: a restore reproduces
    // them); skipped units are not, so a resume re-runs them.
    JournalEntries entries = loadJournal(path, kSignature);
    EXPECT_EQ(entries.size(), results[0].runDetail.size());
    for (const auto &[key, payload] : entries)
        EXPECT_EQ(key.first, 0u);

    // Skipped units never reach the errors array: they carry no
    // failure, only "not executed".
    Json doc = batchJson(results);
    for (std::size_t i = 0; i < doc["errors"].size(); ++i)
        EXPECT_NE(doc["errors"].at(i)["outcome"].asString(), "skipped");
    std::remove(path.c_str());
}

TEST(BatchResume, OverheadUnitsJournalAndRestoreExactly)
{
    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.effectiveness = false;
    item.overhead = true;

    const std::string path =
        tempJournalPath("hard_resume_overhead.journal.jsonl");
    RunPool pool(2);
    std::string measured;
    {
        BatchJournal journal(path, kSignature);
        BatchOptions opts;
        opts.journal = &journal;
        measured = batchJson(runBatch({item}, pool, opts)).dump(2);
    }

    // Restore-only replay: the overhead numbers round-trip through
    // the journal payload to a byte-identical document.
    JournalEntries restored = loadJournal(path, kSignature);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_TRUE(restored.count({0, -1}));
    BatchOptions opts;
    opts.restored = &restored;
    opts.unitStartHook = [](std::size_t, std::int64_t) {
        FAIL() << "restored overhead unit must not re-run";
    };
    EXPECT_EQ(batchJson(runBatch({item}, pool, opts)).dump(2), measured);
    std::remove(path.c_str());
}

TEST(BatchResume, JournalRejectsSignatureMismatch)
{
    const std::string path =
        tempJournalPath("hard_resume_sig.journal.jsonl");
    {
        BatchJournal journal(path, "apps=barnes;runs=2");
        journal.append({0, 0}, Json::object());
    }
    HARD_EXPECT_THROW_MSG(loadJournal(path, "apps=barnes;runs=99"),
                          ConfigError, "signature");
    EXPECT_NO_THROW(loadJournal(path, "apps=barnes;runs=2"));
    std::remove(path.c_str());
}

TEST(BatchResume, JournalToleratesATornTrailingLine)
{
    const std::string path =
        tempJournalPath("hard_resume_torn.journal.jsonl");
    {
        BatchJournal journal(path, kSignature);
        Json payload = Json::object();
        payload.set("index", 0u);
        journal.append({0, 0}, payload);
        journal.append({1, -1}, payload);
    }
    // Simulate dying mid-write: an unterminated half-record.
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"item\":1,\"run\":0,\"payl", f);
    std::fclose(f);

    JournalEntries entries = loadJournal(path, kSignature);
    EXPECT_EQ(entries.size(), 2u);
    EXPECT_TRUE(entries.count({0, 0}));
    EXPECT_TRUE(entries.count({1, -1}));
    std::remove(path.c_str());
}

TEST(BatchResume, JournalSkipsATornMiddleRecord)
{
    // A record torn in the *middle* of the file (crash during a
    // partial flush, later appends landed after it) is skipped with a
    // warning; every intact neighbour still restores.
    const std::string path =
        tempJournalPath("hard_resume_torn_mid.journal.jsonl");
    {
        BatchJournal journal(path, kSignature);
        Json payload = Json::object();
        payload.set("index", 0u);
        journal.append({0, 0}, payload);
    }
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"item\":0,\"run\":1,\"payl\n", f);       // torn JSON
    std::fputs("{\"item\":0,\"run\":2}\n", f);             // no payload
    std::fclose(f);
    {
        BatchJournal journal(path, kSignature, /*resume=*/true);
        Json payload = Json::object();
        payload.set("index", 3u);
        journal.append({0, 3}, payload);
    }

    JournalEntries entries = loadJournal(path, kSignature);
    EXPECT_EQ(entries.size(), 2u);
    EXPECT_TRUE(entries.count({0, 0}));
    EXPECT_TRUE(entries.count({0, 3}));
    std::remove(path.c_str());
}

TEST(BatchResume, JournalPathPairsWithTheJsonOutput)
{
    EXPECT_EQ(journalPathFor("results/sweep.json"),
              "results/sweep.journal.jsonl");
    EXPECT_EQ(journalPathFor("sweep"), "sweep.journal.jsonl");
}

TEST(BatchResume, MissingJournalFileThrowsConfigError)
{
    HARD_EXPECT_THROW_MSG(
        loadJournal(::testing::TempDir() + "hard_no_such.journal.jsonl",
                    kSignature),
        ConfigError, "journal");
}

} // namespace
} // namespace hard
