/**
 * @file
 * Coverage of the small printable-name and formatting helpers (these
 * feed logs, stats and tables; a missing enum case would silently
 * print "?").
 */

#include <gtest/gtest.h>

#include "coherence/memsys.hh"
#include "common/logging.hh"
#include "cpu/op.hh"

namespace hard
{
namespace
{

TEST(Names, EveryOpTypeHasAName)
{
    for (OpType t :
         {OpType::Read, OpType::Write, OpType::Compute, OpType::Lock,
          OpType::Unlock, OpType::Barrier, OpType::SemaPost,
          OpType::SemaWait, OpType::End}) {
        EXPECT_STRNE(opName(t), "?");
    }
    EXPECT_STREQ(opName(OpType::Read), "Read");
    EXPECT_STREQ(opName(OpType::SemaWait), "SemaWait");
}

TEST(Names, EveryTxnTypeHasAName)
{
    for (TxnType t : {TxnType::BusRd, TxnType::BusRdX, TxnType::BusUpgr,
                      TxnType::Writeback, TxnType::MetaBroadcast}) {
        EXPECT_STRNE(txnName(t), "?");
    }
    EXPECT_STREQ(txnName(TxnType::MetaBroadcast), "MetaBroadcast");
}

TEST(Names, EveryCStateHasAName)
{
    EXPECT_STREQ(cstateName(CState::Invalid), "I");
    EXPECT_STREQ(cstateName(CState::Shared), "S");
    EXPECT_STREQ(cstateName(CState::Exclusive), "E");
    EXPECT_STREQ(cstateName(CState::Modified), "M");
}

TEST(Names, EveryAccessSourceHasAName)
{
    for (AccessSource s : {AccessSource::L1, AccessSource::OtherL1,
                           AccessSource::L2, AccessSource::Memory}) {
        EXPECT_STRNE(accessSourceName(s), "?");
    }
}

TEST(Names, CStatePermissions)
{
    EXPECT_FALSE(canRead(CState::Invalid));
    EXPECT_TRUE(canRead(CState::Shared));
    EXPECT_FALSE(canWrite(CState::Shared));
    EXPECT_TRUE(canWrite(CState::Exclusive));
    EXPECT_TRUE(canWrite(CState::Modified));
}

TEST(Logging, QuietFlagRoundTrips)
{
    bool was = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("suppressed warning %d", 1);   // must not crash
    inform("suppressed info %s", "x");
    setQuiet(was);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

} // namespace
} // namespace hard
