/**
 * @file
 * Tests for the stats v2 framework: histogram bucket-edge behaviour
 * (zero, log2 boundaries, max-u64, linear clamping), distribution
 * moments, zero-denominator formulas, cross-kind name collisions,
 * group reset, sorted dumps, the hierarchical StatRegistry (duplicate
 * group names, dotted-path lookup, schema tag), statFromJson, the
 * pluggable warn()/inform() log sink, and intervalsPathFor.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/logging.hh"
#include "common/stats.hh"
#include "telemetry/sampler.hh"
#include "telemetry/stat_registry.hh"

namespace hard
{
namespace
{

TEST(Histogram, Log2BucketEdges)
{
    Histogram h; // log2, 65 buckets: full uint64 coverage
    EXPECT_EQ(h.bucketOf(0), 0u);
    EXPECT_EQ(h.bucketOf(1), 1u);
    EXPECT_EQ(h.bucketOf(2), 2u);
    EXPECT_EQ(h.bucketOf(3), 2u); // [2, 4)
    EXPECT_EQ(h.bucketOf(4), 3u);
    EXPECT_EQ(h.bucketOf(7), 3u);
    EXPECT_EQ(h.bucketOf(8), 4u);
    // Every power of two opens its own bucket: 2^(i-1) -> bucket i.
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(h.bucketOf(std::uint64_t{1} << i), i + 1) << "bit " << i;
    EXPECT_EQ(h.bucketOf((std::uint64_t{1} << 20) - 1), 20u);
    EXPECT_EQ(h.bucketOf(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(Histogram, Log2SampleAccounting)
{
    Histogram h;
    h.sample(0);
    h.sample(1);
    h.sample(5, 3); // three samples of 5 in bucket 3
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 0u + 1u + 15u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 3u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u); // empty histogram reads min as 0
    EXPECT_EQ(h.max(), 0u);
    for (std::uint64_t b : h.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(Histogram, LinearBucketsClampIntoLast)
{
    Histogram h(Histogram::Scale::Linear, 10, 4); // [0,10) .. [30,inf)
    EXPECT_EQ(h.bucketOf(0), 0u);
    EXPECT_EQ(h.bucketOf(9), 0u);
    EXPECT_EQ(h.bucketOf(10), 1u);
    EXPECT_EQ(h.bucketOf(39), 3u);
    EXPECT_EQ(h.bucketOf(40), 3u); // clamp
    EXPECT_EQ(h.bucketOf(std::numeric_limits<std::uint64_t>::max()), 3u);
}

TEST(Histogram, JsonShape)
{
    Histogram h(Histogram::Scale::Linear, 2, 3);
    h.sample(1);
    h.sample(5);
    EXPECT_EQ(h.toJson().dump(),
              "{\"buckets\":[1,0,1],\"count\":2,\"max\":5,\"min\":1,"
              "\"scale\":\"linear\",\"sum\":6,\"width\":2}");
}

TEST(Distribution, MomentsAndEmpty)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);

    d.sample(2);
    d.sample(4);
    d.sample(4);
    d.sample(4);
    d.sample(5);
    d.sample(5);
    d.sample(7);
    d.sample(9);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_EQ(d.min(), 2u);
    EXPECT_EQ(d.max(), 9u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0); // classic population-stddev set

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Formula, RatioZeroDenominatorIsZero)
{
    EXPECT_DOUBLE_EQ(Formula::ratio(7, 0), 0.0);
    EXPECT_DOUBLE_EQ(Formula::ratio(0, 0, 1e6), 0.0);
    EXPECT_DOUBLE_EQ(Formula::ratio(1, 4), 0.25);
    EXPECT_DOUBLE_EQ(Formula::ratio(3, 2, 100.0), 150.0);

    Formula empty;
    EXPECT_DOUBLE_EQ(empty.value(), 0.0);
}

TEST(StatGroup, CrossKindCollisionPanics)
{
    StatGroup g("g");
    g.counter("hits");
    EXPECT_DEATH(g.histogram("hits"), "collides");
    EXPECT_DEATH(g.distribution("hits"), "collides");
    EXPECT_DEATH(g.formula("hits", [] { return 0.0; }), "collides");
    // Re-fetching the same flavour is fine (lazy creation).
    ++g.counter("hits");
    EXPECT_EQ(g.value("hits"), 1u);
}

TEST(StatGroup, ResetZeroesEveryFlavour)
{
    StatGroup g("g");
    g.counter("c") += 5;
    g.histogram("h").sample(9);
    g.distribution("d").sample(3);
    g.formula("r", [&g] { return Formula::ratio(g.value("c"), 10); });

    g.reset();
    EXPECT_EQ(g.value("c"), 0u);
    EXPECT_EQ(g.histogram("h").count(), 0u);
    EXPECT_EQ(g.distribution("d").count(), 0u);
    // Formulas recompute from the zeroed inputs.
    Json j = g.toJson();
    EXPECT_DOUBLE_EQ(j["formulas"]["r"].asDouble(), 0.0);
}

TEST(StatGroup, DumpSortedAndPrefixed)
{
    StatGroup g("bus");
    g.counter("zeta").set(1);
    g.counter("alpha").set(2);
    g.counter("mid").set(3);
    auto dump = g.dump();
    ASSERT_EQ(dump.size(), 3u);
    EXPECT_EQ(dump[0].first, "bus.alpha");
    EXPECT_EQ(dump[1].first, "bus.mid");
    EXPECT_EQ(dump[2].first, "bus.zeta");
}

TEST(StatGroup, JsonOmitsEmptySections)
{
    StatGroup g("g");
    g.counter("n").set(4);
    EXPECT_EQ(g.toJson().dump(), "{\"counters\":{\"n\":4}}");
}

TEST(StatRegistry, DuplicateGroupNamePanics)
{
    StatRegistry reg;
    StatGroup a("bus"), b("bus");
    reg.add(a);
    EXPECT_DEATH(reg.add(b), "duplicate group 'bus'");
}

TEST(StatRegistry, DottedPathLookupLongestGroupWins)
{
    StatRegistry reg;
    StatGroup bus("bus"), hard("detector.hard");
    bus.counter("dataBytes").set(128);
    hard.counter("metaBroadcasts").set(7);
    reg.add(bus);
    reg.add(hard);

    EXPECT_EQ(reg.value("bus.dataBytes"), 128u);
    // Group names may contain dots; the full group prefix must win.
    EXPECT_EQ(reg.value("detector.hard.metaBroadcasts"), 7u);
    EXPECT_EQ(reg.value("nosuch.counter"), 0u);
    EXPECT_EQ(reg.value("bus.nosuch"), 0u);
    EXPECT_EQ(reg.value("nodots"), 0u);

    EXPECT_EQ(reg.find("bus"), &bus);
    EXPECT_EQ(reg.find("detector.hard"), &hard);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(StatRegistry, JsonSchemaTagAndRefreshHooks)
{
    StatRegistry reg;
    StatGroup g("sys");
    reg.add(g);
    int source = 0;
    reg.addRefreshHook([&] { g.counter("mirrored").set(
        static_cast<std::uint64_t>(source)); });

    source = 42;
    Json j = reg.toJson();
    EXPECT_EQ(j["schema"].asString(), "hard.stats.v1");
    EXPECT_EQ(j["groups"]["sys"]["counters"]["mirrored"].asUint(), 42u);

    source = 43;
    EXPECT_NE(reg.dumpText().find("sys.mirrored 43"), std::string::npos);
}

TEST(StatRegistry, StatFromJsonRoundTripAndMissingLevels)
{
    StatRegistry reg;
    StatGroup g("bus");
    g.counter("metaBytes").set(99);
    reg.add(g);
    Json doc = reg.toJson();

    EXPECT_EQ(statFromJson(doc, "bus", "metaBytes"), 99u);
    EXPECT_EQ(statFromJson(doc, "bus", "absent"), 0u);
    EXPECT_EQ(statFromJson(doc, "absent", "metaBytes"), 0u);
    EXPECT_EQ(statFromJson(Json(), "bus", "metaBytes"), 0u);
}

TEST(Logging, SinkCapturesWarnAndInform)
{
    std::vector<std::string> lines;
    {
        ScopedLogCapture capture;
        warn("something %s", "odd");
        inform("progress %d", 7);
        lines = capture.lines();
    }
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "warn: something odd");
    EXPECT_EQ(lines[1], "info: progress 7");

    // The previous (default stderr) sink is restored on scope exit;
    // nothing to assert beyond "does not crash".
    warn("back to stderr (expected in test output)");
}

TEST(Logging, QuietSilencesSinksToo)
{
    setQuiet(true);
    {
        ScopedLogCapture capture;
        warn("invisible");
        inform("also invisible");
        EXPECT_TRUE(capture.lines().empty());
    }
    setQuiet(false);
}

TEST(Logging, NestedSinksRestoreInOrder)
{
    ScopedLogCapture outer;
    {
        ScopedLogCapture inner;
        warn("inner only");
        EXPECT_EQ(inner.lines().size(), 1u);
    }
    warn("outer now");
    ASSERT_EQ(outer.lines().size(), 1u);
    EXPECT_EQ(outer.lines()[0], "warn: outer now");
}

TEST(Sampler, IntervalsPathDerivation)
{
    EXPECT_EQ(intervalsPathFor("out.json"), "out.intervals.jsonl");
    EXPECT_EQ(intervalsPathFor("/tmp/run.stats.json"),
              "/tmp/run.stats.intervals.jsonl");
    EXPECT_EQ(intervalsPathFor("noext"), "noext.intervals.jsonl");
    // A dot in a directory name is not an extension.
    EXPECT_EQ(intervalsPathFor("a.b/c"), "a.b/c.intervals.jsonl");
}

} // namespace
} // namespace hard
