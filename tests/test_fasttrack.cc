/**
 * @file
 * Tests for the FastTrack-style epoch-optimized happens-before
 * detector, including the equivalence property against the full
 * vector-clock implementation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "detector_test_util.hh"
#include "detectors/fasttrack.hh"
#include "detectors/happens_before.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

TEST(FastTrack, DetectsUnorderedWriteWrite)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId s0 = b.site("w0");
    SiteId s1 = b.site("w1");
    b.write(0, x, 8, s0);
    b.compute(1, 2000);
    b.write(1, x, 8, s1);
    Program p = b.finish();

    FastTrackDetector det("ft");
    runProgram(p, {&det});
    EXPECT_TRUE(reportedAt(det.sink(), s1));
}

TEST(FastTrack, LockOrderingSilences)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    for (int i = 0; i < 8; ++i) {
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, l, s);
            b.read(t, x, 8, s);
            b.write(t, x, 8, s);
            b.unlock(t, l, s);
        }
    }
    Program p = b.finish();

    FastTrackDetector det("ft");
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(FastTrack, SameThreadReadsStayOnFastPath)
{
    WorkloadBuilder b("t", 1);
    Addr x = b.alloc("x", 8, 32);
    SiteId s = b.site("r");
    for (int i = 0; i < 50; ++i)
        b.read(0, x, 8, s);
    Program p = b.finish();

    FastTrackDetector det("ft");
    runProgram(p, {&det});
    EXPECT_EQ(det.inflations(), 0u);
    EXPECT_GE(det.fastPathReads(), 50u);
}

TEST(FastTrack, ConcurrentReadsInflateAndWriteAfterRacesCorrectly)
{
    // Two unordered readers force inflation; a later unordered writer
    // must race against BOTH reads (the inflated vector preserves
    // them).
    WorkloadBuilder b("t", 3);
    Addr x = b.alloc("x", 8, 32);
    SiteId sr = b.site("readers");
    SiteId sw = b.site("writer");
    b.read(0, x, 8, sr);
    b.compute(1, 1000);
    b.read(1, x, 8, sr);
    b.compute(2, 3000);
    b.write(2, x, 8, sw);
    Program p = b.finish();

    FastTrackDetector det("ft");
    runProgram(p, {&det});
    EXPECT_GE(det.inflations(), 1u);
    EXPECT_TRUE(reportedAt(det.sink(), sw));
}

TEST(FastTrack, BarrierOrderedReadersDoNotInflate)
{
    // Reads ordered by barriers keep the single-epoch representation.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    Addr bar = b.allocBarrier("bar");
    SiteId s = b.site("r");
    SiteId sb = b.site("bar");
    b.read(0, x, 8, s);
    b.barrierAll(bar, sb);
    b.read(1, x, 8, s);
    b.barrierAll(bar, sb);
    b.read(0, x, 8, s);
    Program p = b.finish();

    FastTrackDetector det("ft");
    runProgram(p, {&det});
    EXPECT_EQ(det.inflations(), 0u);
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

/**
 * Equivalence property: FastTrack and the full vector-clock detector
 * report exactly the same sites on the same execution — on random
 * synthetic programs and on every workload model.
 */
class FastTrackEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FastTrackEquivalence, MatchesVectorClockOnRandomPrograms)
{
    Rng rng(GetParam());
    WorkloadBuilder b("t", 4);
    Addr vars = b.alloc("vars", 64 * 32, 32);
    Addr bar = b.allocBarrier("bar");
    Addr sema = b.allocSema("s");
    LockAddr locks[3] = {b.allocLock("l0"), b.allocLock("l1"),
                         b.allocLock("l2")};
    SiteId site = b.site("rw");

    for (int round = 0; round < 3; ++round) {
        for (unsigned t = 0; t < 4; ++t) {
            for (int i = 0; i < 60; ++i) {
                Addr v = vars + rng.below(64) * 32;
                int l = static_cast<int>(rng.below(4));
                if (l < 3)
                    b.lock(t, locks[l], site);
                if (rng.chance(0.5))
                    b.read(t, v, 8, site);
                else
                    b.write(t, v, 8, site);
                if (l < 3)
                    b.unlock(t, locks[l], site);
            }
            if (t == 0 && rng.chance(0.7))
                b.semaPost(0, sema, site);
        }
        b.barrierAll(bar, site);
    }
    // Drain any posts so no thread can block forever.
    Program p = b.finish();

    FastTrackDetector ft("ft", 4);
    HbConfig cfg = HbConfig::ideal();
    HappensBeforeDetector vc("vc", cfg);
    runProgram(p, {&ft, &vc});

    EXPECT_EQ(ft.sink().sites(), vc.sink().sites())
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastTrackEquivalence,
                         ::testing::Values(1u, 5u, 9u, 21u, 34u, 55u));

class FastTrackOnWorkloads : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FastTrackOnWorkloads, MatchesVectorClockOnWorkloads)
{
    WorkloadParams params;
    params.scale = 0.05;
    Program p = buildWorkload(GetParam(), params);

    FastTrackDetector ft("ft", 4);
    HappensBeforeDetector vc("vc", HbConfig::ideal());
    runProgram(p, {&ft, &vc});
    EXPECT_EQ(ft.sink().sites(), vc.sink().sites());
    // The fast path carries the overwhelming majority of reads.
    EXPECT_GT(ft.fastPathReads(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Apps, FastTrackOnWorkloads,
                         ::testing::Values("cholesky", "barnes", "fmm",
                                           "ocean", "water-nsquared",
                                           "raytrace", "server"));

} // namespace
} // namespace hard
