/**
 * @file
 * Shared record→replay helpers.
 *
 * Three subsystems exercise the same loop — record a program's trace
 * once, then push it through a freshly constructed detector battery:
 * the fuzz runner's fast path, the corpus re-judge, and the
 * replay-equivalence / fast-mode identity tests. The production side
 * lives in trace/record.hh (recordRun) and fuzz/runner.hh
 * (analyzeTrace); these wrappers cover the test-only shapes so test
 * binaries stop hand-rolling System + TraceRecorder + replayTrace
 * pilgrimages of their own.
 */

#ifndef HARD_TESTS_REPLAY_TEST_UTIL_HH
#define HARD_TESTS_REPLAY_TEST_UTIL_HH

#include <string>
#include <vector>

#include "fuzz/runner.hh"
#include "trace/record.hh"
#include "trace/replayer.hh"
#include "workloads/builder.hh"
#include "workloads/registry.hh"

namespace hard
{

/** Record one registered workload's trace (no detectors attached). */
inline Trace
recordWorkloadTrace(const std::string &workload, const WorkloadParams &wp,
                    const SimConfig &sim = SimConfig{})
{
    return recordRun(buildWorkload(workload, wp), sim);
}

/**
 * Replay @p trace through a fresh battery under @p cfg and return the
 * battery (finalized) for per-detector report inspection. Tests that
 * only need the (granule, site) key sets should prefer analyzeTrace().
 */
inline FuzzBattery
replayThroughBattery(const Trace &trace, const FuzzConfig &cfg)
{
    FuzzBattery battery = makeFuzzBattery(cfg);
    std::vector<AccessObserver *> obs;
    for (RaceDetector *d : battery.detectors())
        obs.push_back(d);
    replayTrace(trace, obs);
    for (RaceDetector *d : battery.detectors())
        d->finalize();
    return battery;
}

} // namespace hard

#endif // HARD_TESTS_REPLAY_TEST_UTIL_HH
