/**
 * @file
 * Shared helper for asserting that a statement throws a specific
 * SimError subclass whose message contains a given substring —
 * the typed-exception counterpart of EXPECT_DEATH(stmt, regex) used
 * before per-run failures became recoverable.
 */

#ifndef HARD_TESTS_THROW_TEST_UTIL_HH
#define HARD_TESTS_THROW_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <string>

/** Expect @p stmt to throw @p ExType with @p substr in its what(). */
#define HARD_EXPECT_THROW_MSG(stmt, ExType, substr)                     \
    do {                                                                \
        bool threw_expected_ = false;                                   \
        try {                                                           \
            stmt;                                                       \
        } catch (const ExType &caught_) {                               \
            threw_expected_ = true;                                     \
            EXPECT_NE(std::string(caught_.what()).find(substr),         \
                      std::string::npos)                                \
                << #stmt " threw " #ExType                              \
                << " but the message lacks \"" << (substr)              \
                << "\": " << caught_.what();                            \
        }                                                               \
        EXPECT_TRUE(threw_expected_)                                    \
            << #stmt " did not throw " #ExType;                         \
    } while (0)

#endif // HARD_TESTS_THROW_TEST_UTIL_HH
