/**
 * @file
 * Shared helpers for detector tests: build small programs with the
 * workload builder and run them under one or more detectors.
 */

#ifndef HARD_TESTS_DETECTOR_TEST_UTIL_HH
#define HARD_TESTS_DETECTOR_TEST_UTIL_HH

#include <vector>

#include "detectors/report.hh"
#include "sim/system.hh"
#include "workloads/builder.hh"

namespace hard
{

/** Run @p prog with @p detectors on the default CMP. */
inline RunResult
runProgram(const Program &prog, std::vector<RaceDetector *> detectors,
           SimConfig cfg = SimConfig{})
{
    System sys(cfg, prog);
    for (RaceDetector *d : detectors)
        sys.addObserver(d);
    RunResult res = sys.run();
    for (RaceDetector *d : detectors)
        d->finalize();
    return res;
}

/** @return true if @p sink contains a report at site @p s. */
inline bool
reportedAt(const ReportSink &sink, SiteId s)
{
    return sink.sites().count(s) > 0;
}

} // namespace hard

#endif // HARD_TESTS_DETECTOR_TEST_UTIL_HH
