/**
 * @file
 * Unit tests for common/bitops.hh.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace hard
{
namespace
{

TEST(Bitops, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(Bitops, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xf0, 7, 4), 0xfu);
    EXPECT_EQ(bits(0b101100, 3, 2), 0b11u);
    // Figure 4 slice: bits 2..9 of an address.
    EXPECT_EQ(bits(0x3fc, 9, 2), 0xffu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(Bitops, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x47, 32), 0x40u);
    EXPECT_EQ(alignDown(0x40, 32), 0x40u);
    EXPECT_EQ(alignUp(0x41, 32), 0x60u);
    EXPECT_EQ(alignUp(0x40, 32), 0x40u);
    EXPECT_EQ(alignDown(0, 32), 0u);
}

TEST(Bitops, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(1), 1u);
    EXPECT_EQ(popCount(0xffff), 16u);
    EXPECT_EQ(popCount(0x8000000000000001ull), 2u);
}

class BitopsAlignSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitopsAlignSweep, AlignIsIdempotentAndOrdered)
{
    const unsigned align = GetParam();
    for (Addr a = 0; a < 4 * align; a += 3) {
        Addr down = alignDown(a, align);
        Addr up = alignUp(a, align);
        EXPECT_LE(down, a);
        EXPECT_GE(up, a);
        EXPECT_EQ(down % align, 0u);
        EXPECT_EQ(up % align, 0u);
        EXPECT_EQ(alignDown(down, align), down);
        EXPECT_EQ(alignUp(up, align), up);
        EXPECT_LT(a - down, align);
    }
}

INSTANTIATE_TEST_SUITE_P(Aligns, BitopsAlignSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 4096u));

} // namespace
} // namespace hard
