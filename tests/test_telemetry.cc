/**
 * @file
 * End-to-end telemetry tests: attaching a sampler/tracer must not
 * perturb the simulation (zero-cost-when-disabled is really
 * zero-effect-when-enabled for the simulated machine), the interval
 * JSONL series and trace_event JSON must be well-formed and
 * deterministic, category masks must filter tracer output, and batch
 * results with embedded stats must stay byte-identical across worker
 * counts (and stats-free without collectStats).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "sim/system.hh"
#include "telemetry/sampler.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_event.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams wp;
    wp.scale = 0.04;
    return wp;
}

std::string
tempPath(const char *name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Run barnes once, optionally with full telemetry attached. */
RunResult
runInstrumented(bool telemetry, std::size_t *detector_sites,
                std::uint64_t *detector_dynamic,
                const std::string &trace_path = "",
                const std::string &intervals_path = "")
{
    Program prog = buildWorkload("barnes", tinyParams());
    System sys(defaultSimConfig(), prog);

    std::unique_ptr<EventTracer> tracer;
    std::unique_ptr<IntervalSampler> sampler;
    if (telemetry) {
        tracer = std::make_unique<EventTracer>(
            trace_path.empty() ? tempPath("telemetry_unused.trace.json")
                               : trace_path,
            kTraceAll);
        sys.setTracer(tracer.get());
        sampler = std::make_unique<IntervalSampler>(
            intervals_path.empty()
                ? tempPath("telemetry_unused.intervals.jsonl")
                : intervals_path,
            5000);
        sys.setSampler(sampler.get());
    }

    HardDetector hard("hard", HardConfig{});
    sys.addObserver(&hard);
    RunResult res = sys.run();
    hard.finalize();
    if (detector_sites != nullptr)
        *detector_sites = hard.sink().distinctSiteCount();
    if (detector_dynamic != nullptr)
        *detector_dynamic = hard.sink().dynamicCount();
    if (tracer)
        tracer->write();
    return res;
}

TEST(Telemetry, AttachingTelemetryDoesNotPerturbTheSimulation)
{
    std::size_t sites_off = 0, sites_on = 0;
    std::uint64_t dyn_off = 0, dyn_on = 0;
    RunResult off = runInstrumented(false, &sites_off, &dyn_off);
    RunResult on = runInstrumented(true, &sites_on, &dyn_on);

    EXPECT_EQ(off.totalCycles, on.totalCycles);
    EXPECT_EQ(off.dataReads, on.dataReads);
    EXPECT_EQ(off.dataWrites, on.dataWrites);
    EXPECT_EQ(off.lockAcquires, on.lockAcquires);
    EXPECT_EQ(off.barrierEpisodes, on.barrierEpisodes);
    EXPECT_EQ(sites_off, sites_on);
    EXPECT_EQ(dyn_off, dyn_on);
}

TEST(Telemetry, IntervalSeriesIsWellFormedAndCoversTheRun)
{
    const std::string path = tempPath("telemetry_run.intervals.jsonl");
    RunResult res = runInstrumented(true, nullptr, nullptr, "", path);

    std::vector<std::string> lines = readLines(path);
    ASSERT_GE(lines.size(), 2u); // header + at least the final row

    std::string err;
    Json header = Json::parse(lines[0], &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(header["schema"].asString(), "hard.intervals.v1");
    EXPECT_EQ(header["interval"].asUint(), 5000u);
    EXPECT_GT(header["probes"].size(), 0u);

    std::uint64_t prev_cycle = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        Json row = Json::parse(lines[i], &err);
        ASSERT_TRUE(err.empty()) << "row " << i << ": " << err;
        std::uint64_t cycle = row["cycle"].asUint();
        EXPECT_GT(cycle, prev_cycle) << "row " << i;
        prev_cycle = cycle;
    }
    // The closing row lands exactly on the end-of-run cycle.
    EXPECT_EQ(prev_cycle, res.totalCycles);
}

TEST(Telemetry, IntervalSeriesIsDeterministic)
{
    const std::string a = tempPath("telemetry_det_a.intervals.jsonl");
    const std::string b = tempPath("telemetry_det_b.intervals.jsonl");
    runInstrumented(true, nullptr, nullptr, "", a);
    runInstrumented(true, nullptr, nullptr, "", b);
    EXPECT_EQ(readLines(a), readLines(b));
}

TEST(Telemetry, TraceEventsAreWellFormed)
{
    const std::string path = tempPath("telemetry_run.trace.json");
    runInstrumented(true, nullptr, nullptr, path);

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    Json doc = Json::parse(buf.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    const Json &events = doc["traceEvents"];
    ASSERT_GT(events.size(), 0u);
    bool saw_complete = false, saw_instant = false, saw_meta = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        const std::string ph = e["ph"].asString();
        if (ph == "X") {
            saw_complete = true;
            EXPECT_TRUE(e.has("dur"));
        } else if (ph == "i") {
            saw_instant = true;
        } else if (ph == "M") {
            saw_meta = true;
            continue; // metadata events carry no cat
        }
        if (ph != "M")
            EXPECT_FALSE(e["cat"].asString().empty());
    }
    EXPECT_TRUE(saw_complete); // bus transactions / cache misses
    EXPECT_TRUE(saw_instant);  // sync events
    EXPECT_TRUE(saw_meta);     // track names
}

TEST(Telemetry, CategoryMaskFiltersEvents)
{
    Program prog = buildWorkload("barnes", tinyParams());

    auto count_with_mask = [&prog](unsigned mask) {
        System sys(defaultSimConfig(), prog);
        EventTracer tracer(::testing::TempDir() +
                               "telemetry_mask.trace.json",
                           mask);
        sys.setTracer(&tracer);
        HardDetector hard("hard", HardConfig{});
        sys.addObserver(&hard);
        sys.run();
        return tracer.size();
    };

    std::size_t all = count_with_mask(kTraceAll);
    std::size_t sync_only = count_with_mask(kTraceSync);
    std::size_t mem_only = count_with_mask(kTraceMem);
    EXPECT_GT(all, sync_only);
    EXPECT_GT(all, mem_only);
    EXPECT_GT(sync_only, 0u);
    EXPECT_GT(mem_only, 0u);
}

TEST(Telemetry, ParseTraceCategories)
{
    EXPECT_EQ(parseTraceCategories(""), kTraceAll);
    EXPECT_EQ(parseTraceCategories("all"), kTraceAll);
    EXPECT_EQ(parseTraceCategories("mem"), kTraceMem);
    EXPECT_EQ(parseTraceCategories("mem,sync"), kTraceMem | kTraceSync);
    EXPECT_EQ(parseTraceCategories("coherence,detector"),
              kTraceCoherence | kTraceDetector);
}

std::vector<BatchItem>
statsItems(bool collect)
{
    std::vector<BatchItem> items;
    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.factory = table2Detectors();
    item.runs = 2;
    item.seed0 = 900;
    item.overhead = true;
    item.collectStats = collect;
    items.push_back(std::move(item));
    return items;
}

TEST(Telemetry, BatchStatsAreByteIdenticalAcrossWorkerCounts)
{
    RunPool pool1(1), pool8(8);
    const std::string serial =
        batchJson(runBatch(statsItems(true), pool1)).dump();
    const std::string parallel =
        batchJson(runBatch(statsItems(true), pool8)).dump();
    EXPECT_EQ(serial, parallel);

    // The embedded blocks are really there and carry the schema tag.
    std::string err;
    Json doc = Json::parse(serial, &err);
    ASSERT_TRUE(err.empty()) << err;
    const Json &run0 =
        doc["items"].at(0)["effectiveness"]["perRun"].at(0);
    EXPECT_EQ(run0["stats"]["schema"].asString(), "hard.stats.v1");
    const Json &oh = doc["items"].at(0)["overhead"];
    EXPECT_EQ(oh["baseStats"]["schema"].asString(), "hard.stats.v1");
    EXPECT_EQ(oh["hardStats"]["schema"].asString(), "hard.stats.v1");
    // The embedded snapshot agrees with the flat overhead fields.
    EXPECT_EQ(statFromJson(oh["hardStats"], "bus", "dataBytes"),
              oh["dataBytes"].asUint());
    EXPECT_EQ(statFromJson(oh["hardStats"], "detector.hard",
                           "metaBroadcasts"),
              oh["metaBroadcasts"].asUint());
}

TEST(Telemetry, BatchWithoutCollectStatsEmbedsNothing)
{
    RunPool pool(2);
    const std::string dump =
        batchJson(runBatch(statsItems(false), pool)).dump();
    EXPECT_EQ(dump.find("\"stats\""), std::string::npos);
    EXPECT_EQ(dump.find("baseStats"), std::string::npos);
    EXPECT_EQ(dump.find("hardStats"), std::string::npos);
}

TEST(Telemetry, HarnessStatsCountUnits)
{
    RunPool pool(2);
    Json hs = harnessStatsJson(runBatch(statsItems(true), pool));
    EXPECT_EQ(hs["schema"].asString(), "hard.stats.v1");
    // 1 item: (2 injected + 1 race-free) effectiveness runs + 1
    // overhead unit, all ok.
    EXPECT_EQ(statFromJson(hs, "harness", "items"), 1u);
    EXPECT_EQ(statFromJson(hs, "harness", "effectivenessRuns"), 3u);
    EXPECT_EQ(statFromJson(hs, "harness", "overheadUnits"), 1u);
    EXPECT_EQ(statFromJson(hs, "harness", "unitsTotal"), 4u);
    EXPECT_EQ(statFromJson(hs, "harness", "unitsOk"), 4u);
    EXPECT_EQ(statFromJson(hs, "harness", "unitsFailed"), 0u);
}

TEST(Telemetry, StatsRoundTripThroughRunJson)
{
    RunPool pool(2);
    std::vector<BatchItemResult> results =
        runBatch(statsItems(true), pool);
    const EffectivenessRun &run = results[0].runDetail[0];
    ASSERT_FALSE(run.stats.isNull());

    EffectivenessRun back = effectivenessRunFromJson(toJson(run));
    EXPECT_EQ(back.stats.dump(), run.stats.dump());

    OverheadResult oh = overheadFromJson(toJson(results[0].overhead));
    EXPECT_EQ(oh.baseStats.dump(), results[0].overhead.baseStats.dump());
    EXPECT_EQ(oh.hardStats.dump(), results[0].overhead.hardStats.dump());
}

} // namespace
} // namespace hard
