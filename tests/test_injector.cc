/**
 * @file
 * Tests for the race injector (paper §4 methodology).
 */

#include <gtest/gtest.h>

#include "workloads/injector.hh"
#include "workloads/builder.hh"

namespace hard
{
namespace
{

/** Count ops of a given type across all threads. */
std::size_t
countOps(const Program &p, OpType t)
{
    std::size_t n = 0;
    for (const auto &th : p.threads)
        for (const Op &op : th.ops)
            if (op.type == t)
                ++n;
    return n;
}

TEST(Injector, ElidesExactlyOneLockUnlockPair)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    for (unsigned t = 0; t < 2; ++t) {
        for (int i = 0; i < 5; ++i) {
            b.lock(t, l, s);
            b.read(t, x, 8, s);
            b.write(t, x, 8, s);
            b.unlock(t, l, s);
        }
    }
    Program p = b.finish();
    std::size_t locks_before = countOps(p, OpType::Lock);
    std::size_t unlocks_before = countOps(p, OpType::Unlock);

    Injection inj = injectRace(p, 42);
    ASSERT_TRUE(inj.valid);
    EXPECT_EQ(countOps(p, OpType::Lock), locks_before - 1);
    EXPECT_EQ(countOps(p, OpType::Unlock), unlocks_before - 1);
    EXPECT_EQ(countOps(p, OpType::Read), 10u); // accesses untouched
    EXPECT_EQ(countOps(p, OpType::Write), 10u);
}

TEST(Injector, GroundTruthCoversCriticalSectionAccesses)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s_lk = b.site("lk");
    SiteId s_rd = b.site("rd");
    SiteId s_wr = b.site("wr");
    for (unsigned t = 0; t < 2; ++t) {
        b.lock(t, l, s_lk);
        b.read(t, x, 8, s_rd);
        b.write(t, x, 8, s_wr);
        b.unlock(t, l, s_lk);
    }
    Program p = b.finish();
    Injection inj = injectRace(p, 1);
    ASSERT_TRUE(inj.valid);
    EXPECT_EQ(inj.lock, l);
    EXPECT_TRUE(inj.hasWrite);
    EXPECT_TRUE(inj.overlaps(x, 8));
    EXPECT_FALSE(inj.overlaps(x + 32, 8));
    EXPECT_EQ(inj.sites.count(s_rd), 1u);
    EXPECT_EQ(inj.sites.count(s_wr), 1u);
    EXPECT_EQ(inj.sites.count(s_lk), 0u);
}

TEST(Injector, DeterministicInSeed)
{
    WorkloadBuilder make[2] = {WorkloadBuilder("t", 2),
                               WorkloadBuilder("t", 2)};
    Program progs[2];
    for (int k = 0; k < 2; ++k) {
        WorkloadBuilder &b = make[k];
        Addr x = b.alloc("x", 8, 32);
        LockAddr l = b.allocLock("l");
        SiteId s = b.site("cs");
        for (unsigned t = 0; t < 2; ++t) {
            for (int i = 0; i < 7; ++i) {
                b.lock(t, l, s);
                b.write(t, x, 8, s);
                b.unlock(t, l, s);
            }
        }
        progs[k] = b.finish();
    }
    Injection i1 = injectRace(progs[0], 99);
    Injection i2 = injectRace(progs[1], 99);
    ASSERT_TRUE(i1.valid);
    EXPECT_EQ(i1.tid, i2.tid);
    EXPECT_EQ(i1.dynamicIndex, i2.dynamicIndex);
    EXPECT_EQ(i1.ranges, i2.ranges);
}

TEST(Injector, NoLocksMeansNoInjection)
{
    WorkloadBuilder b("t", 1);
    Addr x = b.alloc("x", 8);
    b.write(0, x, 8, b.site("s"));
    Program p = b.finish();
    Injection inj = injectRace(p, 1);
    EXPECT_FALSE(inj.valid);
}

TEST(Injector, SkipsEmptyCriticalSections)
{
    // One empty CS and one with accesses: the injector must pick the
    // one with accesses regardless of seed.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        LockAddr l1 = b.allocLock("empty");
        LockAddr l2 = b.allocLock("useful");
        SiteId s = b.site("cs");
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, l1, s);
            b.unlock(t, l1, s);
            b.lock(t, l2, s);
            b.write(t, x, 8, s);
            b.unlock(t, l2, s);
        }
        Program p = b.finish();
        Injection inj = injectRace(p, seed);
        ASSERT_TRUE(inj.valid);
        EXPECT_EQ(inj.lock, l2) << "seed " << seed;
    }
}

TEST(SharedMapTest, IdentifiesCrossThreadWrittenData)
{
    WorkloadBuilder b("t", 2);
    Addr shared_rw = b.alloc("shared_rw", 8, 32);
    Addr shared_ro = b.alloc("shared_ro", 8, 32);
    Addr priv = b.alloc("priv", 8, 32);
    SiteId s = b.site("s");
    b.write(0, shared_rw, 8, s);
    b.write(1, shared_rw, 8, s);
    b.write(0, shared_ro, 8, s);
    b.read(1, shared_ro, 8, s);
    b.write(0, priv, 8, s);
    Program p = b.finish();

    SharedMap map(p);
    EXPECT_TRUE(map.conflicting(shared_rw, 8));
    EXPECT_TRUE(map.conflicting(shared_ro, 8)); // written + 2 accessors
    EXPECT_FALSE(map.conflicting(priv, 8));
    EXPECT_FALSE(map.conflicting(priv + 1024, 8));
    EXPECT_GT(map.conflictingGranules(), 0u);
}

TEST(SharedMapTest, GuidesInjectionTowardRacyData)
{
    // Two locks: one guards thread-private data, one guards shared
    // data. With the map, injection must always choose the shared CS.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        WorkloadBuilder b("t", 2);
        Addr shared = b.alloc("shared", 8, 32);
        Addr priv = b.alloc("priv", 64, 32);
        LockAddr lp = b.allocLock("privLock");
        LockAddr ls = b.allocLock("sharedLock");
        SiteId s = b.site("s");
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, lp, s);
            b.write(t, priv + t * 32, 8, s); // disjoint per thread
            b.unlock(t, lp, s);
            b.lock(t, ls, s);
            b.write(t, shared, 8, s);
            b.unlock(t, ls, s);
        }
        Program p = b.finish();
        SharedMap map(p);
        Injection inj = injectRace(p, seed, &map);
        ASSERT_TRUE(inj.valid);
        EXPECT_EQ(inj.lock, ls) << "seed " << seed;
    }
}

} // namespace
} // namespace hard
