/**
 * @file
 * Two-plane determinism: the wall-clock observability plane (the
 * --profile profiler, campaign heartbeats, the live status file) may
 * observe but must never perturb a deterministic byte. These tests
 * lock that contract: batch/fuzz JSON, journal files, and campaign
 * merges are byte-identical with profiling and monitoring on or off,
 * at any worker/shard count, even across an injected mid-journal-write
 * shard crash.
 *
 * (The complementary direction — the profile block itself appears only
 * at the front-end layer, never in library output — is implicit: the
 * documents compared here come straight from batchJson()/fuzzJson(),
 * which a profiled run leaves untouched.)
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/runner.hh"
#include "harness/batch.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/journal.hh"
#include "harness/run_pool.hh"
#include "telemetry/profile.hh"

namespace hard
{
namespace
{

/** Turn the process-global profiler on for one scope; disable() in
 * the destructor drops all recorded data so tests stay independent. */
struct ProfilerGuard
{
    ProfilerGuard() { Profiler::enable(); }
    ~ProfilerGuard() { Profiler::disable(); }
};

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

/** Two items; the second measures overhead (run == -1) and the first
 * runs in fast mode so the TimedObserver per-detector wrappers are on
 * the replay path. */
std::vector<BatchItem>
profileItems()
{
    std::vector<BatchItem> items;
    for (const char *app : {"barnes", "water-nsquared"}) {
        BatchItem item;
        item.workload = app;
        item.wp = tinyParams();
        item.sim = defaultSimConfig();
        item.factory = table2Detectors();
        item.runs = 2;
        item.seed0 = 700;
        items.push_back(std::move(item));
    }
    items[0].mode = ExecMode::Fast;
    items[1].overhead = true;
    return items;
}

std::string
batchDump(const std::vector<BatchItem> &items, unsigned jobs,
          BatchJournal *journal = nullptr)
{
    RunPool pool(jobs);
    BatchOptions opts;
    opts.keepGoing = true;
    opts.journal = journal;
    return batchJson(runBatch(items, pool, opts), ExecMode::Cycle)
        .dump(2);
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string text;
    if (f != nullptr) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    return text;
}

/** Fresh per-test output base; removes leftovers from prior runs. */
std::string
tempBase(const char *name)
{
    const std::string base = ::testing::TempDir() + name + ".json";
    const std::filesystem::path dir =
        std::filesystem::path(base).parent_path();
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        const std::string leaf = e.path().filename().string();
        if (leaf.rfind(name, 0) == 0)
            std::filesystem::remove(e.path());
    }
    return base;
}

TEST(ProfileNeutrality, BatchJsonByteIdenticalAtAnyJobCount)
{
    const std::vector<BatchItem> items = profileItems();
    const std::string reference = batchDump(items, 1);
    // The profile block attaches at the front-end layer only; library
    // output must not even mention it.
    EXPECT_EQ(reference.find("\"profile\""), std::string::npos);

    ProfilerGuard guard;
    for (unsigned jobs : {1u, 4u}) {
        EXPECT_EQ(batchDump(items, jobs), reference)
            << "profiler on, jobs=" << jobs;
    }
    // The profiled runs actually profiled: replay/record phases and
    // per-detector dispatch all landed in the tree.
    Profiler *prof = Profiler::active();
    ASSERT_NE(prof, nullptr);
    EXPECT_GE(prof->phase("batch.unit.replay").calls, 1u);
    EXPECT_GE(prof->phase("batch.unit.record").calls, 1u);
    EXPECT_GE(prof->phase("batch.unit.simulate").calls, 1u);
    EXPECT_GE(prof->phase("batch.unit.detector.hard.default").calls,
              1u);
}

TEST(ProfileNeutrality, JournalBytesIdenticalProfilerOnOff)
{
    const std::vector<BatchItem> items = profileItems();
    const char *const signature = "profile-neutrality-journal";

    const std::string off_path = tempBase("hard_profneut_journal_off");
    {
        BatchJournal journal(off_path, signature, false);
        batchDump(items, 2, &journal);
    }

    const std::string on_path = tempBase("hard_profneut_journal_on");
    {
        ProfilerGuard guard;
        BatchJournal journal(on_path, signature, false);
        // A heartbeat-style append hook must also leave the journal
        // bytes alone (it observes appends, it doesn't shape them).
        unsigned beats = 0;
        journal.setAppendHook(
            [&beats](const JournalKey &, const Json &) { ++beats; });
        batchDump(items, 2, &journal);
        EXPECT_EQ(beats, batchCampaignUnits(items).size());
    }

    // Journals are JSONL in unit-completion order, which is
    // nondeterministic at jobs=2 — compare as sorted line sets.
    auto lines = [](const std::string &text) {
        std::vector<std::string> out;
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            out.push_back(text.substr(pos, eol - pos));
            pos = eol + 1;
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    EXPECT_EQ(lines(slurp(off_path)), lines(slurp(on_path)));
}

TEST(ProfileNeutrality, FuzzJsonByteIdenticalProfilerOnOff)
{
    FuzzOptions opts;
    opts.seeds = {0, 1, 2, 3};
    opts.jobs = 2;
    opts.gen.maxOps = 10;
    opts.gen.maxPhases = 2;
    opts.minimize = false;

    const std::string reference =
        fuzzJson(opts, runFuzzSeeds(opts)).dump(2);
    EXPECT_EQ(reference.find("\"profile\""), std::string::npos);

    ProfilerGuard guard;
    EXPECT_EQ(fuzzJson(opts, runFuzzSeeds(opts)).dump(2), reference);
    Profiler *prof = Profiler::active();
    ASSERT_NE(prof, nullptr);
    EXPECT_GE(prof->phase("fuzz.seed.generate").calls, 4u);
    EXPECT_GE(prof->phase("fuzz.seed.simulate").calls, 4u);
}

TEST(ProfileNeutrality, MonitoredCampaignWithMidWriteCrashConverges)
{
    const std::vector<BatchItem> items = profileItems();
    const char *const signature = "profile-neutrality-campaign";

    // Reference: crash-free, monitor-off, single process.
    std::string reference;
    {
        RunPool serial(1);
        BatchOptions opts;
        opts.keepGoing = true;
        reference =
            batchJson(runBatch(items, serial, opts), ExecMode::Cycle)
                .dump(2);
    }

    // Monitored + profiled campaign with a shard SIGKILLed halfway
    // through fwrite()ing a journal record: the merged document must
    // still be byte-identical, while the wall-clock plane (status
    // file, heartbeats) appears alongside.
    const std::string base = tempBase("hard_profneut_campaign");
    ProfilerGuard guard;
    CampaignOptions copts;
    copts.shards = 2;
    copts.maxUnitRetries = 3;
    copts.backoffBaseMs = 1;
    copts.outputBase = base;
    copts.signature = signature;
    copts.monitor = true;
    copts.statusIntervalMs = 0; // publish every supervisor iteration
    copts.injectCrash = parseCrashSpec("0.1:mid-journal-write");
    copts.quarantinePayload = [&items](const JournalKey &key,
                                       unsigned attempts) {
        return batchQuarantinePayload(items, key, attempts);
    };
    CampaignResult camp =
        runCampaign(batchCampaignUnits(items), copts,
                    makeBatchShardBody(items, 0, nullptr));
    BatchOptions merge;
    merge.keepGoing = true;
    merge.restored = &camp.entries;
    RunPool serial(1);
    EXPECT_EQ(
        batchJson(runBatch(items, serial, merge), ExecMode::Cycle)
            .dump(2),
        reference);
    EXPECT_TRUE(camp.quarantined.empty());
    EXPECT_GE(camp.counters.shardCrashes, 1u);

    // The status file exists, parses, and reports a finished
    // campaign; initial + final publishes guarantee sequence >= 2.
    const std::string status_path = campaignStatusPathFor(base);
    std::string err;
    const Json status = Json::parse(slurp(status_path), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(status["schema"].asString(), kCampaignStatusSchema);
    EXPECT_EQ(status["state"].asString(), "complete");
    EXPECT_GE(status["sequence"].asUint(), 2u);
    EXPECT_EQ(status["units"]["total"].asUint(),
              batchCampaignUnits(items).size());
    EXPECT_EQ(status["units"]["pending"].asUint(), 0u);
    EXPECT_EQ(status["units"]["inFlight"].asUint(), 0u);

    // At least the first spawned shard heartbeat its progress.
    EXPECT_TRUE(std::filesystem::exists(shardHeartbeatPathFor(base, 0)));
}

TEST(ProfileNeutrality, MonitorOffPublishesNoWallClockFiles)
{
    const std::vector<BatchItem> items = profileItems();
    const std::string base = tempBase("hard_profneut_nomonitor");
    CampaignOptions copts;
    copts.shards = 2;
    copts.outputBase = base;
    copts.signature = "profile-neutrality-nomonitor";
    copts.quarantinePayload = [&items](const JournalKey &key,
                                       unsigned attempts) {
        return batchQuarantinePayload(items, key, attempts);
    };
    runCampaign(batchCampaignUnits(items), copts,
                makeBatchShardBody(items, 0, nullptr));
    EXPECT_FALSE(std::filesystem::exists(campaignStatusPathFor(base)));
    EXPECT_FALSE(
        std::filesystem::exists(shardHeartbeatPathFor(base, 0)));
}

TEST(ProfileNeutrality, ProfileDocumentShape)
{
    ProfilerGuard guard;
    {
        ScopedPhase outer("shape.outer");
        ScopedPhase inner("shape.outer.inner");
    }
    profileCount("shape.bytes", 42);

    const Json doc = Profiler::active()->toJson();
    EXPECT_EQ(doc["schema"].asString(), "hard.profile.v1");
    EXPECT_GE(doc["wallSeconds"].asDouble(), 0.0);
    EXPECT_GE(doc["cpuSeconds"].asDouble(), 0.0);
    EXPECT_GT(doc["peakRssBytes"].asUint(), 0u);
    const Json &outer = doc["phases"]["shape"]["phases"]["outer"];
    EXPECT_EQ(outer["calls"].asUint(), 1u);
    EXPECT_EQ(
        outer["phases"]["inner"]["calls"].asUint(), 1u);
    EXPECT_EQ(doc["counters"]["shape.bytes"].asUint(), 42u);
}

} // namespace
} // namespace hard
