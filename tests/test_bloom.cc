/**
 * @file
 * Tests for the BFVector (paper §3.2, Figure 4, Figure 5) including
 * the analytic missing-race probability and a Monte-Carlo check.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "core/bloom.hh"

namespace hard
{
namespace
{

TEST(Bloom, Figure4MappingUsesAddressBits2To9)
{
    // Address bits 2..9 are sliced into four 2-bit direct indices
    // (LSB part first). Craft an address with known index fields:
    // part0 idx=3, part1 idx=0, part2 idx=2, part3 idx=1.
    Addr a = (3ull << 2) | (0ull << 4) | (2ull << 6) | (1ull << 8);
    std::uint32_t sig = BfVector::signatureBits(a, 16);
    std::uint32_t expect = (1u << (0 * 4 + 3)) | (1u << (1 * 4 + 0)) |
                           (1u << (2 * 4 + 2)) | (1u << (3 * 4 + 1));
    EXPECT_EQ(sig, expect);
}

TEST(Bloom, SignatureIgnoresBitsBelow2AndAbove9For16Bit)
{
    Addr base = 0x1a4; // arbitrary
    std::uint32_t sig = BfVector::signatureBits(base, 16);
    EXPECT_EQ(BfVector::signatureBits(base | 0x3, 16), sig);
    EXPECT_EQ(BfVector::signatureBits(base | 0xffff0000ull, 16), sig);
    EXPECT_NE(BfVector::signatureBits(base ^ (1u << 5), 16), sig);
}

TEST(Bloom, SignatureHasExactlyOneBitPerPart)
{
    Rng rng(7);
    for (unsigned width : {16u, 32u}) {
        const unsigned part = width / 4;
        const std::uint32_t part_mask =
            part >= 32 ? ~0u : ((1u << part) - 1);
        for (int i = 0; i < 200; ++i) {
            std::uint32_t sig =
                BfVector::signatureBits(rng.next64(), width);
            for (unsigned p = 0; p < 4; ++p) {
                std::uint32_t bits_in_part =
                    (sig >> (p * part)) & part_mask;
                EXPECT_EQ(popCount(bits_in_part), 1u);
            }
        }
    }
}

TEST(Bloom, EmptinessIsPerPart)
{
    // A vector with bits in only three parts represents an empty set.
    BfVector v(16);
    v.setRaw(0x0111); // parts 0,1,2 non-empty, part 3 empty
    EXPECT_TRUE(v.setEmpty());
    v.setRaw(0x1111); // one bit per part
    EXPECT_FALSE(v.setEmpty());
    v.clearAll();
    EXPECT_TRUE(v.setEmpty());
    v.setAll();
    EXPECT_FALSE(v.setEmpty());
    EXPECT_TRUE(v.allSet());
}

TEST(Bloom, IntersectionIsBitwiseAnd)
{
    BfVector a = BfVector::signatureOf(0x100, 16);
    BfVector all = BfVector::allOnes(16);
    all &= a;
    EXPECT_EQ(all.raw(), a.raw());
    EXPECT_FALSE(all.setEmpty()); // a signature is a valid singleton
}

TEST(Bloom, UnionIsBitwiseOr)
{
    BfVector a = BfVector::signatureOf(0x104, 16);
    BfVector b = BfVector::signatureOf(0x208, 16);
    BfVector u(16);
    u |= a;
    u |= b;
    EXPECT_EQ(u.raw(), a.raw() | b.raw());
    EXPECT_TRUE(u.mayContain(0x104));
    EXPECT_TRUE(u.mayContain(0x208));
}

TEST(Bloom, MembershipHasNoFalseNegatives)
{
    // Property: an inserted lock always tests positive.
    Rng rng(13);
    for (unsigned width : {16u, 32u}) {
        for (int trial = 0; trial < 100; ++trial) {
            BfVector v(width);
            std::vector<Addr> inserted;
            for (int i = 0; i < 5; ++i) {
                Addr lock = rng.next64() & ~0x3ull;
                inserted.push_back(lock);
                v |= BfVector::signatureOf(lock, width);
            }
            for (Addr lock : inserted)
                ASSERT_TRUE(v.mayContain(lock));
        }
    }
}

TEST(Bloom, IntersectionNeverInventsMembers)
{
    // Property: bloom(A) & bloom(B) is a superset of bloom(A & B) —
    // intersecting can only over-approximate, so an empty bloom
    // intersection implies an empty true intersection. This is why
    // the Bloom filter can hide races but never fabricate them.
    Rng rng(29);
    for (int trial = 0; trial < 300; ++trial) {
        std::set<Addr> sa, sb;
        BfVector va(16), vb(16);
        for (int i = 0; i < 3; ++i) {
            Addr a = (rng.next64() & 0xffff) << 2;
            Addr b = (rng.next64() & 0xffff) << 2;
            sa.insert(a);
            va |= BfVector::signatureOf(a, 16);
            sb.insert(b);
            vb |= BfVector::signatureOf(b, 16);
        }
        BfVector inter = va;
        inter &= vb;
        for (Addr x : sa) {
            if (sb.count(x)) {
                // x in the true intersection -> must test positive.
                ASSERT_TRUE(inter.mayContain(x));
                ASSERT_FALSE(inter.setEmpty());
            }
        }
    }
}

TEST(Bloom, Figure5FalseNegativeConstruction)
{
    // Figure 5: C(v) = {L1, L2}; thread holds {L3}; the true
    // intersection is empty but hash collisions leave every part of
    // the BFVector non-empty, hiding the race. Construct such a
    // collision: L3's per-part indices each collide with L1's or
    // L2's.
    // L1 indices: {0,0,0,0}; L2 indices: {1,1,1,1};
    // L3 indices: {0,1,0,1} — collides partwise, differs as a whole.
    auto addr_of = [](unsigned i0, unsigned i1, unsigned i2,
                      unsigned i3) {
        return Addr{(i0 << 2) | (i1 << 4) | (i2 << 6) | (i3 << 8)};
    };
    Addr l1 = addr_of(0, 0, 0, 0);
    Addr l2 = addr_of(1, 1, 1, 1);
    Addr l3 = addr_of(0, 1, 0, 1);
    ASSERT_NE(l3, l1);
    ASSERT_NE(l3, l2);

    BfVector cand(16);
    cand |= BfVector::signatureOf(l1, 16);
    cand |= BfVector::signatureOf(l2, 16);
    BfVector lockset = BfVector::signatureOf(l3, 16);

    cand &= lockset;
    // True candidate set is now empty, but the BFVector is not: the
    // race would be hidden (a Bloom-filter false negative).
    EXPECT_FALSE(cand.setEmpty());
}

TEST(Bloom, AnalyticMissProbabilityMatchesPaper)
{
    // §3.2: for 16-bit vectors (n = 4) and candidate-set sizes
    // m = 1, 2, 3: CR_whole = 0.0039, 0.037, 0.111.
    EXPECT_NEAR(bloomMissProbability(4, 1), 0.0039, 0.0002);
    EXPECT_NEAR(bloomMissProbability(4, 2), 0.037, 0.002);
    EXPECT_NEAR(bloomMissProbability(4, 3), 0.111, 0.002);
    // Larger parts (32-bit vector, n = 8) collide less.
    EXPECT_LT(bloomMissProbability(8, 1), bloomMissProbability(4, 1));
}

TEST(Bloom, MonteCarloMatchesAnalyticCollisionRate)
{
    // Empirically estimate the probability that one random lock
    // collides with all four parts of a size-m candidate set and
    // compare to CR_whole.
    Rng rng(101);
    for (unsigned m : {1u, 2u}) {
        int collide = 0;
        constexpr int kTrials = 40000;
        for (int trial = 0; trial < kTrials; ++trial) {
            BfVector cand(16);
            std::set<std::uint32_t> sigs;
            while (sigs.size() < m) {
                Addr lock = rng.next64() << 2;
                std::uint32_t s = BfVector::signatureBits(lock, 16);
                if (sigs.insert(s).second)
                    cand.setRaw(cand.raw() | s);
            }
            // Note: the analytic model counts a probe whose indices
            // all coincide (including an identical signature) as a
            // whole-vector collision, so no probes are excluded.
            Addr probe = rng.next64() << 2;
            BfVector inter = cand;
            inter &= BfVector::signatureOf(probe, 16);
            if (!inter.setEmpty())
                ++collide;
        }
        double rate = double(collide) / kTrials;
        double analytic = bloomMissProbability(4, m);
        EXPECT_NEAR(rate, analytic, analytic * 0.5 + 0.002)
            << "m=" << m;
    }
}

TEST(Bloom, ToStringShowsParts)
{
    BfVector v(16);
    v.setRaw(0x8001);
    EXPECT_EQ(v.toString(), "1000|0000|0000|0001");
}

TEST(BloomDeath, RejectsUnsupportedWidths)
{
    EXPECT_EXIT(BfVector v(12), ::testing::ExitedWithCode(1),
                "unsupported width");
    EXPECT_EXIT(BfVector v(64), ::testing::ExitedWithCode(1),
                "unsupported width");
}

class BloomWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BloomWidthSweep, AllOnesNeverEmptyAndClearAlwaysEmpty)
{
    const unsigned width = GetParam();
    BfVector v = BfVector::allOnes(width);
    EXPECT_FALSE(v.setEmpty());
    v.clearAll();
    EXPECT_TRUE(v.setEmpty());
}

TEST_P(BloomWidthSweep, SignatureSingletonIsNonEmpty)
{
    const unsigned width = GetParam();
    Rng rng(width);
    for (int i = 0; i < 100; ++i) {
        BfVector v = BfVector::signatureOf(rng.next64(), width);
        EXPECT_FALSE(v.setEmpty());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BloomWidthSweep,
                         ::testing::Values(16u, 32u));

} // namespace
} // namespace hard
