/**
 * @file
 * Tests for the differential fuzzing subsystem: generator determinism
 * and well-formedness, honest-sweep invariant cleanliness, weakened
 * detectors being caught, ddmin minimization, corpus round-trips,
 * seed-spec parsing and --jobs-independent JSON output.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hh"
#include "fuzz/corpus.hh"
#include "fuzz/generator.hh"
#include "fuzz/invariants.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/runner.hh"
#include "throw_test_util.hh"
#include "trace/trace.hh"

namespace hard
{
namespace
{

/** Small, fast generator shape shared by the sweep tests. */
FuzzGenConfig
smallGen()
{
    FuzzGenConfig g;
    g.maxPhases = 2;
    g.maxOps = 12;
    return g;
}

std::string
tmpDir(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

// ---------------------------------------------------------------------
// Generator

TEST(FuzzGenerator, SameSeedSameProgram)
{
    const FuzzGenConfig cfg;
    for (std::uint64_t seed : {0ull, 1ull, 42ull, 12345ull}) {
        Program a = generateFuzzProgram(seed, cfg);
        Program b = generateFuzzProgram(seed, cfg);
        ASSERT_EQ(a.threads.size(), b.threads.size());
        EXPECT_EQ(a.locks, b.locks);
        EXPECT_EQ(a.barriers, b.barriers);
        for (std::size_t t = 0; t < a.threads.size(); ++t) {
            const auto &ta = a.threads[t].ops;
            const auto &tb = b.threads[t].ops;
            ASSERT_EQ(ta.size(), tb.size()) << "thread " << t;
            for (std::size_t i = 0; i < ta.size(); ++i) {
                EXPECT_EQ(ta[i].type, tb[i].type);
                EXPECT_EQ(ta[i].addr, tb[i].addr);
                EXPECT_EQ(ta[i].size, tb[i].size);
                EXPECT_EQ(ta[i].site, tb[i].site);
            }
        }
    }
}

TEST(FuzzGenerator, DifferentSeedsDiffer)
{
    const FuzzGenConfig cfg;
    Program a = generateFuzzProgram(1, cfg);
    Program b = generateFuzzProgram(2, cfg);
    bool differ = a.threads.size() != b.threads.size() ||
                  a.totalOps() != b.totalOps();
    if (!differ) {
        for (std::size_t t = 0; !differ && t < a.threads.size(); ++t) {
            const auto &ta = a.threads[t].ops;
            const auto &tb = b.threads[t].ops;
            differ = ta.size() != tb.size();
            for (std::size_t i = 0; !differ && i < ta.size(); ++i)
                differ = ta[i].type != tb[i].type ||
                         ta[i].addr != tb[i].addr;
        }
    }
    EXPECT_TRUE(differ);
}

TEST(FuzzGenerator, ProgramsAreWellFormed)
{
    const FuzzGenConfig cfg;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Program p = generateFuzzProgram(seed, cfg);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_GE(p.threads.size(), 2u);
        EXPECT_LE(p.threads.size(), 8u);
        EXPECT_GT(p.totalOps(), 0u);
        EXPECT_FALSE(p.locks.empty());
        // Lock discipline: balanced, never re-acquired, nesting bounded
        // by maxNest (so HARD's saturating counters stay exact).
        for (const ThreadProgram &t : p.threads) {
            std::vector<Addr> held;
            unsigned barriers = 0;
            for (const Op &op : t.ops) {
                if (op.type == OpType::Lock) {
                    EXPECT_EQ(std::count(held.begin(), held.end(),
                                         op.addr),
                              0);
                    held.push_back(op.addr);
                    EXPECT_LE(held.size(), cfg.maxNest);
                } else if (op.type == OpType::Unlock) {
                    ASSERT_FALSE(held.empty());
                    EXPECT_EQ(held.back(), op.addr);
                    held.pop_back();
                } else if (op.type == OpType::Barrier) {
                    ++barriers;
                } else if (op.type == OpType::Read ||
                           op.type == OpType::Write) {
                    EXPECT_GE(op.addr, p.dataBase);
                    EXPECT_LT(op.addr + op.size, p.dataLimit + 1);
                    // No access straddles a 32-byte line.
                    EXPECT_EQ(op.addr / 32,
                              (op.addr + op.size - 1) / 32);
                }
            }
            EXPECT_TRUE(held.empty());
        }
    }
}

TEST(FuzzGenerator, ThreadRangeKnobRespected)
{
    FuzzGenConfig cfg;
    cfg.minThreads = 3;
    cfg.maxThreads = 3;
    Program p = generateFuzzProgram(7, cfg);
    EXPECT_EQ(p.threads.size(), 3u);
}

// ---------------------------------------------------------------------
// Honest sweep: every invariant must hold on every seed.

TEST(FuzzSweep, HonestSweepIsClean)
{
    FuzzOptions opts;
    opts.seeds = parseSeedSpec("0..14");
    opts.jobs = 2;
    opts.gen = smallGen();
    for (const SeedResult &sr : runFuzzSeeds(opts)) {
        EXPECT_EQ(sr.outcome, "ok")
            << "seed " << sr.seed << ": " << sr.errorType << " "
            << sr.errorMessage
            << (sr.violations.empty()
                    ? ""
                    : (" / " + sr.violations.front().invariant + ": " +
                       sr.violations.front().detail));
        EXPECT_GT(sr.events, 0u);
    }
}

TEST(FuzzSweep, JsonIsIdenticalAtAnyJobCount)
{
    FuzzOptions opts;
    opts.seeds = parseSeedSpec("0..7");
    opts.gen = smallGen();
    opts.jobs = 1;
    std::string serial = fuzzJson(opts, runFuzzSeeds(opts)).dump(2);
    opts.jobs = 4;
    std::string parallel = fuzzJson(opts, runFuzzSeeds(opts)).dump(2);
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------
// Weakened detectors: the cross-check must catch each sabotage.

/** Run seeds until one violates; @return the invariant names hit. */
std::vector<std::string>
violationsUnder(Weaken weaken, const FuzzGenConfig &gen,
                unsigned max_seeds)
{
    FuzzOptions opts;
    opts.gen = gen;
    opts.cfg.weaken = weaken;
    opts.minimize = false;
    for (std::uint64_t seed = 0; seed < max_seeds; ++seed) {
        SeedResult sr = runFuzzSeed(seed, opts);
        EXPECT_NE(sr.outcome, "failed")
            << sr.errorType << ": " << sr.errorMessage;
        if (sr.outcome != "violation")
            continue;
        std::vector<std::string> names;
        for (const Violation &v : sr.violations)
            names.push_back(v.invariant);
        return names;
    }
    return {};
}

TEST(FuzzWeaken, DeafHardDetectorIsCaught)
{
    std::vector<std::string> names =
        violationsUnder(Weaken::Hard, smallGen(), 10);
    ASSERT_FALSE(names.empty())
        << "no seed caught the sabotaged HARD detector";
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "hard-subset-of-ideal"),
              names.end());
}

TEST(FuzzWeaken, DeafHbDetectorIsCaught)
{
    // Force semaphore hand-offs and suppress barriers so semaphores are
    // the only cross-phase ordering — exactly what the sabotage breaks.
    FuzzGenConfig gen = smallGen();
    gen.maxPhases = 3;
    gen.pSema = 1.0;
    gen.pBarrier = 0.0;
    std::vector<std::string> names =
        violationsUnder(Weaken::Hb, gen, 30);
    ASSERT_FALSE(names.empty())
        << "no seed caught the sabotaged happens-before detector";
    for (const std::string &n : names)
        EXPECT_TRUE(n == "hb-matches-oracle" ||
                    n == "hb-matches-fasttrack" ||
                    n == "hb-subset-of-djit")
            << n;
}

/** Extended grammar shape: rwlock sections everywhere, no mutexes
 * competing for the op mix, condvar hand-offs between phases. */
FuzzGenConfig
rwGen()
{
    FuzzGenConfig gen = smallGen();
    gen.maxPhases = 3;
    gen.numRwLocks = 2;
    gen.pRwLocked = 0.6;
    gen.pRwWriter = 0.5;
    gen.pCond = 0.5;
    gen.numAtomics = 2;
    gen.pAtomic = 0.2;
    return gen;
}

TEST(FuzzWeaken, RwDeafDjitIsCaught)
{
    std::vector<std::string> names =
        violationsUnder(Weaken::Djit, rwGen(), 30);
    ASSERT_FALSE(names.empty())
        << "no seed caught the rwlock-deaf DJIT+ detector";
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "djit-matches-oracle"),
              names.end());
    // The sabotage only *adds* DJIT+ reports, so the containment of
    // the honest epoch detector inside DJIT+ must survive it.
    EXPECT_EQ(std::find(names.begin(), names.end(), "hb-subset-of-djit"),
              names.end());
}

TEST(FuzzWeaken, ReadBlindRaceTrackIsCaught)
{
    std::vector<std::string> names =
        violationsUnder(Weaken::Racetrack, rwGen(), 30);
    ASSERT_FALSE(names.empty())
        << "no seed caught the reader-blind RaceTrack detector";
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "racetrack-subset-of-ideal"),
              names.end());
}

TEST(FuzzSweep, HonestExtendedGrammarSweepIsClean)
{
    FuzzOptions opts;
    opts.seeds = parseSeedSpec("0..14");
    opts.jobs = 2;
    opts.gen = rwGen();
    for (const SeedResult &sr : runFuzzSeeds(opts)) {
        EXPECT_EQ(sr.outcome, "ok")
            << "seed " << sr.seed << ": " << sr.errorType << " "
            << sr.errorMessage
            << (sr.violations.empty()
                    ? ""
                    : (" / " + sr.violations.front().invariant + ": " +
                       sr.violations.front().detail));
    }
}

TEST(FuzzGenerator, DefaultConfigIgnoresExtendedGrammarKnobs)
{
    // The extended grammar must not perturb default-config programs:
    // same RNG stream, same layout, same sites — byte-identical ops.
    const FuzzGenConfig off;
    FuzzGenConfig offExplicit;
    offExplicit.pRwWriter = 0.9; // meaningless while pRwLocked == 0
    for (std::uint64_t seed : {0ull, 3ull, 99ull}) {
        Program a = generateFuzzProgram(seed, off);
        Program b = generateFuzzProgram(seed, offExplicit);
        ASSERT_EQ(a.threads.size(), b.threads.size());
        for (std::size_t t = 0; t < a.threads.size(); ++t) {
            const auto &ta = a.threads[t].ops;
            const auto &tb = b.threads[t].ops;
            ASSERT_EQ(ta.size(), tb.size());
            for (std::size_t i = 0; i < ta.size(); ++i) {
                EXPECT_EQ(ta[i].type, tb[i].type);
                EXPECT_EQ(ta[i].addr, tb[i].addr);
            }
        }
    }
}

TEST(FuzzGenerator, ExtendedGrammarEmitsNewPrimitives)
{
    bool sawRw = false, sawCond = false, sawAtomic = false;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Program p = generateFuzzProgram(seed, rwGen());
        for (const ThreadProgram &t : p.threads) {
            // Rwlock discipline: balanced, mode-matched, not nested
            // with itself.
            std::map<Addr, OpType> rwHeld;
            for (const Op &op : t.ops) {
                switch (op.type) {
                  case OpType::RwRdLock:
                  case OpType::RwWrLock:
                    EXPECT_EQ(rwHeld.count(op.addr), 0u);
                    rwHeld[op.addr] = op.type;
                    sawRw = true;
                    break;
                  case OpType::RwRdUnlock:
                    ASSERT_EQ(rwHeld[op.addr], OpType::RwRdLock);
                    rwHeld.erase(op.addr);
                    break;
                  case OpType::RwWrUnlock:
                    ASSERT_EQ(rwHeld[op.addr], OpType::RwWrLock);
                    rwHeld.erase(op.addr);
                    break;
                  case OpType::CondBroadcast:
                  case OpType::CondWait:
                    sawCond = true;
                    break;
                  case OpType::AtomicStore:
                  case OpType::AtomicLoad:
                    sawAtomic = true;
                    break;
                  default:
                    break;
                }
            }
            EXPECT_TRUE(rwHeld.empty());
        }
    }
    EXPECT_TRUE(sawRw);
    EXPECT_TRUE(sawCond);
    EXPECT_TRUE(sawAtomic);
}

TEST(FuzzWeaken, NoResetIdealLocksetIsCaught)
{
    FuzzGenConfig gen = smallGen();
    gen.maxPhases = 3;
    gen.pBarrier = 1.0;
    std::vector<std::string> names =
        violationsUnder(Weaken::Ideal, gen, 30);
    ASSERT_FALSE(names.empty())
        << "no seed caught the sabotaged ideal-lockset detector";
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "lockset-matches-oracle"),
              names.end());
}

// ---------------------------------------------------------------------
// Minimizer

TraceEvent
ev(TraceKind kind, ThreadId tid, Addr addr, unsigned size = 0,
   SiteId site = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.addr = addr;
    e.size = size;
    e.site = site;
    return e;
}

TEST(FuzzMinimizer, SanitizeDropsUnbalancedLockEvents)
{
    Trace t;
    t.siteNames = {"s"};
    t.events = {
        ev(TraceKind::LockAcquire, 0, 0x1000),
        ev(TraceKind::LockAcquire, 0, 0x1000), // re-acquire: dropped
        ev(TraceKind::Read, 0, 0x2000, 4),
        ev(TraceKind::LockRelease, 0, 0x1000),
        ev(TraceKind::LockRelease, 0, 0x1000), // unheld: dropped
        ev(TraceKind::LockRelease, 1, 0x1000), // unheld (t1): dropped
    };
    Trace s = sanitizeTrace(t);
    ASSERT_EQ(s.events.size(), 3u);
    EXPECT_EQ(s.events[0].kind, TraceKind::LockAcquire);
    EXPECT_EQ(s.events[1].kind, TraceKind::Read);
    EXPECT_EQ(s.events[2].kind, TraceKind::LockRelease);
}

TEST(FuzzMinimizer, SanitizeDropsUnbalancedRwlockEvents)
{
    Trace t;
    t.siteNames = {"s"};
    t.events = {
        ev(TraceKind::RwRdAcquire, 0, 0x1000),
        ev(TraceKind::RwWrAcquire, 0, 0x1000), // held (any mode): drop
        ev(TraceKind::RwWrRelease, 0, 0x1000), // wrong mode: drop
        ev(TraceKind::Write, 0, 0x2000, 4),
        ev(TraceKind::RwRdRelease, 0, 0x1000), // matches the acquire
        ev(TraceKind::RwRdRelease, 0, 0x1000), // unheld: drop
        ev(TraceKind::RwWrRelease, 1, 0x1000), // unheld (t1): drop
    };
    Trace s = sanitizeTrace(t);
    ASSERT_EQ(s.events.size(), 3u);
    EXPECT_EQ(s.events[0].kind, TraceKind::RwRdAcquire);
    EXPECT_EQ(s.events[1].kind, TraceKind::Write);
    EXPECT_EQ(s.events[2].kind, TraceKind::RwRdRelease);
}

TEST(FuzzMinimizer, DdminShrinksToSingleCulprit)
{
    Trace t;
    t.siteNames = {"s"};
    for (unsigned i = 0; i < 12; ++i)
        t.events.push_back(ev(TraceKind::Read, i % 2, 0x100 + 8 * i, 4));
    t.events.push_back(ev(TraceKind::Write, 0, 0xdead0, 4));
    for (unsigned i = 0; i < 12; ++i)
        t.events.push_back(ev(TraceKind::Read, i % 2, 0x900 + 8 * i, 4));

    auto hasCulprit = [](const Trace &c) {
        for (const TraceEvent &e : c.events)
            if (e.kind == TraceKind::Write && e.addr == 0xdead0)
                return true;
        return false;
    };
    MinimizeStats stats;
    Trace min = minimizeTrace(t, hasCulprit, 2000, &stats);
    ASSERT_EQ(min.events.size(), 1u);
    EXPECT_EQ(min.events[0].addr, 0xdead0u);
    EXPECT_EQ(stats.originalEvents, 25u);
    EXPECT_EQ(stats.finalEvents, 1u);
    EXPECT_FALSE(stats.capped);
    EXPECT_GT(stats.probes, 0u);
}

TEST(FuzzMinimizer, ProbeCapReturnsBestSoFar)
{
    Trace t;
    t.siteNames = {"s"};
    for (unsigned i = 0; i < 32; ++i)
        t.events.push_back(ev(TraceKind::Read, 0, 0x100 + 8 * i, 4));
    auto nonEmpty = [](const Trace &c) { return !c.events.empty(); };
    MinimizeStats stats;
    Trace min = minimizeTrace(t, nonEmpty, 3, &stats);
    EXPECT_TRUE(stats.capped);
    EXPECT_LE(min.events.size(), 32u);
    EXPECT_FALSE(min.events.empty());
}

// ---------------------------------------------------------------------
// End-to-end artifacts: violation -> minimized repro -> corpus replay.

TEST(FuzzArtifacts, ViolationMinimizesToReplayableCorpusCase)
{
    FuzzOptions opts;
    opts.gen = smallGen();
    opts.cfg.weaken = Weaken::Hard;
    opts.outDir = tmpDir("fuzz_artifacts");
    SeedResult hit;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        hit = runFuzzSeed(seed, opts);
        if (hit.outcome == "violation")
            break;
    }
    ASSERT_EQ(hit.outcome, "violation");
    ASSERT_TRUE(hit.minimized);
    EXPECT_LE(hit.minStats.finalEvents, hit.minStats.originalEvents);
    EXPECT_GT(hit.minStats.finalEvents, 0u);

    // The artifacts exist and the minimized trace still reproduces the
    // primary violation when replayed from disk.
    ASSERT_FALSE(hit.minTracePath.empty());
    Trace min = readTrace(hit.minTracePath);
    EXPECT_EQ(min.events.size(), hit.minStats.finalEvents);
    std::vector<Violation> again =
        checkInvariants(analyzeTrace(min, opts.cfg));
    ASSERT_FALSE(again.empty());
    EXPECT_EQ(again.front().invariant, hit.violations.front().invariant);

    // The dumped case file round-trips through the corpus checker.
    ASSERT_FALSE(hit.casePath.empty());
    CorpusVerdict v = checkCorpusCase(hit.casePath);
    EXPECT_TRUE(v.ok) << v.message;
}

// ---------------------------------------------------------------------
// Seed-spec parsing

TEST(FuzzSeedSpec, CountAndRangeForms)
{
    EXPECT_EQ(parseSeedSpec("3"),
              (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(parseSeedSpec("5..7"),
              (std::vector<std::uint64_t>{5, 6, 7}));
    EXPECT_EQ(parseSeedSpec("9..9"),
              (std::vector<std::uint64_t>{9}));
}

TEST(FuzzSeedSpec, RejectsMalformedSpecs)
{
    HARD_EXPECT_THROW_MSG(parseSeedSpec(""), ConfigError, "seed");
    HARD_EXPECT_THROW_MSG(parseSeedSpec("7..3"), ConfigError, "seed");
    HARD_EXPECT_THROW_MSG(parseSeedSpec("abc"), ConfigError, "seed");
}

// ---------------------------------------------------------------------
// Invariant plumbing

TEST(FuzzInvariants, CoarsenKeysRealigns)
{
    KeySet fine{{0x100, 1}, {0x104, 1}, {0x11c, 2}, {0x120, 2}};
    KeySet coarse = coarsenKeys(fine, 32);
    EXPECT_EQ(coarse, (KeySet{{0x100, 1}, {0x100, 2}, {0x120, 2}}));
}

TEST(FuzzInvariants, CleanReportSetHasNoViolations)
{
    FuzzReportSet r;
    EXPECT_TRUE(checkInvariants(r).empty());
}

TEST(FuzzInvariants, SubsetBreachIsNamedAndWitnessed)
{
    FuzzReportSet r;
    r.hard = {{0x40, 3}};
    std::vector<Violation> v = checkInvariants(r);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v.front().invariant, "hard-subset-of-ideal");
    ASSERT_EQ(v.front().witnesses.size(), 1u);
    EXPECT_EQ(v.front().witnesses.front(), (ReportKey{0x40, 3}));
    EXPECT_EQ(v.front().totalWitnesses, 1u);
}

TEST(FuzzInvariants, NamesAreStable)
{
    const std::vector<std::string> &n = invariantNames();
    EXPECT_EQ(n.size(), 9u);
    EXPECT_EQ(n.front(), "hard-subset-of-ideal");
    EXPECT_NE(std::find(n.begin(), n.end(), "djit-matches-oracle"),
              n.end());
    EXPECT_NE(std::find(n.begin(), n.end(), "hb-subset-of-djit"),
              n.end());
    EXPECT_EQ(n.back(), "racetrack-subset-of-ideal");
}

TEST(FuzzBatteryTest, RejectsBadGranularity)
{
    FuzzConfig cfg;
    cfg.granularity = 2;
    HARD_EXPECT_THROW_MSG(makeFuzzBattery(cfg), ConfigError,
                          "granularity");
    cfg.granularity = 24;
    HARD_EXPECT_THROW_MSG(makeFuzzBattery(cfg), ConfigError,
                          "granularity");
}

} // namespace
} // namespace hard
