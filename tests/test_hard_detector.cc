/**
 * @file
 * Behavioural tests for the HARD detector (paper §3): detection of
 * missing-lock races, the LState pruning of initialization patterns,
 * barrier flash-reset (Figure 7), metadata displacement (§3.6),
 * granularity-induced false sharing (Table 3), broadcast generation
 * (§3.4/Figure 6), and BFVector-width equivalence (Table 6).
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"

namespace hard
{
namespace
{

TEST(HardDetector, DetectsMissingLockRace)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8);
    LockAddr l = b.allocLock("l");
    SiteId s_ok = b.site("locked");
    SiteId s_bad = b.site("unlocked");
    SiteId s_lk = b.site("lk");

    for (int i = 0; i < 3; ++i) {
        b.lock(0, l, s_lk);
        b.read(0, x, 8, s_ok);
        b.write(0, x, 8, s_ok);
        b.unlock(0, l, s_lk);
        b.write(1, x, 8, s_bad); // forgot the lock
        b.compute(1, 200);
    }
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
    EXPECT_TRUE(reportedAt(det.sink(), s_bad) ||
                reportedAt(det.sink(), s_ok));
}

TEST(HardDetector, ProperLockingIsSilent)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");

    for (int i = 0; i < 10; ++i) {
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, l, s);
            b.read(t, x, 8, s);
            b.write(t, x, 8, s);
            b.unlock(t, l, s);
        }
    }
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(HardDetector, SingleThreadInitializationIsSilent)
{
    // The Exclusive state suppresses reports for unlocked init (§2.2).
    WorkloadBuilder b("t", 2);
    Addr buf = b.alloc("buf", 256, 32);
    SiteId s = b.site("init");
    for (Addr a = buf; a < buf + 256; a += 8)
        b.write(0, a, 8, s);
    // Thread 1 never touches it.
    b.compute(1, 10);
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
    EXPECT_EQ(det.lstateOf(buf), LState::Exclusive);
}

TEST(HardDetector, ReadOnlySharingIsSilent)
{
    // Init by one thread, then read-only sharing: Shared state, no
    // reports even though no locks are held (§2.2).
    WorkloadBuilder b("t", 2);
    Addr buf = b.alloc("buf", 64, 32);
    SiteId si = b.site("init");
    SiteId sr = b.site("readers");
    b.write(0, buf, 8, si);
    b.compute(1, 500);
    for (int i = 0; i < 5; ++i)
        b.read(1, buf, 8, sr);
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
    EXPECT_EQ(det.lstateOf(buf), LState::Shared);
}

TEST(HardDetector, BarrierResetPrunesFigure7FalsePositive)
{
    // Figure 7: t1 writes array A before the barrier, t2 reads/writes
    // it after — no locks anywhere, race-free by barrier ordering.
    auto build = [](bool) {
        WorkloadBuilder b("t", 2);
        Addr arr = b.alloc("A", 8 * 8, 32);
        Addr bar = b.allocBarrier("bar");
        SiteId s1 = b.site("pre.write");
        SiteId s2 = b.site("post.rw");
        SiteId sb = b.site("bar");
        for (unsigned i = 0; i < 8; ++i)
            b.write(0, arr + i * 8, 8, s1);
        b.barrierAll(bar, sb);
        for (unsigned i = 0; i < 8; ++i) {
            b.read(1, arr + i * 8, 8, s2);
            b.write(1, arr + i * 8, 8, s2);
        }
        return b.finish();
    };

    Program with_reset = build(true);
    HardConfig cfg;
    cfg.barrierReset = true;
    HardDetector det("hard", cfg);
    runProgram(with_reset, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u)
        << "barrier reset must prune the Figure 7 pattern";
    EXPECT_EQ(det.hardStats().barrierResets, 1u);

    // Ablation: without the reset, the same program raises an alarm.
    Program without_reset = build(false);
    HardConfig cfg2;
    cfg2.barrierReset = false;
    HardDetector det2("hard", cfg2);
    runProgram(without_reset, {&det2});
    EXPECT_GT(det2.sink().distinctSiteCount(), 0u)
        << "without §3.5 the barrier pattern must false-alarm";
}

TEST(HardDetector, MetadataDisplacementHidesRace)
{
    // §3.6: the unlocked write's empty candidate set is lost when the
    // line is displaced from the (tiny) metadata store before any
    // other thread touches the variable again.
    // Sequence: x becomes read-Shared; the buggy *unlocked read*
    // empties the candidate set silently (Shared state never
    // reports); the race would surface at the next write in
    // SharedModified — unless the metadata was displaced in between,
    // in which case the line re-enters Virgin and the evidence is
    // gone.
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        Addr spill = b.alloc("spill", 64 * 1024, 32);
        LockAddr l = b.allocLock("l");
        SiteId s = b.site("cs");
        SiteId s_bad = b.site("unlocked.read");
        SiteId s_spill = b.site("spill");

        // t0 initializes x; t1 reads it under the lock -> Shared.
        b.write(0, x, 8, s);
        b.compute(1, 2000);
        b.lock(1, l, s);
        b.read(1, x, 8, s);
        b.unlock(1, l, s);
        // The buggy unlocked read: candidate set goes empty, silently.
        b.read(1, x, 8, s_bad);
        // Thread 0 streams a large buffer: displaces x's metadata.
        b.compute(0, 4000);
        for (Addr a = spill; a < spill + 64 * 1024; a += 32)
            b.read(0, a, 8, s_spill);
        // Much later, thread 0 writes x under the lock: with intact
        // metadata this lands in SharedModified with an empty set.
        b.lock(0, l, s);
        b.write(0, x, 8, s);
        b.unlock(0, l, s);
        return b.finish();
    };

    // Tiny metadata store: the spill displaces everything.
    HardConfig small;
    small.metaGeometry = CacheConfig{4 * 1024, 8, 32, 0};
    HardDetector det_small("hard.small", small);

    // Unbounded store: the race is caught at the unlocked write or at
    // thread 1's next (locked) access.
    HardConfig ideal;
    ideal.unbounded = true;
    HardDetector det_ideal("hard.ideal", ideal);

    Program p = build();
    runProgram(p, {&det_small, &det_ideal});
    EXPECT_EQ(det_small.sink().distinctSiteCount(), 0u)
        << "displacement must lose the candidate-set evidence";
    EXPECT_GT(det_small.hardStats().metadataEvictions, 0u);
    EXPECT_GT(det_ideal.sink().distinctSiteCount(), 0u);
}

TEST(HardDetector, LineGranularityFalseSharesButWordGranularityDoesNot)
{
    // Two adjacent 4-byte counters in one line, each protected by its
    // own lock: clean at 4B granularity, false alarm at 32B (Table 3).
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr pair = b.alloc("pair", 8, 32);
        LockAddr l0 = b.allocLock("l0");
        LockAddr l1 = b.allocLock("l1");
        SiteId s0 = b.site("cs0");
        SiteId s1 = b.site("cs1");
        for (int i = 0; i < 6; ++i) {
            b.lock(0, l0, s0);
            b.read(0, pair, 4, s0);
            b.write(0, pair, 4, s0);
            b.unlock(0, l0, s0);
            b.lock(1, l1, s1);
            b.read(1, pair + 4, 4, s1);
            b.write(1, pair + 4, 4, s1);
            b.unlock(1, l1, s1);
        }
        return b.finish();
    };

    HardConfig coarse;
    coarse.granularityBytes = 32;
    HardConfig fine;
    fine.granularityBytes = 4;
    HardDetector det_coarse("hard.32B", coarse);
    HardDetector det_fine("hard.4B", fine);
    Program p = build();
    runProgram(p, {&det_coarse, &det_fine});
    EXPECT_GT(det_coarse.sink().distinctSiteCount(), 0u);
    EXPECT_EQ(det_fine.sink().distinctSiteCount(), 0u);
}

TEST(HardDetector, BroadcastsOnSharedReadWithChangedCandidateSet)
{
    // §3.4: a read leaving the line in Shared CState with a changed
    // candidate set broadcasts metadata.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    SiteId sr = b.site("rd");

    b.write(0, x, 8, s);
    b.compute(1, 400);
    // Thread 1 reads while holding a lock: line becomes CState Shared
    // in both caches and the candidate set shrinks -> broadcast.
    b.lock(1, l, s);
    b.read(1, x, 8, sr);
    b.unlock(1, l, s);
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    EXPECT_GE(det.hardStats().metaBroadcasts, 1u);
}

TEST(HardDetector, BroadcastChargesBusWhenAttached)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    SiteId s = b.site("s");
    LockAddr l = b.allocLock("l");
    b.write(0, x, 8, s);
    b.compute(1, 400);
    b.lock(1, l, s);
    b.read(1, x, 8, s);
    b.unlock(1, l, s);
    Program p = b.finish();

    SimConfig cfg;
    System sys(cfg, p);
    HardDetector det("hard", HardConfig{}, &sys.memsys().bus());
    sys.addObserver(&det);
    sys.run();
    EXPECT_EQ(sys.memsys().bus().stats().value("txn.MetaBroadcast"),
              det.hardStats().metaBroadcasts);
    EXPECT_GT(det.hardStats().metaBroadcasts, 0u);
}

TEST(HardDetector, SixteenAnd32BitVectorsDetectTheSameRace)
{
    // Table 6: the small candidate sets of real programs make 16-bit
    // and 32-bit BFVectors equivalent for detection.
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        LockAddr l = b.allocLock("l");
        SiteId s = b.site("cs");
        SiteId s_bad = b.site("bad");
        for (int i = 0; i < 4; ++i) {
            b.lock(0, l, s);
            b.write(0, x, 8, s);
            b.unlock(0, l, s);
            b.write(1, x, 8, s_bad);
            b.compute(1, 300);
        }
        return b.finish();
    };
    HardConfig c16, c32;
    c16.bloomBits = 16;
    c32.bloomBits = 32;
    HardDetector d16("hard16", c16), d32("hard32", c32);
    Program p = build();
    runProgram(p, {&d16, &d32});
    EXPECT_EQ(d16.sink().distinctSiteCount(),
              d32.sink().distinctSiteCount());
    EXPECT_GT(d16.sink().distinctSiteCount(), 0u);
}

TEST(HardDetector, LockRegisterTracksHeldLocks)
{
    WorkloadBuilder b("t", 1);
    LockAddr l1 = b.allocLock("l1");
    LockAddr l2 = b.allocLock("l2");
    SiteId s = b.site("s");
    Addr x = b.alloc("x", 8);
    b.lock(0, l1, s);
    b.lock(0, l2, s);
    b.write(0, x, 8, s);
    b.unlock(0, l2, s);
    b.unlock(0, l1, s);
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    // After the run all locks are released.
    EXPECT_EQ(det.lockRegister(0).vector().raw(), 0u);
}

TEST(HardDetector, FreshLineStartsVirginAllOnes)
{
    WorkloadBuilder b("t", 1);
    Addr x = b.alloc("x", 8, 32);
    SiteId s = b.site("s");
    b.read(0, x, 8, s);
    Program p = b.finish();

    HardDetector det("hard", HardConfig{});
    runProgram(p, {&det});
    // First access moved it Virgin -> Exclusive; candidate set is
    // still "all possible locks".
    EXPECT_EQ(det.lstateOf(x), LState::Exclusive);
    EXPECT_EQ(det.bfOf(x), 0xffffu);
}

class HardGranularitySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HardGranularitySweep, MissingLockDetectedAtEveryGranularity)
{
    const unsigned gran = GetParam();
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    SiteId s_bad = b.site("bad");
    for (int i = 0; i < 4; ++i) {
        b.lock(0, l, s);
        b.write(0, x, 8, s);
        b.unlock(0, l, s);
        b.write(1, x, 8, s_bad);
        b.compute(1, 300);
    }
    Program p = b.finish();

    HardConfig cfg;
    cfg.granularityBytes = gran;
    HardDetector det("hard", cfg);
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u) << "gran=" << gran;
}

INSTANTIATE_TEST_SUITE_P(Grans, HardGranularitySweep,
                         ::testing::Values(4u, 8u, 16u, 32u));

} // namespace
} // namespace hard
