/**
 * @file
 * The workload generators are parameterized by thread count; the
 * paper's setup is 4 threads on 4 cores, but the models must stay
 * valid at 2 and 8 threads (and when oversubscribed), since the
 * thread-count extension bench sweeps them.
 */

#include <gtest/gtest.h>

#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "workloads/injector.hh"
#include "workloads/registry.hh"

namespace hard
{
namespace
{

class ThreadCountSweep
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>>
{
};

TEST_P(ThreadCountSweep, BuildsAndRunsAtEveryThreadCount)
{
    auto [app, threads] = GetParam();
    WorkloadParams params;
    params.scale = 0.04;
    params.numThreads = threads;
    // finish() validates structure; building is half the test.
    Program p = buildWorkload(app, params);
    EXPECT_EQ(p.threads.size(), threads);

    SimConfig cfg;
    cfg.memsys.numCores = threads;
    System sys(cfg, p);
    RunResult res = sys.run();
    EXPECT_GT(res.totalCycles, 0u);
    EXPECT_GT(res.lockAcquires, 0u);
}

TEST_P(ThreadCountSweep, DetectionStillWorksWhenInjected)
{
    auto [app, threads] = GetParam();
    WorkloadParams params;
    params.scale = 0.04;
    params.numThreads = threads;

    SharedMap shared(buildWorkload(app, params));
    unsigned caught = 0;
    constexpr unsigned kRuns = 4;
    for (unsigned r = 0; r < kRuns; ++r) {
        Program p = buildWorkload(app, params);
        Injection inj = injectRace(p, 2000 + r, &shared);
        ASSERT_TRUE(inj.valid);
        SimConfig cfg;
        cfg.memsys.numCores = threads;
        HardDetector det("hard", HardConfig{});
        System sys(cfg, p);
        sys.addObserver(&det);
        sys.run();
        for (const auto &rep : det.sink().reports()) {
            if (inj.overlaps(rep.addr, rep.size)) {
                ++caught;
                break;
            }
        }
    }
    EXPECT_GE(caught, kRuns / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, ThreadCountSweep,
    ::testing::Combine(::testing::Values("cholesky", "barnes", "fmm",
                                         "ocean", "water-nsquared",
                                         "raytrace", "server"),
                       ::testing::Values(2u, 8u)));

TEST(ThreadCounts, OversubscribedWorkloadsDetectLikeDedicated)
{
    // 8 threads on 4 cores (time-multiplexed) vs 8 threads on 8
    // cores: HARD's alarms may shift with the interleaving but the
    // runs complete, switch context, and stay deterministic.
    WorkloadParams params;
    params.scale = 0.04;
    params.numThreads = 8;

    Program p1 = buildWorkload("water-nsquared", params);
    SimConfig over;
    over.memsys.numCores = 4;
    System s1(over, p1);
    HardDetector d1("hard", HardConfig{});
    s1.addObserver(&d1);
    RunResult r1 = s1.run();
    EXPECT_GT(r1.contextSwitches, 0u);

    Program p2 = buildWorkload("water-nsquared", params);
    System s2(over, p2);
    HardDetector d2("hard", HardConfig{});
    s2.addObserver(&d2);
    RunResult r2 = s2.run();
    EXPECT_EQ(r1.totalCycles, r2.totalCycles); // determinism
    EXPECT_EQ(d1.sink().sites(), d2.sink().sites());
}

} // namespace
} // namespace hard
