/**
 * @file
 * Tests for the ideal (exact, unbounded) lockset detector, plus the
 * cross-detector property that the Bloom-filter implementation can
 * only hide races relative to the exact one, never invent them.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/hard_detector.hh"
#include "detector_test_util.hh"
#include "detectors/ideal_lockset.hh"

namespace hard
{
namespace
{

TEST(ExactLockset, StartsAsUniverseAndIntersects)
{
    ExactLockset c;
    EXPECT_TRUE(c.isUniverse());
    EXPECT_FALSE(c.empty());
    c.intersect({0x100, 0x200});
    EXPECT_FALSE(c.isUniverse());
    EXPECT_EQ(c.locks().size(), 2u);
    c.intersect({0x200, 0x300});
    EXPECT_EQ(c.locks(), (std::set<LockAddr>{0x200}));
    c.intersect({});
    EXPECT_TRUE(c.empty());
}

TEST(ExactLockset, ResetToUniverseForgetsHistory)
{
    ExactLockset c;
    c.intersect({});
    EXPECT_TRUE(c.empty());
    c.resetToUniverse();
    EXPECT_FALSE(c.empty());
    c.intersect({0x100});
    EXPECT_EQ(c.locks().size(), 1u);
}

TEST(IdealLockset, DetectsMissingLock)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr l = b.allocLock("l");
    SiteId s = b.site("cs");
    SiteId s_bad = b.site("bad");
    for (int i = 0; i < 3; ++i) {
        b.lock(0, l, s);
        b.write(0, x, 8, s);
        b.unlock(0, l, s);
        b.write(1, x, 8, s_bad);
        b.compute(1, 200);
    }
    Program p = b.finish();

    IdealLocksetDetector det("ls", IdealLocksetConfig{});
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
}

TEST(IdealLockset, CommonLockAcrossDifferentLockSetsIsEnough)
{
    // t0 holds {A, B}, t1 holds {B, C}: B is common -> no race.
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr la = b.allocLock("A");
    LockAddr lb = b.allocLock("B");
    LockAddr lc = b.allocLock("C");
    SiteId s = b.site("cs");
    for (int i = 0; i < 4; ++i) {
        b.lock(0, la, s);
        b.lock(0, lb, s);
        b.write(0, x, 8, s);
        b.unlock(0, lb, s);
        b.unlock(0, la, s);
        b.lock(1, lb, s);
        b.lock(1, lc, s);
        b.write(1, x, 8, s);
        b.unlock(1, lc, s);
        b.unlock(1, lb, s);
    }
    Program p = b.finish();

    IdealLocksetDetector det("ls", IdealLocksetConfig{});
    runProgram(p, {&det});
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(IdealLockset, DisjointLockSetsRace)
{
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr la = b.allocLock("A");
    LockAddr lc = b.allocLock("C");
    SiteId s0 = b.site("cs.a");
    SiteId s1 = b.site("cs.c");
    for (int i = 0; i < 4; ++i) {
        b.lock(0, la, s0);
        b.write(0, x, 8, s0);
        b.unlock(0, la, s0);
        b.lock(1, lc, s1);
        b.write(1, x, 8, s1);
        b.unlock(1, lc, s1);
    }
    Program p = b.finish();

    IdealLocksetDetector det("ls", IdealLocksetConfig{});
    runProgram(p, {&det});
    EXPECT_GT(det.sink().distinctSiteCount(), 0u);
}

TEST(IdealLockset, BarrierResetForgivesPhaseChanges)
{
    // Phase 1 protects x with lock A, phase 2 (after a barrier) with
    // lock C. With the reset this is clean; without it, the phase
    // change empties the candidate set.
    auto build = [] {
        WorkloadBuilder b("t", 2);
        Addr x = b.alloc("x", 8, 32);
        LockAddr la = b.allocLock("A");
        LockAddr lc = b.allocLock("C");
        Addr bar = b.allocBarrier("bar");
        SiteId s0 = b.site("phase1");
        SiteId s1 = b.site("phase2");
        SiteId sb = b.site("bar");
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, la, s0);
            b.write(t, x, 8, s0);
            b.unlock(t, la, s0);
        }
        b.barrierAll(bar, sb);
        for (unsigned t = 0; t < 2; ++t) {
            b.lock(t, lc, s1);
            b.write(t, x, 8, s1);
            b.unlock(t, lc, s1);
        }
        return b.finish();
    };

    IdealLocksetConfig with_reset;
    with_reset.barrierReset = true;
    IdealLocksetDetector d1("ls.reset", with_reset);
    Program p1 = build();
    runProgram(p1, {&d1});
    EXPECT_EQ(d1.sink().distinctSiteCount(), 0u);

    IdealLocksetConfig no_reset;
    no_reset.barrierReset = false;
    IdealLocksetDetector d2("ls.noreset", no_reset);
    Program p2 = build();
    runProgram(p2, {&d2});
    EXPECT_GT(d2.sink().distinctSiteCount(), 0u);
}

TEST(IdealLockset, MeasuresSetSizes)
{
    // Two nested locks around the access: the candidate set reaches
    // size 2 and the lock set reaches size 2 (paper §5.2.3 metric).
    WorkloadBuilder b("t", 2);
    Addr x = b.alloc("x", 8, 32);
    LockAddr la = b.allocLock("A");
    LockAddr lb = b.allocLock("B");
    SiteId s = b.site("cs");
    for (unsigned t = 0; t < 2; ++t) {
        b.lock(t, la, s);
        b.lock(t, lb, s);
        b.write(t, x, 8, s);
        b.unlock(t, lb, s);
        b.unlock(t, la, s);
    }
    Program p = b.finish();

    IdealLocksetDetector det("ls", IdealLocksetConfig{});
    runProgram(p, {&det});
    EXPECT_EQ(det.setSizeStats().maxLockset, 2u);
    EXPECT_EQ(det.setSizeStats().maxCandidate, 2u);
    EXPECT_GT(det.setSizeStats().candidateHist[2], 0u);
    EXPECT_EQ(det.sink().distinctSiteCount(), 0u);
}

TEST(IdealLockset, TracksThreadLocksets)
{
    WorkloadBuilder b("t", 1);
    LockAddr la = b.allocLock("A");
    LockAddr lb = b.allocLock("B");
    SiteId s = b.site("s");
    Addr x = b.alloc("x", 8);
    b.lock(0, la, s);
    b.lock(0, lb, s);
    b.write(0, x, 8, s);
    b.unlock(0, lb, s);
    b.unlock(0, la, s);
    Program p = b.finish();

    IdealLocksetDetector det("ls", IdealLocksetConfig{});
    runProgram(p, {&det});
    EXPECT_TRUE(det.lockset(0).empty());
}

/**
 * Property (paper §3.2): the Bloom-filter candidate sets of HARD are
 * a superset approximation of the exact sets, so on the same trace an
 * unbounded, same-granularity HARD never reports a race the ideal
 * lockset does not (it can only *miss* some).
 */
class BloomSoundness : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BloomSoundness, HardReportsAreSubsetOfIdealReports)
{
    Rng rng(GetParam());
    WorkloadBuilder b("t", 4);
    constexpr unsigned kVars = 16;
    constexpr unsigned kLocks = 6;
    Addr vars = b.alloc("vars", kVars * 32, 32);
    std::vector<LockAddr> locks;
    for (unsigned i = 0; i < kLocks; ++i)
        locks.push_back(b.allocLock("L" + std::to_string(i)));
    SiteId site = b.site("rw");
    SiteId slk = b.site("lk");

    // Random lock-protected and occasionally unprotected accesses.
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 200; ++i) {
            Addr v = vars + rng.below(kVars) * 32;
            bool use_lock = rng.chance(0.8);
            LockAddr l = locks[rng.below(kLocks)];
            if (use_lock)
                b.lock(t, l, slk);
            if (rng.chance(0.5))
                b.read(t, v, 8, site);
            else
                b.write(t, v, 8, site);
            if (use_lock)
                b.unlock(t, l, slk);
        }
    }
    Program p = b.finish();

    HardConfig hc;
    hc.granularityBytes = 4;
    hc.unbounded = true;
    HardDetector hd("hard", hc);
    IdealLocksetDetector ls("ideal", IdealLocksetConfig{});
    runProgram(p, {&hd, &ls});

    // Every granule HARD flags must also be flagged by the exact
    // implementation (Bloom intersection over-approximates).
    for (const RaceReport &r : hd.sink().reports()) {
        EXPECT_TRUE(ls.sink().overlaps(r.addr, r.size))
            << "HARD invented a race at " << std::hex << r.addr;
    }
    EXPECT_LE(hd.sink().reports().size(), ls.sink().reports().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BloomSoundness,
                         ::testing::Values(1u, 7u, 23u, 55u, 90u));

TEST(ReportSink, DeduplicatesBySiteAndGranule)
{
    ReportSink sink;
    sink.report({0, 0x100, 32, 5, true, 10});
    sink.report({1, 0x100, 32, 5, true, 20}); // same site+granule
    sink.report({0, 0x200, 32, 5, true, 30}); // same site, new granule
    sink.report({0, 0x100, 32, 6, true, 40}); // new site
    EXPECT_EQ(sink.reports().size(), 3u);
    EXPECT_EQ(sink.distinctSiteCount(), 2u);
    EXPECT_EQ(sink.dynamicCount(), 4u);
    EXPECT_TRUE(sink.overlaps(0x110, 4));
    EXPECT_FALSE(sink.overlaps(0x300, 4));
    sink.clear();
    EXPECT_EQ(sink.dynamicCount(), 0u);
    EXPECT_EQ(sink.reports().size(), 0u);
}

} // namespace
} // namespace hard
