/**
 * @file
 * Campaign orchestration tests: the headline guarantee — a sharded
 * multi-process sweep, with or without injected shard crashes,
 * produces a batch JSON byte-identical to a crash-free single-process
 * run — plus poison-unit quarantine, resume from shard journals, the
 * hard.campaign.v1 report shape, crash-spec parsing, and the per-unit
 * wall-clock timeout satellite.
 *
 * Crash injection forks real shard processes that SIGKILL themselves
 * at the nastiest moments (before a unit, halfway through a journal
 * fwrite, between a trace-cache temp write and its publishing
 * rename), so these tests exercise the genuine torn-state recovery
 * paths, not simulations of them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hh"
#include "harness/batch.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"
#include "throw_test_util.hh"
#include "trace/trace_cache.hh"

namespace hard
{
namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    return p;
}

/** Two healthy items; the second also measures overhead so the unit
 * space covers run == -1. */
std::vector<BatchItem>
healthyItems()
{
    std::vector<BatchItem> items;
    for (const char *app : {"barnes", "water-nsquared"}) {
        BatchItem item;
        item.workload = app;
        item.wp = tinyParams();
        item.sim = defaultSimConfig();
        item.factory = table2Detectors();
        item.runs = 2;
        item.seed0 = 700;
        items.push_back(std::move(item));
    }
    items[1].overhead = true;
    return items;
}

const char *const kSignature = "apps=barnes,water-nsquared;runs=2;"
                               "seed0=700;--scale=0.04";

/** Fresh per-test output base; removes leftovers from prior runs. */
std::string
tempBase(const char *name)
{
    const std::string base = ::testing::TempDir() + name + ".json";
    const std::filesystem::path dir =
        std::filesystem::path(base).parent_path();
    const std::string stem = std::string(name);
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        const std::string leaf = e.path().filename().string();
        if (leaf.rfind(stem, 0) == 0)
            std::filesystem::remove(e.path());
    }
    return base;
}

CampaignOptions
baseOptions(const std::vector<BatchItem> &items, const std::string &base)
{
    CampaignOptions copts;
    copts.shards = 3;
    copts.maxUnitRetries = 3;
    copts.backoffBaseMs = 1; // keep retry tests fast
    copts.outputBase = base;
    copts.signature = kSignature;
    copts.quarantinePayload = [&items](const JournalKey &key,
                                       unsigned attempts) {
        return batchQuarantinePayload(items, key, attempts);
    };
    return copts;
}

/** Run a campaign and merge it exactly like hardsim --campaign does. */
std::string
campaignJson(const std::vector<BatchItem> &items,
             const CampaignOptions &copts, CampaignResult *campOut,
             ExecMode mode = ExecMode::Cycle,
             TraceCache *cache = nullptr)
{
    CampaignResult camp = runCampaign(batchCampaignUnits(items), copts,
                                      makeBatchShardBody(items, 0, cache));
    BatchOptions merge;
    merge.keepGoing = true;
    merge.restored = &camp.entries;
    RunPool serial(1);
    const std::string doc =
        batchJson(runBatch(items, serial, merge), mode).dump(2);
    if (campOut != nullptr)
        *campOut = std::move(camp);
    return doc;
}

std::string
referenceJson(const std::vector<BatchItem> &items,
              ExecMode mode = ExecMode::Cycle)
{
    RunPool serial(1);
    BatchOptions opts;
    opts.keepGoing = true;
    return batchJson(runBatch(items, serial, opts), mode).dump(2);
}

TEST(Campaign, MergesByteIdenticalAcrossShardCounts)
{
    const std::vector<BatchItem> items = healthyItems();
    const std::string reference = referenceJson(items);

    for (unsigned shards : {1u, 3u}) {
        const std::string base = tempBase("hard_campaign_shards");
        CampaignOptions copts = baseOptions(items, base);
        copts.shards = shards;
        CampaignResult camp;
        EXPECT_EQ(campaignJson(items, copts, &camp), reference)
            << "shards=" << shards;
        EXPECT_TRUE(camp.quarantined.empty());
        EXPECT_EQ(camp.counters.shardCrashes, 0u);
        // Every unit journaled exactly once across the shard files.
        EXPECT_EQ(camp.entries.size(), batchCampaignUnits(items).size());
    }
}

TEST(Campaign, PreUnitCrashIsRetriedAndConverges)
{
    const std::vector<BatchItem> items = healthyItems();
    const std::string reference = referenceJson(items);

    const std::string base = tempBase("hard_campaign_preunit");
    CampaignOptions copts = baseOptions(items, base);
    copts.injectCrash = parseCrashSpec("0.1:pre-unit");
    CampaignResult camp;
    EXPECT_EQ(campaignJson(items, copts, &camp), reference);
    EXPECT_TRUE(camp.quarantined.empty());
    EXPECT_EQ(camp.counters.injectedCrashes, 1u);
    EXPECT_GE(camp.counters.shardCrashes, 1u);
    EXPECT_GE(camp.counters.retries, 1u);
    EXPECT_EQ(camp.attempts.at({0, 1}), 1u);
}

TEST(Campaign, MidJournalWriteCrashLeavesTornLineAndConverges)
{
    const std::vector<BatchItem> items = healthyItems();
    const std::string reference = referenceJson(items);

    const std::string base = tempBase("hard_campaign_midjournal");
    CampaignOptions copts = baseOptions(items, base);
    // The overhead unit of item 1: the torn record is a half-written
    // overhead payload, the nastiest restore shape.
    copts.injectCrash = parseCrashSpec("1.overhead:mid-journal-write");
    CampaignResult camp;
    EXPECT_EQ(campaignJson(items, copts, &camp), reference);
    EXPECT_TRUE(camp.quarantined.empty());
    EXPECT_GE(camp.counters.shardCrashes, 1u);
    EXPECT_EQ(camp.attempts.at({1, -1}), 1u);
}

TEST(Campaign, MidCacheStoreCrashOrphansTempAndConverges)
{
    // Fast mode with a shared trace cache: the armed shard dies after
    // writing the recording's temp file but before the rename
    // publishes it. The retry re-records, the orphan stays unswept
    // (it is young), and the merged document still matches a
    // crash-free fast-mode run.
    std::vector<BatchItem> items;
    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.factory = table2Detectors();
    item.runs = 2;
    item.seed0 = 700;
    item.mode = ExecMode::Fast;
    items.push_back(std::move(item));

    const std::string cacheDir =
        ::testing::TempDir() + "hard_campaign_tcache";
    std::filesystem::remove_all(cacheDir);
    TraceCache cache(cacheDir);
    for (BatchItem &it : items)
        it.traceCache = &cache;

    const std::string base = tempBase("hard_campaign_midstore");
    CampaignOptions copts = baseOptions(items, base);
    copts.injectCrash = parseCrashSpec("0.0:mid-cache-store");
    CampaignResult camp;
    const std::string merged =
        campaignJson(items, copts, &camp, ExecMode::Fast, &cache);
    EXPECT_TRUE(camp.quarantined.empty());
    EXPECT_GE(camp.counters.shardCrashes, 1u);

    unsigned orphans = 0;
    for (const auto &e : std::filesystem::directory_iterator(cacheDir))
        if (e.path().filename().string().rfind(".tmp.", 0) == 0)
            ++orphans;
    EXPECT_GE(orphans, 1u);

    // Crash-free fast-mode reference over a *fresh* cache (the
    // campaign's cache holds recordings now; a shared one would only
    // change hit counters, never results, but fresh keeps the
    // comparison honest).
    const std::string refDir =
        ::testing::TempDir() + "hard_campaign_tcache_ref";
    std::filesystem::remove_all(refDir);
    TraceCache refCache(refDir);
    std::vector<BatchItem> refItems = items;
    for (BatchItem &it : refItems)
        it.traceCache = &refCache;
    EXPECT_EQ(merged, referenceJson(refItems, ExecMode::Fast));

    // An offline sweep (TTL 0) reclaims the orphan.
    TraceCache sweeper(cacheDir, 0);
    EXPECT_GE(sweeper.counters().evictedOrphan, 1u);
}

TEST(Campaign, ExtendedGrammarWorkloadMergesByteIdenticalInFastMode)
{
    // rwcache exercises rwlock/condvar/atomic events end to end: the
    // sharded fast-mode campaign (recording traces with the extended
    // event kinds into a shared cache) must merge byte-identical to a
    // crash-free single-process fast-mode run over a fresh cache.
    std::vector<BatchItem> items;
    BatchItem item;
    item.workload = "rwcache";
    item.wp = tinyParams();
    item.sim = defaultSimConfig();
    item.factory = table2Detectors();
    item.runs = 2;
    item.seed0 = 700;
    item.mode = ExecMode::Fast;
    items.push_back(std::move(item));

    const std::string cacheDir =
        ::testing::TempDir() + "hard_rwcache_cache";
    std::filesystem::remove_all(cacheDir);
    TraceCache cache(cacheDir);
    for (BatchItem &it : items)
        it.traceCache = &cache;

    const std::string base = tempBase("hard_campaign_rwcache");
    CampaignOptions copts = baseOptions(items, base);
    CampaignResult camp;
    const std::string merged =
        campaignJson(items, copts, &camp, ExecMode::Fast, &cache);
    EXPECT_TRUE(camp.quarantined.empty());
    EXPECT_EQ(camp.counters.shardCrashes, 0u);
    EXPECT_EQ(camp.entries.size(), batchCampaignUnits(items).size());

    const std::string refDir =
        ::testing::TempDir() + "hard_rwcache_cache_ref";
    std::filesystem::remove_all(refDir);
    TraceCache refCache(refDir);
    std::vector<BatchItem> refItems = items;
    for (BatchItem &it : refItems)
        it.traceCache = &refCache;
    EXPECT_EQ(merged, referenceJson(refItems, ExecMode::Fast));
}

TEST(Campaign, PoisonUnitIsQuarantinedAndReported)
{
    const std::vector<BatchItem> items = healthyItems();
    const std::string base = tempBase("hard_campaign_poison");
    CampaignOptions copts = baseOptions(items, base);
    copts.maxUnitRetries = 2;
    copts.injectCrash = parseCrashSpec("0.0:pre-unit:99");
    CampaignResult camp;
    const std::string merged = campaignJson(items, copts, &camp);

    ASSERT_EQ(camp.quarantined.size(), 1u);
    EXPECT_EQ(camp.quarantined[0], (JournalKey{0, 0}));
    EXPECT_EQ(camp.attempts.at({0, 0}), 2u);

    // The synthesized payload flows through the ordinary merge: the
    // document carries the quarantined run as a contained failure and
    // every other unit matches the crash-free sweep.
    std::string perr;
    Json doc = Json::parse(merged, &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    bool found = false;
    for (std::size_t i = 0; i < doc["errors"].size(); ++i) {
        const Json &e = doc["errors"].at(i);
        if (e["outcome"].asString() != "quarantined")
            continue;
        found = true;
        EXPECT_EQ(e["errorType"].asString(), "ShardCrashError");
    }
    EXPECT_TRUE(found);

    // The final report records the quarantine explicitly.
    const Json &report = camp.report;
    EXPECT_EQ(report["schema"].asString(), kCampaignSchema);
    EXPECT_EQ(report["state"].asString(), "complete");
    ASSERT_EQ(report["quarantined"].size(), 1u);
    EXPECT_EQ(report["quarantined"].at(0)["item"].asUint(), 0u);
    EXPECT_EQ(report["quarantined"].at(0)["run"].asInt(), 0);
}

TEST(Campaign, ResumeRestoresEveryUnitWithoutSpawning)
{
    const std::vector<BatchItem> items = healthyItems();
    const std::string reference = referenceJson(items);
    const std::string base = tempBase("hard_campaign_resume");

    CampaignOptions copts = baseOptions(items, base);
    copts.shards = 2;
    CampaignResult first;
    EXPECT_EQ(campaignJson(items, copts, &first), reference);

    // Second campaign over the same output base: every unit restores
    // from the shard journals on disk; no shard is ever forked.
    copts.resume = true;
    CampaignResult resumed;
    EXPECT_EQ(campaignJson(items, copts, &resumed), reference);
    EXPECT_EQ(resumed.counters.shardsSpawned, 0u);
    EXPECT_EQ(resumed.counters.restored,
              batchCampaignUnits(items).size());
}

TEST(Campaign, ReportShapeAndManifestPathing)
{
    EXPECT_EQ(campaignManifestPathFor("results/sweep.json"),
              "results/sweep.campaign.json");
    EXPECT_EQ(shardJournalPathFor("results/sweep.json", 4),
              "results/sweep.shard-4.journal.jsonl");

    const std::vector<BatchItem> items = healthyItems();
    const std::string base = tempBase("hard_campaign_report");
    CampaignOptions copts = baseOptions(items, base);
    CampaignResult camp;
    campaignJson(items, copts, &camp);

    const Json &report = camp.report;
    EXPECT_EQ(report["schema"].asString(), kCampaignSchema);
    EXPECT_EQ(report["signature"].asString(), kSignature);
    EXPECT_EQ(report["state"].asString(), "complete");
    const std::size_t total = batchCampaignUnits(items).size();
    EXPECT_EQ(report["unitsTotal"].asUint(), total);
    ASSERT_EQ(report["units"].size(), total);
    for (std::size_t i = 0; i < report["units"].size(); ++i) {
        const std::string outcome =
            report["units"].at(i)["outcome"].asString();
        EXPECT_TRUE(outcome == "completed" || outcome == "restored")
            << outcome;
    }
    for (const char *key :
         {"shardsSpawned", "shardExitsOk", "shardCrashes", "shardStalls",
          "retries", "restored", "injectedCrashes"})
        EXPECT_TRUE(report["counters"].has(key)) << key;

    // The report on disk is the same document.
    EXPECT_TRUE(
        std::filesystem::exists(campaignManifestPathFor(base)));
}

TEST(Campaign, CrashSpecParsing)
{
    CrashSpec spec = parseCrashSpec("3.-1:mid-cache-store:5");
    EXPECT_TRUE(spec.valid);
    EXPECT_EQ(spec.item, 3u);
    EXPECT_EQ(spec.run, -1);
    EXPECT_EQ(spec.kind, CrashSpec::Kind::MidCacheStore);
    EXPECT_EQ(spec.times, 5u);

    spec = parseCrashSpec("0.overhead:pre-unit");
    EXPECT_EQ(spec.run, -1);
    EXPECT_EQ(spec.times, 1u);
    EXPECT_EQ(parseCrashSpec("1.2:mid-journal-write").kind,
              CrashSpec::Kind::MidJournalWrite);

    HARD_EXPECT_THROW_MSG(parseCrashSpec(""), ConfigError,
                          "inject-shard-crash");
    HARD_EXPECT_THROW_MSG(parseCrashSpec("0.0:no-such-kind"),
                          ConfigError, "no-such-kind");
    HARD_EXPECT_THROW_MSG(parseCrashSpec("0.0:pre-unit:0"), ConfigError,
                          "inject-shard-crash");
}

TEST(Campaign, UnitTimeoutProducesTimeoutOutcome)
{
    // A per-unit wall-clock budget catches a unit that would outlive
    // any reasonable slice of the sweep. 1 ms against a deliberately
    // oversized workload trips quickly and deterministically in
    // outcome (never in exact timing, which is why timeouts stay out
    // of trace-cache keys and overhead rows).
    BatchItem item;
    item.workload = "barnes";
    item.wp = tinyParams();
    item.wp.scale = 0.6;
    item.sim = defaultSimConfig();
    item.factory = table2Detectors();
    item.runs = 0; // race-free run only
    RunPool serial(1);
    BatchOptions opts;
    opts.keepGoing = true;
    opts.unitTimeoutMs = 1;
    std::vector<BatchItemResult> results =
        runBatch({item}, serial, opts);
    ASSERT_EQ(results[0].runDetail.size(), 1u);
    EXPECT_EQ(results[0].runDetail[0].outcome, "timeout");
    EXPECT_EQ(results[0].runDetail[0].errorType, "TimeoutError");

    // An item-level budget wins over the sweep-wide one.
    item.sim.wallMsBudget = 60'000;
    results = runBatch({item}, serial, opts);
    EXPECT_EQ(results[0].runDetail[0].outcome, "ok");
}

} // namespace
} // namespace hard
