#!/usr/bin/env python3
"""Maintain and gate the performance trajectory (BENCH_trajectory.json).

The trajectory is a hard.bench.trajectory.v1 document: an append-only
series of benchmark points. Two point kinds share the file:

  fastmode  one per recorded run of build/bench/bench_fastmode:
            cycle/fastCold/fastWarm runs per second plus the
            interleaving replay-vs-sim speedup
  frontier  one per recorded run of build/bench/bench_frontier (the
            server workload's overhead-vs-latency frontier): coverage,
            metadata traffic, and bus occupancy at full monitoring
            rate

Each point carries the bench configuration and a host fingerprint, so
the repo's performance history is committed alongside the code and CI
can fail on regressions instead of silently drifting.

Modes (exactly one):
  --migrate BENCH.json     seed the trajectory from an existing
                           committed baseline (fastmode or frontier,
                           recognized by schema); the point is marked
                           source "migrated" with host "unknown", so
                           the regression gate never compares fresh
                           runs against it (the machine that produced
                           it is unknowable)
  --from-bench BENCH.json  append a point from an existing bench
                           output (schema picks the point kind),
                           fingerprinted to this host, and run the
                           regression gate
  --run                    run build/bench/bench_fastmode (at --runs/
                           --scale/--jobs) into a temp file, then
                           append + gate as with --from-bench
  --run-frontier           same, but run build/bench/bench_frontier
                           (the server-workload frontier point)
  --check                  structurally validate the committed
                           trajectory and exit (CI uses this on the
                           checked-in file)

The regression gate compares the new point against the LATEST prior
point with the SAME config (units/runs/scale/jobs) and the SAME host
fingerprint (arch + cpu count): >--max-regression (default 15%)
drop in cycle or fast-warm runs/sec fails with exit 1. No comparable
prior point — different host, different scale — passes with a note;
cross-machine comparisons are noise, not signal.

Examples:
  scripts/bench_trajectory.py --migrate BENCH_fastmode.json
  scripts/bench_trajectory.py --run --runs 2 --scale 0.2
  scripts/bench_trajectory.py --check
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile

SCHEMA = "hard.bench.trajectory.v1"
POINT_SOURCES = {"migrated", "bench"}
# Metric sets per point kind; points without a "bench" field predate
# the frontier kind and are fastmode points.
METRICS_BY_KIND = {
    "fastmode": ("cycleRunsPerSec", "fastColdRunsPerSec",
                 "fastWarmRunsPerSec", "replayVsSim"),
    "frontier": ("coverageAtFull", "metaKBAtFull",
                 "busOccupancyPctAtFull"),
}
# The gate watches the metrics users feel: full-simulation and
# warm-cache throughput (fastmode), full-rate detection coverage
# (frontier — a coverage drop at rate 1.0 is a detection regression,
# not noise).
GATED_METRICS_BY_KIND = {
    "fastmode": ("cycleRunsPerSec", "fastWarmRunsPerSec"),
    "frontier": ("coverageAtFull",),
}


def point_kind(point):
    return point.get("bench", "fastmode")


def fail(msg):
    raise SystemExit(f"bench_trajectory: {msg}")


def host_fingerprint():
    return {"arch": platform.machine() or "unknown",
            "cpus": os.cpu_count() or 0}


def load_trajectory(path):
    if not os.path.exists(path):
        return {"schema": SCHEMA, "points": []}
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected "
             f"'{SCHEMA}' — unknown or future trajectory version")
    if not isinstance(doc.get("points"), list):
        fail(f"{path}: missing 'points' array")
    return doc


def frontier_point_fields(bench, scale):
    """Config and metrics of a frontier point: the full-monitoring
    (rate 1.0) point of a hard.frontier.v1 sweep."""
    full = None
    for pt in bench["points"]:
        if pt["rate"] == 1.0:
            full = pt
    if full is None:
        fail("frontier sweep has no rate-1.0 point to track")
    dets = full["detectors"]
    if not dets:
        fail("frontier rate-1.0 point has no detectors")
    det = dets[sorted(dets)[0]]
    ov = full["overhead"]
    if ov["outcome"] != "ok":
        fail(f"frontier rate-1.0 overhead leg is {ov['outcome']!r}")
    config = {
        "workload": bench["workload"],
        "rates": len(bench["points"]),
        "runs": bench["runs"],
        "scale": scale,
    }
    metrics = {
        "coverageAtFull": det["coverage"],
        "metaKBAtFull": ov["metaBytes"] / 1024.0,
        "busOccupancyPctAtFull": ov["busOccupancyPct"],
    }
    return config, metrics


def point_from_bench(bench_path, source, host, scale=None):
    with open(bench_path) as f:
        bench = json.load(f)
    schema = bench.get("schema")
    try:
        if schema == "hard.bench.fastmode.v1":
            point = {
                "source": source,
                "date": datetime.date.today().isoformat(),
                "host": host,
                "config": {
                    "units": bench["units"],
                    "runsPerWorkload": bench["runsPerWorkload"],
                    "scale": bench["scale"],
                    "jobs": bench["jobs"],
                },
                "metrics": {
                    "cycleRunsPerSec": bench["cycle"]["runsPerSec"],
                    "fastColdRunsPerSec":
                        bench["fastCold"]["runsPerSec"],
                    "fastWarmRunsPerSec":
                        bench["fastWarm"]["runsPerSec"],
                    "replayVsSim": bench["speedup"]["replayVsSim"],
                },
            }
        elif schema == "hard.frontier.v1":
            config, metrics = frontier_point_fields(bench, scale)
            point = {
                "source": source,
                "bench": "frontier",
                "date": datetime.date.today().isoformat(),
                "host": host,
                "config": config,
                "metrics": metrics,
            }
        else:
            fail(f"{bench_path}: schema is {schema!r}, expected "
                 "'hard.bench.fastmode.v1' or 'hard.frontier.v1'")
    except KeyError as e:
        fail(f"{bench_path}: missing field {e}")
    return point


def check_point(point, where):
    if point.get("source") not in POINT_SOURCES:
        fail(f"{where}: source {point.get('source')!r} not in "
             f"{sorted(POINT_SOURCES)}")
    kind = point_kind(point)
    if kind not in METRICS_BY_KIND:
        fail(f"{where}: bench kind {kind!r} not in "
             f"{sorted(METRICS_BY_KIND)}")
    host = point.get("host")
    if host != "unknown" and not (isinstance(host, dict)
                                  and "arch" in host and "cpus" in host):
        fail(f"{where}: bad host fingerprint {host!r}")
    config = point.get("config")
    if not isinstance(config, dict):
        fail(f"{where}: missing 'config'")
    config_fields = (("workload", "rates", "runs", "scale")
                     if kind == "frontier"
                     else ("units", "runsPerWorkload", "scale", "jobs"))
    for field in config_fields:
        if field not in config:
            fail(f"{where}: config missing {field!r}")
    metrics = point.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{where}: missing 'metrics'")
    for name in METRICS_BY_KIND[kind]:
        val = metrics.get(name)
        if not isinstance(val, (int, float)) or val <= 0:
            fail(f"{where}: metric {name} is {val!r}")


def check_trajectory(doc, path):
    for i, point in enumerate(doc["points"]):
        check_point(point, f"{path}: point {i}")
    print(f"ok: {path} ({SCHEMA}, {len(doc['points'])} points)")


def comparable(prior, new):
    """A prior point gates a new one only when the measurement is
    apples-to-apples: same bench config on the same class of host."""
    return (point_kind(prior) == point_kind(new)
            and prior.get("config") == new["config"]
            and prior.get("host") == new["host"]
            and prior.get("source") == "bench")


def gate(doc, new, max_regression):
    prior = None
    for point in doc["points"]:
        if comparable(point, new):
            prior = point  # keep the latest comparable point
    if prior is None:
        print("bench_trajectory: no comparable prior point "
              "(new host or config) — gate passes vacuously")
        return
    failures = []
    for name in GATED_METRICS_BY_KIND[point_kind(new)]:
        before = prior["metrics"][name]
        after = new["metrics"][name]
        drop = (before - after) / before
        marker = "REGRESSION" if drop > max_regression else "ok"
        print(f"bench_trajectory: {name}: {before:.3f} -> {after:.3f} "
              f"({-drop * 100.0:+.1f}%) [{marker}]")
        if drop > max_regression:
            failures.append(name)
    if failures:
        fail(f"performance regression beyond the "
             f"{max_regression * 100.0:.0f}% noise band in: "
             f"{', '.join(failures)} (prior point dated "
             f"{prior.get('date', '?')})")


def run_bench(args, name):
    bench = os.path.join(args.builddir, "bench", name)
    if not os.access(bench, os.X_OK):
        fail(f"{bench} not built (cmake --build {args.builddir} "
             f"--target {name})")
    out = tempfile.NamedTemporaryFile(
        suffix=".json", prefix="bench_trajectory.", delete=False)
    out.close()
    cache = tempfile.mkdtemp(prefix="bench_trajectory.cache.")
    cmd = [bench, f"--runs={args.runs}", f"--scale={args.scale}",
           f"--jobs={args.jobs}", f"--out={out.name}",
           f"--cache={cache}"]
    print("bench_trajectory: +", " ".join(cmd))
    subprocess.run(cmd, check=True)
    return out.name


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--migrate", metavar="BENCH.json",
                      help="seed the trajectory from a committed "
                           "hard.bench.fastmode.v1 baseline")
    mode.add_argument("--from-bench", metavar="BENCH.json",
                      help="append a point from an existing bench "
                           "output and run the regression gate")
    mode.add_argument("--run", action="store_true",
                      help="run bench_fastmode, append the point, and "
                           "run the regression gate")
    mode.add_argument("--run-frontier", action="store_true",
                      help="run bench_frontier (server workload), "
                           "append the point, and run the gate")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed trajectory and exit")
    ap.add_argument("--trajectory", default="BENCH_trajectory.json",
                    help="trajectory file (BENCH_trajectory.json)")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="gate threshold as a fraction (0.15 = fail on "
                         ">15%% runs/sec drop)")
    ap.add_argument("--no-gate", action="store_true",
                    help="append without gating (bootstrap on a new "
                         "host)")
    ap.add_argument("--runs", type=int, default=10,
                    help="--run: injected runs per workload (10)")
    ap.add_argument("--scale", type=float, default=1.0,
                    help="--run: workload scale (1.0)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="--run: worker threads (0 = all cores)")
    ap.add_argument("--builddir", default="build",
                    help="--run: CMake build directory (build)")
    args = ap.parse_args()

    doc = load_trajectory(args.trajectory)

    if args.check:
        if not os.path.exists(args.trajectory):
            fail(f"{args.trajectory} does not exist")
        if not doc["points"]:
            fail(f"{args.trajectory}: empty trajectory")
        check_trajectory(doc, args.trajectory)
        return

    if args.migrate:
        point = point_from_bench(args.migrate, "migrated", "unknown",
                                 scale=args.scale)
        point.pop("date")  # the original measurement date is unknown
    else:
        if args.from_bench:
            bench_path = args.from_bench
        else:
            bench_path = run_bench(
                args,
                "bench_frontier" if args.run_frontier
                else "bench_fastmode")
        point = point_from_bench(bench_path, "bench",
                                 host_fingerprint(), scale=args.scale)
        check_point(point, "new point")
        if not args.no_gate:
            gate(doc, point, args.max_regression)

    doc["points"].append(point)
    with open(args.trajectory, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"bench_trajectory: appended point {len(doc['points'])} "
          f"to {args.trajectory}")


if __name__ == "__main__":
    sys.exit(main())
