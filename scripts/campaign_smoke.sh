#!/usr/bin/env bash
# Campaign crash-tolerance smoke (docs/campaigns.md, CI campaign-smoke).
#
# Exercises the headline guarantee end to end through the real CLIs:
# a sharded multi-process sweep — including runs where shards are
# SIGKILLed before a unit, halfway through a journal write, and
# between a trace-cache temp write and its publishing rename —
# produces a result document byte-identical to the crash-free
# single-process sweep. Also demonstrates poison-unit quarantine
# (non-zero exit + explicit report) and validates every
# hard.campaign.v1 report with scripts/check_telemetry.py --campaign.
#
# Stages:
#   1. hardsim reference:   --batch --jobs=1
#   2. hardsim campaigns:   clean shards=3, pre-unit crash,
#      mid-journal-write crash — all byte-identical to (1)
#   3. fast-mode campaign:  mid-cache-store crash, byte-identical to a
#      crash-free fast-mode reference; the orphaned cache temp file is
#      swept on the next cache open
#   4. quarantine:          a unit that always kills its shard exits 1
#      and is reported quarantined
#   5. hardfuzz campaign:   clean + crashed sweeps byte-identical to
#      --jobs single-process fuzzing
#
# Usage: scripts/campaign_smoke.sh [-B BUILDDIR]
set -euo pipefail

builddir="build"
while getopts "B:h" opt; do
    case "$opt" in
        B) builddir="$OPTARG" ;;
        h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) exit 2 ;;
    esac
done

hardsim="$builddir/tools/hardsim"
hardfuzz="$builddir/tools/hardfuzz"
check="scripts/check_telemetry.py"
[ -x "$hardsim" ] || { echo "campaign_smoke: $hardsim not built" >&2; exit 2; }
[ -x "$hardfuzz" ] || { echo "campaign_smoke: $hardfuzz not built" >&2; exit 2; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

sweep="--workload=barnes,water-nsquared --runs=2 --scale=0.05"

# ---------------------------------------------------------------------
# 1. Crash-free single-process reference.
echo "campaign_smoke: single-process reference" >&2
"$hardsim" --batch $sweep --jobs=1 --json="$work/ref.json" > /dev/null

# ---------------------------------------------------------------------
# 2. Sharded campaigns, clean and with injected crashes, all
#    byte-identical to the reference.
run_campaign() {
    local json="$1"; shift
    "$hardsim" --campaign $sweep --shards=3 --retry-backoff-ms=1 \
        --json="$json" "$@" > /dev/null
}
echo "campaign_smoke: clean campaign (shards=3)" >&2
run_campaign "$work/clean.json"
cmp "$work/ref.json" "$work/clean.json"

echo "campaign_smoke: pre-unit SIGKILL" >&2
run_campaign "$work/preunit.json" --inject-shard-crash=0.1:pre-unit
cmp "$work/ref.json" "$work/preunit.json"

echo "campaign_smoke: SIGKILL mid-journal-write" >&2
run_campaign "$work/midj.json" --inject-shard-crash=1.0:mid-journal-write
cmp "$work/ref.json" "$work/midj.json"

python3 "$check" --campaign "$work/clean.campaign.json" \
    --campaign "$work/preunit.campaign.json" \
    --campaign "$work/midj.campaign.json"

# ---------------------------------------------------------------------
# 3. Fast mode: SIGKILL between the trace-cache temp write and the
#    publishing rename; the retry converges and the orphan is swept.
echo "campaign_smoke: SIGKILL mid-cache-store (fast mode)" >&2
"$hardsim" --campaign $sweep --shards=2 --retry-backoff-ms=1 \
    --mode=fast --trace-cache="$work/tc" \
    --inject-shard-crash=0.0:mid-cache-store \
    --json="$work/midstore.json" > /dev/null
orphans=$(find "$work/tc" -name '.tmp.*' | wc -l)
[ "$orphans" -ge 1 ] || {
    echo "campaign_smoke: expected an orphaned cache temp file" >&2
    exit 1
}
"$hardsim" --batch $sweep --jobs=1 --mode=fast \
    --trace-cache="$work/tc-ref" --json="$work/fastref.json" > /dev/null
cmp "$work/fastref.json" "$work/midstore.json"
# A maintenance open with --trace-cache-sweep-age=0 reclaims the orphan.
"$hardsim" --workload=barnes --scale=0.05 --mode=fast \
    --trace-cache="$work/tc" --trace-cache-sweep-age=0 \
    --trace-cache-stats="$work/tcstats.json" > /dev/null
orphans=$(find "$work/tc" -name '.tmp.*' | wc -l)
[ "$orphans" -eq 0 ] || {
    echo "campaign_smoke: orphaned temp file survived the sweep" >&2
    exit 1
}
python3 "$check" --campaign "$work/midstore.campaign.json" \
    --cache-stats "$work/tcstats.json"

# ---------------------------------------------------------------------
# 4. Poison unit: always kills its shard, must be quarantined and
#    reflected in the exit status.
echo "campaign_smoke: poison-unit quarantine" >&2
if run_campaign "$work/poison.json" --max-unit-retries=1 \
    --inject-shard-crash=0.2:pre-unit:99; then
    echo "campaign_smoke: quarantine must exit non-zero" >&2
    exit 1
fi
grep -q '"quarantined"' "$work/poison.campaign.json" || {
    echo "campaign_smoke: quarantine missing from the report" >&2
    exit 1
}
python3 "$check" --campaign "$work/poison.campaign.json"

# ---------------------------------------------------------------------
# 5. The fuzz front-end rides the same supervisor.
echo "campaign_smoke: hardfuzz campaign" >&2
fuzz="--seeds 0..7 --ops=12 --phases=2"
"$hardfuzz" $fuzz --jobs=2 --json="$work/fref.json" > /dev/null
"$hardfuzz" --campaign $fuzz --shards=3 --retry-backoff-ms=1 \
    --json="$work/fcamp.json" > /dev/null
cmp "$work/fref.json" "$work/fcamp.json"
"$hardfuzz" --campaign $fuzz --shards=2 --retry-backoff-ms=1 \
    --inject-shard-crash=3.0:mid-journal-write \
    --json="$work/fcrash.json" > /dev/null
cmp "$work/fref.json" "$work/fcrash.json"
python3 "$check" --campaign "$work/fcamp.campaign.json" \
    --campaign "$work/fcrash.campaign.json"

echo "campaign_smoke: all checks passed" >&2
