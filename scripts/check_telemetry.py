#!/usr/bin/env python3
"""Validate hardsim telemetry outputs (CI smoke check).

Checks, using nothing but the standard library:

  - a hard.stats.v1 document (--stats):    schema tag, hierarchical
    group shape, required machine groups, counter types
  - a hard.intervals.v1 series (--intervals): header line, declared
    probes present in every row, strictly increasing cycles
  - a Chrome/Perfetto trace_event file (--trace): traceEvents array,
    required per-event keys, category vocabulary, non-negative
    timestamps/durations
  - a hard.batch.v2 document (--batch [--expect-stats]): schema tag
    and, with --expect-stats, an embedded hard.stats.v1 block per run
    plus baseStats/hardStats on every measured overhead unit

Exits non-zero with a per-file report on the first structural problem.
"""

import argparse
import json
import sys

MACHINE_GROUPS = ("bus", "l2", "memsys", "system")
TRACE_PHASES = {"X", "i", "M"}
TRACE_CATEGORIES = {"mem", "coherence", "detector", "sync"}


def fail(msg):
    raise SystemExit(f"check_telemetry: {msg}")


def check_stats_doc(doc, where):
    if doc.get("schema") != "hard.stats.v1":
        fail(f"{where}: schema is {doc.get('schema')!r}, "
             "expected 'hard.stats.v1'")
    groups = doc.get("groups")
    if not isinstance(groups, dict) or not groups:
        fail(f"{where}: missing or empty 'groups'")
    for name in MACHINE_GROUPS:
        if name not in groups:
            fail(f"{where}: machine group {name!r} missing "
                 f"(have {sorted(groups)})")
    for name, group in groups.items():
        if not isinstance(group, dict):
            fail(f"{where}: group {name!r} is not an object")
        for stat, value in group.get("counters", {}).items():
            if not isinstance(value, int) or value < 0:
                fail(f"{where}: counter {name}.{stat} is {value!r}")
        for stat, hist in group.get("histograms", {}).items():
            if sum(hist["buckets"]) != hist["count"]:
                fail(f"{where}: histogram {name}.{stat} bucket sum "
                     f"{sum(hist['buckets'])} != count {hist['count']}")


def check_stats(path):
    with open(path) as f:
        check_stats_doc(json.load(f), path)
    print(f"ok: {path} (hard.stats.v1)")


def check_intervals(path):
    with open(path) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    if len(lines) < 2:
        fail(f"{path}: expected a header and at least one row")
    header, rows = lines[0], lines[1:]
    if header.get("schema") != "hard.intervals.v1":
        fail(f"{path}: header schema is {header.get('schema')!r}")
    if not isinstance(header.get("interval"), int) or header["interval"] <= 0:
        fail(f"{path}: bad interval {header.get('interval')!r}")
    probes = [p["name"] for p in header.get("probes", [])]
    if not probes:
        fail(f"{path}: header declares no probes")
    prev = -1
    for i, row in enumerate(rows):
        cycle = row.get("cycle")
        if not isinstance(cycle, int) or cycle <= prev:
            fail(f"{path}: row {i}: cycle {cycle!r} not increasing "
                 f"(prev {prev})")
        prev = cycle
        for name in probes:
            if name not in row:
                fail(f"{path}: row {i}: probe {name!r} missing")
    print(f"ok: {path} (hard.intervals.v1, {len(rows)} rows)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty 'traceEvents'")
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in TRACE_PHASES:
            fail(f"{path}: event {i}: unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i}: missing {key!r}")
        if ph == "M":
            continue
        if e.get("cat") not in TRACE_CATEGORIES:
            fail(f"{path}: event {i}: unknown category {e.get('cat')!r}")
        if e.get("ts", -1) < 0:
            fail(f"{path}: event {i}: bad ts {e.get('ts')!r}")
        if ph == "X" and e.get("dur", -1) < 0:
            fail(f"{path}: event {i}: complete event without dur")
    print(f"ok: {path} (trace_event, {len(events)} events)")


def check_batch(path, expect_stats):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hard.batch.v2":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if expect_stats:
        hs = doc.get("harnessStats", {})
        if hs.get("schema") != "hard.stats.v1":
            fail(f"{path}: harnessStats schema is {hs.get('schema')!r}")
        if "harness" not in hs.get("groups", {}):
            fail(f"{path}: harnessStats has no 'harness' group")
    runs = overheads = 0
    for item in doc.get("items", []):
        for run in item.get("effectiveness", {}).get("perRun", []):
            runs += 1
            if expect_stats and run.get("outcome", "ok") == "ok":
                if "stats" not in run:
                    fail(f"{path}: {item['label']} run {run['index']}: "
                         "no embedded stats block")
                check_stats_doc(run["stats"],
                                f"{path}:{item['label']}:{run['index']}")
        oh = item.get("overhead")
        if oh is not None and oh.get("outcome") == "ok":
            overheads += 1
            if expect_stats:
                for key in ("baseStats", "hardStats"):
                    if key not in oh:
                        fail(f"{path}: {item['label']} overhead: "
                             f"no {key}")
                    check_stats_doc(oh[key],
                                    f"{path}:{item['label']}:{key}")
    print(f"ok: {path} (hard.batch.v2, {runs} runs, "
          f"{overheads} overhead units"
          f"{', stats embedded' if expect_stats else ''})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--stats", action="append", default=[],
                    help="hard.stats.v1 JSON file")
    ap.add_argument("--intervals", action="append", default=[],
                    help="hard.intervals.v1 JSONL file")
    ap.add_argument("--trace", action="append", default=[],
                    help="trace_event JSON file")
    ap.add_argument("--batch", action="append", default=[],
                    help="hard.batch.v2 JSON file")
    ap.add_argument("--expect-stats", action="store_true",
                    help="require embedded stats blocks in --batch files")
    args = ap.parse_args()
    if not (args.stats or args.intervals or args.trace or args.batch):
        ap.error("nothing to check")
    for path in args.stats:
        check_stats(path)
    for path in args.intervals:
        check_intervals(path)
    for path in args.trace:
        check_trace(path)
    for path in args.batch:
        check_batch(path, args.expect_stats)


if __name__ == "__main__":
    sys.exit(main())
