#!/usr/bin/env python3
"""Validate hardsim telemetry outputs (CI smoke check).

Checks, using nothing but the standard library:

  - a hard.stats.v1 document (--stats):    schema tag, hierarchical
    group shape, required machine groups, counter types
  - a hard.intervals.v1 series (--intervals): header line, declared
    probes present in every row, strictly increasing cycles
  - a Chrome/Perfetto trace_event file (--trace): traceEvents array,
    required per-event keys, category vocabulary, non-negative
    timestamps/durations
  - a hard.batch.v2 document (--batch [--expect-stats]
    [--expect-explain]): schema tag and, with --expect-stats, an
    embedded hard.stats.v1 block per run plus baseStats/hardStats on
    every measured overhead unit; with --expect-explain, a per-run
    divergence-attribution block plus a per-item aggregate
  - a hard.explain.v1 document (--explain [--expect-no-unknown]):
    schema tag, provenance-chain event vocabulary, divergence
    direction/category vocabulary, and category counts consistent
    with the divergence list
  - a trace-cache stats document (--cache-stats): hard.stats.v1 with
    a 'traceCache' group (no machine groups — fast mode never builds
    a machine), non-negative counters, hit/miss bookkeeping
  - a hard.campaign.v1 report (--campaign): schema tag, final state,
    every unit accounted for exactly once with a valid outcome (no
    unit lost, duplicated, or left pending), quarantine list
    consistent with per-unit outcomes, shard bookkeeping balanced
  - a hard.bench.fastmode.v1 baseline (--bench [--min-speedup X]):
    schema tag, positive timings, runs/sec and speedup ratios
    consistent with the timings, and the interleaving-component
    speedup (sim vs warm streamed replay) meeting the floor
  - a hard.profile.v1 wall-clock profile (--profile): schema tag
    (unknown versions rejected), non-negative totals, a well-formed
    phase tree, non-negative counters; also accepts a batch/fuzz
    document carrying an embedded 'profile' block
  - a hard.campaign.status.v1 live status file (--campaign-status):
    schema tag (unknown versions rejected), state vocabulary, unit
    tallies summing to the total, throughput/rates/shard bookkeeping,
    and — when present — the detection-report telemetry block
  - a hard.frontier.v1 overhead-vs-latency frontier (--frontier
    [--min-points N]): schema tag (unknown versions rejected), swept
    points sorted by strictly decreasing sampling rate, per-detector
    coverage/latency sanity, overhead-leg bookkeeping, and monotone
    non-increasing metadata bus traffic as the rate drops (the
    structural signal that sampling sheds overhead; overheadPct
    itself is timing-noisy at small scales and only sanity-checked)

Exits non-zero with a per-file report on the first structural problem.
"""

import argparse
import json
import sys

MACHINE_GROUPS = ("bus", "l2", "memsys", "system")
TRACE_PHASES = {"X", "i", "M"}
TRACE_CATEGORIES = {"mem", "coherence", "detector", "sync"}
PROV_KINDS = {"narrow", "exact-narrow", "report", "meta-loss",
              "refetch", "broadcast", "flash-reset"}
DIVERGENCE_CATEGORIES = ("bloom-aliasing", "counter-saturation",
                         "metadata-eviction", "barrier-reset",
                         "granularity", "rwlock-mode-blind", "unknown")
EXPLAIN_SUBJECTS = {"hard", "ideal-lockset"}


def fail(msg):
    raise SystemExit(f"check_telemetry: {msg}")


def check_stats_doc(doc, where):
    if doc.get("schema") != "hard.stats.v1":
        fail(f"{where}: schema is {doc.get('schema')!r}, "
             "expected 'hard.stats.v1'")
    groups = doc.get("groups")
    if not isinstance(groups, dict) or not groups:
        fail(f"{where}: missing or empty 'groups'")
    for name in MACHINE_GROUPS:
        if name not in groups:
            fail(f"{where}: machine group {name!r} missing "
                 f"(have {sorted(groups)})")
    for name, group in groups.items():
        if not isinstance(group, dict):
            fail(f"{where}: group {name!r} is not an object")
        for stat, value in group.get("counters", {}).items():
            if not isinstance(value, int) or value < 0:
                fail(f"{where}: counter {name}.{stat} is {value!r}")
        for stat, hist in group.get("histograms", {}).items():
            if sum(hist["buckets"]) != hist["count"]:
                fail(f"{where}: histogram {name}.{stat} bucket sum "
                     f"{sum(hist['buckets'])} != count {hist['count']}")


def check_stats(path):
    with open(path) as f:
        check_stats_doc(json.load(f), path)
    print(f"ok: {path} (hard.stats.v1)")


def check_intervals(path):
    with open(path) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    if len(lines) < 2:
        fail(f"{path}: expected a header and at least one row")
    header, rows = lines[0], lines[1:]
    if header.get("schema") != "hard.intervals.v1":
        fail(f"{path}: header schema is {header.get('schema')!r}")
    if not isinstance(header.get("interval"), int) or header["interval"] <= 0:
        fail(f"{path}: bad interval {header.get('interval')!r}")
    probes = [p["name"] for p in header.get("probes", [])]
    if not probes:
        fail(f"{path}: header declares no probes")
    prev = -1
    for i, row in enumerate(rows):
        cycle = row.get("cycle")
        if not isinstance(cycle, int) or cycle <= prev:
            fail(f"{path}: row {i}: cycle {cycle!r} not increasing "
                 f"(prev {prev})")
        prev = cycle
        for name in probes:
            if name not in row:
                fail(f"{path}: row {i}: probe {name!r} missing")
    print(f"ok: {path} (hard.intervals.v1, {len(rows)} rows)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty 'traceEvents'")
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in TRACE_PHASES:
            fail(f"{path}: event {i}: unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i}: missing {key!r}")
        if ph == "M":
            continue
        if e.get("cat") not in TRACE_CATEGORIES:
            fail(f"{path}: event {i}: unknown category {e.get('cat')!r}")
        if e.get("ts", -1) < 0:
            fail(f"{path}: event {i}: bad ts {e.get('ts')!r}")
        if ph == "X" and e.get("dur", -1) < 0:
            fail(f"{path}: event {i}: complete event without dur")
    print(f"ok: {path} (trace_event, {len(events)} events)")


def check_attribution(block, where):
    """Validate one {extra, missing, categories} attribution block."""
    for key in ("extra", "missing"):
        if not isinstance(block.get(key), int) or block[key] < 0:
            fail(f"{where}: bad attribution {key!r}: "
                 f"{block.get(key)!r}")
    cats = block.get("categories")
    if not isinstance(cats, dict):
        fail(f"{where}: attribution has no 'categories' object")
    for name, count in cats.items():
        if not isinstance(count, int) or count < 0:
            fail(f"{where}: category {name!r} count is {count!r}")
    total = block["extra"] + block["missing"]
    if sum(cats.values()) != total:
        fail(f"{where}: category counts sum to {sum(cats.values())}, "
             f"expected extra+missing = {total}")


def check_explain_doc(doc, where, expect_no_unknown):
    if doc.get("schema") != "hard.explain.v1":
        fail(f"{where}: schema is {doc.get('schema')!r}, "
             "expected 'hard.explain.v1'")
    if doc.get("subject") not in EXPLAIN_SUBJECTS:
        fail(f"{where}: unknown subject {doc.get('subject')!r}")
    cfg = doc.get("config")
    if not isinstance(cfg, dict) or "granularityBytes" not in cfg:
        fail(f"{where}: missing config.granularityBytes")
    if not isinstance(doc.get("events"), int) or doc["events"] < 0:
        fail(f"{where}: bad 'events' {doc.get('events')!r}")
    reports = doc.get("reports")
    if not isinstance(reports, list):
        fail(f"{where}: 'reports' is not an array")
    for i, rep in enumerate(reports):
        for key in ("addr", "site", "tid", "write", "at", "chain"):
            if key not in rep:
                fail(f"{where}: report {i}: missing {key!r}")
        for j, ev in enumerate(rep["chain"]):
            if ev.get("kind") not in PROV_KINDS:
                fail(f"{where}: report {i} chain {j}: unknown kind "
                     f"{ev.get('kind')!r}")
            if not isinstance(ev.get("at"), int) or ev["at"] < 0:
                fail(f"{where}: report {i} chain {j}: bad 'at'")
    div = doc.get("divergence")
    if not isinstance(div, dict):
        fail(f"{where}: missing 'divergence' block")
    check_attribution(div, f"{where}:divergence")
    cats = div["categories"]
    if sorted(cats) != sorted(DIVERGENCE_CATEGORIES):
        fail(f"{where}: category vocabulary {sorted(cats)} != "
             f"{sorted(DIVERGENCE_CATEGORIES)}")
    entries = div.get("divergences")
    if not isinstance(entries, list):
        fail(f"{where}: 'divergences' is not an array")
    if len(entries) != div["extra"] + div["missing"]:
        fail(f"{where}: {len(entries)} divergence entries but "
             f"extra+missing = {div['extra'] + div['missing']}")
    for i, d in enumerate(entries):
        if d.get("direction") not in ("extra", "missing"):
            fail(f"{where}: divergence {i}: bad direction "
                 f"{d.get('direction')!r}")
        if d.get("category") not in DIVERGENCE_CATEGORIES:
            fail(f"{where}: divergence {i}: unknown category "
                 f"{d.get('category')!r}")
        if not d.get("evidence"):
            fail(f"{where}: divergence {i}: empty evidence")
    if expect_no_unknown and cats.get("unknown", 0) != 0:
        fail(f"{where}: {cats['unknown']} divergence(s) attributed to "
             "'unknown' (expected a fully attributed run)")


def check_explain(path, expect_no_unknown):
    with open(path) as f:
        doc = json.load(f)
    check_explain_doc(doc, path, expect_no_unknown)
    div = doc["divergence"]
    print(f"ok: {path} (hard.explain.v1, {len(doc['reports'])} reports, "
          f"{div['extra']} extra / {div['missing']} missing attributed)")


CACHE_COUNTERS = ("hits", "misses", "stores", "evictedCorrupt",
                  "evictedStale", "evictedOrphan", "collisions")


def check_cache_stats(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hard.stats.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'hard.stats.v1'")
    group = doc.get("groups", {}).get("traceCache")
    if not isinstance(group, dict):
        fail(f"{path}: no 'traceCache' group "
             f"(have {sorted(doc.get('groups', {}))})")
    counters = group.get("counters", {})
    for name in CACHE_COUNTERS:
        value = counters.get(name)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: traceCache.{name} is {value!r}")
    lookups = counters["hits"] + counters["misses"]
    rate = group.get("formulas", {}).get("hitRate")
    if lookups and not (isinstance(rate, (int, float))
                        and 0.0 <= rate <= 1.0):
        fail(f"{path}: hitRate {rate!r} not in [0, 1]")
    # Every eviction and collision is also counted as a miss —
    # except orphan sweeps, which reclaim temp files on open, before
    # any lookup happens.
    buckets = (counters["evictedCorrupt"] + counters["evictedStale"]
               + counters["collisions"])
    if buckets > counters["misses"]:
        fail(f"{path}: {buckets} evictions/collisions exceed "
             f"{counters['misses']} misses")
    print(f"ok: {path} (traceCache: {counters['hits']} hits, "
          f"{counters['misses']} misses, {counters['stores']} stores)")


CAMPAIGN_OUTCOMES = {"completed", "restored", "quarantined"}
CAMPAIGN_COUNTERS = ("shardsSpawned", "shardExitsOk", "shardCrashes",
                     "shardStalls", "retries", "restored",
                     "injectedCrashes")


def check_campaign(path):
    """Validate a final hard.campaign.v1 report: complete, every unit
    accounted for exactly once, quarantine list consistent, shard
    bookkeeping balanced."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hard.campaign.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'hard.campaign.v1'")
    if not doc.get("signature"):
        fail(f"{path}: missing or empty 'signature'")
    if doc.get("state") != "complete":
        fail(f"{path}: state is {doc.get('state')!r} — the campaign "
             "did not finish (interrupted supervisor?)")
    if not isinstance(doc.get("shards"), int) or doc["shards"] <= 0:
        fail(f"{path}: bad 'shards' {doc.get('shards')!r}")
    units = doc.get("units")
    if not isinstance(units, list) or not units:
        fail(f"{path}: missing or empty 'units'")
    if doc.get("unitsTotal") != len(units):
        fail(f"{path}: unitsTotal {doc.get('unitsTotal')!r} != "
             f"{len(units)} listed units")
    seen = set()
    quarantined_units = set()
    for i, u in enumerate(units):
        key = (u.get("item"), u.get("run"))
        if not isinstance(key[0], int) or not isinstance(key[1], int):
            fail(f"{path}: unit {i}: bad identity {key!r}")
        if key in seen:
            fail(f"{path}: unit {key} listed twice — a unit was "
                 "duplicated in the merge")
        seen.add(key)
        outcome = u.get("outcome")
        if outcome not in CAMPAIGN_OUTCOMES:
            fail(f"{path}: unit {key}: outcome {outcome!r} not in "
                 f"{sorted(CAMPAIGN_OUTCOMES)} — 'pending' in a final "
                 "report means the unit was lost")
        if outcome == "quarantined":
            quarantined_units.add(key)
            if not isinstance(u.get("attempts"), int) or u["attempts"] < 1:
                fail(f"{path}: quarantined unit {key}: bad attempts "
                     f"{u.get('attempts')!r}")
    listed = {(q.get("item"), q.get("run"))
              for q in doc.get("quarantined", [])}
    if listed != quarantined_units:
        fail(f"{path}: 'quarantined' list {sorted(listed)} != units "
             f"with quarantined outcome {sorted(quarantined_units)}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: missing 'counters'")
    for name in CAMPAIGN_COUNTERS:
        value = counters.get(name)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counters.{name} is {value!r}")
    reaped = counters["shardExitsOk"] + counters["shardCrashes"]
    if reaped != counters["shardsSpawned"]:
        fail(f"{path}: {counters['shardsSpawned']} shards spawned but "
             f"{reaped} reaped")
    if counters["shardStalls"] > counters["shardCrashes"]:
        fail(f"{path}: {counters['shardStalls']} stalls exceed "
             f"{counters['shardCrashes']} crashes")
    print(f"ok: {path} (hard.campaign.v1, {len(units)} units, "
          f"{counters['shardsSpawned']} shards, "
          f"{counters['retries']} retries, "
          f"{len(quarantined_units)} quarantined)")


def check_bench(path, min_speedup):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hard.bench.fastmode.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'hard.bench.fastmode.v1'")
    units = doc.get("units")
    if not isinstance(units, int) or units <= 0:
        fail(f"{path}: bad 'units' {units!r}")
    for leg in ("cycle", "fastCold", "fastWarm"):
        block = doc.get(leg)
        if not isinstance(block, dict):
            fail(f"{path}: missing leg {leg!r}")
        sec = block.get("seconds")
        rate = block.get("runsPerSec")
        if not isinstance(sec, (int, float)) or sec <= 0:
            fail(f"{path}: {leg}.seconds is {sec!r}")
        if not isinstance(rate, (int, float)) or rate <= 0:
            fail(f"{path}: {leg}.runsPerSec is {rate!r}")
        if abs(rate - units / sec) > 0.01 * (units / sec) + 0.01:
            fail(f"{path}: {leg}.runsPerSec {rate} inconsistent with "
                 f"{units} units / {sec}s")
    speedup = doc.get("speedup", {})
    warm = speedup.get("warmVsCycle")
    if not isinstance(warm, (int, float)) or warm <= 0:
        fail(f"{path}: bad speedup.warmVsCycle {warm!r}")
    ratio = doc["cycle"]["seconds"] / doc["fastWarm"]["seconds"]
    if abs(warm - ratio) > 0.05 * ratio + 0.05:
        fail(f"{path}: speedup.warmVsCycle {warm} inconsistent with "
             f"timings ({ratio:.2f})")
    il = doc.get("interleaving")
    if not isinstance(il, dict):
        fail(f"{path}: missing 'interleaving' block")
    events = il.get("events")
    sim_s = il.get("simSeconds")
    replay_s = il.get("replaySeconds")
    if not isinstance(events, int) or events <= 0:
        fail(f"{path}: bad interleaving.events {events!r}")
    for field, val in (("simSeconds", sim_s),
                       ("replaySeconds", replay_s)):
        if not isinstance(val, (int, float)) or val <= 0:
            fail(f"{path}: bad interleaving.{field} {val!r}")
    replay_vs_sim = speedup.get("replayVsSim")
    if not isinstance(replay_vs_sim, (int, float)) or replay_vs_sim <= 0:
        fail(f"{path}: bad speedup.replayVsSim {replay_vs_sim!r}")
    il_ratio = sim_s / replay_s
    if abs(replay_vs_sim - il_ratio) > 0.05 * il_ratio + 0.05:
        fail(f"{path}: speedup.replayVsSim {replay_vs_sim} inconsistent "
             f"with interleaving timings ({il_ratio:.2f})")
    # The floor applies to the interleaving component: the work fast
    # mode eliminates. The end-to-end sweep stays battery-bound (the
    # detectors replay in every leg) and is reported, not gated.
    if min_speedup is not None and replay_vs_sim < min_speedup:
        fail(f"{path}: interleaving speedup {replay_vs_sim:.1f}x below "
             f"the {min_speedup}x floor")
    print(f"ok: {path} (hard.bench.fastmode.v1, "
          f"interleaving {replay_vs_sim:.1f}x, "
          f"sweep warm {warm:.2f}x / cold "
          f"{speedup.get('coldVsCycle'):.2f}x over {units} units)")


def check_profile_doc(doc, where):
    """Validate a hard.profile.v1 wall-clock profile: schema tag,
    non-negative totals, a well-formed phase tree, and non-negative
    counters. Unknown schema versions are rejected outright — a
    reader that guesses at a future layout would misreport."""
    schema = doc.get("schema")
    if schema != "hard.profile.v1":
        fail(f"{where}: profile schema is {schema!r}, expected "
             "'hard.profile.v1' — unknown or future profile version; "
             "refusing to guess at its layout")
    for field in ("wallSeconds", "cpuSeconds"):
        val = doc.get(field)
        if not isinstance(val, (int, float)) or val < 0:
            fail(f"{where}: {field} is {val!r}")
    peak = doc.get("peakRssBytes")
    if not isinstance(peak, int) or peak < 0:
        fail(f"{where}: peakRssBytes is {peak!r}")

    phase_count = 0

    def walk(node, prefix):
        nonlocal phase_count
        if not isinstance(node, dict):
            fail(f"{where}: phase tree node {prefix!r} is not an object")
        for name, child in node.items():
            path = f"{prefix}.{name}" if prefix else name
            if not isinstance(child, dict):
                fail(f"{where}: phase {path!r} is not an object")
            timed = "calls" in child
            if not timed and "phases" not in child:
                fail(f"{where}: phase {path!r} carries neither timings "
                     "nor children")
            if timed:
                phase_count += 1
                calls = child.get("calls")
                if not isinstance(calls, int) or calls < 1:
                    fail(f"{where}: phase {path!r} calls is {calls!r}")
                for field in ("wallSeconds", "cpuSeconds"):
                    val = child.get(field)
                    if not isinstance(val, (int, float)) or val < 0:
                        fail(f"{where}: phase {path!r} {field} is "
                             f"{val!r}")
            if "phases" in child:
                walk(child["phases"], path)

    phases = doc.get("phases")
    if not isinstance(phases, dict):
        fail(f"{where}: missing 'phases' object")
    walk(phases, "")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{where}: missing 'counters' object")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{where}: counter {name!r} is {value!r}")
    return phase_count, len(counters)


def check_profile(path):
    """Validate a wall-clock profile: either a standalone
    hard.profile.v1 file or the 'profile' block embedded in a
    hard.batch.v2 / hard.fuzz.v1 document."""
    with open(path) as f:
        doc = json.load(f)
    where = path
    if doc.get("schema") in ("hard.batch.v2", "hard.fuzz.v1"):
        if "profile" not in doc:
            fail(f"{path}: {doc['schema']} document has no embedded "
                 "'profile' block (was the sweep run with --profile?)")
        doc = doc["profile"]
        where = f"{path}:profile"
    phases, counters = check_profile_doc(doc, where)
    print(f"ok: {path} (hard.profile.v1, {phases} timed phases, "
          f"{counters} counters)")


CAMPAIGN_STATUS_STATES = {"running", "complete"}


def check_campaign_status(path):
    """Validate a hard.campaign.status.v1 live status document:
    schema tag, state vocabulary, unit tallies that sum to the total,
    sane throughput/rates, and per-shard bookkeeping. Unknown schema
    versions are rejected with a clear message."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "hard.campaign.status.v1":
        fail(f"{path}: status schema is {schema!r}, expected "
             "'hard.campaign.status.v1' — unknown or future status "
             "version; refusing to guess at its layout")
    if not doc.get("signature"):
        fail(f"{path}: missing or empty 'signature'")
    state = doc.get("state")
    if state not in CAMPAIGN_STATUS_STATES:
        fail(f"{path}: state {state!r} not in "
             f"{sorted(CAMPAIGN_STATUS_STATES)}")
    seq = doc.get("sequence")
    if not isinstance(seq, int) or seq < 1:
        fail(f"{path}: sequence is {seq!r} (must be >= 1)")
    elapsed = doc.get("elapsedSeconds")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        fail(f"{path}: elapsedSeconds is {elapsed!r}")
    units = doc.get("units")
    if not isinstance(units, dict):
        fail(f"{path}: missing 'units' object")
    tallies = {}
    for field in ("total", "pending", "inFlight", "completed",
                  "restored", "quarantined"):
        val = units.get(field)
        if not isinstance(val, int) or val < 0:
            fail(f"{path}: units.{field} is {val!r}")
        tallies[field] = val
    summed = sum(v for k, v in tallies.items() if k != "total")
    if summed != tallies["total"]:
        fail(f"{path}: unit tallies sum to {summed}, "
             f"total says {tallies['total']} — a unit was lost or "
             "double-counted")
    if state == "complete" and (tallies["pending"] or
                                tallies["inFlight"]):
        fail(f"{path}: state 'complete' but {tallies['pending']} "
             f"pending / {tallies['inFlight']} in-flight units remain")
    tp = doc.get("throughput")
    if not isinstance(tp, dict):
        fail(f"{path}: missing 'throughput' object")
    for field in ("unitsDone", "unitsPerSec"):
        val = tp.get(field)
        if not isinstance(val, (int, float)) or val < 0:
            fail(f"{path}: throughput.{field} is {val!r}")
    if "etaSeconds" in tp:
        eta = tp["etaSeconds"]
        if not isinstance(eta, (int, float)) or eta < 0:
            fail(f"{path}: throughput.etaSeconds is {eta!r}")
    rates = doc.get("rates")
    if not isinstance(rates, dict):
        fail(f"{path}: missing 'rates' object")
    for field in ("retryRate", "quarantineRate"):
        val = rates.get(field)
        if not isinstance(val, (int, float)) or not 0 <= val:
            fail(f"{path}: rates.{field} is {val!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: missing 'counters'")
    for name in CAMPAIGN_COUNTERS:
        value = counters.get(name)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counters.{name} is {value!r}")
    rep = doc.get("reports")
    if rep is not None:
        if not isinstance(rep, dict):
            fail(f"{path}: 'reports' is not an object")
        total = rep.get("total")
        if not isinstance(total, int) or total < 0:
            fail(f"{path}: reports.total is {total!r}")
        per_sec = rep.get("perSec")
        if not isinstance(per_sec, (int, float)) or per_sec < 0:
            fail(f"{path}: reports.perSec is {per_sec!r}")
        if "lastAgeSeconds" in rep:
            age = rep["lastAgeSeconds"]
            if not isinstance(age, (int, float)) or age < 0:
                fail(f"{path}: reports.lastAgeSeconds is {age!r}")
            if total == 0:
                fail(f"{path}: reports.lastAgeSeconds present but "
                     "reports.total is 0")
    shards = doc.get("shards")
    if not isinstance(shards, list):
        fail(f"{path}: missing 'shards' array")
    for i, sh in enumerate(shards):
        assigned = sh.get("assigned")
        done = sh.get("done")
        if not isinstance(assigned, int) or assigned < 0:
            fail(f"{path}: shard {i}: assigned is {assigned!r}")
        if not isinstance(done, int) or not 0 <= done <= assigned:
            fail(f"{path}: shard {i}: done {done!r} outside "
                 f"[0, {assigned}]")
        if not isinstance(sh.get("stalled"), bool):
            fail(f"{path}: shard {i}: stalled is "
                 f"{sh.get('stalled')!r}")
        if "reports" in sh:
            val = sh["reports"]
            if not isinstance(val, int) or val < 0:
                fail(f"{path}: shard {i}: reports is {val!r}")
    print(f"ok: {path} (hard.campaign.status.v1, {state}, seq {seq}, "
          f"{tallies['total']} units, {len(shards)} live shards)")


FRONTIER_SAMPLE_MODES = {"granule", "epoch"}


def check_frontier(path, min_points):
    """Validate a hard.frontier.v1 overhead-vs-latency frontier: the
    swept points must be sorted by strictly decreasing sampling rate,
    every point carries per-detector effectiveness/latency blocks and
    an overhead-leg block, and the metadata bus traffic of successful
    overhead legs is monotone non-increasing as the rate drops — the
    structural evidence that duty-cycling the detector sheds overhead.
    (overheadPct itself is timing-noisy at small scales: gating
    metadata charges perturbs interleavings. It is only
    sanity-checked.) Unknown schema versions are rejected."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "hard.frontier.v1":
        fail(f"{path}: frontier schema is {schema!r}, expected "
             "'hard.frontier.v1' — unknown or future frontier version; "
             "refusing to guess at its layout")
    if not doc.get("workload"):
        fail(f"{path}: missing or empty 'workload'")
    if not doc.get("execMode"):
        fail(f"{path}: missing or empty 'execMode'")
    if doc.get("sampleMode") not in FRONTIER_SAMPLE_MODES:
        fail(f"{path}: sampleMode {doc.get('sampleMode')!r} not in "
             f"{sorted(FRONTIER_SAMPLE_MODES)}")
    for field in ("sampleSeed", "samplePeriod", "granuleBytes",
                  "runs", "seed0"):
        val = doc.get(field)
        if not isinstance(val, int) or val < 0:
            fail(f"{path}: {field} is {val!r}")
    for field in ("samplePeriod", "granuleBytes", "runs"):
        if doc[field] == 0:
            fail(f"{path}: {field} must be positive")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{path}: missing or empty 'points'")
    if len(points) < min_points:
        fail(f"{path}: {len(points)} frontier point(s), expected at "
             f"least {min_points}")
    prev_rate = None
    prev_meta = None  # (rate, metaBytes) of the last ok overhead leg
    for i, pt in enumerate(points):
        rate = pt.get("rate")
        if not isinstance(rate, (int, float)) or not 0 < rate <= 1:
            fail(f"{path}: point {i}: rate {rate!r} outside (0, 1]")
        if prev_rate is not None and rate >= prev_rate:
            fail(f"{path}: point {i}: rate {rate} not strictly below "
                 f"the previous point's {prev_rate} — points must be "
                 "sorted by decreasing rate")
        prev_rate = rate
        detectors = pt.get("detectors")
        if not isinstance(detectors, dict) or not detectors:
            fail(f"{path}: point {i}: missing or empty 'detectors'")
        for name, d in detectors.items():
            where = f"{path}: point {i} detector {name!r}"
            for field in ("injected", "detected", "falseAlarms",
                          "dynamicReports"):
                val = d.get(field)
                if not isinstance(val, int) or val < 0:
                    fail(f"{where}: {field} is {val!r}")
            if d["detected"] > d["injected"]:
                fail(f"{where}: detected {d['detected']} exceeds "
                     f"injected {d['injected']}")
            cov = d.get("coverage")
            if not isinstance(cov, (int, float)) or not 0 <= cov <= 1:
                fail(f"{where}: coverage {cov!r} outside [0, 1]")
            lat = d.get("latency")
            if not isinstance(lat, dict):
                fail(f"{where}: missing 'latency' block")
            samples = lat.get("samples")
            if not isinstance(samples, int) or samples < 0:
                fail(f"{where}: latency.samples is {samples!r}")
            exposures = lat.get("exposures")
            if not isinstance(exposures, int) or exposures < 0:
                fail(f"{where}: latency.exposures is {exposures!r}")
            for field in ("meanCycles", "p50Cycles", "maxCycles"):
                val = lat.get(field)
                if not isinstance(val, (int, float)):
                    fail(f"{where}: latency.{field} is {val!r}")
                # -1 is the no-samples sentinel; with samples the
                # aggregates must be real non-negative latencies.
                if samples > 0 and val < 0:
                    fail(f"{where}: latency.{field} is {val!r} with "
                         f"{samples} sample(s)")
                if samples == 0 and val != -1:
                    fail(f"{where}: latency.{field} is {val!r} but "
                         "there are no samples (expected -1 sentinel)")
            if (samples > 0
                    and not lat["p50Cycles"] <= lat["maxCycles"]):
                fail(f"{where}: latency p50 {lat['p50Cycles']} exceeds "
                     f"max {lat['maxCycles']}")
        oh = pt.get("overhead")
        if oh is None:
            continue
        where = f"{path}: point {i} overhead"
        outcome = oh.get("outcome")
        if not isinstance(outcome, str) or not outcome:
            fail(f"{where}: bad outcome {outcome!r}")
        for field in ("metaBroadcasts", "metaBytes", "dataBytes",
                      "baseCycles", "hardCycles"):
            val = oh.get(field)
            if not isinstance(val, int) or val < 0:
                fail(f"{where}: {field} is {val!r}")
        for field in ("overheadPct", "busOccupancyPct",
                      "reportsPerMcycle"):
            val = oh.get(field)
            if not isinstance(val, (int, float)):
                fail(f"{where}: {field} is {val!r}")
        if not 0 <= oh["busOccupancyPct"] <= 100:
            fail(f"{where}: busOccupancyPct {oh['busOccupancyPct']} "
                 "outside [0, 100]")
        if oh["reportsPerMcycle"] < 0:
            fail(f"{where}: negative reportsPerMcycle "
                 f"{oh['reportsPerMcycle']}")
        if outcome != "ok":
            continue
        if oh["baseCycles"] == 0 or oh["hardCycles"] == 0:
            fail(f"{where}: outcome ok but zero cycle counts")
        if prev_meta is not None and oh["metaBytes"] > prev_meta[1]:
            fail(f"{path}: point {i}: metaBytes {oh['metaBytes']} at "
                 f"rate {rate} exceeds {prev_meta[1]} at the higher "
                 f"rate {prev_meta[0]} — sampling down must not "
                 "increase metadata bus traffic")
        prev_meta = (rate, oh["metaBytes"])
    print(f"ok: {path} (hard.frontier.v1, {doc['workload']}, "
          f"{len(points)} points, rates {points[0]['rate']}"
          f"..{points[-1]['rate']})")


def check_batch(path, expect_stats, expect_explain=False):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hard.batch.v2":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if expect_stats:
        hs = doc.get("harnessStats", {})
        if hs.get("schema") != "hard.stats.v1":
            fail(f"{path}: harnessStats schema is {hs.get('schema')!r}")
        if "harness" not in hs.get("groups", {}):
            fail(f"{path}: harnessStats has no 'harness' group")
    runs = overheads = attributions = 0
    for item in doc.get("items", []):
        per_run = item.get("effectiveness", {}).get("perRun", [])
        for run in per_run:
            runs += 1
            if run.get("outcome", "ok") != "ok":
                continue
            if expect_stats:
                if "stats" not in run:
                    fail(f"{path}: {item['label']} run {run['index']}: "
                         "no embedded stats block")
                check_stats_doc(run["stats"],
                                f"{path}:{item['label']}:{run['index']}")
            if expect_explain:
                if "explain" not in run:
                    fail(f"{path}: {item['label']} run {run['index']}: "
                         "no explain attribution block")
                check_attribution(
                    run["explain"],
                    f"{path}:{item['label']}:{run['index']}:explain")
        if expect_explain and per_run:
            if "attribution" not in item:
                fail(f"{path}: {item['label']}: no per-item "
                     "'attribution' aggregate")
            agg = item["attribution"]
            check_attribution(agg, f"{path}:{item['label']}:attribution")
            if sorted(agg["categories"]) != sorted(DIVERGENCE_CATEGORIES):
                fail(f"{path}: {item['label']}: attribution category "
                     f"vocabulary {sorted(agg['categories'])} != "
                     f"{sorted(DIVERGENCE_CATEGORIES)}")
            attributions += 1
        oh = item.get("overhead")
        if oh is not None and oh.get("outcome") == "ok":
            overheads += 1
            if expect_stats:
                for key in ("baseStats", "hardStats"):
                    if key not in oh:
                        fail(f"{path}: {item['label']} overhead: "
                             f"no {key}")
                    check_stats_doc(oh[key],
                                    f"{path}:{item['label']}:{key}")
    if expect_explain and attributions == 0:
        fail(f"{path}: --expect-explain but no item carries "
             "effectiveness runs with attribution")
    print(f"ok: {path} (hard.batch.v2, {runs} runs, "
          f"{overheads} overhead units"
          f"{', stats embedded' if expect_stats else ''}"
          f"{', attribution embedded' if expect_explain else ''})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--stats", action="append", default=[],
                    help="hard.stats.v1 JSON file")
    ap.add_argument("--intervals", action="append", default=[],
                    help="hard.intervals.v1 JSONL file")
    ap.add_argument("--trace", action="append", default=[],
                    help="trace_event JSON file")
    ap.add_argument("--batch", action="append", default=[],
                    help="hard.batch.v2 JSON file")
    ap.add_argument("--expect-stats", action="store_true",
                    help="require embedded stats blocks in --batch files")
    ap.add_argument("--expect-explain", action="store_true",
                    help="require per-run explain blocks and per-item "
                         "attribution aggregates in --batch files")
    ap.add_argument("--explain", action="append", default=[],
                    help="hard.explain.v1 JSON file")
    ap.add_argument("--expect-no-unknown", action="store_true",
                    help="fail if any --explain divergence is "
                         "attributed to 'unknown'")
    ap.add_argument("--cache-stats", action="append", default=[],
                    help="trace-cache hard.stats.v1 JSON file")
    ap.add_argument("--campaign", action="append", default=[],
                    help="hard.campaign.v1 report JSON file")
    ap.add_argument("--bench", action="append", default=[],
                    help="hard.bench.fastmode.v1 JSON file")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="minimum warm-cache speedup --bench files "
                         "must show")
    ap.add_argument("--profile", action="append", default=[],
                    help="hard.profile.v1 JSON file, or a batch/fuzz "
                         "document with an embedded 'profile' block")
    ap.add_argument("--campaign-status", action="append", default=[],
                    help="hard.campaign.status.v1 live status JSON file")
    ap.add_argument("--frontier", action="append", default=[],
                    help="hard.frontier.v1 JSON file")
    ap.add_argument("--min-points", type=int, default=1,
                    help="minimum swept points --frontier files must "
                         "carry")
    args = ap.parse_args()
    if not (args.stats or args.intervals or args.trace or args.batch
            or args.explain or args.cache_stats or args.campaign
            or args.bench or args.profile or args.campaign_status
            or args.frontier):
        ap.error("nothing to check")
    for path in args.stats:
        check_stats(path)
    for path in args.intervals:
        check_intervals(path)
    for path in args.trace:
        check_trace(path)
    for path in args.batch:
        check_batch(path, args.expect_stats, args.expect_explain)
    for path in args.explain:
        check_explain(path, args.expect_no_unknown)
    for path in args.cache_stats:
        check_cache_stats(path)
    for path in args.campaign:
        check_campaign(path)
    for path in args.bench:
        check_bench(path, args.min_speedup)
    for path in args.profile:
        check_profile(path)
    for path in args.campaign_status:
        check_campaign_status(path)
    for path in args.frontier:
        check_frontier(path, args.min_points)


if __name__ == "__main__":
    sys.exit(main())
