#!/usr/bin/env bash
# Produce and validate the fast-functional-mode baseline
# (hard.bench.fastmode.v1, committed as BENCH_fastmode.json).
#
# Two stages:
#   1. A CLI-level identity check: the same batch sweep through
#      build/tools/hardsim in cycle mode, fast mode against an empty
#      trace cache, and fast mode against the populated cache. The
#      three result documents must be content-identical (fast mode adds
#      only the "mode":"fast" marker), and the cache-stats document
#      must pass scripts/check_telemetry.py --cache-stats.
#   2. The timed baseline: build/bench/bench_fastmode runs the standard
#      sweep in-process (no process-startup noise) and writes OUT,
#      which is then validated with --bench --min-speedup MIN.
#
# The --min-speedup floor gates speedup.replayVsSim — the interleaving
# component (cycle-level sim vs warm streamed replay). The end-to-end
# sweep speedup stays battery-bound (the oracle detectors replay in
# every leg) and is reported, not gated.
#
# The timed result is recorded as a new point in the performance
# trajectory (BENCH_trajectory.json, hard.bench.trajectory.v1) via
# scripts/bench_trajectory.py, which also gates against the latest
# comparable committed point — the committed BENCH_fastmode.json
# baseline itself is never overwritten by default (give -o to write a
# baseline elsewhere, -T to use another trajectory file, -T '' to
# skip the trajectory entirely).
#
# Usage: scripts/bench_fastmode.sh [-o OUT.json] [-r RUNS] [-s SCALE]
#                                  [-j JOBS] [-m MIN_SPEEDUP]
#                                  [-B BUILDDIR] [-T TRAJECTORY.json]
set -euo pipefail

out=""
runs=10
scale=1.0
jobs=0
min_speedup=10
builddir="build"
trajectory="BENCH_trajectory.json"

while getopts "o:r:s:j:m:B:T:h" opt; do
    case "$opt" in
        o) out="$OPTARG" ;;
        r) runs="$OPTARG" ;;
        s) scale="$OPTARG" ;;
        j) jobs="$OPTARG" ;;
        m) min_speedup="$OPTARG" ;;
        B) builddir="$OPTARG" ;;
        T) trajectory="$OPTARG" ;;
        h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) exit 2 ;;
    esac
done

hardsim="$builddir/tools/hardsim"
bench="$builddir/bench/bench_fastmode"
[ -x "$hardsim" ] || { echo "bench_fastmode: $hardsim not built" >&2; exit 2; }
[ -x "$bench" ] || { echo "bench_fastmode: $bench not built" >&2; exit 2; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# ---------------------------------------------------------------------
# 1. CLI identity: cycle vs fast-cold vs fast-warm on a small sweep.
echo "bench_fastmode: CLI identity check (cycle vs cold vs warm)" >&2
run_batch() {
    local json="$1"; shift
    "$hardsim" --batch --workload=barnes,ocean --runs=3 --scale=0.1 \
        --jobs="$jobs" --json="$json" "$@" > /dev/null
}
run_batch "$work/cycle.json"
run_batch "$work/fast-cold.json" --mode=fast --trace-cache="$work/tcache"
run_batch "$work/fast-warm.json" --mode=fast --trace-cache="$work/tcache" \
    --trace-cache-stats="$work/cache-stats.json"

WORK="$work" python3 - <<'EOF'
import json, os
work = os.environ["WORK"]
cycle = json.load(open(f"{work}/cycle.json"))
cold = json.load(open(f"{work}/fast-cold.json"))
warm = json.load(open(f"{work}/fast-warm.json"))
assert cold == warm, "fast-mode cold and warm runs disagree"
assert cold.pop("mode", None) == "fast", "fast run missing mode marker"
assert cycle == cold, "fast-mode results diverge from cycle mode"
print("bench_fastmode: identity holds across all three legs")
EOF
python3 scripts/check_telemetry.py --cache-stats "$work/cache-stats.json"

# ---------------------------------------------------------------------
# 2. Timed run via the in-process benchmark, then validation. Without
#    -o the raw bench document lands in scratch space — the durable
#    record is the trajectory point appended below, not an overwrite
#    of the committed baseline.
[ -n "$out" ] || out="$work/bench_fastmode.json"
echo "bench_fastmode: timing (runs=$runs scale=$scale jobs=$jobs)" >&2
"$bench" --runs="$runs" --scale="$scale" --jobs="$jobs" \
    --out="$out" --cache="$work/bench-cache"
python3 scripts/check_telemetry.py --bench "$out" --min-speedup "$min_speedup"

# ---------------------------------------------------------------------
# 3. Append the run to the performance trajectory and gate against the
#    latest comparable committed point (same config + host).
if [ -n "$trajectory" ]; then
    python3 scripts/bench_trajectory.py --from-bench "$out" \
        --trajectory "$trajectory"
fi
