#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate
# every table/figure of the paper at the default (paper) scale.
#
# Usage: scripts/reproduce.sh [--quick]
#   --quick   run the benches at reduced scale/runs (minutes, not tens
#             of minutes); detection counts will be out of N<10 runs.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
    SCALE_ARGS=(--scale=0.25 --runs=4)
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        [[ -f "$b" && -x "$b" ]] || continue
        echo "================ $(basename "$b") ================"
        if [[ "$(basename "$b")" == "bench_micro" ]]; then
            "$b"
        else
            "$b" "${SCALE_ARGS[@]}"
        fi
        echo
    done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
