#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate
# every table/figure of the paper at the default (paper) scale.
#
# Usage: scripts/reproduce.sh [--quick]
#   --quick   run the benches at reduced scale/runs (minutes, not tens
#             of minutes); detection counts will be out of N<10 runs.
#
# All benches run through the parallel batch driver with one worker per
# host hardware thread (results are bit-identical to serial runs; see
# tests/test_batch_equivalence.cc). Override with JOBS=<n>.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
COMMON_ARGS=(--jobs="$JOBS")
SCALE_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
    SCALE_ARGS=(--scale=0.25 --runs=4)
fi

if ! command -v cmake > /dev/null; then
    echo "reproduce.sh: cmake not found on PATH; install a C++17" \
         "toolchain + CMake + Ninja first" >&2
    exit 1
fi

cmake -B build -G Ninja
cmake --build build

# The sweep below blindly executes build/bench/* and build/tools/*; if
# the build step silently produced nothing (e.g. a cached configure
# against a removed generator), fail here with a clear message instead
# of an empty bench loop that "succeeds".
for required in build/tools/hardsim build/tools/hardfuzz; do
    if [[ ! -x "$required" ]]; then
        echo "reproduce.sh: $required missing after the build;" \
             "delete build/ and re-run" >&2
        exit 1
    fi
done

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# Machine-readable sweep results (per-run + aggregate JSON).
mkdir -p results

{
    for b in build/bench/*; do
        [[ -f "$b" && -x "$b" ]] || continue
        name="$(basename "$b")"
        echo "================ $name ================"
        case "$name" in
          bench_micro)
            "$b"
            ;;
          bench_table2|bench_table3|bench_fig8)
            # Batch-driver benches: also archive JSON results.
            "$b" "${COMMON_ARGS[@]}" "${SCALE_ARGS[@]}" \
                 --json="results/$name.json"
            ;;
          *)
            "$b" "${COMMON_ARGS[@]}" "${SCALE_ARGS[@]}"
            ;;
        esac
        echo
    done

    echo "================ hardsim --batch ================"
    ./build/tools/hardsim --batch "${COMMON_ARGS[@]}" "${SCALE_ARGS[@]}" \
        --json=results/hardsim_batch.json
    echo

    echo "================ hardfuzz ================"
    ./build/tools/hardfuzz --seeds 0..199 "${COMMON_ARGS[@]}" \
        --json=results/hardfuzz.json
    echo
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt and results/*.json"
