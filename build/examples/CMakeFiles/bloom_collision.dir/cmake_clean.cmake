file(REMOVE_RECURSE
  "CMakeFiles/bloom_collision.dir/bloom_collision.cpp.o"
  "CMakeFiles/bloom_collision.dir/bloom_collision.cpp.o.d"
  "bloom_collision"
  "bloom_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
