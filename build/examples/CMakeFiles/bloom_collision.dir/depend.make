# Empty dependencies file for bloom_collision.
# This may be replaced when dependencies are built.
