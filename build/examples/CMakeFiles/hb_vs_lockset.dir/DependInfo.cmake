
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hb_vs_lockset.cpp" "examples/CMakeFiles/hb_vs_lockset.dir/hb_vs_lockset.cpp.o" "gcc" "examples/CMakeFiles/hb_vs_lockset.dir/hb_vs_lockset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hard_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hard_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hard_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/hard_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/hard_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hard_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
