file(REMOVE_RECURSE
  "CMakeFiles/hb_vs_lockset.dir/hb_vs_lockset.cpp.o"
  "CMakeFiles/hb_vs_lockset.dir/hb_vs_lockset.cpp.o.d"
  "hb_vs_lockset"
  "hb_vs_lockset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_vs_lockset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
