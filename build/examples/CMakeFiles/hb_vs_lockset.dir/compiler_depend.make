# Empty compiler generated dependencies file for hb_vs_lockset.
# This may be replaced when dependencies are built.
