file(REMOVE_RECURSE
  "CMakeFiles/splash_run.dir/splash_run.cpp.o"
  "CMakeFiles/splash_run.dir/splash_run.cpp.o.d"
  "splash_run"
  "splash_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
