# Empty compiler generated dependencies file for splash_run.
# This may be replaced when dependencies are built.
