file(REMOVE_RECURSE
  "CMakeFiles/barrier_pruning.dir/barrier_pruning.cpp.o"
  "CMakeFiles/barrier_pruning.dir/barrier_pruning.cpp.o.d"
  "barrier_pruning"
  "barrier_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
