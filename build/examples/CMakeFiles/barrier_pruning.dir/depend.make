# Empty dependencies file for barrier_pruning.
# This may be replaced when dependencies are built.
