# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hb_vs_lockset "/root/repo/build/examples/hb_vs_lockset")
set_tests_properties(example_hb_vs_lockset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barrier_pruning "/root/repo/build/examples/barrier_pruning")
set_tests_properties(example_barrier_pruning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bloom_collision "/root/repo/build/examples/bloom_collision")
set_tests_properties(example_bloom_collision PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_splash_run "/root/repo/build/examples/splash_run" "barnes" "--scale=0.05" "--inject=3")
set_tests_properties(example_splash_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_postmortem "/root/repo/build/examples/postmortem" "water-nsquared" "--scale=0.05")
set_tests_properties(example_postmortem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
