file(REMOVE_RECURSE
  "CMakeFiles/hard_trace.dir/replayer.cc.o"
  "CMakeFiles/hard_trace.dir/replayer.cc.o.d"
  "CMakeFiles/hard_trace.dir/trace.cc.o"
  "CMakeFiles/hard_trace.dir/trace.cc.o.d"
  "libhard_trace.a"
  "libhard_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
