file(REMOVE_RECURSE
  "libhard_trace.a"
)
