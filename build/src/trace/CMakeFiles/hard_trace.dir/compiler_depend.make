# Empty compiler generated dependencies file for hard_trace.
# This may be replaced when dependencies are built.
