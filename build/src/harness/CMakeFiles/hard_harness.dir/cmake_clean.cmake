file(REMOVE_RECURSE
  "CMakeFiles/hard_harness.dir/experiment.cc.o"
  "CMakeFiles/hard_harness.dir/experiment.cc.o.d"
  "libhard_harness.a"
  "libhard_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
