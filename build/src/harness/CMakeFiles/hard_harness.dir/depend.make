# Empty dependencies file for hard_harness.
# This may be replaced when dependencies are built.
