file(REMOVE_RECURSE
  "libhard_harness.a"
)
