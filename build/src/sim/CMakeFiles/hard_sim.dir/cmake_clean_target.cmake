file(REMOVE_RECURSE
  "libhard_sim.a"
)
