file(REMOVE_RECURSE
  "CMakeFiles/hard_sim.dir/system.cc.o"
  "CMakeFiles/hard_sim.dir/system.cc.o.d"
  "libhard_sim.a"
  "libhard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
