# Empty compiler generated dependencies file for hard_sim.
# This may be replaced when dependencies are built.
