file(REMOVE_RECURSE
  "CMakeFiles/hard_workloads.dir/builder.cc.o"
  "CMakeFiles/hard_workloads.dir/builder.cc.o.d"
  "CMakeFiles/hard_workloads.dir/injector.cc.o"
  "CMakeFiles/hard_workloads.dir/injector.cc.o.d"
  "CMakeFiles/hard_workloads.dir/registry.cc.o"
  "CMakeFiles/hard_workloads.dir/registry.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_barnes.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_barnes.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_cholesky.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_cholesky.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_fmm.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_fmm.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_ocean.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_ocean.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_raytrace.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_raytrace.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_server.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_server.cc.o.d"
  "CMakeFiles/hard_workloads.dir/wl_water.cc.o"
  "CMakeFiles/hard_workloads.dir/wl_water.cc.o.d"
  "libhard_workloads.a"
  "libhard_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
