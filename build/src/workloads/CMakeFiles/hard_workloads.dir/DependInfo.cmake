
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/builder.cc" "src/workloads/CMakeFiles/hard_workloads.dir/builder.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/builder.cc.o.d"
  "/root/repo/src/workloads/injector.cc" "src/workloads/CMakeFiles/hard_workloads.dir/injector.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/injector.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/hard_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/wl_barnes.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_barnes.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_barnes.cc.o.d"
  "/root/repo/src/workloads/wl_cholesky.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_cholesky.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_cholesky.cc.o.d"
  "/root/repo/src/workloads/wl_fmm.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_fmm.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_fmm.cc.o.d"
  "/root/repo/src/workloads/wl_ocean.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_ocean.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_ocean.cc.o.d"
  "/root/repo/src/workloads/wl_raytrace.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_raytrace.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_raytrace.cc.o.d"
  "/root/repo/src/workloads/wl_server.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_server.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_server.cc.o.d"
  "/root/repo/src/workloads/wl_water.cc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_water.cc.o" "gcc" "src/workloads/CMakeFiles/hard_workloads.dir/wl_water.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/hard_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hard_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
