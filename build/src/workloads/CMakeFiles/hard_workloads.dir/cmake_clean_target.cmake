file(REMOVE_RECURSE
  "libhard_workloads.a"
)
