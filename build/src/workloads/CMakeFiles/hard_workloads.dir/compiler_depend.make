# Empty compiler generated dependencies file for hard_workloads.
# This may be replaced when dependencies are built.
