file(REMOVE_RECURSE
  "CMakeFiles/hard_detectors.dir/fasttrack.cc.o"
  "CMakeFiles/hard_detectors.dir/fasttrack.cc.o.d"
  "CMakeFiles/hard_detectors.dir/happens_before.cc.o"
  "CMakeFiles/hard_detectors.dir/happens_before.cc.o.d"
  "CMakeFiles/hard_detectors.dir/ideal_lockset.cc.o"
  "CMakeFiles/hard_detectors.dir/ideal_lockset.cc.o.d"
  "CMakeFiles/hard_detectors.dir/lockset_state.cc.o"
  "CMakeFiles/hard_detectors.dir/lockset_state.cc.o.d"
  "CMakeFiles/hard_detectors.dir/report.cc.o"
  "CMakeFiles/hard_detectors.dir/report.cc.o.d"
  "libhard_detectors.a"
  "libhard_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
