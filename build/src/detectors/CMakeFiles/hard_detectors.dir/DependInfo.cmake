
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/fasttrack.cc" "src/detectors/CMakeFiles/hard_detectors.dir/fasttrack.cc.o" "gcc" "src/detectors/CMakeFiles/hard_detectors.dir/fasttrack.cc.o.d"
  "/root/repo/src/detectors/happens_before.cc" "src/detectors/CMakeFiles/hard_detectors.dir/happens_before.cc.o" "gcc" "src/detectors/CMakeFiles/hard_detectors.dir/happens_before.cc.o.d"
  "/root/repo/src/detectors/ideal_lockset.cc" "src/detectors/CMakeFiles/hard_detectors.dir/ideal_lockset.cc.o" "gcc" "src/detectors/CMakeFiles/hard_detectors.dir/ideal_lockset.cc.o.d"
  "/root/repo/src/detectors/lockset_state.cc" "src/detectors/CMakeFiles/hard_detectors.dir/lockset_state.cc.o" "gcc" "src/detectors/CMakeFiles/hard_detectors.dir/lockset_state.cc.o.d"
  "/root/repo/src/detectors/report.cc" "src/detectors/CMakeFiles/hard_detectors.dir/report.cc.o" "gcc" "src/detectors/CMakeFiles/hard_detectors.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/hard_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hard_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
