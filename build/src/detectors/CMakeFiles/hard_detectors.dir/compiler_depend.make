# Empty compiler generated dependencies file for hard_detectors.
# This may be replaced when dependencies are built.
