file(REMOVE_RECURSE
  "libhard_detectors.a"
)
