# Empty compiler generated dependencies file for hard_core.
# This may be replaced when dependencies are built.
