file(REMOVE_RECURSE
  "CMakeFiles/hard_core.dir/bloom.cc.o"
  "CMakeFiles/hard_core.dir/bloom.cc.o.d"
  "CMakeFiles/hard_core.dir/hard_detector.cc.o"
  "CMakeFiles/hard_core.dir/hard_detector.cc.o.d"
  "CMakeFiles/hard_core.dir/hybrid.cc.o"
  "CMakeFiles/hard_core.dir/hybrid.cc.o.d"
  "CMakeFiles/hard_core.dir/lock_register.cc.o"
  "CMakeFiles/hard_core.dir/lock_register.cc.o.d"
  "libhard_core.a"
  "libhard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
