file(REMOVE_RECURSE
  "libhard_core.a"
)
