file(REMOVE_RECURSE
  "libhard_coherence.a"
)
