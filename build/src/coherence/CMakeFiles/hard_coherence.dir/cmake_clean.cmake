file(REMOVE_RECURSE
  "CMakeFiles/hard_coherence.dir/memsys.cc.o"
  "CMakeFiles/hard_coherence.dir/memsys.cc.o.d"
  "libhard_coherence.a"
  "libhard_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
