# Empty compiler generated dependencies file for hard_coherence.
# This may be replaced when dependencies are built.
