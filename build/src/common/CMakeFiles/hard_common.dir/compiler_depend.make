# Empty compiler generated dependencies file for hard_common.
# This may be replaced when dependencies are built.
