file(REMOVE_RECURSE
  "CMakeFiles/hard_common.dir/logging.cc.o"
  "CMakeFiles/hard_common.dir/logging.cc.o.d"
  "CMakeFiles/hard_common.dir/table.cc.o"
  "CMakeFiles/hard_common.dir/table.cc.o.d"
  "libhard_common.a"
  "libhard_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
