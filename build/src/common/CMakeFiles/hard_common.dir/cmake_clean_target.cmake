file(REMOVE_RECURSE
  "libhard_common.a"
)
