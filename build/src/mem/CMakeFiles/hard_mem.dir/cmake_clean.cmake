file(REMOVE_RECURSE
  "CMakeFiles/hard_mem.dir/cache.cc.o"
  "CMakeFiles/hard_mem.dir/cache.cc.o.d"
  "libhard_mem.a"
  "libhard_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
