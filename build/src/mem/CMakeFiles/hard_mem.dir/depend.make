# Empty dependencies file for hard_mem.
# This may be replaced when dependencies are built.
