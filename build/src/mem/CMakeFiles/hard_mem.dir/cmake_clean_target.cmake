file(REMOVE_RECURSE
  "libhard_mem.a"
)
