# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_table2_smoke "/root/repo/build/bench/bench_table2" "--runs=1" "--scale=0.05")
set_tests_properties(bench_table2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig8_smoke "/root/repo/build/bench/bench_fig8" "--scale=0.05")
set_tests_properties(bench_fig8_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_bloom_analysis_smoke "/root/repo/build/bench/bench_bloom_analysis" "--scale=0.02")
set_tests_properties(bench_bloom_analysis_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
