# Empty dependencies file for bench_threads.
# This may be replaced when dependencies are built.
