file(REMOVE_RECURSE
  "CMakeFiles/bench_threads.dir/bench_threads.cpp.o"
  "CMakeFiles/bench_threads.dir/bench_threads.cpp.o.d"
  "bench_threads"
  "bench_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
