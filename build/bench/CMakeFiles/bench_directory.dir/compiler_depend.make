# Empty compiler generated dependencies file for bench_directory.
# This may be replaced when dependencies are built.
