file(REMOVE_RECURSE
  "CMakeFiles/bench_directory.dir/bench_directory.cpp.o"
  "CMakeFiles/bench_directory.dir/bench_directory.cpp.o.d"
  "bench_directory"
  "bench_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
