# Empty dependencies file for bench_bloom_analysis.
# This may be replaced when dependencies are built.
