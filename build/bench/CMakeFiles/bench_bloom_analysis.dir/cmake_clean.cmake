file(REMOVE_RECURSE
  "CMakeFiles/bench_bloom_analysis.dir/bench_bloom_analysis.cpp.o"
  "CMakeFiles/bench_bloom_analysis.dir/bench_bloom_analysis.cpp.o.d"
  "bench_bloom_analysis"
  "bench_bloom_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bloom_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
