file(REMOVE_RECURSE
  "CMakeFiles/bench_extension.dir/bench_extension.cpp.o"
  "CMakeFiles/bench_extension.dir/bench_extension.cpp.o.d"
  "bench_extension"
  "bench_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
