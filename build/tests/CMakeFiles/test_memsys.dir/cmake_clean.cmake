file(REMOVE_RECURSE
  "CMakeFiles/test_memsys.dir/test_memsys.cc.o"
  "CMakeFiles/test_memsys.dir/test_memsys.cc.o.d"
  "test_memsys"
  "test_memsys.pdb"
  "test_memsys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
