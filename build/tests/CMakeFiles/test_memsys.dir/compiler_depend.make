# Empty compiler generated dependencies file for test_memsys.
# This may be replaced when dependencies are built.
