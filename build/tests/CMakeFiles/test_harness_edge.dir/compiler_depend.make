# Empty compiler generated dependencies file for test_harness_edge.
# This may be replaced when dependencies are built.
