file(REMOVE_RECURSE
  "CMakeFiles/test_harness_edge.dir/test_harness_edge.cc.o"
  "CMakeFiles/test_harness_edge.dir/test_harness_edge.cc.o.d"
  "test_harness_edge"
  "test_harness_edge.pdb"
  "test_harness_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
