file(REMOVE_RECURSE
  "CMakeFiles/test_wl_util.dir/test_wl_util.cc.o"
  "CMakeFiles/test_wl_util.dir/test_wl_util.cc.o.d"
  "test_wl_util"
  "test_wl_util.pdb"
  "test_wl_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
