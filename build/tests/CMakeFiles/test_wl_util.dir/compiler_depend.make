# Empty compiler generated dependencies file for test_wl_util.
# This may be replaced when dependencies are built.
