# Empty dependencies file for test_fasttrack.
# This may be replaced when dependencies are built.
