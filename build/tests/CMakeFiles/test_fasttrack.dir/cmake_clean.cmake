file(REMOVE_RECURSE
  "CMakeFiles/test_fasttrack.dir/test_fasttrack.cc.o"
  "CMakeFiles/test_fasttrack.dir/test_fasttrack.cc.o.d"
  "test_fasttrack"
  "test_fasttrack.pdb"
  "test_fasttrack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fasttrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
