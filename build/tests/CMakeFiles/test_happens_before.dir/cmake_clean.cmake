file(REMOVE_RECURSE
  "CMakeFiles/test_happens_before.dir/test_happens_before.cc.o"
  "CMakeFiles/test_happens_before.dir/test_happens_before.cc.o.d"
  "test_happens_before"
  "test_happens_before.pdb"
  "test_happens_before[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_happens_before.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
