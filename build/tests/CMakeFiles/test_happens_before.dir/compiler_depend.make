# Empty compiler generated dependencies file for test_happens_before.
# This may be replaced when dependencies are built.
