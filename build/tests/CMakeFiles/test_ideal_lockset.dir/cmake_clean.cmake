file(REMOVE_RECURSE
  "CMakeFiles/test_ideal_lockset.dir/test_ideal_lockset.cc.o"
  "CMakeFiles/test_ideal_lockset.dir/test_ideal_lockset.cc.o.d"
  "test_ideal_lockset"
  "test_ideal_lockset.pdb"
  "test_ideal_lockset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ideal_lockset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
