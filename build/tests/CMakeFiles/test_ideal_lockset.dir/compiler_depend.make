# Empty compiler generated dependencies file for test_ideal_lockset.
# This may be replaced when dependencies are built.
