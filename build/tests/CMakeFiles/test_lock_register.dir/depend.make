# Empty dependencies file for test_lock_register.
# This may be replaced when dependencies are built.
