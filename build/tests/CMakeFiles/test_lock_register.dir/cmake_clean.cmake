file(REMOVE_RECURSE
  "CMakeFiles/test_lock_register.dir/test_lock_register.cc.o"
  "CMakeFiles/test_lock_register.dir/test_lock_register.cc.o.d"
  "test_lock_register"
  "test_lock_register.pdb"
  "test_lock_register[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
