file(REMOVE_RECURSE
  "CMakeFiles/test_meta_cache.dir/test_meta_cache.cc.o"
  "CMakeFiles/test_meta_cache.dir/test_meta_cache.cc.o.d"
  "test_meta_cache"
  "test_meta_cache.pdb"
  "test_meta_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meta_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
