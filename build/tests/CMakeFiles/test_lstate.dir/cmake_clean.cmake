file(REMOVE_RECURSE
  "CMakeFiles/test_lstate.dir/test_lstate.cc.o"
  "CMakeFiles/test_lstate.dir/test_lstate.cc.o.d"
  "test_lstate"
  "test_lstate.pdb"
  "test_lstate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
