# Empty dependencies file for test_lstate.
# This may be replaced when dependencies are built.
