file(REMOVE_RECURSE
  "CMakeFiles/test_injector.dir/test_injector.cc.o"
  "CMakeFiles/test_injector.dir/test_injector.cc.o.d"
  "test_injector"
  "test_injector.pdb"
  "test_injector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
