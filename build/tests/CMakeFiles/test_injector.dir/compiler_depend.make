# Empty compiler generated dependencies file for test_injector.
# This may be replaced when dependencies are built.
