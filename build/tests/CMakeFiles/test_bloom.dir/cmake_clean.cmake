file(REMOVE_RECURSE
  "CMakeFiles/test_bloom.dir/test_bloom.cc.o"
  "CMakeFiles/test_bloom.dir/test_bloom.cc.o.d"
  "test_bloom"
  "test_bloom.pdb"
  "test_bloom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
