# Empty compiler generated dependencies file for test_bloom.
# This may be replaced when dependencies are built.
