file(REMOVE_RECURSE
  "CMakeFiles/test_names.dir/test_names.cc.o"
  "CMakeFiles/test_names.dir/test_names.cc.o.d"
  "test_names"
  "test_names.pdb"
  "test_names[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
