# Empty compiler generated dependencies file for test_names.
# This may be replaced when dependencies are built.
