file(REMOVE_RECURSE
  "CMakeFiles/test_vclock.dir/test_vclock.cc.o"
  "CMakeFiles/test_vclock.dir/test_vclock.cc.o.d"
  "test_vclock"
  "test_vclock.pdb"
  "test_vclock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
