# Empty compiler generated dependencies file for test_vclock.
# This may be replaced when dependencies are built.
