file(REMOVE_RECURSE
  "CMakeFiles/test_observer_neutrality.dir/test_observer_neutrality.cc.o"
  "CMakeFiles/test_observer_neutrality.dir/test_observer_neutrality.cc.o.d"
  "test_observer_neutrality"
  "test_observer_neutrality.pdb"
  "test_observer_neutrality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observer_neutrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
