# Empty compiler generated dependencies file for test_observer_neutrality.
# This may be replaced when dependencies are built.
