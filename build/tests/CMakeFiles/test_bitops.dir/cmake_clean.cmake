file(REMOVE_RECURSE
  "CMakeFiles/test_bitops.dir/test_bitops.cc.o"
  "CMakeFiles/test_bitops.dir/test_bitops.cc.o.d"
  "test_bitops"
  "test_bitops.pdb"
  "test_bitops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
