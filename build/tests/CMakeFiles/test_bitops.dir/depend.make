# Empty dependencies file for test_bitops.
# This may be replaced when dependencies are built.
