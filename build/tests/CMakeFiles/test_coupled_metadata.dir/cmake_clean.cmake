file(REMOVE_RECURSE
  "CMakeFiles/test_coupled_metadata.dir/test_coupled_metadata.cc.o"
  "CMakeFiles/test_coupled_metadata.dir/test_coupled_metadata.cc.o.d"
  "test_coupled_metadata"
  "test_coupled_metadata.pdb"
  "test_coupled_metadata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupled_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
