# Empty dependencies file for test_coupled_metadata.
# This may be replaced when dependencies are built.
