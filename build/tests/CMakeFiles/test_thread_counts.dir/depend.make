# Empty dependencies file for test_thread_counts.
# This may be replaced when dependencies are built.
