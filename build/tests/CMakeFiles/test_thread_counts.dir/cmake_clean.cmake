file(REMOVE_RECURSE
  "CMakeFiles/test_thread_counts.dir/test_thread_counts.cc.o"
  "CMakeFiles/test_thread_counts.dir/test_thread_counts.cc.o.d"
  "test_thread_counts"
  "test_thread_counts.pdb"
  "test_thread_counts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
