file(REMOVE_RECURSE
  "CMakeFiles/test_bloom_endtoend.dir/test_bloom_endtoend.cc.o"
  "CMakeFiles/test_bloom_endtoend.dir/test_bloom_endtoend.cc.o.d"
  "test_bloom_endtoend"
  "test_bloom_endtoend.pdb"
  "test_bloom_endtoend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bloom_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
