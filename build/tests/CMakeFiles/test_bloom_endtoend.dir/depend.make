# Empty dependencies file for test_bloom_endtoend.
# This may be replaced when dependencies are built.
