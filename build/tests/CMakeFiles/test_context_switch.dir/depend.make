# Empty dependencies file for test_context_switch.
# This may be replaced when dependencies are built.
