file(REMOVE_RECURSE
  "CMakeFiles/test_context_switch.dir/test_context_switch.cc.o"
  "CMakeFiles/test_context_switch.dir/test_context_switch.cc.o.d"
  "test_context_switch"
  "test_context_switch.pdb"
  "test_context_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
