# Empty dependencies file for test_shapes.
# This may be replaced when dependencies are built.
