file(REMOVE_RECURSE
  "CMakeFiles/test_shapes.dir/test_shapes.cc.o"
  "CMakeFiles/test_shapes.dir/test_shapes.cc.o.d"
  "test_shapes"
  "test_shapes.pdb"
  "test_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
