# Empty dependencies file for test_hard_detector.
# This may be replaced when dependencies are built.
