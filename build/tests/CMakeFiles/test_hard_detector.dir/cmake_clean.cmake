file(REMOVE_RECURSE
  "CMakeFiles/test_hard_detector.dir/test_hard_detector.cc.o"
  "CMakeFiles/test_hard_detector.dir/test_hard_detector.cc.o.d"
  "test_hard_detector"
  "test_hard_detector.pdb"
  "test_hard_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hard_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
