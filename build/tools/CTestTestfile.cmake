# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(hardsim_list "/root/repo/build/tools/hardsim" "--list")
set_tests_properties(hardsim_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hardsim_run "/root/repo/build/tools/hardsim" "--workload=server" "--scale=0.05" "--detectors=hard,hybrid,fasttrack" "--inject=3" "--stats")
set_tests_properties(hardsim_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hardsim_overhead "/root/repo/build/tools/hardsim" "--workload=barnes" "--scale=0.05" "--overhead")
set_tests_properties(hardsim_overhead PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hardsim_msi "/root/repo/build/tools/hardsim" "--workload=barnes" "--scale=0.05" "--protocol=msi" "--overhead" "--directory")
set_tests_properties(hardsim_msi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hardsim_oversubscribed "/root/repo/build/tools/hardsim" "--workload=ocean" "--scale=0.05" "--cores=2" "--detectors=hard")
set_tests_properties(hardsim_oversubscribed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
