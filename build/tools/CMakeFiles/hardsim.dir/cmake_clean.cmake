file(REMOVE_RECURSE
  "CMakeFiles/hardsim.dir/hardsim.cpp.o"
  "CMakeFiles/hardsim.dir/hardsim.cpp.o.d"
  "hardsim"
  "hardsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
