# Empty dependencies file for hardsim.
# This may be replaced when dependencies are built.
