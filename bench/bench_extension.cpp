/**
 * @file
 * Extension evaluation beyond the paper (its §7 future work):
 *
 *  - the "server" workload (apache/mysql program class): Table 2-style
 *    effectiveness plus Figure 8-style overhead;
 *  - the hybrid lockset + happens-before detector on all seven
 *    workloads: detection kept, hand-crafted-synchronization false
 *    alarms pruned.
 */

#include "bench_util.hh"
#include "core/hybrid.hh"

using namespace hard;

namespace
{

DetectorFactory
extensionDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        dets.push_back(
            std::make_unique<HardDetector>("hard", HardConfig{}));
        dets.push_back(
            std::make_unique<HybridDetector>("hybrid", HardConfig{}));
        dets.push_back(std::make_unique<HappensBeforeDetector>(
            "hb", HbConfig{}));
        return dets;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Extensions — server workload and the hybrid "
                       "lockset+happens-before detector (paper §7)",
                       opt);

    Table t("Effectiveness on all workloads incl. the server "
            "extension: bugs / false alarms");
    t.setHeader({"Application", "HARD bugs", "HARD FAs", "Hybrid bugs",
                 "Hybrid FAs", "HB bugs", "HB FAs"});

    std::vector<std::string> apps = paperApps();
    for (const WorkloadInfo &w : extensionWorkloads())
        apps.push_back(w.name);

    unsigned hard_bugs = 0, hybrid_bugs = 0;
    std::size_t hard_fas = 0, hybrid_fas = 0;
    for (const std::string &app : apps) {
        EffectivenessResult res =
            runEffectiveness(app, opt.params(), defaultSimConfig(),
                             extensionDetectors(), opt.runs, opt.seed);
        const DetectorScore &hd = res.at("hard");
        const DetectorScore &hy = res.at("hybrid");
        const DetectorScore &hb = res.at("hb");
        t.addRow({app, fracCell(hd.bugsDetected, hd.runsAttempted),
                  std::to_string(hd.falseAlarms),
                  fracCell(hy.bugsDetected, hy.runsAttempted),
                  std::to_string(hy.falseAlarms),
                  fracCell(hb.bugsDetected, hb.runsAttempted),
                  std::to_string(hb.falseAlarms)});
        hard_bugs += hd.bugsDetected;
        hybrid_bugs += hy.bugsDetected;
        hard_fas += hd.falseAlarms;
        hybrid_fas += hy.falseAlarms;
    }
    printTable(t, opt);
    std::printf("hybrid vs HARD: bugs %u vs %u, false alarms %zu vs "
                "%zu — the §7 combination prunes alarms caused by "
                "non-lock synchronization at (nearly) no detection "
                "cost.\n\n",
                hybrid_bugs, hard_bugs, hybrid_fas, hard_fas);

    // Overhead of HARD on the server workload (Figure 8 style).
    OverheadResult oh = measureOverhead("server", opt.params(),
                                        defaultSimConfig(), HardConfig{});
    std::printf("server overhead: %.2f%% (base %llu cycles, HARD %llu, "
                "%llu metadata broadcasts)\n",
                oh.overheadPct,
                static_cast<unsigned long long>(oh.baseCycles),
                static_cast<unsigned long long>(oh.hardCycles),
                static_cast<unsigned long long>(oh.metaBroadcasts));
    return 0;
}
