/**
 * @file
 * Reproduces paper Table 5: race-free-run false alarms of HARD
 * (lockset) and happens-before as the L2 (metadata-capacity) size is
 * varied from 128KB to 1MB. Bigger stores retain more (stale)
 * evidence, so alarms rise weakly with L2 size.
 */

#include "bench_util.hh"

using namespace hard;

namespace
{

constexpr std::uint64_t kL2Sizes[] = {128 * 1024, 256 * 1024, 512 * 1024,
                                      1024 * 1024};

DetectorFactory
l2SweepDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (std::uint64_t l2 : kL2Sizes) {
            std::string kb = std::to_string(l2 / 1024) + "KB";
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + kb, HardConfig::withL2(l2)));
            HbConfig bc;
            bc.metaGeometry.sizeBytes = l2;
            dets.push_back(std::make_unique<HappensBeforeDetector>(
                "hb." + kb, bc));
        }
        return dets;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Table 5 — false alarms vs L2 size", opt);

    Table t("Table 5: false alarms (race-free run) for L2 sizes "
            "128KB..1MB");
    t.setHeader({"Application", "Lockset 128KB", "Lockset 256KB",
                 "Lockset 512KB", "Lockset 1MB", "HB 128KB", "HB 256KB",
                 "HB 512KB", "HB 1MB"});

    for (const std::string &app : paperApps()) {
        // False alarms come from the race-free run only; no injected
        // runs are needed.
        EffectivenessResult res =
            runEffectiveness(app, opt.params(), defaultSimConfig(),
                             l2SweepDetectors(), 0, opt.seed);
        std::vector<std::string> row{app};
        for (const char *alg : {"hard", "hb"}) {
            for (std::uint64_t l2 : kL2Sizes) {
                const DetectorScore &s = res.at(
                    std::string(alg) + "." + std::to_string(l2 / 1024) +
                    "KB");
                row.push_back(std::to_string(s.falseAlarms));
            }
        }
        t.addRow(row);
    }
    printTable(t, opt);
    std::printf("Paper shape: false alarms rise (weakly) from 128KB to "
                "1MB for both algorithms.\n");
    return 0;
}
