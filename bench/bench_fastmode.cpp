/**
 * @file
 * Benchmarks fast functional mode (trace-once/replay-many) against
 * cycle-level simulation and emits the committed BENCH_fastmode.json
 * trajectory baseline (`hard.bench.fastmode.v1`).
 *
 * Two measurements, both on the standard Table-2 effectiveness sweep:
 *
 * 1. End-to-end sweep legs — the full batch driver in cycle mode,
 *    fast mode against an empty cache (record + store), and fast mode
 *    against the populated cache (replay only). The three result
 *    documents are asserted content-identical before any timing is
 *    reported. This number is bounded by Amdahl's law: the detector
 *    battery replays in every leg, so the sweep speedup approaches
 *    (sim + battery) / battery as the cache warms.
 *
 * 2. The interleaving component — what fast mode actually eliminates.
 *    Producing a detector-ready event stream costs a full cycle-level
 *    simulation in cycle mode, versus a warm cache hit (map +
 *    integrity check + streamed battery-free replay) in fast mode.
 *    This is the order-of-magnitude win, and it is what every
 *    additional detector config amortizes against when a campaign
 *    reuses traces.
 *
 * Extra arguments on top of the common bench set:
 *   --out=<file>    trajectory JSON path (BENCH_fastmode.json)
 *   --cache=<dir>   trace-cache directory; WIPED before the cold leg
 */

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "trace/record.hh"
#include "trace/replayer.hh"
#include "trace/trace_cache.hh"

using namespace hard;

namespace
{

using BenchClock = std::chrono::steady_clock;

double
secondsSince(BenchClock::time_point t0)
{
    return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

/** One timed leg of the standard sweep; returns elapsed seconds. */
double
runSweepLeg(const BenchOptions &opt, RunPool &pool, ExecMode mode,
            TraceCache *cache, std::vector<BatchItemResult> *results)
{
    std::vector<BatchItem> items =
        effectivenessItems(opt, table2Detectors());
    for (BatchItem &item : items) {
        item.mode = mode;
        item.traceCache = cache;
    }
    const BenchClock::time_point t0 = BenchClock::now();
    *results = runBatch(items, pool);
    return secondsSince(t0);
}

Json
legJson(double seconds, unsigned units)
{
    Json j = Json::object();
    j.set("seconds", seconds);
    j.set("runsPerSec", seconds > 0.0 ? units / seconds : 0.0);
    return j;
}

Json
countersJson(const TraceCache &cache)
{
    const TraceCache::Counters c = cache.counters();
    Json j = Json::object();
    j.set("hits", c.hits);
    j.set("misses", c.misses);
    j.set("stores", c.stores);
    j.set("evictedCorrupt", c.evictedCorrupt);
    j.set("evictedStale", c.evictedStale);
    j.set("collisions", c.collisions);
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the bench-specific arguments, hand the rest to the
    // common parser.
    std::string out = "BENCH_fastmode.json";
    std::string cache_dir =
        (std::filesystem::temp_directory_path() / "bench_fastmode_cache")
            .string();
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            out = a.substr(6);
        else if (a.rfind("--cache=", 0) == 0)
            cache_dir = a.substr(8);
        else
            rest.push_back(argv[i]);
    }
    BenchOptions opt =
        parseBenchArgs(static_cast<int>(rest.size()), rest.data());
    printMachineHeader(
        "Fast functional mode — trace-once/replay-many baseline", opt);

    const std::vector<std::string> apps = paperApps();
    const unsigned units =
        static_cast<unsigned>(apps.size()) * (opt.runs + 1);

    // ----------------------------------------------------------------
    // 1. End-to-end sweep legs. The cold leg needs an empty cache.
    std::filesystem::remove_all(cache_dir);
    TraceCache cache(cache_dir + "/sweep");
    RunPool pool(opt.jobs);

    std::vector<BatchItemResult> cyc, cold, warm;
    const double t_cycle =
        runSweepLeg(opt, pool, ExecMode::Cycle, nullptr, &cyc);
    const double t_cold =
        runSweepLeg(opt, pool, ExecMode::Fast, &cache, &cold);
    const double t_warm =
        runSweepLeg(opt, pool, ExecMode::Fast, &cache, &warm);

    // A speedup over different results would be meaningless: the three
    // documents must agree bit for bit before timing is reported.
    const std::string cyc_dump = batchJson(cyc).dump(2);
    hard_fatal_if(cyc_dump != batchJson(cold).dump(2),
                  "fast-mode cold leg diverged from cycle mode");
    hard_fatal_if(cyc_dump != batchJson(warm).dump(2),
                  "fast-mode warm leg diverged from cycle mode");

    // ----------------------------------------------------------------
    // 2. Interleaving component: cycle-level simulation vs warm cache
    // load + battery-free replay, per application. Each replay leg is
    // repeated to stabilize the (much smaller) timing.
    constexpr unsigned kReplays = 3;
    TraceCache icache(cache_dir + "/interleaving");
    std::uint64_t events = 0;
    double t_sim = 0.0, t_replay = 0.0;
    for (const std::string &app : apps) {
        Program prog = buildWorkload(app, opt.params());
        SimConfig cfg = defaultSimConfig();
        if (cfg.maxCycles == 0)
            cfg.maxCycles = defaultCycleBudget(prog);
        const TraceKey key = makeRunKey(app, opt.params(), cfg, -1);

        const BenchClock::time_point s0 = BenchClock::now();
        Trace trace = recordRun(prog, cfg);
        t_sim += secondsSince(s0);
        icache.store(key, trace);
        events += trace.events.size();

        // replayCached() is the production warm path (harness/batch):
        // map + integrity-check the container, stream packed events.
        const BenchClock::time_point r0 = BenchClock::now();
        for (unsigned i = 0; i < kReplays; ++i) {
            std::optional<std::size_t> n = icache.replayCached(key, {});
            hard_fatal_if(!n, "interleaving bench: cache miss");
        }
        t_replay += secondsSince(r0) / kReplays;
    }

    // ----------------------------------------------------------------
    // Report.
    const double warm_vs_cycle = t_warm > 0.0 ? t_cycle / t_warm : 0.0;
    const double replay_vs_sim = t_replay > 0.0 ? t_sim / t_replay : 0.0;

    Table t("fast functional mode: standard sweep + interleaving "
            "component");
    t.setHeader({"leg", "seconds", "runs/sec"});
    char buf[64];
    auto row = [&](const char *name, double sec) {
        std::snprintf(buf, sizeof buf, "%.3f", sec);
        std::string s = buf;
        std::snprintf(buf, sizeof buf, "%.2f", sec > 0 ? units / sec : 0);
        t.addRow({name, s, buf});
    };
    row("cycle", t_cycle);
    row("fast cold", t_cold);
    row("fast warm", t_warm);
    printTable(t, opt);
    std::printf("sweep warm speedup: %.2fx (battery-bound; the oracle "
                "detectors replay in every leg)\n"
                "interleaving: %llu events, sim %.3fs vs warm replay "
                "%.3fs -> %.1fx\n",
                warm_vs_cycle, static_cast<unsigned long long>(events),
                t_sim, t_replay, replay_vs_sim);

    Json doc = Json::object();
    doc.set("schema", "hard.bench.fastmode.v1");
    Json wl = Json::array();
    for (const std::string &app : apps)
        wl.push(app);
    doc.set("workloads", std::move(wl));
    doc.set("runsPerWorkload", opt.runs);
    doc.set("units", units);
    doc.set("scale", opt.scale);
    doc.set("jobs", opt.jobs);
    doc.set("seed", opt.seed);
    doc.set("cycle", legJson(t_cycle, units));
    doc.set("fastCold", legJson(t_cold, units));
    doc.set("fastWarm", legJson(t_warm, units));
    Json sp = Json::object();
    sp.set("coldVsCycle", t_cold > 0.0 ? t_cycle / t_cold : 0.0);
    sp.set("warmVsCycle", warm_vs_cycle);
    sp.set("replayVsSim", replay_vs_sim);
    doc.set("speedup", std::move(sp));
    Json il = Json::object();
    il.set("events", events);
    il.set("simSeconds", t_sim);
    il.set("replaySeconds", t_replay);
    il.set("simEventsPerSec", t_sim > 0.0 ? events / t_sim : 0.0);
    il.set("replayEventsPerSec",
           t_replay > 0.0 ? events / t_replay : 0.0);
    il.set("replays", kReplays);
    doc.set("interleaving", std::move(il));
    doc.set("traceCache", countersJson(cache));
    writeJsonFile(out, doc);
    std::printf("baseline written to %s\n", out.c_str());
    return 0;
}
