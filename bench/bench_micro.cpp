/**
 * @file
 * google-benchmark microbenchmarks quantifying §3.1's claim that the
 * lockset set operations become "fast bitwise logic operations" in
 * HARD: BFVector signature/intersection/emptiness, Lock Register
 * updates, the Figure 2 state machine, the exact (software) set
 * intersection they replace, per-access detector costs, and the
 * underlying cache/bus substrate.
 */

#include <benchmark/benchmark.h>

#include "core/hard_detector.hh"
#include "detectors/fasttrack.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "common/rng.hh"

namespace hard
{
namespace
{

void
BM_BloomSignature(benchmark::State &state)
{
    Rng rng(1);
    Addr a = rng.next64();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            BfVector::signatureBits(a, 16));
        a += 64;
    }
}
BENCHMARK(BM_BloomSignature);

void
BM_BloomIntersectAndTest(benchmark::State &state)
{
    BfVector cand = BfVector::allOnes(16);
    BfVector lockset = BfVector::signatureOf(0x1a4, 16);
    for (auto _ : state) {
        BfVector c = cand;
        c &= lockset;
        benchmark::DoNotOptimize(c.setEmpty());
    }
}
BENCHMARK(BM_BloomIntersectAndTest);

void
BM_ExactSetIntersect(benchmark::State &state)
{
    // The software operation HARD replaces: intersect two small exact
    // lock sets (std::set), as Eraser-style implementations do.
    const std::set<LockAddr> held{0x1a4, 0x2b8};
    ExactLockset cand;
    cand.intersect({0x1a4, 0x3cc, 0x4d0});
    for (auto _ : state) {
        ExactLockset c = cand;
        c.intersect(held);
        benchmark::DoNotOptimize(c.empty());
    }
}
BENCHMARK(BM_ExactSetIntersect);

void
BM_LockRegisterAcquireRelease(benchmark::State &state)
{
    LockRegister lr(16, 2);
    for (auto _ : state) {
        lr.acquire(0x1a4);
        lr.release(0x1a4);
    }
    benchmark::DoNotOptimize(lr.vector().raw());
}
BENCHMARK(BM_LockRegisterAcquireRelease);

void
BM_LStateTransition(benchmark::State &state)
{
    LState s = LState::Virgin;
    ThreadId owner = invalidThread;
    unsigned i = 0;
    for (auto _ : state) {
        ++i;
        LStateStep step = lstateAccess(s, owner, i & 3, (i >> 2) & 1);
        s = step.next;
        owner = step.owner;
        benchmark::DoNotOptimize(step.reportIfEmpty);
    }
}
BENCHMARK(BM_LStateTransition);

/** Drive one detector with a synthetic pre-generated event stream. */
template <typename Detector>
void
drivePerAccess(benchmark::State &state, Detector &det)
{
    Rng rng(7);
    std::vector<MemEvent> evs(4096);
    for (auto &ev : evs) {
        ev.tid = static_cast<ThreadId>(rng.below(4));
        ev.core = ev.tid;
        ev.addr = 0x10000 + rng.below(4096) * 8;
        ev.size = 8;
        ev.write = rng.chance(0.5);
        ev.site = static_cast<SiteId>(rng.below(16));
        ev.outcome.stateAfter = CState::Shared;
        ev.outcome.sharers = 2;
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const MemEvent &ev = evs[i++ & 4095];
        if (ev.write)
            det.onWrite(ev);
        else
            det.onRead(ev);
    }
}

void
BM_HardDetectorPerAccess(benchmark::State &state)
{
    HardDetector det("hard", HardConfig{});
    drivePerAccess(state, det);
}
BENCHMARK(BM_HardDetectorPerAccess);

void
BM_HappensBeforePerAccess(benchmark::State &state)
{
    HappensBeforeDetector det("hb", HbConfig{});
    drivePerAccess(state, det);
}
BENCHMARK(BM_HappensBeforePerAccess);

void
BM_FastTrackPerAccess(benchmark::State &state)
{
    FastTrackDetector det("ft", 4);
    drivePerAccess(state, det);
}
BENCHMARK(BM_FastTrackPerAccess);

void
BM_IdealLocksetPerAccess(benchmark::State &state)
{
    IdealLocksetDetector det("ls", IdealLocksetConfig{});
    drivePerAccess(state, det);
}
BENCHMARK(BM_IdealLocksetPerAccess);

void
BM_MemSystemAccess(benchmark::State &state)
{
    MemorySystem mem(MemSysConfig{});
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        AccessOutcome out =
            mem.access(static_cast<CoreId>(rng.below(4)),
                       0x10000 + rng.below(8192) * 8, 8,
                       rng.chance(0.3), now);
        now = out.completeAt;
    }
}
BENCHMARK(BM_MemSystemAccess);

void
BM_BusTransaction(benchmark::State &state)
{
    Bus bus(BusConfig{});
    Cycle now = 0;
    for (auto _ : state) {
        now = bus.transact(TxnType::MetaBroadcast, now);
    }
    benchmark::DoNotOptimize(now);
}
BENCHMARK(BM_BusTransaction);

} // namespace
} // namespace hard

BENCHMARK_MAIN();
