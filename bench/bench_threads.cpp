/**
 * @file
 * Extension sweep: HARD's effectiveness and overhead as the thread
 * count varies (2, 4 = the paper's setup, 8) and when threads are
 * oversubscribed onto the 4-core machine (8 threads / 4 cores, where
 * the per-processor Lock/Counter Registers are context-switched).
 * The paper evaluates only 4 threads on 4 cores; this quantifies how
 * the design scales.
 */

#include "bench_util.hh"

using namespace hard;

namespace
{

struct Setup
{
    const char *label;
    unsigned threads;
    unsigned cores;
};

constexpr Setup kSetups[] = {
    {"2t/2c", 2, 2},
    {"4t/4c (paper)", 4, 4},
    {"8t/8c", 8, 8},
    {"8t/4c oversub", 8, 4},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader(
        "Extension — thread-count scaling and oversubscription", opt);

    Table t("HARD across thread counts: bugs / false alarms / "
            "overhead %");
    std::vector<std::string> header{"Application"};
    for (const Setup &s : kSetups)
        header.push_back(s.label);
    t.setHeader(header);

    for (const std::string &app : paperApps()) {
        std::vector<std::string> row{app};
        for (const Setup &s : kSetups) {
            WorkloadParams wp = opt.params();
            wp.numThreads = s.threads;
            SimConfig sim = defaultSimConfig();
            sim.memsys.numCores = s.cores;

            DetectorFactory factory = [] {
                std::vector<std::unique_ptr<RaceDetector>> dets;
                HardConfig cfg;
                cfg.perCoreRegisters = true; // the real hardware model
                dets.push_back(
                    std::make_unique<HardDetector>("hard", cfg));
                return dets;
            };
            EffectivenessResult res = runEffectiveness(
                app, wp, sim, factory, opt.runs, opt.seed);
            OverheadResult oh =
                measureOverhead(app, wp, sim, HardConfig{});
            const DetectorScore &score = res.at("hard");
            row.push_back(fracCell(score.bugsDetected,
                                   score.runsAttempted) +
                          " , " + std::to_string(score.falseAlarms) +
                          " , " + fmtDouble(oh.overheadPct, 2) + "%");
        }
        t.addRow(row);
    }
    printTable(t, opt);
    std::printf(
        "The per-processor-register HARD (with OS save/restore on "
        "context switches) keeps its detection rate at every thread "
        "count, including when oversubscribed.\n"
        "Note: in the oversubscribed column the overhead percentage "
        "is noisy (it can even be negative) because HARD's extra "
        "latencies shift quantum boundaries and thus the schedule "
        "itself; compare like-for-like on the dedicated columns.\n");
    return 0;
}
