/**
 * @file
 * Quantifies the §3.4 snoopy-vs-directory trade-off the paper
 * discusses qualitatively: the snoopy design piggybacks metadata on
 * coherence transfers and broadcasts only when a Shared line's
 * candidate set changes, while a directory design performs a metadata
 * fetch + put-back round-trip on every shared access ("simpler
 * management... but may delay the detection of races" — and, as this
 * bench shows, costs more interconnect traffic on a bus-based CMP).
 */

#include "bench_util.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Section 3.4 — snoopy piggyback vs directory "
                       "metadata management",
                       opt);

    Table t("HARD overhead: snoopy (broadcast-on-change) vs directory "
            "(per-shared-access round-trips)");
    t.setHeader({"Application", "Snoopy %", "Directory %",
                 "Snoopy meta bytes", "Directory meta bytes"});

    for (const std::string &app : paperApps()) {
        OverheadResult snoopy = measureOverhead(
            app, opt.params(), defaultSimConfig(), HardConfig{});
        OverheadResult dir = measureOverheadDirectory(
            app, opt.params(), defaultSimConfig(), HardConfig{});
        t.addRow({app, fmtDouble(snoopy.overheadPct, 2),
                  fmtDouble(dir.overheadPct, 2),
                  std::to_string(snoopy.metaBytes),
                  std::to_string(dir.metaBytes)});
    }
    printTable(t, opt);
    std::printf("Expected: the directory variant moves (much) more "
                "metadata and costs more time on this bus-based CMP — "
                "the paper's motivation for the snoopy piggyback "
                "design.\n");
    return 0;
}
