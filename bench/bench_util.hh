/**
 * @file
 * Shared helpers for the table/figure reproduction benches: command
 * line handling (scale, runs, seed), the canonical application list,
 * and result formatting.
 *
 * Every bench accepts:
 *   --scale=<f>   workload scale factor (default 1.0, the paper size)
 *   --runs=<n>    injected-bug runs per application (default 10)
 *   --seed=<n>    base injection seed (default 1000)
 *   --jobs=<n>    worker threads for batched sweeps (default: all
 *                 hardware threads; results are identical for any n)
 *   --json=<f>    additionally write batch results as JSON (benches
 *                 that run through the batch driver)
 *   --csv         additionally print tables as CSV
 */

#ifndef HARD_BENCH_BENCH_UTIL_HH
#define HARD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"

namespace hard
{

/** Parsed common bench options. */
struct BenchOptions
{
    double scale = 1.0;
    unsigned runs = 10;
    std::uint64_t seed = 1000;
    unsigned jobs = 0; // 0 = all hardware threads
    std::string json;
    bool csv = false;

    WorkloadParams
    params() const
    {
        WorkloadParams p;
        p.scale = scale;
        return p;
    }
};

/** Parse the common options; fatal() on unknown arguments. */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--scale=", 8) == 0) {
            opt.scale = std::atof(a + 8);
        } else if (std::strncmp(a, "--runs=", 7) == 0) {
            opt.runs = static_cast<unsigned>(std::atoi(a + 7));
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            opt.seed = static_cast<std::uint64_t>(std::atoll(a + 7));
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            opt.jobs = static_cast<unsigned>(std::atoi(a + 7));
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            opt.json = a + 7;
        } else if (std::strcmp(a, "--csv") == 0) {
            opt.csv = true;
        } else {
            fatal("unknown argument '%s' "
                  "(expected --scale= --runs= --seed= --jobs= --json= "
                  "--csv)",
                  a);
        }
    }
    hard_fatal_if(opt.scale <= 0.0, "scale must be positive");
    hard_fatal_if(opt.runs == 0, "runs must be positive");
    return opt;
}

/**
 * Build one effectiveness BatchItem per paper application with the
 * bench's common sizing/seed options applied.
 *
 * @param collect_stats Embed a `hard.stats.v1` block per run in the
 * results (and so in the --json dump).
 */
inline std::vector<BatchItem>
effectivenessItems(const BenchOptions &opt, const DetectorFactory &factory,
                   bool collect_stats = false)
{
    std::vector<BatchItem> items;
    for (const WorkloadInfo &w : allWorkloads()) {
        BatchItem item;
        item.workload = w.name;
        item.wp = opt.params();
        item.sim = defaultSimConfig();
        item.factory = factory;
        item.runs = opt.runs;
        item.seed0 = opt.seed;
        item.collectStats = collect_stats;
        items.push_back(std::move(item));
    }
    return items;
}

/** Write the batch JSON dump when --json= was given. */
inline void
maybeWriteJson(const BenchOptions &opt,
               const std::vector<BatchItemResult> &results)
{
    if (opt.json.empty())
        return;
    writeJsonFile(opt.json, batchJson(results));
    std::printf("results written to %s\n", opt.json.c_str());
}

/** The six applications in the paper's Table 2 order. */
inline std::vector<std::string>
paperApps()
{
    std::vector<std::string> names;
    for (const WorkloadInfo &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

/** Print a finished table (and optionally its CSV). */
inline void
printTable(const Table &t, const BenchOptions &opt)
{
    std::fputs(t.render().c_str(), stdout);
    if (opt.csv) {
        std::fputs("\n[csv]\n", stdout);
        std::fputs(t.csv().c_str(), stdout);
    }
    std::fputs("\n", stdout);
}

/** Standard header identifying the simulated machine (Table 1). */
inline void
printMachineHeader(const char *what, const BenchOptions &opt)
{
    SimConfig cfg = defaultSimConfig();
    std::printf(
        "%s\n"
        "simulated CMP (paper Table 1): %u cores, L1 %lluKB/%u-way, "
        "L2 %lluKB/%u-way, %uB lines, mem %llu cycles\n"
        "scale=%.2f runs=%u seed=%llu\n\n",
        what, cfg.memsys.numCores,
        static_cast<unsigned long long>(cfg.memsys.l1.sizeBytes / 1024),
        cfg.memsys.l1.assoc,
        static_cast<unsigned long long>(cfg.memsys.l2.sizeBytes / 1024),
        cfg.memsys.l2.assoc, cfg.memsys.l1.lineBytes,
        static_cast<unsigned long long>(cfg.memsys.memLatency), opt.scale,
        opt.runs, static_cast<unsigned long long>(opt.seed));
}

/** "9/10"-style cell. */
inline std::string
fracCell(unsigned num, unsigned den)
{
    return std::to_string(num) + "/" + std::to_string(den);
}

} // namespace hard

#endif // HARD_BENCH_BENCH_UTIL_HH
