/**
 * @file
 * Reproduces paper Figure 8: HARD's execution-time overhead as a
 * percentage of the unmonitored run, per application (paper:
 * 0.1%-2.6%), with the bus-traffic breakdown supporting §5.1's claim
 * that the extra coherence traffic dominates the overhead.
 */

#include "bench_util.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader(
        "Figure 8 — HARD execution-time overhead per application", opt);

    Table t("Figure 8: overhead of HARD (percent of baseline cycles)");
    t.setHeader({"Application", "Base cycles", "HARD cycles",
                 "Overhead %", "Meta broadcasts", "Meta bytes",
                 "Data bytes", "Meta/Data %"});

    // Each application's (baseline, HARD) timing pair is independent of
    // every other: measure them all across the pool via the batch
    // driver; results are identical for any --jobs value.
    RunPool pool(opt.jobs);
    std::vector<BatchItem> items;
    for (const std::string &app : paperApps()) {
        BatchItem item;
        item.workload = app;
        item.wp = opt.params();
        item.sim = defaultSimConfig();
        item.effectiveness = false;
        item.overhead = true;
        items.push_back(std::move(item));
    }
    std::vector<BatchItemResult> batch = runBatch(items, pool);

    std::vector<std::pair<std::string, OverheadResult>> results;
    for (const BatchItemResult &item : batch)
        results.emplace_back(item.workload, item.overhead);

    double min_pct = 1e9, max_pct = -1e9;
    for (const auto &[app, oh] : results) {
        double meta_share = oh.dataBytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(oh.metaBytes) /
                static_cast<double>(oh.dataBytes);
        t.addRow({app, std::to_string(oh.baseCycles),
                  std::to_string(oh.hardCycles),
                  fmtDouble(oh.overheadPct, 2),
                  std::to_string(oh.metaBroadcasts),
                  std::to_string(oh.metaBytes),
                  std::to_string(oh.dataBytes),
                  fmtDouble(meta_share, 3)});
        min_pct = std::min(min_pct, oh.overheadPct);
        max_pct = std::max(max_pct, oh.overheadPct);
    }
    printTable(t, opt);

    // ASCII rendition of the figure.
    std::printf("Figure 8 (ascii): overhead per application\n");
    for (const auto &[app, oh] : results) {
        int bars = static_cast<int>(oh.overheadPct * 10 + 0.5);
        std::printf("  %-15s %6.2f%% |%s\n", app.c_str(), oh.overheadPct,
                    std::string(static_cast<std::size_t>(
                                    std::max(bars, 0)),
                                '#')
                        .c_str());
    }
    std::printf("\nmeasured overhead range: %.2f%% .. %.2f%% "
                "(paper: 0.1%% .. 2.6%%)\n",
                min_pct, max_pct);
    maybeWriteJson(opt, batch, pool);
    return 0;
}
