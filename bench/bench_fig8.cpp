/**
 * @file
 * Reproduces paper Figure 8: HARD's execution-time overhead as a
 * percentage of the unmonitored run, per application (paper:
 * 0.1%-2.6%), with the bus-traffic breakdown supporting §5.1's claim
 * that the extra coherence traffic dominates the overhead.
 */

#include "bench_util.hh"

#include "telemetry/stat_registry.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader(
        "Figure 8 — HARD execution-time overhead per application", opt);

    Table t("Figure 8: overhead of HARD (percent of baseline cycles)");
    t.setHeader({"Application", "Base cycles", "HARD cycles",
                 "Overhead %", "Meta broadcasts", "Meta bytes",
                 "Data bytes", "Meta/Data %"});

    // Each application's (baseline, HARD) timing pair is independent of
    // every other: measure them all across the pool via the batch
    // driver; results are identical for any --jobs value.
    RunPool pool(opt.jobs);
    std::vector<BatchItem> items;
    for (const std::string &app : paperApps()) {
        BatchItem item;
        item.workload = app;
        item.wp = opt.params();
        item.sim = defaultSimConfig();
        item.effectiveness = false;
        item.overhead = true;
        item.collectStats = true;
        items.push_back(std::move(item));
    }
    std::vector<BatchItemResult> batch = runBatch(items, pool);

    // Every column comes from the embedded baseStats/hardStats
    // snapshots — the one machine-wide accounting the stat registry
    // already keeps — rather than fields plucked out of the run by
    // hand (the numeric OverheadResult fields remain for benches that
    // run without stats collection).
    struct Row
    {
        std::string app;
        std::uint64_t baseCycles, hardCycles;
        std::uint64_t broadcasts, metaBytes, dataBytes;
        double pct;
    };
    std::vector<Row> results;
    for (const BatchItemResult &item : batch) {
        const OverheadResult &oh = item.overhead;
        Row r;
        r.app = item.workload;
        r.baseCycles = statFromJson(oh.baseStats, "system", "cycles");
        r.hardCycles = statFromJson(oh.hardStats, "system", "cycles");
        r.broadcasts =
            statFromJson(oh.hardStats, "detector.hard", "metaBroadcasts");
        r.metaBytes = statFromJson(oh.hardStats, "bus", "metaBytes");
        r.dataBytes = statFromJson(oh.hardStats, "bus", "dataBytes");
        r.pct = r.baseCycles == 0
            ? 0.0
            : 100.0 *
                (static_cast<double>(r.hardCycles) -
                 static_cast<double>(r.baseCycles)) /
                static_cast<double>(r.baseCycles);
        results.push_back(std::move(r));
    }

    double min_pct = 1e9, max_pct = -1e9;
    for (const Row &r : results) {
        double meta_share = r.dataBytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.metaBytes) /
                static_cast<double>(r.dataBytes);
        t.addRow({r.app, std::to_string(r.baseCycles),
                  std::to_string(r.hardCycles), fmtDouble(r.pct, 2),
                  std::to_string(r.broadcasts),
                  std::to_string(r.metaBytes),
                  std::to_string(r.dataBytes),
                  fmtDouble(meta_share, 3)});
        min_pct = std::min(min_pct, r.pct);
        max_pct = std::max(max_pct, r.pct);
    }
    printTable(t, opt);

    // ASCII rendition of the figure.
    std::printf("Figure 8 (ascii): overhead per application\n");
    for (const Row &r : results) {
        int bars = static_cast<int>(r.pct * 10 + 0.5);
        std::printf("  %-15s %6.2f%% |%s\n", r.app.c_str(), r.pct,
                    std::string(static_cast<std::size_t>(
                                    std::max(bars, 0)),
                                '#')
                        .c_str());
    }
    std::printf("\nmeasured overhead range: %.2f%% .. %.2f%% "
                "(paper: 0.1%% .. 2.6%%)\n",
                min_pct, max_pct);
    maybeWriteJson(opt, batch);
    return 0;
}
