/**
 * @file
 * Reproduces paper Table 4: injected bugs detected by HARD and
 * happens-before as the L2 (metadata-capacity) size is varied from
 * 128KB to 1MB. Larger L2s displace fewer candidate sets/timestamps,
 * so detection rises (weakly) with L2 size.
 */

#include "bench_util.hh"

using namespace hard;

namespace
{

constexpr std::uint64_t kL2Sizes[] = {128 * 1024, 256 * 1024, 512 * 1024,
                                      1024 * 1024};

DetectorFactory
l2SweepDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (std::uint64_t l2 : kL2Sizes) {
            std::string kb = std::to_string(l2 / 1024) + "KB";
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + kb, HardConfig::withL2(l2)));
            HbConfig bc;
            bc.metaGeometry.sizeBytes = l2;
            dets.push_back(std::make_unique<HappensBeforeDetector>(
                "hb." + kb, bc));
        }
        return dets;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Table 4 — bugs detected vs L2 size", opt);

    Table t("Table 4: bugs detected for L2 sizes 128KB..1MB");
    t.setHeader({"Application", "HARD 128KB", "HARD 256KB", "HARD 512KB",
                 "HARD 1MB", "HB 128KB", "HB 256KB", "HB 512KB",
                 "HB 1MB"});

    for (const std::string &app : paperApps()) {
        EffectivenessResult res =
            runEffectiveness(app, opt.params(), defaultSimConfig(),
                             l2SweepDetectors(), opt.runs, opt.seed);
        std::vector<std::string> row{app};
        for (const char *alg : {"hard", "hb"}) {
            for (std::uint64_t l2 : kL2Sizes) {
                const DetectorScore &s = res.at(
                    std::string(alg) + "." + std::to_string(l2 / 1024) +
                    "KB");
                row.push_back(std::to_string(s.bugsDetected));
            }
        }
        t.addRow(row);
    }
    printTable(t, opt);
    std::printf("Paper shape: detection increases (weakly) with L2 "
                "size — fewer candidate sets/timestamps are displaced.\n");
    return 0;
}
