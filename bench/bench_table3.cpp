/**
 * @file
 * Reproduces paper Table 3: effectiveness of HARD and happens-before
 * with the candidate-set/LState/timestamp granularity varied from 4 to
 * 32 bytes. Detection is expected to be granularity-insensitive while
 * false alarms grow with granularity (false sharing).
 */

#include "bench_util.hh"

using namespace hard;

namespace
{

constexpr unsigned kGrans[] = {4, 8, 16, 32};

DetectorFactory
granularitySweepDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (unsigned g : kGrans) {
            HardConfig hc;
            hc.granularityBytes = g;
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + std::to_string(g) + "B", hc));
            HbConfig bc;
            bc.granularityBytes = g;
            dets.push_back(std::make_unique<HappensBeforeDetector>(
                "hb." + std::to_string(g) + "B", bc));
        }
        return dets;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader(
        "Table 3 — monitoring-granularity sweep (4B..32B)", opt);

    Table bugs("Table 3a: bugs detected vs granularity");
    bugs.setHeader({"Application", "HARD 4B", "HARD 8B", "HARD 16B",
                    "HARD 32B", "HB 4B", "HB 8B", "HB 16B", "HB 32B"});
    Table fas("Table 3b: false alarms vs granularity");
    fas.setHeader({"Application", "HARD 4B", "HARD 8B", "HARD 16B",
                   "HARD 32B", "HB 4B", "HB 8B", "HB 16B", "HB 32B"});

    // Fan the full workload x run sweep out across the pool; merged
    // rows are identical to the serial harness for any --jobs value.
    RunPool pool(opt.jobs);
    std::vector<BatchItemResult> results =
        runBatch(effectivenessItems(opt, granularitySweepDetectors()),
                 pool);

    for (const BatchItemResult &item : results) {
        const std::string &app = item.workload;
        const EffectivenessResult &res = item.effectiveness;
        std::vector<std::string> brow{app}, frow{app};
        for (const char *alg : {"hard", "hb"}) {
            for (unsigned g : kGrans) {
                const DetectorScore &s = res.at(
                    std::string(alg) + "." + std::to_string(g) + "B");
                brow.push_back(std::to_string(s.bugsDetected));
                frow.push_back(std::to_string(s.falseAlarms));
            }
        }
        bugs.addRow(brow);
        fas.addRow(frow);
    }
    printTable(bugs, opt);
    printTable(fas, opt);
    maybeWriteJson(opt, results);
    std::printf(
        "Paper shape: detection roughly constant across granularities; "
        "false alarms increase 4B -> 32B for both algorithms.\n");
    return 0;
}
