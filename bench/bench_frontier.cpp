/**
 * @file
 * Emits the committed overhead-vs-latency frontier baseline
 * (BENCH_frontier.json, schema `hard.frontier.v1`): the open-loop
 * production server swept across detection-sampling rates, recording
 * at each rate what always-on monitoring costs (execution-time
 * overhead, metadata traffic, bus occupancy) and what it buys
 * (coverage, exposure-to-first-report latency).
 *
 * The effectiveness legs run in fast mode against a shared trace
 * cache — sampling filters at replay time and is deliberately not
 * part of the trace key, so one recording per injected run serves
 * every rate point. The overhead legs are always cycle-level.
 *
 * Extra arguments on top of the common bench set:
 *   --out=<file>    frontier JSON path (BENCH_frontier.json)
 *   --rates=<csv>   sampling rates to sweep (default 1,0.5,0.25,0.125)
 *   --cache=<dir>   trace-cache directory; wiped before the sweep
 */

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/frontier.hh"
#include "sim/sampling.hh"
#include "trace/trace_cache.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    // Peel off the bench-specific arguments, hand the rest to the
    // common parser.
    std::string out = "BENCH_frontier.json";
    std::string rates_csv = "1,0.5,0.25,0.125";
    std::string cache_dir =
        (std::filesystem::temp_directory_path() / "bench_frontier_cache")
            .string();
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            out = a.substr(6);
        else if (a.rfind("--rates=", 0) == 0)
            rates_csv = a.substr(8);
        else if (a.rfind("--cache=", 0) == 0)
            cache_dir = a.substr(8);
        else
            rest.push_back(argv[i]);
    }
    BenchOptions opt =
        parseBenchArgs(static_cast<int>(rest.size()), rest.data());
    printMachineHeader(
        "Overhead-vs-latency frontier — always-on monitoring baseline",
        opt);

    std::filesystem::remove_all(cache_dir);
    TraceCache cache(cache_dir);

    FrontierOptions fo;
    fo.workload = "server";
    fo.wp = opt.params();
    fo.sim = defaultSimConfig();
    fo.runs = opt.runs;
    fo.seed0 = opt.seed;
    fo.effMode = ExecMode::Fast;
    fo.traceCache = &cache;
    fo.rates.clear();
    std::stringstream ss(rates_csv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            fo.rates.push_back(std::atof(tok.c_str()));
    hard_fatal_if(fo.rates.empty(), "--rates parsed to nothing");

    RunPool pool(opt.jobs);
    std::printf("frontier: %s, %zu rate(s), (%u injected + 1 race-free) "
                "runs + 1 overhead unit each, %u worker(s)\n\n",
                fo.workload.c_str(), fo.rates.size(), opt.runs,
                pool.jobs());
    const Json doc = runFrontier(fo, pool);

    Table t("Overhead-vs-latency frontier (server, granule sampling)");
    t.setHeader({"Rate", "Coverage", "Latency p50", "Latency max",
                 "Overhead %", "Meta KB", "Bus occ %"});
    for (std::size_t i = 0; i < doc["points"].size(); ++i) {
        const Json &p = doc["points"].at(i);
        const auto &dets = p["detectors"].members();
        char rate[32], cov[32], ovh[32], meta[32], bus[32];
        std::snprintf(rate, sizeof(rate), "%g", p["rate"].asDouble());
        std::string p50 = "-", max = "-";
        std::snprintf(cov, sizeof(cov), "-");
        if (!dets.empty()) {
            const Json &d = dets.front().second;
            std::snprintf(cov, sizeof(cov), "%.2f",
                          d["coverage"].asDouble());
            const Json &lat = d["latency"];
            if (lat["samples"].asUint() > 0) {
                p50 = std::to_string(lat["p50Cycles"].asInt());
                max = std::to_string(lat["maxCycles"].asInt());
            }
        }
        const Json &ov = p["overhead"];
        std::snprintf(ovh, sizeof(ovh), "%.2f",
                      ov["overheadPct"].asDouble());
        std::snprintf(meta, sizeof(meta), "%.1f",
                      ov["metaBytes"].asDouble() / 1024.0);
        std::snprintf(bus, sizeof(bus), "%.2f",
                      ov["busOccupancyPct"].asDouble());
        t.addRow({rate, cov, p50, max, ovh, meta, bus});
    }
    printTable(t, opt);

    writeJsonFile(out, doc);
    std::printf("frontier written to %s\n", out.c_str());
    return 0;
}
