/**
 * @file
 * Reproduces paper Table 6: HARD's effectiveness with 16-bit vs
 * 32-bit Bloom-filter vectors. Candidate/lock sets are small in real
 * programs, so both widths detect the same bugs and produce
 * (almost) the same false alarms.
 */

#include "bench_util.hh"

using namespace hard;

namespace
{

DetectorFactory
bloomSweepDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        for (unsigned bits : {16u, 32u}) {
            HardConfig hc;
            hc.bloomBits = bits;
            dets.push_back(std::make_unique<HardDetector>(
                "hard." + std::to_string(bits) + "b", hc));
        }
        return dets;
    };
}

/** Measure the exact set sizes behind the paper's §5.2.3 claim. */
IdealLocksetDetector::SetSizeStats
measureSetSizes(const std::string &app, const WorkloadParams &wp,
                const SimConfig &sim)
{
    Program prog = buildWorkload(app, wp);
    IdealLocksetDetector det("sizes", IdealLocksetConfig{});
    runWithDetectors(prog, sim, {&det});
    return det.setSizeStats();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Table 6 — BFVector width: 16b vs 32b", opt);

    Table t("Table 6: HARD effectiveness with 16-bit and 32-bit "
            "BFVectors");
    t.setHeader({"Application", "Bugs 16b", "Bugs 32b", "FAs 16b",
                 "FAs 32b"});

    bool same_bugs = true;
    for (const std::string &app : paperApps()) {
        EffectivenessResult res =
            runEffectiveness(app, opt.params(), defaultSimConfig(),
                             bloomSweepDetectors(), opt.runs, opt.seed);
        const DetectorScore &b16 = res.at("hard.16b");
        const DetectorScore &b32 = res.at("hard.32b");
        t.addRow({app, std::to_string(b16.bugsDetected),
                  std::to_string(b32.bugsDetected),
                  std::to_string(b16.falseAlarms),
                  std::to_string(b32.falseAlarms)});
        same_bugs &= b16.bugsDetected == b32.bugsDetected;
    }
    printTable(t, opt);

    // §5.2.3's justification: candidate/lock sets are tiny. Measure
    // them exactly with the ideal detector on the race-free runs.
    Table sizes("Measured exact set sizes (race-free runs): the "
                "paper reports max 1 (3 for radix)");
    sizes.setHeader({"Application", "Max candidate set",
                     "Max thread lock set"});
    for (const std::string &app : paperApps()) {
        auto st = measureSetSizes(app, opt.params(), defaultSimConfig());
        sizes.addRow({app, std::to_string(st.maxCandidate),
                      std::to_string(st.maxLockset)});
    }
    printTable(sizes, opt);

    std::printf("16-bit and 32-bit vectors detect %s bug counts.\n"
                "Paper: identical detection, near-identical alarms — "
                "16 bits suffice because candidate/lock sets are tiny.\n",
                same_bugs ? "identical" : "different");
    return 0;
}
