/**
 * @file
 * Reproduces the §3.2 missing-race-probability analysis: the analytic
 * whole-vector collision rate CR_whole = (1 - ((n-1)/n)^m)^4 for
 * candidate-set sizes m and part length n, checked against a
 * Monte-Carlo simulation of the actual Figure 4 hash over random lock
 * addresses. The paper quotes CR_whole = 0.0039 / 0.037 / 0.111 for
 * m = 1, 2, 3 at the 16-bit vector (n = 4).
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/bloom.hh"

using namespace hard;

namespace
{

/** Empirical CR_whole for vector width @p width and set size @p m. */
double
monteCarlo(unsigned width, unsigned m, unsigned trials, Rng &rng)
{
    unsigned collide = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        BfVector cand(width);
        std::set<std::uint32_t> sigs;
        while (sigs.size() < m) {
            Addr lock = rng.next64() << 2;
            std::uint32_t s = BfVector::signatureBits(lock, width);
            if (sigs.insert(s).second)
                cand.setRaw(cand.raw() | s);
        }
        BfVector inter = cand;
        inter &= BfVector::signatureOf(rng.next64() << 2, width);
        if (!inter.setEmpty())
            ++collide;
    }
    return static_cast<double>(collide) / trials;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Section 3.2 — Bloom-filter missing-race "
                       "probability (analytic vs Monte-Carlo)",
                       opt);

    const unsigned trials =
        static_cast<unsigned>(200000 * std::max(opt.scale, 0.01));
    Rng rng(opt.seed);

    Table t("CR_whole: probability a random lock collides with all 4 "
            "parts of a size-m candidate set");
    t.setHeader({"Vector", "Part len n", "m", "Analytic", "Monte-Carlo",
                 "Paper"});
    struct PaperRef
    {
        unsigned width, m;
        const char *value;
    };
    const PaperRef refs[] = {{16, 1, "0.0039"}, {16, 2, "0.037"},
                             {16, 3, "0.111"}};

    for (unsigned width : {16u, 32u}) {
        unsigned n = width / 4;
        for (unsigned m = 1; m <= 4; ++m) {
            double analytic = bloomMissProbability(n, m);
            double mc = monteCarlo(width, m, trials, rng);
            const char *paper = "-";
            for (const PaperRef &r : refs)
                if (r.width == width && r.m == m)
                    paper = r.value;
            t.addRow({std::to_string(width) + "b", std::to_string(n),
                      std::to_string(m), fmtDouble(analytic, 4),
                      fmtDouble(mc, 4), paper});
        }
    }
    printTable(t, opt);
    std::printf("(%u Monte-Carlo trials per row; the Figure 4 direct "
                "index makes the analytic model exact for random "
                "addresses.)\n",
                trials);
    return 0;
}
