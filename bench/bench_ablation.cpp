/**
 * @file
 * Ablation studies of HARD's design choices (beyond the paper's own
 * sweeps):
 *
 *  (a) §3.5 barrier reset ON vs OFF — false-alarm pruning on the
 *      barrier-heavy applications and any detection cost;
 *  (b) Counter Register width 1/2/4 bits — the paper argues 2-bit
 *      saturating counters suffice;
 *  (c) unbounded metadata at line granularity — separates the
 *      granularity approximation from the capacity approximation on
 *      the way to the ideal configuration.
 */

#include "bench_util.hh"
#include "core/hybrid.hh"

using namespace hard;

namespace
{

DetectorFactory
ablationDetectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;

        dets.push_back(
            std::make_unique<HardDetector>("hard.base", HardConfig{}));

        HardConfig no_reset;
        no_reset.barrierReset = false;
        dets.push_back(
            std::make_unique<HardDetector>("hard.noBarrierReset",
                                           no_reset));

        for (unsigned bits : {1u, 2u, 4u}) {
            HardConfig c;
            c.counterBits = bits;
            dets.push_back(std::make_unique<HardDetector>(
                "hard.ctr" + std::to_string(bits), c));
        }

        HardConfig unbounded;
        unbounded.unbounded = true;
        dets.push_back(std::make_unique<HardDetector>(
            "hard.unboundedLine", unbounded));

        // The paper's §7 future work: lockset pruned by non-lock
        // happens-before edges.
        dets.push_back(
            std::make_unique<HybridDetector>("hybrid", HardConfig{}));

        // Most faithful §3.6 model: metadata dropped exactly when the
        // simulated L2 displaces the line.
        HardConfig coupled;
        coupled.coupleToCaches = true;
        dets.push_back(
            std::make_unique<HardDetector>("hard.coupled", coupled));

        return dets;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader("Ablations — barrier reset, counter width, "
                       "unbounded line-granularity metadata",
                       opt);

    Table t("HARD design ablations: bugs detected / false alarms");
    t.setHeader({"Application", "base", "no barrier reset", "1b ctr",
                 "2b ctr", "4b ctr", "unbounded (32B)",
                 "hybrid (para.7)", "L2-coupled meta"});

    for (const std::string &app : paperApps()) {
        EffectivenessResult res =
            runEffectiveness(app, opt.params(), defaultSimConfig(),
                             ablationDetectors(), opt.runs, opt.seed);
        auto cell = [&](const char *name) {
            const DetectorScore &s = res.at(name);
            return std::to_string(s.bugsDetected) + "/" +
                std::to_string(s.runsAttempted) + " , " +
                std::to_string(s.falseAlarms);
        };
        t.addRow({app, cell("hard.base"), cell("hard.noBarrierReset"),
                  cell("hard.ctr1"), cell("hard.ctr2"),
                  cell("hard.ctr4"), cell("hard.unboundedLine"),
                  cell("hybrid"), cell("hard.coupled")});
    }
    printTable(t, opt);
    std::printf(
        "Expected: disabling the §3.5 reset multiplies false alarms on "
        "the barrier-phased applications; counter width beyond 2 bits "
        "changes nothing (lock sets are tiny); unbounded line-granular "
        "metadata recovers the displacement-missed bugs but keeps the "
        "false-sharing alarms; the hybrid keeps HARD's detection "
        "while pruning the hand-crafted-synchronization alarms.\n");
    return 0;
}
