/**
 * @file
 * Reproduces paper Table 2: overall effectiveness of HARD vs the
 * happens-before baseline — injected bugs detected (out of N runs)
 * and race-free-run false alarms, for the default and ideal
 * configurations of both algorithms, over the six applications.
 */

#include "bench_util.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    printMachineHeader(
        "Table 2 — overall effectiveness: HARD vs happens-before", opt);

    Table t("Table 2: bugs detected and false alarms "
            "(default | ideal, lockset | happens-before)");
    t.setHeader({"Application", "HARD bugs", "HARD FAs", "HARD-ideal bugs",
                 "HARD-ideal FAs", "HB bugs", "HB FAs", "HB-ideal bugs",
                 "HB-ideal FAs"});

    // Every (workload, seed, detector-set) run is independent: fan the
    // whole sweep out across the pool; merged rows are identical to the
    // serial harness for any --jobs value.
    RunPool pool(opt.jobs);
    std::vector<BatchItemResult> results = runBatch(
        effectivenessItems(opt, table2Detectors(), /*collect_stats=*/true),
        pool);

    unsigned tot[4] = {0, 0, 0, 0};
    unsigned tot_runs = 0;
    for (const BatchItemResult &item : results) {
        const std::string &app = item.workload;
        const EffectivenessResult &res = item.effectiveness;
        const DetectorScore &hd = res.at("hard.default");
        const DetectorScore &hi = res.at("hard.ideal");
        const DetectorScore &bd = res.at("hb.default");
        const DetectorScore &bi = res.at("hb.ideal");
        t.addRow({app, fracCell(hd.bugsDetected, hd.runsAttempted),
                  std::to_string(hd.falseAlarms),
                  fracCell(hi.bugsDetected, hi.runsAttempted),
                  std::to_string(hi.falseAlarms),
                  fracCell(bd.bugsDetected, bd.runsAttempted),
                  std::to_string(bd.falseAlarms),
                  fracCell(bi.bugsDetected, bi.runsAttempted),
                  std::to_string(bi.falseAlarms)});
        tot[0] += hd.bugsDetected;
        tot[1] += hi.bugsDetected;
        tot[2] += bd.bugsDetected;
        tot[3] += bi.bugsDetected;
        tot_runs += hd.runsAttempted;
    }
    t.addRow({"TOTAL", fracCell(tot[0], tot_runs), "-",
              fracCell(tot[1], tot_runs), "-", fracCell(tot[2], tot_runs),
              "-", fracCell(tot[3], tot_runs), "-"});
    printTable(t, opt);
    maybeWriteJson(opt, results);

    double pct = tot[2] == 0
        ? 0.0
        : 100.0 * (static_cast<double>(tot[0]) - tot[2]) / tot[2];
    std::printf("HARD(default) detects %u of %u injected bugs; "
                "happens-before detects %u (HARD finds %.0f%% more).\n"
                "Paper: HARD 54/60 vs happens-before 45/60 (20%% more).\n",
                tot[0], tot_runs, tot[2], pct);
    return 0;
}
