/**
 * @file
 * Whole-simulation configuration. Defaults reproduce Table 1 of the
 * paper: 4-core CMP, 16KB 4-way 32B-line 3-cycle L1s, 1MB 8-way 32B-line
 * 10-cycle shared L2, 200-cycle memory, snoopy bus.
 */

#ifndef HARD_SIM_SIM_CONFIG_HH
#define HARD_SIM_SIM_CONFIG_HH

#include "coherence/memsys.hh"
#include "sim/sampling.hh"

namespace hard
{

/**
 * Timing cost model for the HARD hardware additions, used only in
 * overhead-measurement runs (Figure 8). Detection-only runs leave this
 * disabled so that all detectors observe identical executions.
 */
struct HardTimingConfig
{
    /** Master enable. */
    bool enabled = false;
    /**
     * Extra pipeline cycles on an access that must intersect and check
     * the candidate set (shared accesses). The paper argues this is
     * nearly free; we default to 1 cycle.
     */
    Cycle sharedAccessExtraCycles = 1;
    /** Extra cycles to update the Lock/Counter Registers on (un)lock. */
    Cycle lockUpdateCycles = 1;
    /**
     * §3.4 directory variant: instead of piggybacking metadata on
     * coherence transfers and broadcasting changes, every access to
     * shared data performs a metadata round-trip with the directory
     * (fetch + put-back). Simpler management, more traffic: enable to
     * quantify the trade-off the paper describes qualitatively.
     */
    bool directoryMode = false;
};

/** Top-level simulation configuration. */
struct SimConfig
{
    MemSysConfig memsys{};
    /** Interval between spin-lock probe reads while blocked. */
    Cycle spinPollInterval = 50;
    /** Cycles from last barrier arrival to release of the waiters. */
    Cycle barrierReleaseCycles = 20;
    /**
     * Cycle budget: the run raises CycleBudgetError once simulated
     * time passes this many cycles (0 = unlimited in single-run mode;
     * batch run units substitute defaultCycleBudget() so a sweep is
     * never unbounded by accident).
     */
    Cycle maxCycles = 0;
    /**
     * Host wall-clock budget in milliseconds: the run raises
     * TimeoutError once this much real time has elapsed inside
     * System::run() (0 = unlimited). Complements maxCycles/the
     * watchdog, which measure *simulated* time and cannot see a host
     * that stopped progressing through cycles at all. Deliberately NOT
     * part of the fast-mode trace-cache key: a timeout never produces
     * a stored trace, and the budget does not perturb the
     * interleaving of runs that finish.
     */
    std::uint64_t wallMsBudget = 0;
    /**
     * Forward-progress watchdog: if no thread retires an operation
     * for this many cycles while live threads spin/poll, the run is
     * declared dead and raises DeadlockError with a per-thread
     * snapshot (0 = off). Structural deadlocks (every live thread
     * blocked on sync that can never be signalled) are detected
     * immediately regardless of this value. The default is orders of
     * magnitude above any legitimate stall: the longest Compute op
     * any workload emits is ~150 cycles and lock/barrier waits always
     * end with a retirement by the holder.
     */
    Cycle watchdogCycles = 1'000'000;
    /**
     * Scheduling quantum when threads are oversubscribed onto cores;
     * a runnable sibling preempts the current thread after this many
     * cycles. Irrelevant with <= 1 thread per core.
     */
    Cycle quantumCycles = 50000;
    /** OS context-switch cost (register save/restore, pipeline). */
    Cycle contextSwitchCycles = 400;
    HardTimingConfig hardTiming{};
    /**
     * Detection-sampling schedule (sampling.hh). Rate 1.0 (the
     * default) is fully inactive: no call site consults the schedule,
     * so the run is byte-identical to one predating this knob. Like
     * hardTiming/wallMsBudget this is deliberately NOT part of the
     * fast-mode trace-cache key — sampling filters what detectors
     * observe, never the recorded interleaving.
     */
    SamplingSpec sampling{};
};

} // namespace hard

#endif // HARD_SIM_SIM_CONFIG_HH
