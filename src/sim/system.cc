#include "sim/system.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace hard
{

System::System(const SimConfig &cfg, const Program &prog)
    : cfg_(cfg), prog_(prog)
{
    hard_throw_if(prog.threads.empty(), WorkloadError,
                  "system: program '%s' has no threads",
                  prog.name.c_str());
    hard_throw_if(prog.threads.size() > 8, ConfigError,
                  "system: program '%s' has %zu threads; at most 8 are "
                  "supported",
                  prog.name.c_str(), prog.threads.size());
    hard_throw_if(cfg.memsys.numCores == 0, ConfigError,
                  "system: zero cores");

    memsys_ = std::make_unique<MemorySystem>(cfg.memsys);
    memsys_->setL2EvictionCallback([this](Addr line) {
        for (AccessObserver *obs : observers_)
            obs->onLineEvicted(line, 0);
    });

    threads_.resize(prog.threads.size());
    cores_.resize(cfg.memsys.numCores);
    for (CoreId c = 0; c < cfg.memsys.numCores; ++c)
        cores_[c].id = c;
    for (std::size_t i = 0; i < prog.threads.size(); ++i) {
        threads_[i].tid = prog.threads[i].tid;
        threads_[i].ops = &prog.threads[i].ops;
        // Round-robin thread->core binding.
        cores_[i % cfg.memsys.numCores].bound.push_back(i);
    }
    liveThreads_ = static_cast<unsigned>(threads_.size());

    // Stat registry: every component group under its dotted name.
    registry_.add(memsys_->stats());
    registry_.add(memsys_->bus().stats());
    for (CoreId c = 0; c < cfg_.memsys.numCores; ++c)
        registry_.add(memsys_->l1(c).stats());
    registry_.add(memsys_->l2().stats());
    registry_.add(systemStats_);
    // The "system" group mirrors the run summary on demand.
    registry_.addRefreshHook([this] {
        systemStats_.counter("barrierEpisodes").set(result_.barrierEpisodes);
        systemStats_.counter("contextSwitches").set(result_.contextSwitches);
        systemStats_.counter("cycles").set(result_.totalCycles);
        systemStats_.counter("dataReads").set(result_.dataReads);
        systemStats_.counter("dataWrites").set(result_.dataWrites);
        systemStats_.counter("lockAcquires").set(result_.lockAcquires);
        systemStats_.counter("retiredOps").set(retiredOps_);
    });
    // Derived ratios over the live counters.
    systemStats_.formula("ipc", [this] {
        return Formula::ratio(retiredOps_, result_.totalCycles);
    });
    StatGroup *bus = &memsys_->bus().stats();
    bus->formula("occupancy", [this, bus] {
        return Formula::ratio(bus->value("busyCycles"),
                              result_.totalCycles);
    });
    bus->formula("metaShareOfBytes", [bus] {
        const std::uint64_t meta = bus->value("metaBytes");
        return Formula::ratio(meta, meta + bus->value("dataBytes"));
    });
    for (CoreId c = 0; c < cfg_.memsys.numCores; ++c) {
        StatGroup *l1 = &memsys_->l1(c).stats();
        l1->formula("missRate", [l1] {
            const std::uint64_t misses =
                l1->value("readMisses") + l1->value("writeMisses");
            return Formula::ratio(misses,
                                  misses + l1->value("readHits") +
                                      l1->value("writeHits"));
        });
    }
}

System::~System() = default;

void
System::addObserver(AccessObserver *obs)
{
    hard_panic_if(obs == nullptr, "system: null observer");
    observers_.push_back(obs);
    obs->registerStats(registry_);
    if (tracer_ != nullptr)
        obs->attachTracer(tracer_);
    if (sampler_ != nullptr)
        obs->registerProbes(*sampler_);
}

void
System::nameTraceTracks()
{
    for (CoreId c = 0; c < cfg_.memsys.numCores; ++c)
        tracer_->nameTrack(c, "core " + std::to_string(c));
    for (const ThreadCtx &th : threads_) {
        tracer_->nameTrack(EventTracer::kThreadTrackBase + th.tid,
                           "thread " + std::to_string(th.tid));
    }
    tracer_->nameTrack(EventTracer::kBusTrack, "bus");
    tracer_->nameTrack(EventTracer::kSyncTrack, "sync");
    tracer_->nameTrack(EventTracer::kDetectorTrack, "detector");
}

void
System::setTracer(EventTracer *tracer)
{
    tracer_ = tracer;
    memsys_->setTracer(tracer);
    if (tracer_ == nullptr)
        return;
    nameTraceTracks();
    for (AccessObserver *obs : observers_)
        obs->attachTracer(tracer_);
}

void
System::setSampler(IntervalSampler *sampler)
{
    sampler_ = sampler;
    if (sampler_ == nullptr)
        return;
    sampler_->setRefresh([this] { registry_.refresh(); });
    sampler_->addRate("ipc", [this] { return retiredOps_; });
    StatGroup *bus = &memsys_->bus().stats();
    sampler_->addRate("busOccupancy",
                      [bus] { return bus->value("busyCycles"); });
    sampler_->addCounter("busDataBytes",
                         [bus] { return bus->value("dataBytes"); });
    sampler_->addCounter("busMetaBytes",
                         [bus] { return bus->value("metaBytes"); });
    for (AccessObserver *obs : observers_)
        obs->registerProbes(*sampler_);
}

std::vector<std::pair<std::string, std::uint64_t>>
System::statsDump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    auto append = [&out](const StatGroup &g) {
        for (auto &kv : g.dump())
            out.push_back(kv);
    };
    append(memsys_->stats());
    append(memsys_->bus().stats());
    for (CoreId c = 0; c < cfg_.memsys.numCores; ++c)
        append(memsys_->l1(c).stats());
    append(memsys_->l2().stats());
    return out;
}

void
System::notifyAccess(const MemEvent &ev)
{
    for (AccessObserver *obs : observers_) {
        if (ev.write)
            obs->onWrite(ev);
        else
            obs->onRead(ev);
    }
}

System::Pick
System::nextForCore(const HwCore &core) const
{
    // A thread is schedulable when Ready or polling a contended lock.
    auto schedulable = [this](const ThreadCtx &th) {
        return th.status == ThreadStatus::Ready ||
            th.status == ThreadStatus::WaitLock;
    };

    // Preemption: once the current thread has held the core for a
    // full quantum AND a sibling is immediately runnable, the current
    // thread is excluded from this pick (it re-enters the rotation as
    // a non-current candidate next time).
    bool preempt_current = false;
    if (core.current < core.bound.size() &&
        core.freeAt >= core.quantumStart + cfg_.quantumCycles) {
        for (std::size_t i = 0; i < core.bound.size(); ++i) {
            if (i == core.current)
                continue;
            const ThreadCtx &th = threads_[core.bound[i]];
            if (schedulable(th) && th.readyAt <= core.freeAt) {
                preempt_current = true;
                break;
            }
        }
    }

    Pick best;
    bool best_preferred = false;
    for (std::size_t i = 0; i < core.bound.size(); ++i) {
        const ThreadCtx &th = threads_[core.bound[i]];
        if (!schedulable(th))
            continue;
        const bool is_current = i == core.current;
        if (is_current && preempt_current)
            continue;
        Cycle at = std::max(core.freeAt, th.readyAt);
        if (!is_current)
            at += cfg_.contextSwitchCycles;
        const bool preferred = is_current;
        bool take = !best.valid || at < best.at ||
            (at == best.at && preferred && !best_preferred);
        if (take) {
            best.valid = true;
            best.slot = i;
            best.at = at;
            best_preferred = preferred;
        }
    }
    return best;
}

void
System::doAccess(HwCore &core, ThreadCtx &th, Cycle now, const Op &op)
{
    const bool write = op.type == OpType::Write;
    AccessOutcome out = memsys_->access(core.id, op.addr, op.size, write,
                                        now);

    // HARD timing model: shared accesses pay the candidate-set
    // intersect/check latency (paper §5.1 overhead source 2). Under a
    // sampling schedule only monitored accesses pay — an unmonitored
    // granule's metadata is never consulted, which is exactly where
    // the overhead-vs-latency frontier's savings come from. The
    // decision uses the pre-charge completion cycle so it matches the
    // schedule the detector's observer wrapper sees.
    const bool monitored = !cfg_.hardTiming.enabled ||
        sampleDecision(cfg_.sampling, op.addr, out.completeAt);
    if (cfg_.hardTiming.enabled && monitored && out.sharers > 1)
        out.completeAt += cfg_.hardTiming.sharedAccessExtraCycles;
    // §3.4 directory variant: shared accesses additionally fetch the
    // metadata from the directory and put the updated value back —
    // two small bus messages (performed in the background, so they
    // add traffic and contention rather than access latency).
    if (cfg_.hardTiming.enabled && monitored &&
        cfg_.hardTiming.directoryMode && out.sharers > 1) {
        memsys_->bus().transact(TxnType::MetaDirectory, out.completeAt);
        memsys_->bus().transact(TxnType::MetaDirectory, out.completeAt);
    }

    MemEvent ev;
    ev.tid = th.tid;
    ev.core = core.id;
    ev.addr = op.addr;
    ev.size = op.size;
    ev.write = write;
    ev.site = op.site;
    ev.at = out.completeAt;
    ev.outcome = out;
    notifyAccess(ev);

    if (write)
        ++result_.dataWrites;
    else
        ++result_.dataReads;

    th.readyAt = out.completeAt + 1;
    core.freeAt = th.readyAt;
    ++th.pc;
}

void
System::doLock(HwCore &core, ThreadCtx &th, Cycle now, LockAddr lock,
               SiteId site)
{
    auto it = lockHolder_.find(lock);
    ThreadId holder = it == lockHolder_.end() ? invalidThread : it->second;

    if (holder != invalidThread) {
        // Contended: spin. Charge a probe read of the lock word and
        // retry after the poll interval (the core is free to run a
        // sibling thread meanwhile).
        AccessOutcome probe = memsys_->access(core.id, lock,
                                              sizeof(std::uint32_t),
                                              false, now);
        th.status = ThreadStatus::WaitLock;
        th.waitLock = lock;
        th.waitSite = site;
        th.readyAt = probe.completeAt + cfg_.spinPollInterval;
        core.freeAt = probe.completeAt + 1;
        return;
    }

    // Free: acquire with an atomic RMW on the lock word.
    AccessOutcome rmw = memsys_->access(core.id, lock,
                                        sizeof(std::uint32_t), true,
                                        now);
    Cycle done = rmw.completeAt;
    if (cfg_.hardTiming.enabled)
        done += cfg_.hardTiming.lockUpdateCycles;
    lockHolder_[lock] = th.tid;
    ++result_.lockAcquires;

    SyncEvent ev{th.tid, core.id, lock, site, done};
    for (AccessObserver *obs : observers_)
        obs->onLockAcquire(ev);
    if (tracer_ && tracer_->wants(kTraceSync)) {
        Json args = Json::object();
        args.set("lock", lock);
        args.set("tid", th.tid);
        tracer_->instant(kTraceSync,
                         EventTracer::kThreadTrackBase + th.tid,
                         "lock-acquire", done, std::move(args));
    }

    th.status = ThreadStatus::Ready;
    th.readyAt = done + 1;
    core.freeAt = th.readyAt;
    ++th.pc;
}

void
System::doRwLock(HwCore &core, ThreadCtx &th, Cycle now, const Op &op,
                 bool writer)
{
    RwState &rw = rwlocks_[op.addr];
    const bool busy = writer
        ? (rw.writer != invalidThread || !rw.readers.empty())
        : rw.writer != invalidThread;
    if (busy) {
        // Spin in place: charge a probe read of the lock word and
        // retry the same op after the poll interval. The thread stays
        // Ready with pc unchanged, so the next step re-executes the
        // acquire (the core may run a sibling meanwhile).
        AccessOutcome probe = memsys_->access(core.id, op.addr,
                                              sizeof(std::uint32_t),
                                              false, now);
        th.readyAt = probe.completeAt + cfg_.spinPollInterval;
        core.freeAt = probe.completeAt + 1;
        return;
    }

    AccessOutcome rmw = memsys_->access(core.id, op.addr,
                                        sizeof(std::uint32_t), true, now);
    Cycle done = rmw.completeAt;
    if (cfg_.hardTiming.enabled)
        done += cfg_.hardTiming.lockUpdateCycles;
    if (writer)
        rw.writer = th.tid;
    else
        rw.readers.push_back(th.tid);
    ++result_.lockAcquires;

    SyncEvent ev{th.tid, core.id, op.addr, op.site, done};
    for (AccessObserver *obs : observers_)
        obs->onRwLockAcquire(ev, writer);
    if (tracer_ && tracer_->wants(kTraceSync)) {
        Json args = Json::object();
        args.set("rwlock", op.addr);
        args.set("tid", th.tid);
        args.set("mode", writer ? "write" : "read");
        tracer_->instant(kTraceSync,
                         EventTracer::kThreadTrackBase + th.tid,
                         "rwlock-acquire", done, std::move(args));
    }

    th.readyAt = done + 1;
    core.freeAt = th.readyAt;
    ++th.pc;
}

void
System::doRwUnlock(HwCore &core, ThreadCtx &th, Cycle now, const Op &op,
                   bool writer)
{
    auto it = rwlocks_.find(op.addr);
    hard_throw_if(it == rwlocks_.end(), WorkloadError,
                  "system: thread %u releases rwlock %llx never acquired",
                  th.tid, static_cast<unsigned long long>(op.addr));
    RwState &rw = it->second;
    if (writer) {
        hard_throw_if(rw.writer != th.tid, WorkloadError,
                      "system: thread %u write-unlocks rwlock %llx it "
                      "does not hold",
                      th.tid, static_cast<unsigned long long>(op.addr));
        rw.writer = invalidThread;
    } else {
        auto r = std::find(rw.readers.begin(), rw.readers.end(), th.tid);
        hard_throw_if(r == rw.readers.end(), WorkloadError,
                      "system: thread %u read-unlocks rwlock %llx it "
                      "does not hold",
                      th.tid, static_cast<unsigned long long>(op.addr));
        rw.readers.erase(r);
    }

    AccessOutcome rel = memsys_->access(core.id, op.addr,
                                        sizeof(std::uint32_t), true, now);
    Cycle done = rel.completeAt;
    if (cfg_.hardTiming.enabled)
        done += cfg_.hardTiming.lockUpdateCycles;

    SyncEvent ev{th.tid, core.id, op.addr, op.site, done};
    for (AccessObserver *obs : observers_)
        obs->onRwLockRelease(ev, writer);
    if (tracer_ && tracer_->wants(kTraceSync)) {
        Json args = Json::object();
        args.set("rwlock", op.addr);
        args.set("tid", th.tid);
        args.set("mode", writer ? "write" : "read");
        tracer_->instant(kTraceSync,
                         EventTracer::kThreadTrackBase + th.tid,
                         "rwlock-release", done, std::move(args));
    }

    th.readyAt = done + 1;
    core.freeAt = th.readyAt;
    ++th.pc;
}

void
System::step(HwCore &core, ThreadCtx &th, Cycle now)
{
    if (th.status == ThreadStatus::WaitLock) {
        doLock(core, th, now, th.waitLock, th.waitSite);
        return;
    }

    hard_panic_if(th.status != ThreadStatus::Ready,
                  "system: stepping non-ready thread %u", th.tid);

    const Op op = th.pc < th.ops->size() ? (*th.ops)[th.pc] : Op{};

    switch (op.type) {
      case OpType::Read:
      case OpType::Write:
        doAccess(core, th, now, op);
        break;

      case OpType::Compute:
        th.readyAt = now + op.addr;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;

      case OpType::Lock:
        doLock(core, th, now, op.addr, op.site);
        break;

      case OpType::Unlock: {
        auto it = lockHolder_.find(op.addr);
        hard_throw_if(it == lockHolder_.end() || it->second != th.tid,
                      WorkloadError,
                      "system: thread %u unlocks %llx it does not hold",
                      th.tid, static_cast<unsigned long long>(op.addr));
        AccessOutcome rel = memsys_->access(core.id, op.addr,
                                            sizeof(std::uint32_t), true,
                                            now);
        Cycle done = rel.completeAt;
        if (cfg_.hardTiming.enabled)
            done += cfg_.hardTiming.lockUpdateCycles;
        it->second = invalidThread;

        SyncEvent ev{th.tid, core.id, op.addr, op.site, done};
        for (AccessObserver *obs : observers_)
            obs->onLockRelease(ev);
        if (tracer_ && tracer_->wants(kTraceSync)) {
            Json args = Json::object();
            args.set("lock", op.addr);
            args.set("tid", th.tid);
            tracer_->instant(kTraceSync,
                             EventTracer::kThreadTrackBase + th.tid,
                             "lock-release", done, std::move(args));
        }

        th.readyAt = done + 1;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;
      }

      case OpType::SemaPost: {
        // Post: bump the semaphore word (RMW traffic) and either hand
        // the token straight to the oldest waiter or bank it.
        AccessOutcome post = memsys_->access(core.id, op.addr,
                                             sizeof(std::uint32_t), true,
                                             now);
        SemaState &sema = semas_[op.addr];
        SyncEvent ev{th.tid, core.id, op.addr, op.site,
                     post.completeAt};
        for (AccessObserver *obs : observers_)
            obs->onSemaPost(ev);
        if (tracer_ && tracer_->wants(kTraceSync)) {
            Json args = Json::object();
            args.set("sema", op.addr);
            args.set("tid", th.tid);
            tracer_->instant(kTraceSync,
                             EventTracer::kThreadTrackBase + th.tid,
                             "sema-post", post.completeAt,
                             std::move(args));
        }
        if (!sema.waiters.empty()) {
            ThreadCtx &waiter = threads_[sema.waiters.front()];
            sema.waiters.erase(sema.waiters.begin());
            waiter.status = ThreadStatus::Ready;
            waiter.semaGranted = true;
            waiter.readyAt = std::max(waiter.readyAt,
                                      post.completeAt + 1);
        } else {
            ++sema.count;
        }
        th.readyAt = post.completeAt + 1;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;
      }

      case OpType::SemaWait: {
        SemaState &sema = semas_[op.addr];
        if (!th.semaGranted && sema.count == 0) {
            // Block until a post hands us the token.
            th.status = ThreadStatus::WaitSema;
            th.waitObj = op.addr;
            th.waitSite = op.site;
            sema.waiters.push_back(
                static_cast<std::size_t>(&th - threads_.data()));
            core.freeAt = now + 1;
            break;
        }
        if (th.semaGranted)
            th.semaGranted = false;
        else
            --sema.count;
        AccessOutcome wait = memsys_->access(core.id, op.addr,
                                             sizeof(std::uint32_t), true,
                                             now);
        SyncEvent ev{th.tid, core.id, op.addr, op.site,
                     wait.completeAt};
        for (AccessObserver *obs : observers_)
            obs->onSemaWait(ev);
        if (tracer_ && tracer_->wants(kTraceSync)) {
            Json args = Json::object();
            args.set("sema", op.addr);
            args.set("tid", th.tid);
            tracer_->instant(kTraceSync,
                             EventTracer::kThreadTrackBase + th.tid,
                             "sema-wait", wait.completeAt,
                             std::move(args));
        }
        th.readyAt = wait.completeAt + 1;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;
      }

      case OpType::Barrier: {
        // Arrival: bump the shared arrival counter (RMW traffic).
        AccessOutcome arr = memsys_->access(core.id, op.addr,
                                            sizeof(std::uint32_t), true,
                                            now);
        BarrierState &bar = barriers_[op.addr];
        ++bar.arrived;
        bar.lastArrival = std::max(bar.lastArrival, arr.completeAt);
        th.status = ThreadStatus::WaitBarrier;
        th.waitObj = op.addr;
        th.waitSite = op.site;
        core.freeAt = arr.completeAt + 1;
        ++th.pc;

        if (bar.arrived == liveThreads_) {
            // Episode complete: release all waiters.
            Cycle release = bar.lastArrival + cfg_.barrierReleaseCycles;
            for (ThreadCtx &t : threads_) {
                if (t.status == ThreadStatus::WaitBarrier) {
                    t.status = ThreadStatus::Ready;
                    t.readyAt = release;
                }
            }
            BarrierEvent ev{op.addr, bar.episode, release, bar.arrived};
            for (AccessObserver *obs : observers_)
                obs->onBarrier(ev);
            if (tracer_ && tracer_->wants(kTraceSync)) {
                Json args = Json::object();
                args.set("barrier", op.addr);
                args.set("episode", bar.episode);
                args.set("participants", bar.arrived);
                tracer_->complete(kTraceSync, EventTracer::kSyncTrack,
                                  "barrier", bar.lastArrival, release,
                                  std::move(args));
            }
            ++bar.episode;
            bar.arrived = 0;
            bar.lastArrival = 0;
            ++result_.barrierEpisodes;
        }
        break;
      }

      case OpType::RwRdLock:
        doRwLock(core, th, now, op, false);
        break;

      case OpType::RwWrLock:
        doRwLock(core, th, now, op, true);
        break;

      case OpType::RwRdUnlock:
        doRwUnlock(core, th, now, op, false);
        break;

      case OpType::RwWrUnlock:
        doRwUnlock(core, th, now, op, true);
        break;

      case OpType::CondSignal:
      case OpType::CondBroadcast: {
        const bool broadcast = op.type == OpType::CondBroadcast;
        AccessOutcome sig = memsys_->access(core.id, op.addr,
                                            sizeof(std::uint32_t), true,
                                            now);
        CondState &cv = conds_[op.addr];
        SyncEvent ev{th.tid, core.id, op.addr, op.site, sig.completeAt};
        for (AccessObserver *obs : observers_) {
            if (broadcast)
                obs->onCondBroadcast(ev);
            else
                obs->onCondSignal(ev);
        }
        if (tracer_ && tracer_->wants(kTraceSync)) {
            Json args = Json::object();
            args.set("cond", op.addr);
            args.set("tid", th.tid);
            tracer_->instant(kTraceSync,
                             EventTracer::kThreadTrackBase + th.tid,
                             broadcast ? "cond-broadcast" : "cond-signal",
                             sig.completeAt, std::move(args));
        }
        if (broadcast) {
            for (std::size_t slot : cv.waiters) {
                ThreadCtx &waiter = threads_[slot];
                waiter.status = ThreadStatus::Ready;
                waiter.condGranted = true;
                waiter.readyAt = std::max(waiter.readyAt,
                                          sig.completeAt + 1);
            }
            cv.waiters.clear();
            cv.latched = true;
        } else if (!cv.waiters.empty()) {
            ThreadCtx &waiter = threads_[cv.waiters.front()];
            cv.waiters.erase(cv.waiters.begin());
            waiter.status = ThreadStatus::Ready;
            waiter.condGranted = true;
            waiter.readyAt = std::max(waiter.readyAt,
                                      sig.completeAt + 1);
        } else {
            ++cv.pending;
        }
        th.readyAt = sig.completeAt + 1;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;
      }

      case OpType::CondWait: {
        CondState &cv = conds_[op.addr];
        if (!th.condGranted && !cv.latched && cv.pending == 0) {
            // Block until a signal or broadcast wakes us.
            th.status = ThreadStatus::WaitCond;
            th.waitObj = op.addr;
            th.waitSite = op.site;
            cv.waiters.push_back(
                static_cast<std::size_t>(&th - threads_.data()));
            core.freeAt = now + 1;
            break;
        }
        if (th.condGranted)
            th.condGranted = false;
        else if (!cv.latched)
            --cv.pending;
        AccessOutcome wake = memsys_->access(core.id, op.addr,
                                             sizeof(std::uint32_t), true,
                                             now);
        SyncEvent ev{th.tid, core.id, op.addr, op.site,
                     wake.completeAt};
        for (AccessObserver *obs : observers_)
            obs->onCondWait(ev);
        if (tracer_ && tracer_->wants(kTraceSync)) {
            Json args = Json::object();
            args.set("cond", op.addr);
            args.set("tid", th.tid);
            tracer_->instant(kTraceSync,
                             EventTracer::kThreadTrackBase + th.tid,
                             "cond-wait", wake.completeAt,
                             std::move(args));
        }
        th.readyAt = wake.completeAt + 1;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;
      }

      case OpType::AtomicStore:
      case OpType::AtomicLoad: {
        const bool store = op.type == OpType::AtomicStore;
        AccessOutcome acc = memsys_->access(core.id, op.addr,
                                            sizeof(std::uint32_t), store,
                                            now);
        SyncEvent ev{th.tid, core.id, op.addr, op.site, acc.completeAt};
        for (AccessObserver *obs : observers_) {
            if (store)
                obs->onAtomicStore(ev);
            else
                obs->onAtomicLoad(ev);
        }
        if (tracer_ && tracer_->wants(kTraceSync)) {
            Json args = Json::object();
            args.set("atomic", op.addr);
            args.set("tid", th.tid);
            tracer_->instant(kTraceSync,
                             EventTracer::kThreadTrackBase + th.tid,
                             store ? "atomic-store" : "atomic-load",
                             acc.completeAt, std::move(args));
        }
        th.readyAt = acc.completeAt + 1;
        core.freeAt = th.readyAt;
        ++th.pc;
        break;
      }

      case OpType::End:
        th.status = ThreadStatus::Done;
        --liveThreads_;
        th.readyAt = now;
        core.freeAt = now + 1;
        result_.totalCycles = std::max(result_.totalCycles, now);
        for (AccessObserver *obs : observers_)
            obs->onThreadEnd(th.tid, now);
        // A thread may not exit while holding locks.
        for (const auto &kv : lockHolder_) {
            hard_throw_if(kv.second == th.tid, WorkloadError,
                          "system: thread %u exited holding lock %llx",
                          th.tid,
                          static_cast<unsigned long long>(kv.first));
        }
        for (const auto &kv : rwlocks_) {
            const RwState &rw = kv.second;
            const bool held = rw.writer == th.tid ||
                std::find(rw.readers.begin(), rw.readers.end(), th.tid) !=
                    rw.readers.end();
            hard_throw_if(held, WorkloadError,
                          "system: thread %u exited holding rwlock %llx",
                          th.tid,
                          static_cast<unsigned long long>(kv.first));
        }
        break;
    }
}

std::vector<ThreadSnapshot>
System::snapshotThreads() const
{
    auto status_name = [](ThreadStatus st) {
        switch (st) {
          case ThreadStatus::Ready:
            return "Ready";
          case ThreadStatus::WaitLock:
            return "WaitLock";
          case ThreadStatus::WaitBarrier:
            return "WaitBarrier";
          case ThreadStatus::WaitSema:
            return "WaitSema";
          case ThreadStatus::WaitCond:
            return "WaitCond";
          case ThreadStatus::Done:
            return "Done";
        }
        return "?";
    };

    std::vector<ThreadSnapshot> out;
    out.reserve(threads_.size());
    for (const ThreadCtx &th : threads_) {
        ThreadSnapshot snap;
        snap.tid = th.tid;
        snap.status = status_name(th.status);
        snap.pc = th.pc;
        snap.opCount = th.ops->size();
        switch (th.status) {
          case ThreadStatus::WaitLock:
            snap.waitAddr = th.waitLock;
            snap.waitKind = "lock";
            snap.waitSite = th.waitSite;
            break;
          case ThreadStatus::WaitBarrier:
            snap.waitAddr = th.waitObj;
            snap.waitKind = "barrier";
            snap.waitSite = th.waitSite;
            break;
          case ThreadStatus::WaitSema:
            snap.waitAddr = th.waitObj;
            snap.waitKind = "sema";
            snap.waitSite = th.waitSite;
            break;
          case ThreadStatus::WaitCond:
            snap.waitAddr = th.waitObj;
            snap.waitKind = "cond";
            snap.waitSite = th.waitSite;
            break;
          default:
            break;
        }
        for (const auto &kv : lockHolder_)
            if (kv.second == th.tid)
                snap.heldLocks.push_back(kv.first);
        std::sort(snap.heldLocks.begin(), snap.heldLocks.end());
        out.push_back(std::move(snap));
    }
    return out;
}

RunResult
System::run()
{
    hard_fatal_if(ran_, "system: run() called twice");
    ran_ = true;

    // Host wall-clock budget (SimConfig::wallMsBudget). The clock
    // probe is amortized: one steady_clock read every kWallCheckOps
    // scheduler iterations keeps the check invisible on the hot path.
    const auto wall_start = std::chrono::steady_clock::now();
    constexpr std::uint64_t kWallCheckOps = 2048;
    std::uint64_t wall_countdown = kWallCheckOps;

    auto diagnose = [this](const char *why, Cycle at,
                           Cycle stalled) -> DeadlockError {
        std::vector<ThreadSnapshot> snaps = snapshotThreads();
        std::string msg =
            errfmt("system: %s '%s' at cycle %llu (%u live thread(s))",
                   why, prog_.name.c_str(),
                   static_cast<unsigned long long>(at), liveThreads_);
        for (const ThreadSnapshot &s : snaps)
            msg += "\n  " + s.describe();
        return DeadlockError(msg, at, stalled, std::move(snaps));
    };

    while (liveThreads_ > 0) {
        // Pick the (core, thread) pair with the earliest start time;
        // ties break toward the lower core id.
        HwCore *best_core = nullptr;
        Pick best;
        for (HwCore &c : cores_) {
            Pick p = nextForCore(c);
            if (!p.valid)
                continue;
            if (best_core == nullptr || p.at < best.at) {
                best_core = &c;
                best = p;
            }
        }
        // Structural deadlock: every live thread is blocked on a
        // barrier/semaphore that no runnable thread can ever signal.
        if (best_core == nullptr)
            throw diagnose("deadlock in", lastProgressAt_, 0);
        if (cfg_.maxCycles != 0 && best.at > cfg_.maxCycles)
            throw CycleBudgetError(
                errfmt("system: '%s' exceeded maxCycles=%llu at cycle "
                       "%llu (%llu ops retired)",
                       prog_.name.c_str(),
                       static_cast<unsigned long long>(cfg_.maxCycles),
                       static_cast<unsigned long long>(best.at),
                       static_cast<unsigned long long>(retiredOps_)),
                best.at, cfg_.maxCycles);
        // Forward-progress watchdog: live threads are schedulable
        // (spinning/polling) but nothing has retired for too long —
        // a lock cycle or a never-released lock (livelock).
        if (cfg_.watchdogCycles != 0 &&
            best.at > lastProgressAt_ + cfg_.watchdogCycles)
            throw diagnose("no forward progress in", best.at,
                           best.at - lastProgressAt_);
        if (cfg_.wallMsBudget != 0 && --wall_countdown == 0) {
            wall_countdown = kWallCheckOps;
            const std::uint64_t elapsed_ms = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count());
            if (elapsed_ms > cfg_.wallMsBudget)
                throw TimeoutError(
                    errfmt("system: '%s' exceeded wall-clock budget of "
                           "%llu ms (%llu ms elapsed, %llu ops retired "
                           "at cycle %llu)",
                           prog_.name.c_str(),
                           static_cast<unsigned long long>(
                               cfg_.wallMsBudget),
                           static_cast<unsigned long long>(elapsed_ms),
                           static_cast<unsigned long long>(retiredOps_),
                           static_cast<unsigned long long>(best.at)),
                    elapsed_ms, cfg_.wallMsBudget);
        }

        if (sampler_ != nullptr)
            sampler_->tick(best.at);

        HwCore &core = *best_core;
        if (best.slot != core.current) {
            ThreadCtx &from = threads_[core.bound[core.current]];
            ThreadCtx &to = threads_[core.bound[best.slot]];
            for (AccessObserver *obs : observers_)
                obs->onContextSwitch(core.id, from.tid, to.tid, best.at);
            if (tracer_ && tracer_->wants(kTraceSync)) {
                Json args = Json::object();
                args.set("from", from.tid);
                args.set("to", to.tid);
                tracer_->instant(kTraceSync, core.id, "ctx-switch",
                                 best.at, std::move(args));
            }
            core.current = best.slot;
            core.quantumStart = best.at;
            ++result_.contextSwitches;
        }
        ThreadCtx &th = threads_[core.bound[core.current]];
        const std::size_t pc_before = th.pc;
        const bool done_before = th.status == ThreadStatus::Done;
        step(core, th, best.at);
        if (th.pc != pc_before ||
            (!done_before && th.status == ThreadStatus::Done)) {
            ++retiredOps_;
            // Progress extends to the end of the issued op: a single
            // long Compute keeps the machine legitimately busy past
            // the watchdog horizon and must not look like a stall.
            // Monotonic: a sibling retiring at an earlier cycle must
            // not pull the horizon back before that Compute finishes.
            lastProgressAt_ =
                std::max({lastProgressAt_, best.at, th.readyAt});
        }
    }
    if (sampler_ != nullptr)
        sampler_->finish(result_.totalCycles);
    return result_;
}

Cycle
defaultCycleBudget(const Program &prog)
{
    std::uint64_t total_ops = 0;
    for (const auto &thread : prog.threads)
        total_ops += thread.ops.size();
    // Worst-case per-op cost is ~memLatency (200) plus bus contention
    // and spin convoys; 4000 cycles/op is an order of magnitude above
    // anything a legitimate run reaches, and the fixed floor covers
    // tiny programs whose runtime is dominated by barrier/sync costs.
    return 1'000'000 + 4'000 * total_ops;
}

} // namespace hard
