/**
 * @file
 * Deterministic detection sampling: run any detector at a rate
 * r ∈ (0,1] of the data-access stream, the mechanism behind the
 * always-on monitoring deployments of paper §7 (and the HardRace /
 * O(1)-samples line of follow-on work). Two duty-cycling modes:
 *
 *  - granule: a seeded hash of the address granule decides, once and
 *    for all, whether that granule is monitored. A granule is either
 *    fully observed or fully invisible, so per-granule-independent
 *    detectors see an exact substream and their report set is a
 *    subset of the unsampled run's (the fuzzer enforces this).
 *    Decisions are nested across rates: lowering r only removes
 *    granules, never swaps them, so overhead falls monotonically.
 *  - epoch: a duty cycle over simulated time — the detector is on for
 *    ceil(r * period) cycles out of every period (seeded phase).
 *    Bounds detection latency for every granule at the cost of the
 *    subset guarantee (epoch-based HB detectors may flag a stale
 *    last-writer the full run already ordered).
 *
 * Synchronization events (locks, barriers, semaphores, rwlocks,
 * condvars, atomics) are never sampled out: they are rare, cheap to
 * observe, and skipping them would corrupt detector sync state rather
 * than merely narrow coverage.
 *
 * Everything is a pure function of (spec, addr, cycle), so sampled
 * runs are deterministic and byte-identical at any --jobs, and rate
 * 1.0 is byte-identical to an unsampled run (active() gates every
 * call site).
 *
 * Deliberately NOT part of the fast-mode trace-cache key: sampling
 * filters what detectors *observe* at replay time; it never perturbs
 * the recorded interleaving.
 */

#ifndef HARD_SIM_SAMPLING_HH
#define HARD_SIM_SAMPLING_HH

#include <cmath>
#include <cstdint>
#include <string>

#include "sim/observer.hh"

namespace hard
{

/** Detection-sampling schedule (see file comment). */
struct SamplingSpec
{
    enum class Mode
    {
        granule, ///< seeded per-granule coin, stable for the whole run
        epoch,   ///< duty cycle over simulated time
    };

    Mode mode = Mode::granule;
    /** Fraction of the access stream observed, in (0, 1]. */
    double rate = 1.0;
    /** Seed for the granule hash / epoch phase. */
    std::uint64_t seed = 1;
    /** Epoch mode: duty-cycle period in cycles. */
    Cycle period = 65536;
    /** Address bytes sharing one granule decision (power of two). */
    unsigned granuleBytes = 32;

    /** True when sampling actually filters anything (r < 1). */
    bool active() const { return rate < 1.0; }
};

/** splitmix64 finalizer: well-mixed 64-bit hash of @p x. */
inline std::uint64_t
sampleMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * @return the 33-bit acceptance threshold for @p rate: a granule is
 * monitored iff its 32-bit hash falls below rate * 2^32. Thresholds
 * are monotone in rate, so the monitored sets nest across rates.
 */
inline std::uint64_t
sampleThreshold(double rate)
{
    if (rate >= 1.0)
        return 1ull << 32;
    if (rate <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(
        std::llround(rate * 4294967296.0));
}

/** Granule-mode decision: is @p addr's granule monitored? */
inline bool
sampleGranule(const SamplingSpec &s, Addr addr)
{
    const std::uint64_t g = addr / s.granuleBytes;
    const std::uint64_t h =
        sampleMix(g ^ sampleMix(s.seed)) >> 32;
    return h < sampleThreshold(s.rate);
}

/** Epoch-mode decision: is the duty cycle on at cycle @p at? */
inline bool
sampleEpoch(const SamplingSpec &s, Cycle at)
{
    const Cycle period = s.period == 0 ? 1 : s.period;
    Cycle on = static_cast<Cycle>(
        std::ceil(s.rate * static_cast<double>(period)));
    if (on < 1)
        on = 1;
    if (on > period)
        on = period;
    const Cycle phase = sampleMix(s.seed) % period;
    return (at + phase) % period < on;
}

/**
 * The one decision function every consumer shares (observer wrapper,
 * timing charges, traffic): should the access at (@p addr, @p at) be
 * observed? Always true when sampling is inactive.
 */
inline bool
sampleDecision(const SamplingSpec &s, Addr addr, Cycle at)
{
    if (!s.active())
        return true;
    return s.mode == SamplingSpec::Mode::granule ? sampleGranule(s, addr)
                                                 : sampleEpoch(s, at);
}

/**
 * Forwarding wrapper that feeds an inner observer the sampled
 * substream: data accesses pass through sampleDecision(); every other
 * hook — synchronization, thread lifecycle, line evictions, context
 * switches, and the telemetry registrations — forwards untouched.
 * Wrap a detector in one of these to run it at rate r.
 */
class SamplingObserver : public AccessObserver
{
  public:
    SamplingObserver(AccessObserver &inner, const SamplingSpec &spec)
        : inner_(inner), spec_(spec)
    {
    }

    void
    onRead(const MemEvent &ev) override
    {
        if (sampleDecision(spec_, ev.addr, ev.at))
            inner_.onRead(ev);
    }
    void
    onWrite(const MemEvent &ev) override
    {
        if (sampleDecision(spec_, ev.addr, ev.at))
            inner_.onWrite(ev);
    }
    void
    onLockAcquire(const SyncEvent &ev) override
    {
        inner_.onLockAcquire(ev);
    }
    void
    onLockRelease(const SyncEvent &ev) override
    {
        inner_.onLockRelease(ev);
    }
    void onBarrier(const BarrierEvent &ev) override { inner_.onBarrier(ev); }
    void onSemaPost(const SyncEvent &ev) override { inner_.onSemaPost(ev); }
    void onSemaWait(const SyncEvent &ev) override { inner_.onSemaWait(ev); }
    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        inner_.onRwLockAcquire(ev, writer);
    }
    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        inner_.onRwLockRelease(ev, writer);
    }
    void
    onCondSignal(const SyncEvent &ev) override
    {
        inner_.onCondSignal(ev);
    }
    void
    onCondBroadcast(const SyncEvent &ev) override
    {
        inner_.onCondBroadcast(ev);
    }
    void onCondWait(const SyncEvent &ev) override { inner_.onCondWait(ev); }
    void
    onAtomicStore(const SyncEvent &ev) override
    {
        inner_.onAtomicStore(ev);
    }
    void
    onAtomicLoad(const SyncEvent &ev) override
    {
        inner_.onAtomicLoad(ev);
    }
    void
    onThreadEnd(ThreadId tid, Cycle at) override
    {
        inner_.onThreadEnd(tid, at);
    }
    void
    onLineEvicted(Addr line_addr, Cycle at) override
    {
        inner_.onLineEvicted(line_addr, at);
    }
    void
    onContextSwitch(CoreId core, ThreadId from, ThreadId to,
                    Cycle at) override
    {
        inner_.onContextSwitch(core, from, to, at);
    }

    void
    registerStats(StatRegistry &registry) override
    {
        inner_.registerStats(registry);
    }
    void attachTracer(EventTracer *tracer) override
    {
        inner_.attachTracer(tracer);
    }
    void
    registerProbes(IntervalSampler &sampler) override
    {
        inner_.registerProbes(sampler);
    }

    const SamplingSpec &spec() const { return spec_; }

  private:
    AccessObserver &inner_;
    SamplingSpec spec_;
};

/** Parse a sampling-mode name; @return true on success. */
inline bool
parseSamplingMode(const std::string &name, SamplingSpec::Mode &out)
{
    if (name == "granule") {
        out = SamplingSpec::Mode::granule;
        return true;
    }
    if (name == "epoch") {
        out = SamplingSpec::Mode::epoch;
        return true;
    }
    return false;
}

/** @return the stable name of @p mode ("granule" / "epoch"). */
inline const char *
samplingModeName(SamplingSpec::Mode mode)
{
    return mode == SamplingSpec::Mode::granule ? "granule" : "epoch";
}

} // namespace hard

#endif // HARD_SIM_SAMPLING_HH
