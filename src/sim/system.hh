/**
 * @file
 * The simulated CMP: in-order timing cores, the MESI memory system,
 * spin-lock/barrier/semaphore runtime, and the observer fan-out that
 * feeds the race detectors.
 *
 * Threads are assigned to cores round-robin. With at most one thread
 * per core the machine behaves like the paper's 4-thread/4-core
 * setup; with more threads than cores each core time-multiplexes its
 * thread set (quantum-based, with a context-switch penalty and an
 * onContextSwitch observer hook — the situation in which HARD's
 * per-processor Lock/Counter Registers must be saved and restored by
 * the OS, §3.1).
 */

#ifndef HARD_SIM_SYSTEM_HH
#define HARD_SIM_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/error.hh"
#include "sim/observer.hh"
#include "sim/program.hh"
#include "sim/sim_config.hh"
#include "telemetry/sampler.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_event.hh"

namespace hard
{

/** Summary of a completed simulation. */
struct RunResult
{
    /** Cycle at which the last thread finished. */
    Cycle totalCycles = 0;
    /** Data reads/writes executed (excludes lock-word traffic). */
    std::uint64_t dataReads = 0;
    std::uint64_t dataWrites = 0;
    /** Lock acquires performed. */
    std::uint64_t lockAcquires = 0;
    /** Barrier episodes completed. */
    std::uint64_t barrierEpisodes = 0;
    /** Context switches performed (0 when threads <= cores). */
    std::uint64_t contextSwitches = 0;
};

/**
 * Runs one Program to completion on the simulated CMP.
 *
 * The scheduler is an event loop over per-core ready times; ties
 * break by core id, so runs are fully deterministic for a given
 * (program, config).
 */
class System
{
  public:
    /**
     * @param cfg Simulation configuration (Table 1 defaults).
     * @param prog Program to execute; must outlive the System.
     */
    System(const SimConfig &cfg, const Program &prog);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Attach a detector/observer; not owned. Call before run(). */
    void addObserver(AccessObserver *obs);

    /**
     * Execute the program to completion. Callable once.
     *
     * @throws DeadlockError when every live thread is blocked on sync
     * that can never be signalled, or when the forward-progress
     * watchdog (SimConfig::watchdogCycles) sees no retired op for too
     * long; carries a per-thread diagnostic snapshot.
     * @throws CycleBudgetError when simulated time exceeds
     * SimConfig::maxCycles (if nonzero).
     * @throws WorkloadError on workload misbehaviour the validator
     * cannot catch statically (unlocking a lock the thread does not
     * hold, exiting while holding a lock).
     */
    RunResult run();

    MemorySystem &memsys() { return *memsys_; }
    const MemorySystem &memsys() const { return *memsys_; }
    const SimConfig &config() const { return cfg_; }

    /** Flat dump of every statistics counter in the machine. */
    std::vector<std::pair<std::string, std::uint64_t>> statsDump() const;

    /**
     * The machine's stat registry: memsys, bus, caches, the "system"
     * group (cycles/ops/sync activity) and every registered observer's
     * groups, all under dotted names.
     */
    StatRegistry &statsRegistry() { return registry_; }

    /** Full `hard.stats.v1` JSON snapshot (refreshes mirrors first). */
    Json statsJson() { return registry_.toJson(); }

    /**
     * Attach @p tracer (not owned; may be null) for event-timeline
     * emission. Forwards to the memory system and to every observer
     * registered before or after this call. Call before run().
     */
    void setTracer(EventTracer *tracer);

    /**
     * Attach @p sampler (not owned; may be null) for interval
     * time-series sampling; registers the machine-level probes and
     * every observer's probes. Call before run(); the final row and
     * the file write happen when run() returns.
     */
    void setSampler(IntervalSampler *sampler);

    /** Ops retired so far (monotonic; read by sampler probes). */
    std::uint64_t retiredOps() const { return retiredOps_; }

  private:
    /** Execution status of one software thread. */
    enum class ThreadStatus
    {
        Ready,
        WaitLock,
        WaitBarrier,
        WaitSema,
        WaitCond,
        Done,
    };

    /** Per-thread execution state. */
    struct ThreadCtx
    {
        ThreadId tid = invalidThread;
        const std::vector<Op> *ops = nullptr;
        std::size_t pc = 0;
        /** Earliest cycle at which this thread can execute again. */
        Cycle readyAt = 0;
        ThreadStatus status = ThreadStatus::Ready;
        /** Lock being spun on while in WaitLock. */
        LockAddr waitLock = 0;
        /** Barrier/semaphore being awaited in WaitBarrier/WaitSema. */
        Addr waitObj = invalidAddr;
        SiteId waitSite = invalidSite;
        /** Set when a SemaPost handed this blocked thread its token. */
        bool semaGranted = false;
        /** Set when a CondSignal/Broadcast woke this blocked thread. */
        bool condGranted = false;
    };

    /** Per-hardware-core state. */
    struct HwCore
    {
        CoreId id = 0;
        /** Indices into threads_ of the threads bound to this core. */
        std::vector<std::size_t> bound;
        /** Position in @ref bound of the currently loaded thread. */
        std::size_t current = 0;
        /** Cycle from which the core is free to execute. */
        Cycle freeAt = 0;
        /** Cycle at which the current thread was scheduled in. */
        Cycle quantumStart = 0;
    };

    /** A scheduling decision: run thread @p slot on the core at @p at. */
    struct Pick
    {
        bool valid = false;
        std::size_t slot = 0; // position in core.bound
        Cycle at = 0;
    };

    /** State of one barrier object. */
    struct BarrierState
    {
        unsigned arrived = 0;
        unsigned episode = 0;
        Cycle lastArrival = 0;
    };

    /** State of one counting semaphore. */
    struct SemaState
    {
        std::uint64_t count = 0;
        /** FIFO of blocked threads (indices into threads_). */
        std::vector<std::size_t> waiters;
    };

    /** State of one reader-writer lock. */
    struct RwState
    {
        ThreadId writer = invalidThread;
        /** Threads currently holding the lock in reader mode. */
        std::vector<ThreadId> readers;
    };

    /**
     * State of one condition variable. Signals delivered before any
     * thread waits are banked as tickets (FIFO hand-off), and a
     * broadcast additionally latches sticky, so a waiter arriving
     * after the broadcast still returns — the runtime is deadlock-free
     * for any interleaving of a generated signal/wait pairing.
     */
    struct CondState
    {
        /** Banked signals not yet consumed by a wait. */
        std::uint64_t pending = 0;
        /** A broadcast happened; every future wait returns at once. */
        bool latched = false;
        /** FIFO of blocked threads (indices into threads_). */
        std::vector<std::size_t> waiters;
    };

    /** Choose the next thread for @p core (deterministic). */
    Pick nextForCore(const HwCore &core) const;

    /** Diagnostic snapshot of every thread (for DeadlockError). */
    std::vector<ThreadSnapshot> snapshotThreads() const;

    /** Execute one step of @p th on @p core starting at @p now. */
    void step(HwCore &core, ThreadCtx &th, Cycle now);

    /** Handle a Lock op / spin probe. */
    void doLock(HwCore &core, ThreadCtx &th, Cycle now, LockAddr lock,
                SiteId site);

    /** Handle a RwRdLock/RwWrLock op (spins in place while busy). */
    void doRwLock(HwCore &core, ThreadCtx &th, Cycle now, const Op &op,
                  bool writer);

    /** Handle a RwRdUnlock/RwWrUnlock op. */
    void doRwUnlock(HwCore &core, ThreadCtx &th, Cycle now, const Op &op,
                    bool writer);

    /** Perform the data access of @p op. */
    void doAccess(HwCore &core, ThreadCtx &th, Cycle now, const Op &op);

    /** Notify observers of a data access. */
    void notifyAccess(const MemEvent &ev);

    /** Label the tracer's fixed tracks (cores, bus, sync, detector). */
    void nameTraceTracks();

    const SimConfig cfg_;
    const Program &prog_;
    std::unique_ptr<MemorySystem> memsys_;
    std::vector<ThreadCtx> threads_;
    std::vector<HwCore> cores_;
    std::vector<AccessObserver *> observers_;

    StatRegistry registry_;
    StatGroup systemStats_{"system"};
    EventTracer *tracer_ = nullptr;
    IntervalSampler *sampler_ = nullptr;

    /** lock word address -> holding thread (or invalidThread). */
    std::unordered_map<LockAddr, ThreadId> lockHolder_;
    std::unordered_map<Addr, BarrierState> barriers_;
    std::unordered_map<Addr, SemaState> semas_;
    std::unordered_map<LockAddr, RwState> rwlocks_;
    std::unordered_map<Addr, CondState> conds_;

    unsigned liveThreads_ = 0;
    bool ran_ = false;
    RunResult result_;

    /** Ops retired so far (forward-progress signal for the watchdog). */
    std::uint64_t retiredOps_ = 0;
    /** Cycle of the most recent retirement. */
    Cycle lastProgressAt_ = 0;
};

/**
 * A finite default cycle budget for batch runs of @p prog, scaled
 * from the workload's size so that no legitimate run can hit it: a
 * generous fixed floor plus a per-op allowance far above the
 * worst-case cost of any single operation (memory latency, bus
 * contention, spin convoys included). Batch run units substitute this
 * when SimConfig::maxCycles is 0 so a sweep can never hang on one
 * pathological run even with the watchdog disabled.
 */
Cycle defaultCycleBudget(const Program &prog);

} // namespace hard

#endif // HARD_SIM_SYSTEM_HH
