/**
 * @file
 * Observation interface between the timing simulator and race
 * detectors.
 *
 * Detectors are passive observers of the global (cycle-ordered) memory
 * and synchronization event stream, so a single simulated execution can
 * drive HARD, happens-before and the ideal-lockset detector on an
 * *identical* interleaving — the comparison methodology of paper §5.1.
 */

#ifndef HARD_SIM_OBSERVER_HH
#define HARD_SIM_OBSERVER_HH

#include "coherence/memsys.hh"
#include "common/types.hh"

namespace hard
{

class StatRegistry;
class EventTracer;
class IntervalSampler;

/** A completed data access (lock words are reported via sync events). */
struct MemEvent
{
    ThreadId tid = invalidThread;
    CoreId core = invalidCore;
    Addr addr = 0;
    unsigned size = 0;
    bool write = false;
    SiteId site = invalidSite;
    /** Completion cycle. */
    Cycle at = 0;
    /** Coherence/timing outcome (sharers, source, CState after...). */
    AccessOutcome outcome;
};

/** A lock acquire or release. */
struct SyncEvent
{
    ThreadId tid = invalidThread;
    CoreId core = invalidCore;
    LockAddr lock = 0;
    SiteId site = invalidSite;
    Cycle at = 0;
};

/** A completed barrier episode (all threads arrived and released). */
struct BarrierEvent
{
    /** Address of the barrier object. */
    Addr barrier = 0;
    /** Episode ordinal for this barrier object (0-based). */
    unsigned episode = 0;
    /** Release cycle. */
    Cycle at = 0;
    /** Number of participating threads. */
    unsigned participants = 0;
};

/**
 * Passive observer of the simulated execution. All hooks are invoked
 * in global completion-cycle order.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;

    /** A data read completed. */
    virtual void onRead(const MemEvent &ev) { (void)ev; }
    /** A data write completed. */
    virtual void onWrite(const MemEvent &ev) { (void)ev; }
    /** Thread @p ev.tid acquired lock @p ev.lock. */
    virtual void onLockAcquire(const SyncEvent &ev) { (void)ev; }
    /** Thread @p ev.tid released lock @p ev.lock. */
    virtual void onLockRelease(const SyncEvent &ev) { (void)ev; }
    /** All threads passed a barrier (paper §3.5 reset point). */
    virtual void onBarrier(const BarrierEvent &ev) { (void)ev; }
    /**
     * Hand-crafted synchronization: @p ev.tid posted the semaphore at
     * @p ev.lock. Lockset-style detectors cannot interpret this
     * (paper §5.1's residual false-alarm source); happens-before can.
     */
    virtual void onSemaPost(const SyncEvent &ev) { (void)ev; }
    /** Thread @p ev.tid completed a wait on semaphore @p ev.lock. */
    virtual void onSemaWait(const SyncEvent &ev) { (void)ev; }
    /**
     * Thread @p ev.tid acquired the rwlock at @p ev.lock; @p writer
     * distinguishes exclusive (writer) from shared (reader) mode.
     * HARD's Lock Register is mode-blind (the hardware sees one lock
     * word either way); software detectors may honor the mode.
     */
    virtual void onRwLockAcquire(const SyncEvent &ev, bool writer)
    {
        (void)ev;
        (void)writer;
    }
    /** Thread @p ev.tid released a @p writer-mode hold of @p ev.lock. */
    virtual void onRwLockRelease(const SyncEvent &ev, bool writer)
    {
        (void)ev;
        (void)writer;
    }
    /** Thread @p ev.tid signalled the condition variable @p ev.lock. */
    virtual void onCondSignal(const SyncEvent &ev) { (void)ev; }
    /** Thread @p ev.tid broadcast the condition variable @p ev.lock. */
    virtual void onCondBroadcast(const SyncEvent &ev) { (void)ev; }
    /** Thread @p ev.tid returned from a wait on condvar @p ev.lock. */
    virtual void onCondWait(const SyncEvent &ev) { (void)ev; }
    /** Thread @p ev.tid performed a store-release at @p ev.lock. */
    virtual void onAtomicStore(const SyncEvent &ev) { (void)ev; }
    /** Thread @p ev.tid performed a load-acquire at @p ev.lock. */
    virtual void onAtomicLoad(const SyncEvent &ev) { (void)ev; }
    /** Thread @p tid ran off the end of its stream. */
    virtual void onThreadEnd(ThreadId tid, Cycle at)
    {
        (void)tid;
        (void)at;
    }

    /**
     * A line was displaced from the shared L2 (its L1 copies were
     * back-invalidated). Any detector metadata stored with the line
     * is lost at this point (§3.6 "Cache Displacement").
     */
    virtual void
    onLineEvicted(Addr line_addr, Cycle at)
    {
        (void)line_addr;
        (void)at;
    }

    /**
     * Core @p core switched from running @p from to running @p to
     * (only fired when threads are oversubscribed onto cores). This
     * is where the OS saves and restores HARD's per-processor
     * Lock/Counter Registers (§3.1/§3.3).
     */
    virtual void
    onContextSwitch(CoreId core, ThreadId from, ThreadId to, Cycle at)
    {
        (void)core;
        (void)from;
        (void)to;
        (void)at;
    }

    /** @name Telemetry hooks (all optional)
     * Called by System when the corresponding telemetry facility is
     * attached; observers without stats/tracing simply inherit the
     * no-ops, so plain detectors pay nothing.
     * @{
     */

    /** Register this observer's StatGroup(s) into @p registry. */
    virtual void registerStats(StatRegistry &registry) { (void)registry; }

    /** Attach @p tracer for event-timeline emission (not owned). */
    virtual void attachTracer(EventTracer *tracer) { (void)tracer; }

    /** Contribute interval-sampler probes (live gauges/counters). */
    virtual void registerProbes(IntervalSampler &sampler)
    {
        (void)sampler;
    }
    /** @} */
};

} // namespace hard

#endif // HARD_SIM_OBSERVER_HH
