/**
 * @file
 * A complete multithreaded workload: one operation stream per thread
 * plus the address-space layout metadata the harness needs.
 */

#ifndef HARD_SIM_PROGRAM_HH
#define HARD_SIM_PROGRAM_HH

#include <string>
#include <vector>

#include "common/site.hh"
#include "cpu/op.hh"

namespace hard
{

/** A multithreaded program ready to run on the simulated CMP. */
struct Program
{
    std::string name;
    std::vector<ThreadProgram> threads;

    /** Lock-word addresses allocated by the workload. */
    std::vector<LockAddr> locks;
    /** Barrier-object addresses allocated by the workload. */
    std::vector<Addr> barriers;

    /** [dataBase, dataLimit) spans all allocated data. */
    Addr dataBase = 0;
    Addr dataLimit = 0;

    /** Source-site registry shared by all threads of this program. */
    SiteRegistry sites;

    /** @return total operation count across all threads. */
    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &t : threads)
            n += t.ops.size();
        return n;
    }
};

} // namespace hard

#endif // HARD_SIM_PROGRAM_HH
