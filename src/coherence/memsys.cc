#include "coherence/memsys.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace hard
{

const char *
txnName(TxnType t)
{
    switch (t) {
      case TxnType::BusRd:
        return "BusRd";
      case TxnType::BusRdX:
        return "BusRdX";
      case TxnType::BusUpgr:
        return "BusUpgr";
      case TxnType::Writeback:
        return "Writeback";
      case TxnType::MetaBroadcast:
        return "MetaBroadcast";
      case TxnType::MetaDirectory:
        return "MetaDirectory";
    }
    return "?";
}

const char *
accessSourceName(AccessSource s)
{
    switch (s) {
      case AccessSource::L1:
        return "L1";
      case AccessSource::OtherL1:
        return "OtherL1";
      case AccessSource::L2:
        return "L2";
      case AccessSource::Memory:
        return "Memory";
    }
    return "?";
}

MemorySystem::MemorySystem(const MemSysConfig &cfg)
    : cfg_(cfg), bus_(cfg.bus), stats_("memsys")
{
    hard_throw_if(cfg_.numCores == 0, ConfigError, "memsys: zero cores");
    hard_throw_if(cfg_.l1.lineBytes != cfg_.l2.lineBytes, ConfigError,
                  "memsys: L1/L2 line sizes differ (%u vs %u)",
                  cfg_.l1.lineBytes, cfg_.l2.lineBytes);
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        l1s_.push_back(std::make_unique<SetAssocCache>(
            "l1." + std::to_string(c), cfg_.l1));
    }
    l2_ = std::make_unique<SetAssocCache>("l2", cfg_.l2);
}

void
MemorySystem::setTracer(EventTracer *tracer)
{
    tracer_ = tracer;
    bus_.setTracer(tracer);
}

unsigned
MemorySystem::sharerCount(Addr addr) const
{
    unsigned n = 0;
    for (const auto &l1 : l1s_)
        if (l1->findLine(addr) != nullptr)
            ++n;
    return n;
}

void
MemorySystem::backInvalidate(Addr line, CoreId keep)
{
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c == keep)
            continue;
        if (l1s_[c]->invalidate(line))
            ++stats_.counter("backInvalidations");
    }
}

bool
MemorySystem::ensureInL2(Addr line, bool dirty, Cycle &completeAt, Cycle now)
{
    CacheLine *l2line = l2_->findLine(line);
    if (l2line != nullptr) {
        l2_->touch(line);
        if (dirty)
            l2line->cstate = CState::Modified;
        return false;
    }
    // L2 miss: fetch from memory.
    completeAt = std::max(completeAt, now) + cfg_.memLatency;
    auto ev = l2_->insert(line, dirty ? CState::Modified
                                      : CState::Exclusive);
    if (ev) {
        // Inclusive L2: displace any L1 copies of the victim.
        backInvalidate(ev->lineAddr, invalidCore);
        ++stats_.counter("l2Evictions");
        if (ev->dirty)
            bus_.transact(TxnType::Writeback, completeAt);
        if (tracer_ && tracer_->wants(kTraceMem)) {
            Json args = Json::object();
            args.set("line", ev->lineAddr);
            tracer_->instant(kTraceMem, EventTracer::kBusTrack, "l2-evict",
                             completeAt, std::move(args));
        }
        if (onL2Evict_)
            onL2Evict_(ev->lineAddr);
    }
    return true;
}

void
MemorySystem::fillL1(CoreId core, Addr line, CState st, Cycle at)
{
    auto ev = l1s_[core]->insert(line, st);
    if (ev && ev->dirty) {
        // Dirty victim drains toward the L2 over the bus.
        bus_.transact(TxnType::Writeback, at);
        CacheLine *l2line = l2_->findLine(ev->lineAddr);
        // Inclusive hierarchy: the victim must still be in L2 unless it
        // was just displaced by the concurrent L2 fill.
        if (l2line != nullptr)
            l2line->cstate = CState::Modified;
    }
}

AccessOutcome
MemorySystem::access(CoreId core, Addr addr, unsigned size, bool write,
                     Cycle now)
{
    hard_panic_if(core >= cfg_.numCores, "memsys: bad core %u", core);
    const unsigned line_bytes = cfg_.l1.lineBytes;
    hard_panic_if(size == 0 || (addr % line_bytes) + size > line_bytes,
                  "memsys: access %llx+%u crosses a %u-byte line",
                  static_cast<unsigned long long>(addr), size, line_bytes);

    const Addr line = cfg_.l1.lineAddr(addr);
    SetAssocCache &l1 = *l1s_[core];
    AccessOutcome out;
    ++stats_.counter(write ? "writes" : "reads");

    CacheLine *mine = l1.findLine(line);
    if (mine != nullptr) {
        l1.touch(line);
        if (!write) {
            // Read hit in any valid state.
            out.completeAt = now + cfg_.l1.hitLatency;
            out.l1Hit = true;
            out.source = AccessSource::L1;
            out.stateAfter = mine->cstate;
            out.sharers = sharerCount(line);
            ++l1.stats().counter("readHits");
            return out;
        }
        if (canWrite(mine->cstate)) {
            // Write hit in E/M; silent E->M upgrade.
            mine->cstate = CState::Modified;
            out.completeAt = now + cfg_.l1.hitLatency;
            out.l1Hit = true;
            out.source = AccessSource::L1;
            out.stateAfter = CState::Modified;
            out.sharers = sharerCount(line);
            ++l1.stats().counter("writeHits");
            return out;
        }
        // Write to a Shared line: BusUpgr invalidates other copies.
        Cycle done = bus_.transact(TxnType::BusUpgr,
                                   now + cfg_.l1.hitLatency);
        backInvalidate(line, core);
        mine->cstate = CState::Modified;
        out.completeAt = done;
        out.l1Hit = false;
        out.source = AccessSource::L1;
        out.stateAfter = CState::Modified;
        out.sharers = 1;
        ++l1.stats().counter("upgrades");
        return out;
    }

    // L1 miss: issue BusRd / BusRdX after the (wasted) L1 lookup.
    ++l1.stats().counter(write ? "writeMisses" : "readMisses");
    Cycle done =
        bus_.transact(write ? TxnType::BusRdX : TxnType::BusRd,
                      now + cfg_.l1.hitLatency);

    // Snoop the other L1s.
    CoreId owner = invalidCore;
    bool any_other = false;
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (c == core)
            continue;
        CacheLine *theirs = l1s_[c]->findLine(line);
        if (theirs == nullptr)
            continue;
        any_other = true;
        if (theirs->cstate == CState::Modified)
            owner = c;
    }

    if (owner != invalidCore) {
        // Cache-to-cache supply from the modified owner; the owner's
        // copy degrades to Shared (read) or Invalid (write), and the
        // L2 absorbs the dirty data.
        CacheLine *theirs = l1s_[owner]->findLine(line);
        CacheLine *l2line = l2_->findLine(line);
        hard_panic_if(l2line == nullptr,
                      "memsys: M line %llx missing from inclusive L2",
                      static_cast<unsigned long long>(line));
        l2line->cstate = CState::Modified;
        if (write) {
            l1s_[owner]->invalidate(line);
        } else {
            theirs->cstate = CState::Shared;
        }
        out.source = AccessSource::OtherL1;
        ++stats_.counter("cacheToCache");
    } else {
        // Served by L2 (or memory beneath it).
        Cycle l2_done = done + cfg_.l2.hitLatency;
        bool l2_missed = ensureInL2(line, false, l2_done, done);
        if (l2_missed) {
            out.source = AccessSource::Memory;
            ++stats_.counter("memFetches");
        } else {
            out.source = AccessSource::L2;
        }
        done = l2_done;
        if (write && any_other)
            backInvalidate(line, core);
    }

    if (write && owner != invalidCore) {
        // Other copies besides the owner also invalidate on BusRdX.
        backInvalidate(line, core);
    } else if (!write && any_other && owner == invalidCore) {
        // Readers sharing a clean line: demote any E copy to S.
        for (CoreId c = 0; c < cfg_.numCores; ++c) {
            if (c == core)
                continue;
            CacheLine *theirs = l1s_[c]->findLine(line);
            if (theirs != nullptr && theirs->cstate == CState::Exclusive)
                theirs->cstate = CState::Shared;
        }
    }

    CState fill_state;
    if (write) {
        fill_state = CState::Modified;
    } else if (any_other ||
               cfg_.protocol == CoherenceProtocol::MSI) {
        // MSI has no Exclusive state: clean fills are always Shared,
        // so the first write pays a BusUpgr that MESI avoids.
        fill_state = CState::Shared;
    } else {
        fill_state = CState::Exclusive;
    }
    fillL1(core, line, fill_state, done);

    out.completeAt = done;
    out.l1Hit = false;
    out.stateAfter = fill_state;
    out.sharers = sharerCount(line);
    out.lineTransferred = true;
    if (tracer_ && tracer_->wants(kTraceMem)) {
        Json args = Json::object();
        args.set("addr", addr);
        args.set("source", accessSourceName(out.source));
        tracer_->complete(kTraceMem, core,
                          write ? "write-miss" : "read-miss", now, done,
                          std::move(args));
    }
    return out;
}

} // namespace hard
