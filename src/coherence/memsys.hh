/**
 * @file
 * The CMP memory system: per-core private L1s, a shared inclusive L2,
 * main memory, and the snoopy MESI bus, following Table 1 of the paper
 * (16KB 4-way L1 / 1MB 8-way L2, 32B lines, 3/10/200-cycle latencies).
 */

#ifndef HARD_COHERENCE_MEMSYS_HH
#define HARD_COHERENCE_MEMSYS_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/bus.hh"
#include "mem/cache.hh"

namespace hard
{

/** Where an access was ultimately serviced from. */
enum class AccessSource
{
    L1,
    OtherL1,
    L2,
    Memory,
};

/** @return printable name of @p s. */
const char *accessSourceName(AccessSource s);

/** Timing/coherence outcome of one memory access. */
struct AccessOutcome
{
    /** Cycle at which the access completes. */
    Cycle completeAt = 0;
    /** True if the access hit in the requester's L1 without a bus txn. */
    bool l1Hit = false;
    /** Supplier of the data. */
    AccessSource source = AccessSource::L1;
    /** Number of L1 caches (incl. requester) holding the line after. */
    unsigned sharers = 1;
    /** Requester's L1 coherence state after the access. */
    CState stateAfter = CState::Invalid;
    /** True if the line moved into this L1 (piggyback opportunity). */
    bool lineTransferred = false;
};

/** Snoopy coherence protocol flavour. */
enum class CoherenceProtocol
{
    /** Default: Exclusive state enables silent first-write upgrades. */
    MESI,
    /** Ablation: no E state; every first write pays a BusUpgr. */
    MSI,
};

/** Configuration of the whole memory system. */
struct MemSysConfig
{
    unsigned numCores = 4;
    CoherenceProtocol protocol = CoherenceProtocol::MESI;
    CacheConfig l1{16 * 1024, 4, 32, 3};
    CacheConfig l2{1024 * 1024, 8, 32, 10};
    Cycle memLatency = 200;
    BusConfig bus{};
};

/**
 * Snoopy MESI CMP memory hierarchy.
 *
 * Timing is "atomic with contention": each access computes its full
 * latency synchronously, but bus transactions serialize through the
 * shared Bus so contention (and HARD's metadata broadcasts) lengthen
 * execution.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSysConfig &cfg);

    /**
     * Perform one data access.
     *
     * @param core Requesting core.
     * @param addr Byte address (the whole access must sit in one line).
     * @param size Access size in bytes.
     * @param write True for stores / read-modify-writes.
     * @param now Cycle at which the core issues the access.
     */
    AccessOutcome access(CoreId core, Addr addr, unsigned size, bool write,
                         Cycle now);

    /** @return number of L1 caches currently holding @p addr's line. */
    unsigned sharerCount(Addr addr) const;

    /**
     * Callback fired whenever a line is displaced from the shared L2
     * (back-invalidating any L1 copies). HARD's per-line metadata
     * lives in the cache hierarchy, so this is the moment candidate
     * sets are lost (§3.6).
     */
    void
    setL2EvictionCallback(std::function<void(Addr)> cb)
    {
        onL2Evict_ = std::move(cb);
    }

    /**
     * Attach a trace sink (not owned; may be null): bus transactions
     * on the bus track, L1 miss completions on the requesting core's
     * track, L2 displacements as instants.
     */
    void setTracer(EventTracer *tracer);

    Bus &bus() { return bus_; }
    const Bus &bus() const { return bus_; }
    SetAssocCache &l1(CoreId core) { return *l1s_.at(core); }
    const SetAssocCache &l1(CoreId core) const { return *l1s_.at(core); }
    SetAssocCache &l2() { return *l2_; }
    const SetAssocCache &l2() const { return *l2_; }
    const MemSysConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    /** Fill @p line into @p core's L1, handling the displaced victim. */
    void fillL1(CoreId core, Addr line, CState st, Cycle at);

    /** Ensure @p line is present in L2; @return true if it missed. */
    bool ensureInL2(Addr line, bool dirty, Cycle &completeAt, Cycle now);

    /** Invalidate all L1 copies of @p line (except @p keep). */
    void backInvalidate(Addr line, CoreId keep);

    MemSysConfig cfg_;
    std::function<void(Addr)> onL2Evict_;
    Bus bus_;
    std::vector<std::unique_ptr<SetAssocCache>> l1s_;
    std::unique_ptr<SetAssocCache> l2_;
    StatGroup stats_;
    EventTracer *tracer_ = nullptr;
};

} // namespace hard

#endif // HARD_COHERENCE_MEMSYS_HH
