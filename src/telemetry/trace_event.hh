/**
 * @file
 * Chrome/Perfetto trace_event emission.
 *
 * The EventTracer collects timeline events during a run — bus
 * transactions, cache misses and (metadata) evictions, lock
 * acquire/release, barrier phases, race-report emission — and writes
 * them as a Chrome trace_event JSON document loadable in Perfetto
 * (ui.perfetto.dev) or chrome://tracing.
 *
 * Timestamps are simulated cycles mapped 1 cycle = 1 µs (the
 * trace_event unit), so traces are deterministic: no wall-clock ever
 * reaches the output. Events are grouped into tracks ("threads" in
 * the trace model): one per core, one per simulated thread, plus
 * dedicated bus / sync / detector tracks.
 *
 * Emission is category-gated; call sites guard with
 * `tracer && tracer->wants(kTrace...)` so disabled tracing costs one
 * null-pointer test on hot paths.
 */

#ifndef HARD_TELEMETRY_TRACE_EVENT_HH
#define HARD_TELEMETRY_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace hard
{

/** @name Trace category bits (--trace-categories)
 * @{
 */
inline constexpr unsigned kTraceMem = 1u << 0;       ///< cache miss/evict
inline constexpr unsigned kTraceCoherence = 1u << 1; ///< bus transactions
inline constexpr unsigned kTraceDetector = 1u << 2;  ///< metadata + reports
inline constexpr unsigned kTraceSync = 1u << 3;      ///< locks/barriers/semas
inline constexpr unsigned kTraceAll =
    kTraceMem | kTraceCoherence | kTraceDetector | kTraceSync;
/** @} */

/**
 * Parse a "mem,coherence,detector,sync" category list into a mask;
 * fatal() on unknown category names. An empty string means all.
 */
unsigned parseTraceCategories(const std::string &csv);

class EventTracer
{
  public:
    /** @name Track ("tid") layout
     * Cores occupy tracks [0, kThreadTrackBase); simulated threads
     * sit at kThreadTrackBase + tid; shared components get fixed
     * tracks above those.
     * @{
     */
    static constexpr std::uint32_t kThreadTrackBase = 64;
    static constexpr std::uint32_t kBusTrack = 96;
    static constexpr std::uint32_t kSyncTrack = 97;
    static constexpr std::uint32_t kDetectorTrack = 98;
    /** @} */

    /**
     * @param path Output trace file (written on write()).
     * @param mask Enabled category bits (kTrace*).
     */
    EventTracer(std::string path, unsigned mask);

    /** @return true if events in category @p cat are recorded. */
    bool wants(unsigned cat) const { return (mask_ & cat) != 0; }

    /** Label @p track in the trace UI (thread_name metadata event). */
    void nameTrack(std::uint32_t track, const std::string &name);

    /**
     * Record a complete ("X") event spanning [start, end] cycles on
     * @p track. No-op if the category is masked off.
     */
    void complete(unsigned cat, std::uint32_t track, std::string name,
                  std::uint64_t start, std::uint64_t end,
                  Json args = Json());

    /**
     * Record an instant ("i") event at cycle @p at on @p track.
     * No-op if the category is masked off.
     */
    void instant(unsigned cat, std::uint32_t track, std::string name,
                 std::uint64_t at, Json args = Json());

    /** Events recorded so far (metadata included). */
    std::size_t size() const { return events_.size(); }

    const std::string &path() const { return path_; }

    /** Write {"traceEvents":[...]} to the output path. */
    void write() const;

  private:
    static const char *categoryName(unsigned cat);

    Json event(unsigned cat, const char *ph, std::uint32_t track,
               std::string name, std::uint64_t ts) const;

    std::string path_;
    unsigned mask_;
    std::vector<Json> events_;
};

} // namespace hard

#endif // HARD_TELEMETRY_TRACE_EVENT_HH
