/**
 * @file
 * Cycle-driven interval sampler: periodic JSONL time-series of
 * selected statistics.
 *
 * The sampler is handed probes (named readers over live counters) and
 * ticked from System::run with the current simulated cycle. Whenever
 * an interval boundary is crossed it snapshots every probe into one
 * JSONL row, producing a time-series suitable for plotting (IPC, bus
 * occupancy, metadata-cache hit rate, live BFVector count, reports
 * per Mcycle) — e.g. to see barrier flash-resets empty the metadata
 * state over time.
 *
 * Output format (one JSON document per line):
 *   {"schema":"hard.intervals.v1","interval":N,"probes":[...]}
 *   {"cycle":C,"probe":value,...}
 *   ...
 *
 * Everything is keyed by simulated cycles — no wall-clock — so
 * output is deterministic and byte-identical across parallel runs.
 */

#ifndef HARD_TELEMETRY_SAMPLER_HH
#define HARD_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace hard
{

class IntervalSampler
{
  public:
    /** Reads one live statistic at snapshot time. */
    using Probe = std::function<std::uint64_t()>;

    /**
     * @param path Output JSONL file (written on finish()).
     * @param interval Cycles between rows (must be > 0).
     */
    IntervalSampler(std::string path, std::uint64_t interval);

    /**
     * Install a hook run before each row snapshot (e.g. to refresh
     * mirrored detector stats).
     */
    void setRefresh(std::function<void()> refresh);

    /**
     * Register a cumulative counter probe; rows carry the delta since
     * the previous row (events per interval).
     */
    void addCounter(std::string name, Probe read);
    /** Convenience: counter probe over a live Counter. */
    void addCounter(std::string name, const Counter &c);

    /** Register a level probe; rows carry the raw value. */
    void addGauge(std::string name, Probe read);

    /**
     * Register a ratio probe over two cumulative counters; rows carry
     * delta(num)/delta(den) * scale for the interval (0 when the
     * denominator didn't move).
     */
    void addRatio(std::string name, Probe num, Probe den,
                  double scale = 1.0);

    /**
     * Register a per-cycle rate probe over a cumulative counter; rows
     * carry delta(read)/delta(cycle) * scale for the interval — e.g.
     * IPC (scale 1), bus occupancy (busy cycles per cycle), or race
     * reports per Mcycle (scale 1e6).
     */
    void addRate(std::string name, Probe read, double scale = 1.0);

    /**
     * Advance to simulated cycle @p now; emits a row if an interval
     * boundary was crossed. Cheap when no boundary is crossed.
     */
    void
    tick(std::uint64_t now)
    {
        if (now >= nextBoundary_)
            emitRow(now);
    }

    /**
     * Emit one final row at end-of-run cycle @p end (so the series
     * always covers the whole run) and write the file.
     */
    void finish(std::uint64_t end);

    std::uint64_t interval() const { return interval_; }
    const std::string &path() const { return path_; }
    /** Rows emitted so far (excluding the header). */
    std::size_t rows() const { return rows_; }

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Ratio,
        Rate,
    };

    struct ProbeEntry
    {
        Kind kind;
        std::string name;
        Probe read;      // Counter/Gauge value source
        Probe den;       // Ratio only
        double scale = 1.0;
        std::uint64_t prev = 0;    // previous cumulative value
        std::uint64_t prevDen = 0; // Ratio only
    };

    void addProbe(ProbeEntry entry);
    void emitRow(std::uint64_t now);

    std::string path_;
    std::uint64_t interval_;
    std::uint64_t nextBoundary_;
    std::function<void()> refresh_;
    std::vector<ProbeEntry> probes_;
    std::vector<std::string> lines_;
    std::size_t rows_ = 0;
    std::uint64_t lastRowCycle_ = 0;
    bool headerDone_ = false;
};

/** Derive "<stem>.intervals.jsonl" next to the stats JSON @p path. */
std::string intervalsPathFor(const std::string &path);

} // namespace hard

#endif // HARD_TELEMETRY_SAMPLER_HH
