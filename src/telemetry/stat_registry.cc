#include "stat_registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hard
{

void
StatRegistry::add(StatGroup &group)
{
    for (const StatGroup *g : groups_) {
        hard_panic_if(g->name() == group.name(),
                      "stats: duplicate group '%s' in registry",
                      group.name().c_str());
    }
    groups_.push_back(&group);
}

void
StatRegistry::addRefreshHook(std::function<void()> hook)
{
    hooks_.push_back(std::move(hook));
}

void
StatRegistry::refresh()
{
    for (auto &hook : hooks_)
        hook();
}

StatGroup *
StatRegistry::find(const std::string &name) const
{
    for (StatGroup *g : groups_) {
        if (g->name() == name)
            return g;
    }
    return nullptr;
}

std::uint64_t
StatRegistry::value(const std::string &path) const
{
    // Group names may contain dots ("l1.0"), so try every split point
    // from the right: the longest registered group prefix wins.
    for (std::size_t pos = path.rfind('.'); pos != std::string::npos;
         pos = pos == 0 ? std::string::npos : path.rfind('.', pos - 1)) {
        if (StatGroup *g = find(path.substr(0, pos)))
            return g->value(path.substr(pos + 1));
    }
    return 0;
}

std::vector<StatGroup *>
StatRegistry::groups() const
{
    std::vector<StatGroup *> out = groups_;
    std::sort(out.begin(), out.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name() < b->name();
              });
    return out;
}

std::string
StatRegistry::dumpText()
{
    refresh();
    std::string out;
    for (StatGroup *g : groups()) {
        for (const auto &kv : g->dump()) {
            out += kv.first;
            out += ' ';
            out += std::to_string(kv.second);
            out += '\n';
        }
    }
    return out;
}

Json
StatRegistry::toJson()
{
    refresh();
    Json doc = Json::object();
    doc.set("schema", "hard.stats.v1");
    Json gs = Json::object();
    for (StatGroup *g : groups())
        gs.set(g->name(), g->toJson());
    doc.set("groups", std::move(gs));
    return doc;
}

void
StatRegistry::reset()
{
    for (StatGroup *g : groups_)
        g->reset();
}

std::uint64_t
statFromJson(const Json &stats, const std::string &group,
             const std::string &stat)
{
    if (!stats.isObject() || !stats.has("groups"))
        return 0;
    const Json &gs = stats["groups"];
    if (!gs.isObject() || !gs.has(group))
        return 0;
    const Json &g = gs[group];
    if (!g.isObject() || !g.has("counters"))
        return 0;
    const Json &c = g["counters"];
    if (!c.isObject() || !c.has(stat) || !c[stat].isNumber())
        return 0;
    return c[stat].asUint();
}

} // namespace hard
