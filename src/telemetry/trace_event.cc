#include "trace_event.hh"

#include "common/logging.hh"

namespace hard
{

unsigned
parseTraceCategories(const std::string &csv)
{
    if (csv.empty())
        return kTraceAll;
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string name = csv.substr(pos, comma - pos);
        if (name == "mem") {
            mask |= kTraceMem;
        } else if (name == "coherence") {
            mask |= kTraceCoherence;
        } else if (name == "detector") {
            mask |= kTraceDetector;
        } else if (name == "sync") {
            mask |= kTraceSync;
        } else if (name == "all") {
            mask |= kTraceAll;
        } else {
            fatal("unknown trace category '%s' "
                  "(expected mem,coherence,detector,sync,all)",
                  name.c_str());
        }
        pos = comma + 1;
    }
    hard_fatal_if(mask == 0, "empty trace category list");
    return mask;
}

EventTracer::EventTracer(std::string path, unsigned mask)
    : path_(std::move(path)), mask_(mask)
{
}

const char *
EventTracer::categoryName(unsigned cat)
{
    switch (cat) {
      case kTraceMem:
        return "mem";
      case kTraceCoherence:
        return "coherence";
      case kTraceDetector:
        return "detector";
      case kTraceSync:
        return "sync";
      default:
        return "misc";
    }
}

Json
EventTracer::event(unsigned cat, const char *ph, std::uint32_t track,
                   std::string name, std::uint64_t ts) const
{
    // 1 simulated cycle = 1 µs of trace time.
    Json e = Json::object();
    e.set("name", std::move(name));
    e.set("cat", categoryName(cat));
    e.set("ph", ph);
    e.set("ts", ts);
    e.set("pid", 0u);
    e.set("tid", track);
    return e;
}

void
EventTracer::nameTrack(std::uint32_t track, const std::string &name)
{
    Json e = Json::object();
    e.set("name", "thread_name");
    e.set("ph", "M");
    e.set("pid", 0u);
    e.set("tid", track);
    Json args = Json::object();
    args.set("name", name);
    e.set("args", std::move(args));
    events_.push_back(std::move(e));
}

void
EventTracer::complete(unsigned cat, std::uint32_t track, std::string name,
                      std::uint64_t start, std::uint64_t end, Json args)
{
    if (!wants(cat))
        return;
    Json e = event(cat, "X", track, std::move(name), start);
    e.set("dur", end >= start ? end - start : 0);
    if (!args.isNull())
        e.set("args", std::move(args));
    events_.push_back(std::move(e));
}

void
EventTracer::instant(unsigned cat, std::uint32_t track, std::string name,
                     std::uint64_t at, Json args)
{
    if (!wants(cat))
        return;
    Json e = event(cat, "i", track, std::move(name), at);
    e.set("s", "t"); // thread-scoped instant
    if (!args.isNull())
        e.set("args", std::move(args));
    events_.push_back(std::move(e));
}

void
EventTracer::write() const
{
    Json doc = Json::object();
    Json evs = Json::array();
    for (const Json &e : events_)
        evs.push(e);
    doc.set("traceEvents", std::move(evs));
    doc.set("displayTimeUnit", "ms");
    writeJsonFile(path_, doc);
}

} // namespace hard
