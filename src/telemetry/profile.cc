#include "telemetry/profile.hh"

#include <ctime>

#include <sys/resource.h>

namespace hard
{

namespace
{

/** The process-global instance. Heap-allocated once and never freed:
 * forked campaign shards and std::_Exit must not race a destructor. */
Profiler *g_profiler = nullptr;

double
timespecSeconds(const struct timespec &ts)
{
    return static_cast<double>(ts.tv_sec) +
        static_cast<double>(ts.tv_nsec) * 1e-9;
}

double
rusageCpuSeconds(int who)
{
    struct rusage ru;
    if (::getrusage(who, &ru) != 0)
        return 0.0;
    auto tv = [](const struct timeval &t) {
        return static_cast<double>(t.tv_sec) +
            static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
}

/** Dump-time tree node: the flat dotted-path map folded into nesting. */
struct TreeNode
{
    const Profiler::PhaseStats *stats = nullptr;
    std::map<std::string, TreeNode> children;
};

Json
treeJson(const TreeNode &node)
{
    Json j = Json::object();
    if (node.stats != nullptr) {
        j.set("calls", node.stats->calls);
        j.set("wallSeconds", node.stats->wallSeconds);
        j.set("cpuSeconds", node.stats->cpuSeconds);
    }
    if (!node.children.empty()) {
        Json kids = Json::object();
        for (const auto &[name, child] : node.children)
            kids.set(name, treeJson(child));
        j.set("phases", std::move(kids));
    }
    return j;
}

} // namespace

void
Profiler::enable()
{
    if (g_profiler == nullptr)
        g_profiler = new Profiler();
}

void
Profiler::disable()
{
    delete g_profiler;
    g_profiler = nullptr;
}

Profiler *
Profiler::active()
{
    return g_profiler;
}

void
Profiler::addPhase(const std::string &path, double wall_seconds,
                   double cpu_seconds, std::uint64_t calls)
{
    std::lock_guard<std::mutex> lock(mu_);
    PhaseStats &s = phases_[path];
    s.calls += calls;
    s.wallSeconds += wall_seconds;
    s.cpuSeconds += cpu_seconds;
}

void
Profiler::addCounter(const std::string &name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
}

Profiler::PhaseStats
Profiler::phase(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = phases_.find(path);
    return it == phases_.end() ? PhaseStats{} : it->second;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    phases_.clear();
    counters_.clear();
    enabledAt_ = std::chrono::steady_clock::now();
}

Json
Profiler::toJson() const
{
    // Copy under the lock, assemble outside it.
    std::map<std::string, PhaseStats> phases;
    std::map<std::string, std::uint64_t> counters;
    std::chrono::steady_clock::time_point enabled_at;
    {
        std::lock_guard<std::mutex> lock(mu_);
        phases = phases_;
        counters = counters_;
        enabled_at = enabledAt_;
    }

    TreeNode root;
    for (const auto &[path, stats] : phases) {
        TreeNode *node = &root;
        std::size_t start = 0;
        while (start <= path.size()) {
            const std::size_t dot = path.find('.', start);
            const std::string part = path.substr(
                start,
                dot == std::string::npos ? std::string::npos
                                         : dot - start);
            node = &node->children[part];
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        node->stats = &stats;
    }

    Json doc = Json::object();
    doc.set("schema", "hard.profile.v1");
    doc.set("wallSeconds",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - enabled_at)
                .count());
    doc.set("cpuSeconds", processCpuSeconds());
    doc.set("peakRssBytes", peakRssBytes());
    Json kids = Json::object();
    for (const auto &[name, child] : root.children)
        kids.set(name, treeJson(child));
    doc.set("phases", std::move(kids));
    Json ctrs = Json::object();
    for (const auto &[name, value] : counters)
        ctrs.set(name, value);
    doc.set("counters", std::move(ctrs));
    return doc;
}

double
threadCpuSeconds()
{
    struct timespec ts;
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return timespecSeconds(ts);
}

double
processCpuSeconds()
{
    return rusageCpuSeconds(RUSAGE_SELF);
}

std::uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

// TimedObserver: each callback is timed with two steady_clock reads
// and forwarded verbatim; the accumulated total is folded into the
// profiler in one addPhase at flush time.
#define HARD_TIMED_FORWARD(call)                                         \
    do {                                                                 \
        const auto t0 = std::chrono::steady_clock::now();                \
        inner_->call;                                                    \
        wallSeconds_ +=                                                  \
            std::chrono::duration<double>(                               \
                std::chrono::steady_clock::now() - t0)                   \
                .count();                                                \
        ++calls_;                                                        \
    } while (0)

void
TimedObserver::onRead(const MemEvent &ev)
{
    HARD_TIMED_FORWARD(onRead(ev));
}

void
TimedObserver::onWrite(const MemEvent &ev)
{
    HARD_TIMED_FORWARD(onWrite(ev));
}

void
TimedObserver::onLockAcquire(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onLockAcquire(ev));
}

void
TimedObserver::onLockRelease(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onLockRelease(ev));
}

void
TimedObserver::onBarrier(const BarrierEvent &ev)
{
    HARD_TIMED_FORWARD(onBarrier(ev));
}

void
TimedObserver::onSemaPost(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onSemaPost(ev));
}

void
TimedObserver::onSemaWait(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onSemaWait(ev));
}

void
TimedObserver::onRwLockAcquire(const SyncEvent &ev, bool writer)
{
    HARD_TIMED_FORWARD(onRwLockAcquire(ev, writer));
}

void
TimedObserver::onRwLockRelease(const SyncEvent &ev, bool writer)
{
    HARD_TIMED_FORWARD(onRwLockRelease(ev, writer));
}

void
TimedObserver::onCondSignal(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onCondSignal(ev));
}

void
TimedObserver::onCondBroadcast(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onCondBroadcast(ev));
}

void
TimedObserver::onCondWait(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onCondWait(ev));
}

void
TimedObserver::onAtomicStore(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onAtomicStore(ev));
}

void
TimedObserver::onAtomicLoad(const SyncEvent &ev)
{
    HARD_TIMED_FORWARD(onAtomicLoad(ev));
}

void
TimedObserver::onThreadEnd(ThreadId tid, Cycle at)
{
    HARD_TIMED_FORWARD(onThreadEnd(tid, at));
}

void
TimedObserver::onLineEvicted(Addr line_addr, Cycle at)
{
    HARD_TIMED_FORWARD(onLineEvicted(line_addr, at));
}

void
TimedObserver::onContextSwitch(CoreId core, ThreadId from, ThreadId to,
                               Cycle at)
{
    HARD_TIMED_FORWARD(onContextSwitch(core, from, to, at));
}

#undef HARD_TIMED_FORWARD

} // namespace hard
