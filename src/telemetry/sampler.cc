#include "sampler.hh"

#include <fstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace hard
{

IntervalSampler::IntervalSampler(std::string path, std::uint64_t interval)
    : path_(std::move(path)), interval_(interval), nextBoundary_(interval)
{
    hard_fatal_if(interval_ == 0, "stats interval must be > 0");
}

void
IntervalSampler::setRefresh(std::function<void()> refresh)
{
    refresh_ = std::move(refresh);
}

void
IntervalSampler::addProbe(ProbeEntry entry)
{
    hard_panic_if(headerDone_,
                  "sampler: probe '%s' registered after sampling began",
                  entry.name.c_str());
    for (const ProbeEntry &p : probes_) {
        hard_panic_if(p.name == entry.name,
                      "sampler: duplicate probe '%s'", entry.name.c_str());
    }
    probes_.push_back(std::move(entry));
}

void
IntervalSampler::addCounter(std::string name, Probe read)
{
    ProbeEntry e;
    e.kind = Kind::Counter;
    e.name = std::move(name);
    e.read = std::move(read);
    addProbe(std::move(e));
}

void
IntervalSampler::addCounter(std::string name, const Counter &c)
{
    const Counter *ptr = &c;
    addCounter(std::move(name), [ptr] { return ptr->value(); });
}

void
IntervalSampler::addGauge(std::string name, Probe read)
{
    ProbeEntry e;
    e.kind = Kind::Gauge;
    e.name = std::move(name);
    e.read = std::move(read);
    addProbe(std::move(e));
}

void
IntervalSampler::addRatio(std::string name, Probe num, Probe den,
                          double scale)
{
    ProbeEntry e;
    e.kind = Kind::Ratio;
    e.name = std::move(name);
    e.read = std::move(num);
    e.den = std::move(den);
    e.scale = scale;
    addProbe(std::move(e));
}

void
IntervalSampler::addRate(std::string name, Probe read, double scale)
{
    ProbeEntry e;
    e.kind = Kind::Rate;
    e.name = std::move(name);
    e.read = std::move(read);
    e.scale = scale;
    addProbe(std::move(e));
}

void
IntervalSampler::emitRow(std::uint64_t now)
{
    if (!headerDone_) {
        Json header = Json::object();
        header.set("schema", "hard.intervals.v1");
        header.set("interval", interval_);
        Json ps = Json::array();
        for (const ProbeEntry &p : probes_) {
            Json pj = Json::object();
            const char *kind = "counter";
            if (p.kind == Kind::Gauge)
                kind = "gauge";
            else if (p.kind == Kind::Ratio)
                kind = "ratio";
            else if (p.kind == Kind::Rate)
                kind = "rate";
            pj.set("kind", kind);
            pj.set("name", p.name);
            ps.push(std::move(pj));
        }
        header.set("probes", std::move(ps));
        lines_.push_back(header.dump());
        headerDone_ = true;
    }

    if (refresh_)
        refresh_();

    Json row = Json::object();
    row.set("cycle", now);
    for (ProbeEntry &p : probes_) {
        switch (p.kind) {
          case Kind::Counter: {
            const std::uint64_t v = p.read();
            row.set(p.name, v - p.prev);
            p.prev = v;
            break;
          }
          case Kind::Gauge:
            row.set(p.name, p.read());
            break;
          case Kind::Ratio: {
            const std::uint64_t n = p.read();
            const std::uint64_t d = p.den();
            row.set(p.name,
                    Formula::ratio(n - p.prev, d - p.prevDen, p.scale));
            p.prev = n;
            p.prevDen = d;
            break;
          }
          case Kind::Rate: {
            const std::uint64_t n = p.read();
            row.set(p.name, Formula::ratio(n - p.prev,
                                           now - lastRowCycle_, p.scale));
            p.prev = n;
            break;
          }
        }
    }
    lines_.push_back(row.dump());
    ++rows_;
    lastRowCycle_ = now;

    // Next boundary strictly after `now` so bursts of ticks between
    // boundaries emit exactly one row.
    nextBoundary_ = (now / interval_ + 1) * interval_;
}

void
IntervalSampler::finish(std::uint64_t end)
{
    // Always close the series with an end-of-run row (also emits the
    // header for ultra-short runs that never crossed a boundary).
    if (!headerDone_ || end > lastRowCycle_)
        emitRow(end);

    std::ofstream out(path_);
    hard_fatal_if(!out, "cannot open intervals file '%s'", path_.c_str());
    for (const std::string &line : lines_)
        out << line << '\n';
    out.close();
    hard_fatal_if(!out, "error writing intervals file '%s'", path_.c_str());
}

std::string
intervalsPathFor(const std::string &path)
{
    std::string stem = path;
    const std::size_t slash = stem.find_last_of('/');
    const std::size_t dot = stem.rfind('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem.resize(dot);
    }
    return stem + ".intervals.jsonl";
}

} // namespace hard
