/**
 * @file
 * Hierarchical registry of StatGroups.
 *
 * Every simulated component (cores, caches, bus, detectors, the batch
 * harness) owns a StatGroup with a dotted name ("l1.0", "bus",
 * "detector.hard", ...) and registers it here. The registry is the
 * single point for whole-simulator dumps: sorted text lines, a
 * schema-tagged JSON document (`hard.stats.v1`), and cross-group
 * lookups by full dotted path.
 *
 * Some groups (detector stats mirrored from internal structs) are
 * only materialised on demand; they install a refresh hook that the
 * registry invokes before every dump or sample so readers always see
 * current values without the hot path paying for the mirroring.
 */

#ifndef HARD_TELEMETRY_STAT_REGISTRY_HH
#define HARD_TELEMETRY_STAT_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"

namespace hard
{

class StatRegistry
{
  public:
    StatRegistry() = default;

    // Groups are referenced by pointer; copying would dangle.
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Register @p group under its own name. The group must outlive the
     * registry. Panics if a group with the same name is already
     * registered.
     */
    void add(StatGroup &group);

    /**
     * Install a hook run by refresh() before every dump/sample; used
     * by components whose stats are mirrored from internal state.
     */
    void addRefreshHook(std::function<void()> hook);

    /** Run all refresh hooks (in registration order). */
    void refresh();

    /** @return the group called @p name, or nullptr. */
    StatGroup *find(const std::string &name) const;

    /**
     * Counter lookup by full dotted path ("group.stat", where the
     * group name may itself contain dots — the longest registered
     * group prefix wins). Returns 0 for unknown paths.
     */
    std::uint64_t value(const std::string &path) const;

    /** Registered groups in sorted name order. */
    std::vector<StatGroup *> groups() const;

    /**
     * All counters across all groups as sorted "group.stat value"
     * lines (refreshes first).
     */
    std::string dumpText();

    /**
     * Full JSON document:
     * {"schema":"hard.stats.v1","groups":{name:groupJson,...}} with
     * groups sorted by name (refreshes first).
     */
    Json toJson();

    /** Reset every registered group (between batch units). */
    void reset();

  private:
    std::vector<StatGroup *> groups_;
    std::vector<std::function<void()>> hooks_;
};

/**
 * Pull one counter value back out of a `hard.stats.v1` (or embedded
 * per-run stats) JSON document: stats["groups"][group]["counters"][stat].
 * Returns 0 when any level is missing, so callers can treat absent
 * stats blocks as zero counts.
 */
std::uint64_t statFromJson(const Json &stats, const std::string &group,
                           const std::string &stat);

} // namespace hard

#endif // HARD_TELEMETRY_STAT_REGISTRY_HH
