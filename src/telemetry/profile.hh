/**
 * @file
 * Wall-clock self-profiling plane (hard.profile.v1).
 *
 * Everything else under src/telemetry is keyed to *simulated* cycles
 * and is part of the deterministic output contract. This file is the
 * other plane: where the harness itself spends real time — recording,
 * replaying, detector dispatch, trace-cache I/O, journal I/O — plus
 * peak RSS and byte counters. The two planes obey one rule:
 *
 *   The wall-clock plane may observe, but must never perturb, a
 *   deterministic byte. Profile data only ever appears in a separate
 *   "profile" block (or file) that is absent when profiling is off;
 *   reports, stats, journals and campaign merges are byte-identical
 *   either way.
 *
 * The profiler is process-global and off by default; every probe is a
 * cheap null-check when disabled. Phases are identified by dotted
 * paths ("batch.unit.record"); the flat map is folded into a tree at
 * dump time. Aggregation is at phase granularity (one mutexed update
 * per ScopedPhase destruction), so contention is negligible even with
 * per-event detector dispatch timing, which batches its updates.
 */

#ifndef HARD_TELEMETRY_PROFILE_HH
#define HARD_TELEMETRY_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/json.hh"
#include "sim/observer.hh"

namespace hard
{

/** Process-global wall-clock profiler; null when profiling is off. */
class Profiler
{
  public:
    /** Accumulated cost of one dotted phase path. */
    struct PhaseStats
    {
        std::uint64_t calls = 0;
        double wallSeconds = 0.0;
        double cpuSeconds = 0.0;
    };

    /** Turn the process-global profiler on (idempotent). */
    static void enable();
    /** Turn it off and drop all recorded data (tests). */
    static void disable();
    /** @return the enabled profiler, or null when profiling is off. */
    static Profiler *active();

    /** Fold one timed interval into phase @p path. */
    void addPhase(const std::string &path, double wall_seconds,
                  double cpu_seconds, std::uint64_t calls = 1);
    /** Bump named counter @p name by @p delta. */
    void addCounter(const std::string &name, std::uint64_t delta);

    /** Snapshot of one phase (zeroes when never recorded; tests). */
    PhaseStats phase(const std::string &path) const;

    /**
     * The hard.profile.v1 document: schema tag, wall seconds since
     * enable(), peak RSS, the phase tree and the counters. Key order
     * is sorted (std::map), so the *structure* is deterministic even
     * though the timings are wall-clock.
     */
    Json toJson() const;

    /** Drop all recorded phases/counters, keep profiling on (tests). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, PhaseStats> phases_;
    std::map<std::string, std::uint64_t> counters_;
    std::chrono::steady_clock::time_point enabledAt_ =
        std::chrono::steady_clock::now();
};

/** @return this thread's consumed CPU time (user+sys) in seconds. */
double threadCpuSeconds();

/** @return the process's consumed CPU time (user+sys) in seconds. */
double processCpuSeconds();

/** @return the process's peak resident set size in bytes. */
std::uint64_t peakRssBytes();

/**
 * RAII phase timer: measures wall (steady_clock) + CPU
 * (CLOCK_THREAD_CPUTIME_ID) between construction and destruction and
 * folds them into the active profiler. A no-op (two branches) when
 * profiling is off. @p path must outlive the scope (string literals).
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *path)
        : path_(path), prof_(Profiler::active())
    {
        if (prof_ == nullptr)
            return;
        wall0_ = std::chrono::steady_clock::now();
        cpu0_ = threadCpuSeconds();
    }

    ~ScopedPhase()
    {
        if (prof_ == nullptr)
            return;
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0_)
                .count();
        prof_->addPhase(path_, wall, threadCpuSeconds() - cpu0_);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *path_;
    Profiler *prof_;
    std::chrono::steady_clock::time_point wall0_;
    double cpu0_ = 0.0;
};

/** Bump counter @p name by @p delta iff profiling is on. */
inline void
profileCount(const char *name, std::uint64_t delta)
{
    if (Profiler *p = Profiler::active())
        p->addCounter(name, delta);
}

/**
 * Forwarding observer that attributes replay dispatch time to one
 * detector. Wrapping each battery member lets a *single* joint replay
 * (identical event stream, identical trace-cache counters) produce a
 * per-detector cost breakdown: each callback is forwarded verbatim
 * and its wall time accumulated locally, folded into the profiler
 * once at flush()/destruction. Wall only — a per-event thread-CPU
 * syscall would dwarf what it measures. Only constructed when the
 * profiler is active, so profiling off costs nothing.
 */
class TimedObserver : public AccessObserver
{
  public:
    /** Forward to @p inner, attributing time to phase @p path. */
    TimedObserver(AccessObserver *inner, std::string path)
        : inner_(inner), path_(std::move(path))
    {
    }

    ~TimedObserver() override { flush(); }

    /** Fold the accumulated time into the profiler now. */
    void
    flush()
    {
        if (calls_ == 0)
            return;
        if (Profiler *p = Profiler::active())
            p->addPhase(path_, wallSeconds_, 0.0, calls_);
        calls_ = 0;
        wallSeconds_ = 0.0;
    }

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onSemaPost(const SyncEvent &ev) override;
    void onSemaWait(const SyncEvent &ev) override;
    void onRwLockAcquire(const SyncEvent &ev, bool writer) override;
    void onRwLockRelease(const SyncEvent &ev, bool writer) override;
    void onCondSignal(const SyncEvent &ev) override;
    void onCondBroadcast(const SyncEvent &ev) override;
    void onCondWait(const SyncEvent &ev) override;
    void onAtomicStore(const SyncEvent &ev) override;
    void onAtomicLoad(const SyncEvent &ev) override;
    void onThreadEnd(ThreadId tid, Cycle at) override;
    void onLineEvicted(Addr line_addr, Cycle at) override;
    void onContextSwitch(CoreId core, ThreadId from, ThreadId to,
                         Cycle at) override;

  private:
    AccessObserver *inner_;
    std::string path_;
    std::uint64_t calls_ = 0;
    double wallSeconds_ = 0.0;
};

} // namespace hard

#endif // HARD_TELEMETRY_PROFILE_HH
