/**
 * @file
 * Content-addressed on-disk trace cache for fast functional mode.
 *
 * Cycle-level simulation is deterministic in (workload, sizing,
 * injection seed, interleaving-relevant SimConfig), so the event trace
 * of a run is a pure function of those inputs. The cache keys each
 * recording by a canonical string of exactly those fields (TraceKey),
 * hashes it to a filename, and stores the serialized trace in a
 * checksummed container. Subsequent runs with the same key replay the
 * cached trace through the detector battery only — no CPU/bus/cache
 * timing — with bit-identical reports (tests/test_fast_mode_identity).
 *
 * Container layout (little-endian, "HARDTCC1"):
 *   magic "HARDTCC1" (8 bytes)
 *   u32 container version (=2)
 *   u32 trace format version of the payload (trace.hh)
 *   u64 canonical-key length + bytes  (collision/versioning guard)
 *   u64 payload length + bytes        (exact serializeTrace() output)
 *   u64 payload checksum: FNV-1a over 8 interleaved lanes (byte i
 *       feeds lane i%8), lanes folded with a final FNV pass — the
 *       serial FNV chain of container v1 was the warm path's single
 *       largest cost on multi-megabyte payloads
 *
 * Concurrency: writers serialize the trace to a private temp file in
 * the cache directory and publish it with an atomic rename, so N
 * workers racing on one key all observe either nothing (miss,
 * re-record) or one complete entry — never a torn file. Loads verify
 * magic, versions, lengths, checksum and the embedded canonical key;
 * any mismatch evicts the entry (unlink) and reports a miss rather
 * than crashing or replaying stale data.
 */

#ifndef HARD_TRACE_TRACE_CACHE_HH
#define HARD_TRACE_TRACE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sim_config.hh"
#include "trace/trace.hh"
#include "workloads/builder.hh"

namespace hard
{

/**
 * Canonical cache key: an ordered "field=value;" string over every
 * input that can change the recorded interleaving, hashed (FNV-1a 64)
 * to the cache filename. Build with add() in a fixed order; two keys
 * are equal iff their canonical strings are equal, so any added field
 * changing value yields a different cache entry.
 */
class TraceKey
{
  public:
    TraceKey &add(const std::string &field, const std::string &value);
    TraceKey &add(const std::string &field, std::uint64_t value);
    TraceKey &add(const std::string &field, double value);

    /** @return the full canonical key string. */
    const std::string &canonical() const { return canon_; }

    /** @return 16-hex-digit FNV-1a digest of canonical(). */
    std::string digest() const;

  private:
    std::string canon_;
};

/**
 * @return the cache key of one effectiveness/single run:
 * @p workload built with @p wp, race-injected with @p inject_seed
 * (pass -1 for the race-free run), simulated under @p sim. Includes
 * the trace format version, so format bumps invalidate every entry.
 *
 * Interleaving-relevant SimConfig fields (cache geometry, latencies,
 * protocol, scheduling) are all included; hardTiming is not — fast
 * mode refuses to run with it enabled (it perturbs timing per
 * detector, voiding the shared-trace premise).
 */
TraceKey makeRunKey(const std::string &workload, const WorkloadParams &wp,
                    const SimConfig &sim, std::int64_t inject_seed);

/** Canonicalize just the SimConfig portion into @p key (shared by
 * makeRunKey and the fuzzer's key derivation). */
void addSimConfigFields(TraceKey &key, const SimConfig &sim);

/** Content-addressed trace store rooted at one directory. */
class TraceCache
{
  public:
    /** Cache effectiveness counters (surfaced via statsJson()). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        /** Entries dropped for failing integrity checks. */
        std::uint64_t evictedCorrupt = 0;
        /** Entries dropped for a stale trace-format version. */
        std::uint64_t evictedStale = 0;
        /** Digest matches whose canonical key differed. */
        std::uint64_t collisions = 0;
        /** Orphaned temp files swept on open — debris of writers
         * killed between serializing and publishing an entry. Not an
         * entry eviction: no lookup ever misses because of one, so
         * telemetry checks exclude it from the evictions<=misses
         * invariant. */
        std::uint64_t evictedOrphan = 0;
    };

    /**
     * Open (creating if needed) the cache at @p dir; fatal() if the
     * directory cannot be created. Opening also sweeps orphaned
     * ".tmp.*" files older than @p orphanTtlSeconds — a store() killed
     * (e.g. SIGKILL) between writing its private temp file and the
     * atomic rename leaks the temp forever, and a shared cache
     * accumulates them across crashy campaign shards. The TTL keeps
     * the sweep from racing live writers in other processes: a temp
     * younger than the TTL may still be about to be renamed. Pass 0 to
     * sweep unconditionally (tests, single-process cleanup).
     */
    explicit TraceCache(const std::string &dir,
                        std::uint64_t orphanTtlSeconds = 900);

    /**
     * Crash-fault injection (campaign tests): invoked during store()
     * after the temp file is fully written and closed but before the
     * publishing rename — the widest real window in which a dying
     * process orphans a temp file. The hook may raise(SIGKILL); normal
     * operation leaves it unset.
     */
    void setStoreCrashHook(std::function<void()> hook);

    /**
     * Look up @p key. Counts a hit and returns the trace on success;
     * counts a miss (plus the relevant eviction/collision counter) and
     * returns nullopt when absent, corrupt, stale or colliding.
     */
    std::optional<Trace> lookup(const TraceKey &key);

    /**
     * Warm-path lookup-and-replay: stream the entry for @p key from
     * the memory-mapped container straight into @p observers, without
     * materializing the event vector lookup() pays for. Integrity
     * checking and counter accounting are identical to lookup(), and
     * no event is dispatched unless the entire entry validates — a
     * corrupt tail can never leave detectors half-replayed.
     *
     * @return the number of events replayed on a hit; nullopt on a
     * miss (absent/corrupt/stale/colliding, counted like lookup()).
     */
    std::optional<std::size_t>
    replayCached(const TraceKey &key,
                 const std::vector<AccessObserver *> &observers);

    /**
     * Publish @p trace as the entry for @p key via temp file + atomic
     * rename. Concurrent stores of the same key are safe; last rename
     * wins and every intermediate state is a complete entry.
     */
    void store(const TraceKey &key, const Trace &trace);

    /** @return the entry path @p key maps to (exists or not). */
    std::string pathFor(const TraceKey &key) const;

    const std::string &dir() const { return dir_; }

    Counters counters() const;

    /** @return a `hard.stats.v1` document with one "traceCache" group
     * (hits/misses/stores/evictions/collisions + hitRate). */
    Json statsJson() const;

  private:
    void sweepOrphans(std::uint64_t ttlSeconds);

    std::string dir_;
    mutable std::mutex mu_;
    Counters counters_;
    std::function<void()> storeCrashHook_;
};

} // namespace hard

#endif // HARD_TRACE_TRACE_CACHE_HH
