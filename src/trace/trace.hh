/**
 * @file
 * Binary trace format for post-mortem race analysis.
 *
 * §6 of the paper classifies race detectors into dynamic, post-mortem,
 * static and model-checking families. This module adds the post-mortem
 * mode to our system: a TraceRecorder observes a simulated run and
 * writes every memory/synchronization event to a compact binary file;
 * a TraceReplayer later re-drives any RaceDetector from the file, with
 * no simulator in the loop. Because detectors are deterministic
 * functions of the event stream, offline analysis produces *identical*
 * reports to online detection (asserted by tests/test_trace.cc).
 *
 * File layout (little-endian, fixed-width):
 *   header:  magic "HARDTRC1" (8 bytes)
 *            u32 version (=1)
 *            u32 site count, then per site: u32 length + bytes
 *            u64 event count
 *   events:  24-byte records (see TraceEvent::Packed)
 */

#ifndef HARD_TRACE_TRACE_HH
#define HARD_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/site.hh"
#include "sim/observer.hh"

namespace hard
{

/** Event kinds stored in a trace. */
enum class TraceKind : std::uint8_t
{
    Read = 0,
    Write = 1,
    LockAcquire = 2,
    LockRelease = 3,
    Barrier = 4,
    SemaPost = 5,
    SemaWait = 6,
    ThreadEnd = 7,
    LineEvicted = 8,
};

/** @return printable name of @p k. */
const char *traceKindName(TraceKind k);

/** One decoded trace event. */
struct TraceEvent
{
    TraceKind kind = TraceKind::Read;
    ThreadId tid = invalidThread;
    Addr addr = 0;
    unsigned size = 0;
    SiteId site = invalidSite;
    Cycle at = 0;
    /** Memory events: coherence state after the access. */
    CState stateAfter = CState::Invalid;
    /** Memory events: L1 sharers after the access. */
    unsigned sharers = 0;
    /** Barrier events: episode ordinal. */
    unsigned episode = 0;
    /** Barrier events: participant count. */
    unsigned participants = 0;

    /** On-disk representation (24 bytes). */
    struct Packed
    {
        std::uint8_t kind;
        std::uint8_t size;
        std::uint8_t tid;
        /** Memory: (sharers << 2) | stateAfter. Barrier: participants. */
        std::uint8_t aux;
        /** Memory/sync: site. Barrier: episode. */
        std::uint32_t site;
        std::uint64_t addr;
        std::uint64_t at;
    };
    static_assert(sizeof(Packed) == 24, "trace record must be 24 bytes");

    /** Encode to the on-disk form. */
    Packed pack() const;
    /** Decode from the on-disk form. */
    static TraceEvent unpack(const Packed &p);
};

/** In-memory trace: site names plus the event sequence. */
struct Trace
{
    std::vector<std::string> siteNames;
    std::vector<TraceEvent> events;

    /** @return the number of distinct threads seen in the trace. */
    unsigned threadCount() const;
};

/**
 * Write @p trace to @p path; fatal() on I/O errors.
 */
void writeTrace(const std::string &path, const Trace &trace);

/**
 * Read a trace from @p path; fatal() on I/O or format errors.
 */
Trace readTrace(const std::string &path);

} // namespace hard

#endif // HARD_TRACE_TRACE_HH
