/**
 * @file
 * Binary trace format for post-mortem race analysis.
 *
 * §6 of the paper classifies race detectors into dynamic, post-mortem,
 * static and model-checking families. This module adds the post-mortem
 * mode to our system: a TraceRecorder observes a simulated run and
 * writes every memory/synchronization event to a compact binary file;
 * a TraceReplayer later re-drives any RaceDetector from the file, with
 * no simulator in the loop. Because detectors are deterministic
 * functions of the event stream, offline analysis produces *identical*
 * reports to online detection (asserted by tests/test_trace.cc).
 *
 * File layout (little-endian, fixed-width):
 *   header:  magic "HARDTRC1" (8 bytes)
 *            u32 version (=1)
 *            u32 site count, then per site: u32 length + bytes
 *            u64 event count
 *   events:  24-byte records (see TraceEvent::Packed)
 */

#ifndef HARD_TRACE_TRACE_HH
#define HARD_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/site.hh"
#include "sim/observer.hh"

namespace hard
{

/** Event kinds stored in a trace. */
enum class TraceKind : std::uint8_t
{
    Read = 0,
    Write = 1,
    LockAcquire = 2,
    LockRelease = 3,
    Barrier = 4,
    SemaPost = 5,
    SemaWait = 6,
    ThreadEnd = 7,
    LineEvicted = 8,
    RwRdAcquire = 9,
    RwRdRelease = 10,
    RwWrAcquire = 11,
    RwWrRelease = 12,
    CondSignal = 13,
    CondBroadcast = 14,
    CondWait = 15,
    AtomicStore = 16,
    /** Highest valid kind (bounds-checked on decode). */
    AtomicLoad = 17,
};

/** @return printable name of @p k. */
const char *traceKindName(TraceKind k);

/** One decoded trace event. */
struct TraceEvent
{
    TraceKind kind = TraceKind::Read;
    ThreadId tid = invalidThread;
    Addr addr = 0;
    unsigned size = 0;
    SiteId site = invalidSite;
    Cycle at = 0;
    /** Memory events: coherence state after the access. */
    CState stateAfter = CState::Invalid;
    /** Memory events: L1 sharers after the access. */
    unsigned sharers = 0;
    /** Barrier events: episode ordinal. */
    unsigned episode = 0;
    /** Barrier events: participant count. */
    unsigned participants = 0;

    /** On-disk representation (24 bytes). */
    struct Packed
    {
        std::uint8_t kind;
        std::uint8_t size;
        std::uint8_t tid;
        /** Memory: (sharers << 2) | stateAfter. Barrier: participants. */
        std::uint8_t aux;
        /** Memory/sync: site. Barrier: episode. */
        std::uint32_t site;
        std::uint64_t addr;
        std::uint64_t at;
    };
    static_assert(sizeof(Packed) == 24, "trace record must be 24 bytes");

    /** Encode to the on-disk form. */
    Packed pack() const;
    /** Decode from the on-disk form. */
    static TraceEvent unpack(const Packed &p);
};

/** In-memory trace: site names plus the event sequence. */
struct Trace
{
    std::vector<std::string> siteNames;
    std::vector<TraceEvent> events;

    /** @return the number of distinct threads seen in the trace. */
    unsigned threadCount() const;
};

/** @return the current on-disk trace format version (header field). */
std::uint32_t traceFormatVersion();

/** @return @p trace serialized into the exact on-disk byte layout. */
std::string serializeTrace(const Trace &trace);

/**
 * Fully validated view over a serialized trace whose event records are
 * still in their packed on-disk form. The warm cache path replays
 * straight from this view (trace/replayer.hh, replayPacked) instead of
 * materializing a vector of ~2x-larger TraceEvents it would read once
 * and throw away.
 *
 * @p records aliases the bytes handed to openPackedTrace(); the view
 * is valid only while those bytes are.
 */
struct PackedTraceView
{
    std::vector<std::string> siteNames;
    /** nevents consecutive TraceEvent::Packed records. */
    const char *records = nullptr;
    std::uint64_t nevents = 0;
};

/**
 * Validate a serialized trace and expose its packed event stream
 * without decoding it.
 *
 * Every structural defect — bad magic, unsupported version, truncation
 * anywhere, corrupt event kinds, trailing garbage past the declared
 * event count — is reported through @p err instead of fatal(), so
 * callers holding untrusted bytes (the trace cache) can recover. On
 * success the whole stream is verified: consumers may decode the
 * records without further checks.
 *
 * @param out Filled only on success; aliases @p bytes.
 * @param err Human-readable failure description (set on failure).
 * @param version_out When non-null, receives the header's version
 * field even on version-mismatch failures (so callers can distinguish
 * "stale format" from "corrupt").
 * @return true on success.
 */
bool openPackedTrace(std::string_view bytes, PackedTraceView *out,
                     std::string *err,
                     std::uint32_t *version_out = nullptr);

/**
 * Decode a serialized trace without terminating on malformed input;
 * same validation and error contract as openPackedTrace(), with the
 * events materialized into @p out.
 */
bool deserializeTrace(std::string_view bytes, Trace *out,
                      std::string *err,
                      std::uint32_t *version_out = nullptr);

/**
 * Write @p trace to @p path; fatal() on I/O errors.
 */
void writeTrace(const std::string &path, const Trace &trace);

/**
 * Read a trace from @p path; fatal() on I/O or format errors.
 */
Trace readTrace(const std::string &path);

} // namespace hard

#endif // HARD_TRACE_TRACE_HH
