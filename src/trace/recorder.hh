/**
 * @file
 * TraceRecorder: an AccessObserver that captures a simulated run into
 * an in-memory Trace (write it out with writeTrace()).
 */

#ifndef HARD_TRACE_RECORDER_HH
#define HARD_TRACE_RECORDER_HH

#include "sim/program.hh"
#include "trace/trace.hh"

namespace hard
{

/** Records every observable event of a run. */
class TraceRecorder : public AccessObserver
{
  public:
    /**
     * @param prog The program being recorded (source of site names;
     * must outlive the recorder).
     */
    explicit TraceRecorder(const Program &prog) : prog_(&prog) {}

    void
    onRead(const MemEvent &ev) override
    {
        record(TraceKind::Read, ev);
    }

    void
    onWrite(const MemEvent &ev) override
    {
        record(TraceKind::Write, ev);
    }

    void
    onLockAcquire(const SyncEvent &ev) override
    {
        recordSync(TraceKind::LockAcquire, ev);
    }

    void
    onLockRelease(const SyncEvent &ev) override
    {
        recordSync(TraceKind::LockRelease, ev);
    }

    void
    onSemaPost(const SyncEvent &ev) override
    {
        recordSync(TraceKind::SemaPost, ev);
    }

    void
    onSemaWait(const SyncEvent &ev) override
    {
        recordSync(TraceKind::SemaWait, ev);
    }

    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        recordSync(writer ? TraceKind::RwWrAcquire
                          : TraceKind::RwRdAcquire,
                   ev);
    }

    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        recordSync(writer ? TraceKind::RwWrRelease
                          : TraceKind::RwRdRelease,
                   ev);
    }

    void
    onCondSignal(const SyncEvent &ev) override
    {
        recordSync(TraceKind::CondSignal, ev);
    }

    void
    onCondBroadcast(const SyncEvent &ev) override
    {
        recordSync(TraceKind::CondBroadcast, ev);
    }

    void
    onCondWait(const SyncEvent &ev) override
    {
        recordSync(TraceKind::CondWait, ev);
    }

    void
    onAtomicStore(const SyncEvent &ev) override
    {
        recordSync(TraceKind::AtomicStore, ev);
    }

    void
    onAtomicLoad(const SyncEvent &ev) override
    {
        recordSync(TraceKind::AtomicLoad, ev);
    }

    void
    onBarrier(const BarrierEvent &ev) override
    {
        TraceEvent te;
        te.kind = TraceKind::Barrier;
        te.addr = ev.barrier;
        te.at = ev.at;
        te.episode = ev.episode;
        te.participants = ev.participants;
        trace_.events.push_back(te);
    }

    void
    onLineEvicted(Addr line_addr, Cycle at) override
    {
        TraceEvent te;
        te.kind = TraceKind::LineEvicted;
        te.addr = line_addr;
        te.at = at;
        trace_.events.push_back(te);
    }

    void
    onThreadEnd(ThreadId tid, Cycle at) override
    {
        TraceEvent te;
        te.kind = TraceKind::ThreadEnd;
        te.tid = tid;
        te.at = at;
        trace_.events.push_back(te);
    }

    /** Finish recording and take the trace (site table filled in). */
    Trace
    take()
    {
        trace_.siteNames.clear();
        for (SiteId s = 0; s < prog_->sites.size(); ++s)
            trace_.siteNames.push_back(
                prog_->sites.name(static_cast<SiteId>(s)));
        return std::move(trace_);
    }

  private:
    void
    record(TraceKind kind, const MemEvent &ev)
    {
        TraceEvent te;
        te.kind = kind;
        te.tid = ev.tid;
        te.addr = ev.addr;
        te.size = ev.size;
        te.site = ev.site;
        te.at = ev.at;
        te.stateAfter = ev.outcome.stateAfter;
        te.sharers = ev.outcome.sharers;
        trace_.events.push_back(te);
    }

    void
    recordSync(TraceKind kind, const SyncEvent &ev)
    {
        TraceEvent te;
        te.kind = kind;
        te.tid = ev.tid;
        te.addr = ev.lock;
        te.site = ev.site;
        te.at = ev.at;
        trace_.events.push_back(te);
    }

    const Program *prog_;
    Trace trace_;
};

} // namespace hard

#endif // HARD_TRACE_RECORDER_HH
