#include "trace/trace_cache.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "telemetry/profile.hh"
#include "telemetry/stat_registry.hh"
#include "trace/replayer.hh"

namespace hard
{

namespace
{

constexpr char kCacheMagic[8] = {'H', 'A', 'R', 'D', 'T', 'C', 'C', '1'};
constexpr std::uint32_t kContainerVersion = 2;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(const char *data, std::size_t n, std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Payload checksum: FNV-1a over eight interleaved lanes (byte i feeds
 * lane i % 8), lane states folded with a final FNV pass. The serial
 * FNV multiply chain caps at ~1 byte/cycle; eight independent chains
 * pipeline, which matters because every warm hit checksums the whole
 * multi-megabyte payload. Container v2 (v1 used single-lane FNV; old
 * entries fail the version gate and are evicted as stale, then
 * re-recorded).
 */
std::uint64_t
laneChecksum(const char *data, std::size_t n)
{
    std::uint64_t lane[8];
    for (std::uint64_t j = 0; j < 8; ++j)
        lane[j] = kFnvOffset ^ j;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        for (std::size_t j = 0; j < 8; ++j) {
            lane[j] ^= static_cast<unsigned char>(data[i + j]);
            lane[j] *= kFnvPrime;
        }
    for (; i < n; ++i) {
        lane[i % 8] ^= static_cast<unsigned char>(data[i]);
        lane[i % 8] *= kFnvPrime;
    }
    std::uint64_t h = kFnvOffset ^ static_cast<std::uint64_t>(n);
    for (std::size_t j = 0; j < 8; ++j) {
        h ^= lane[j];
        h *= kFnvPrime;
    }
    return h;
}

/** Why a cache load produced no trace. */
enum class LoadFail
{
    Corrupt,
    Stale,
    Collision,
};

} // namespace

TraceKey &
TraceKey::add(const std::string &field, const std::string &value)
{
    canon_ += field;
    canon_ += '=';
    canon_ += value;
    canon_ += ';';
    return *this;
}

TraceKey &
TraceKey::add(const std::string &field, std::uint64_t value)
{
    return add(field, std::to_string(value));
}

TraceKey &
TraceKey::add(const std::string &field, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return add(field, std::string(buf));
}

std::string
TraceKey::digest() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a(canon_.data(), canon_.size())));
    return buf;
}

void
addSimConfigFields(TraceKey &key, const SimConfig &sim)
{
    const MemSysConfig &m = sim.memsys;
    key.add("cores", static_cast<std::uint64_t>(m.numCores))
        .add("protocol",
             m.protocol == CoherenceProtocol::MESI ? "MESI" : "MSI")
        .add("l1.size", m.l1.sizeBytes)
        .add("l1.assoc", static_cast<std::uint64_t>(m.l1.assoc))
        .add("l1.line", static_cast<std::uint64_t>(m.l1.lineBytes))
        .add("l1.lat", m.l1.hitLatency)
        .add("l2.size", m.l2.sizeBytes)
        .add("l2.assoc", static_cast<std::uint64_t>(m.l2.assoc))
        .add("l2.line", static_cast<std::uint64_t>(m.l2.lineBytes))
        .add("l2.lat", m.l2.hitLatency)
        .add("memLat", m.memLatency)
        .add("bus.addr", m.bus.addressCycles)
        .add("bus.width", static_cast<std::uint64_t>(m.bus.widthBytes))
        .add("bus.line", static_cast<std::uint64_t>(m.bus.lineBytes))
        .add("bus.meta", m.bus.metaPayloadCycles)
        .add("spinPoll", sim.spinPollInterval)
        .add("barrierRelease", sim.barrierReleaseCycles)
        .add("maxCycles", sim.maxCycles)
        .add("watchdog", sim.watchdogCycles)
        .add("quantum", sim.quantumCycles)
        .add("ctxSwitch", sim.contextSwitchCycles);
}

TraceKey
makeRunKey(const std::string &workload, const WorkloadParams &wp,
           const SimConfig &sim, std::int64_t inject_seed)
{
    TraceKey key;
    key.add("traceVersion",
            static_cast<std::uint64_t>(traceFormatVersion()))
        .add("workload", workload)
        .add("threads", static_cast<std::uint64_t>(wp.numThreads))
        .add("wseed", wp.seed)
        .add("scale", wp.scale)
        .add("inject",
             inject_seed < 0
                 ? std::string("none")
                 : std::to_string(static_cast<std::uint64_t>(inject_seed)));
    // Server emission rev 2: scale-parameterized footprint + open-loop
    // arrivals. Distinguishes cached traces recorded by pre-rev
    // binaries; every other workload's keys are unchanged.
    if (workload == "server")
        key.add("wlrev", std::uint64_t{2});
    // Open-loop arrival parameters change the emitted Program, so they
    // enter the key — but only when the mode is on, keeping every
    // pre-existing key byte-identical.
    if (wp.openLoop) {
        key.add("openLoop", std::uint64_t{1})
            .add("arrivalGap", wp.arrivalMeanGap)
            .add("window", wp.openLoopWindow)
            .add("churn", wp.churnPeriod);
    }
    addSimConfigFields(key, sim);
    return key;
}

TraceCache::TraceCache(const std::string &dir,
                       std::uint64_t orphanTtlSeconds)
    : dir_(dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    hard_fatal_if(ec && !std::filesystem::is_directory(dir_),
                  "trace-cache: cannot create directory '%s': %s",
                  dir_.c_str(), ec.message().c_str());
    sweepOrphans(orphanTtlSeconds);
}

void
TraceCache::sweepOrphans(std::uint64_t ttlSeconds)
{
    const auto now = std::filesystem::file_time_type::clock::now();
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec), end;
    if (ec)
        return;
    std::uint64_t swept = 0;
    for (; it != end; it.increment(ec)) {
        if (ec)
            break;
        const std::filesystem::path &p = it->path();
        if (p.filename().string().rfind(".tmp.", 0) != 0)
            continue;
        if (ttlSeconds != 0) {
            std::error_code tec;
            const auto mtime = std::filesystem::last_write_time(p, tec);
            if (tec)
                continue; // likely renamed/removed under us: not ours
            const auto age =
                std::chrono::duration_cast<std::chrono::seconds>(
                    now - mtime)
                    .count();
            if (age < 0 ||
                static_cast<std::uint64_t>(age) < ttlSeconds)
                continue; // young enough to be a live writer's
        }
        std::error_code rec;
        if (std::filesystem::remove(p, rec) && !rec)
            ++swept;
    }
    if (swept != 0) {
        std::lock_guard<std::mutex> lock(mu_);
        counters_.evictedOrphan += swept;
    }
}

void
TraceCache::setStoreCrashHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(mu_);
    storeCrashHook_ = std::move(hook);
}

std::string
TraceCache::pathFor(const TraceKey &key) const
{
    return dir_ + "/" + key.digest() + ".tcache";
}

namespace
{

/**
 * A cache entry's bytes, memory-mapped read-only. Entries run to tens
 * of megabytes; mapping instead of reading means the container is
 * consumed straight out of the page cache with no copy, which is most
 * of the point on the warm path. Falls back to a plain sized read
 * when mmap is unavailable (e.g. an empty or special file).
 */
class MappedEntry
{
  public:
    explicit MappedEntry(const std::string &path)
    {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return;
        exists_ = true;
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            failed_ = true;
            return;
        }
        len_ = static_cast<std::size_t>(st.st_size);
        if (len_ > 0) {
            map_ = ::mmap(nullptr, len_, PROT_READ, MAP_PRIVATE, fd, 0);
            if (map_ == MAP_FAILED) {
                map_ = nullptr;
                std::ifstream in(path, std::ios::binary);
                fallback_.resize(len_);
                if (!in.read(fallback_.data(),
                             static_cast<std::streamsize>(len_)))
                    failed_ = true;
            }
        }
        ::close(fd);
    }

    ~MappedEntry()
    {
        if (map_ != nullptr)
            ::munmap(map_, len_);
    }

    MappedEntry(const MappedEntry &) = delete;
    MappedEntry &operator=(const MappedEntry &) = delete;

    /** @return whether the entry file exists at all. */
    bool exists() const { return exists_; }

    /** @return whether an existing entry could not be read. */
    bool readFailed() const { return failed_; }

    std::string_view bytes() const
    {
        if (map_ != nullptr)
            return {static_cast<const char *>(map_), len_};
        return {fallback_.data(), fallback_.size()};
    }

  private:
    void *map_ = nullptr;
    std::size_t len_ = 0;
    std::string fallback_;
    bool exists_ = false;
    bool failed_ = false;
};

/**
 * Validate a container's envelope — magic, versions, embedded key,
 * lengths, checksum — and expose the trace payload it wraps. On
 * success fill @p payload_out and return nullopt; on failure return
 * the reason so the caller bumps the right counter.
 */
std::optional<LoadFail>
parseEnvelope(std::string_view bytes, const TraceKey &key,
              std::string_view *payload_out)
{
    std::size_t pos = 0;
    auto raw = [&](void *p, std::size_t n) {
        if (bytes.size() - pos < n)
            return false;
        std::memcpy(p, bytes.data() + pos, n);
        pos += n;
        return true;
    };

    char magic[8];
    if (!raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kCacheMagic, sizeof(kCacheMagic)) != 0)
        return LoadFail::Corrupt;

    std::uint32_t container_version = 0, trace_version = 0;
    if (!raw(&container_version, sizeof(container_version)) ||
        !raw(&trace_version, sizeof(trace_version)))
        return LoadFail::Corrupt;
    if (container_version != kContainerVersion)
        return LoadFail::Stale;
    if (trace_version != traceFormatVersion())
        return LoadFail::Stale;

    std::uint64_t canon_len = 0;
    if (!raw(&canon_len, sizeof(canon_len)) ||
        bytes.size() - pos < canon_len)
        return LoadFail::Corrupt;
    const bool canon_matches =
        canon_len == key.canonical().size() &&
        std::memcmp(bytes.data() + pos, key.canonical().data(),
                    canon_len) == 0;
    pos += canon_len;

    std::uint64_t payload_len = 0;
    if (!raw(&payload_len, sizeof(payload_len)) ||
        bytes.size() - pos < payload_len)
        return LoadFail::Corrupt;
    const char *payload = bytes.data() + pos;
    pos += payload_len;

    std::uint64_t checksum = 0;
    if (!raw(&checksum, sizeof(checksum)) || pos != bytes.size())
        return LoadFail::Corrupt;
    if (laneChecksum(payload, payload_len) != checksum)
        return LoadFail::Corrupt;
    // Checksum proves the entry is intact, so a key mismatch really is
    // a digest collision, not damage.
    if (!canon_matches)
        return LoadFail::Collision;

    *payload_out = std::string_view(payload, payload_len);
    return std::nullopt;
}

/** Classify a payload decode failure: a recognizable-but-different
 * format version is stale; anything else is corrupt. */
LoadFail
payloadFail(std::uint32_t payload_version)
{
    return payload_version != 0 &&
            payload_version != traceFormatVersion()
        ? LoadFail::Stale
        : LoadFail::Corrupt;
}

void
countFailedLoad(TraceCache::Counters &c, LoadFail why)
{
    ++c.misses;
    switch (why) {
      case LoadFail::Stale:
        ++c.evictedStale;
        break;
      case LoadFail::Collision:
        ++c.collisions;
        break;
      default:
        ++c.evictedCorrupt;
        break;
    }
}

} // namespace

std::optional<Trace>
TraceCache::lookup(const TraceKey &key)
{
    ScopedPhase phase("traceCache.load");
    const std::string path = pathFor(key);
    MappedEntry entry(path);
    if (!entry.exists()) {
        profileCount("traceCache.misses", 1);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.misses;
        return std::nullopt;
    }
    profileCount("traceCache.bytesRead", entry.bytes().size());

    std::optional<LoadFail> why;
    Trace trace;
    if (entry.readFailed()) {
        why = LoadFail::Corrupt;
    } else {
        std::string_view payload;
        why = parseEnvelope(entry.bytes(), key, &payload);
        if (!why) {
            std::string err;
            std::uint32_t payload_version = 0;
            if (!deserializeTrace(payload, &trace, &err,
                                  &payload_version))
                why = payloadFail(payload_version);
        }
    }
    if (!why) {
        profileCount("traceCache.hits", 1);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.hits;
        return trace;
    }
    profileCount("traceCache.misses", 1);

    // Unreadable or wrong entry: evict so the slot is re-recorded
    // rather than re-parsed (and re-failed) forever. A colliding entry
    // is intact but belongs to a different key; our store() will
    // overwrite it, which the eviction just makes explicit.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(mu_);
    countFailedLoad(counters_, *why);
    return std::nullopt;
}

std::optional<std::size_t>
TraceCache::replayCached(const TraceKey &key,
                         const std::vector<AccessObserver *> &observers)
{
    // Entry mapping + validation is attributed to traceCache.load; the
    // streamed dispatch that follows belongs to the caller's replay
    // phase, so the two never double-count.
    std::optional<ScopedPhase> load_phase;
    load_phase.emplace("traceCache.load");
    const std::string path = pathFor(key);
    MappedEntry entry(path);
    if (!entry.exists()) {
        profileCount("traceCache.misses", 1);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.misses;
        return std::nullopt;
    }
    profileCount("traceCache.bytesRead", entry.bytes().size());

    std::optional<LoadFail> why;
    PackedTraceView view;
    if (entry.readFailed()) {
        why = LoadFail::Corrupt;
    } else {
        std::string_view payload;
        why = parseEnvelope(entry.bytes(), key, &payload);
        if (!why) {
            std::string err;
            std::uint32_t payload_version = 0;
            if (!openPackedTrace(payload, &view, &err,
                                 &payload_version))
                why = payloadFail(payload_version);
        }
    }
    if (!why) {
        load_phase.reset();
        // The entry is fully validated; stream it into the detectors
        // straight from the mapping. Identical dispatch to
        // replayTrace(lookup(key)), minus the event-vector detour.
        const std::size_t n = replayPacked(view, observers);
        profileCount("traceCache.hits", 1);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.hits;
        return n;
    }
    profileCount("traceCache.misses", 1);

    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(mu_);
    countFailedLoad(counters_, *why);
    return std::nullopt;
}

void
TraceCache::store(const TraceKey &key, const Trace &trace)
{
    ScopedPhase phase("traceCache.store");
    const std::string payload = serializeTrace(trace);

    std::string bytes;
    auto raw = [&](const void *p, std::size_t n) {
        bytes.append(static_cast<const char *>(p), n);
    };
    raw(kCacheMagic, sizeof(kCacheMagic));
    raw(&kContainerVersion, sizeof(kContainerVersion));
    std::uint32_t trace_version = traceFormatVersion();
    raw(&trace_version, sizeof(trace_version));
    std::uint64_t canon_len = key.canonical().size();
    raw(&canon_len, sizeof(canon_len));
    raw(key.canonical().data(), canon_len);
    std::uint64_t payload_len = payload.size();
    raw(&payload_len, sizeof(payload_len));
    raw(payload.data(), payload_len);
    std::uint64_t checksum = laneChecksum(payload.data(), payload.size());
    raw(&checksum, sizeof(checksum));

    // Private temp name (pid + process-wide sequence) so concurrent
    // writers never share a temp file; rename() is atomic within the
    // directory, so readers only ever see complete entries.
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp = dir_ + "/.tmp." + key.digest() + "." +
        std::to_string(static_cast<std::uint64_t>(::getpid())) + "." +
        std::to_string(seq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        hard_fatal_if(!out, "trace-cache: cannot open '%s' for writing",
                      tmp.c_str());
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        hard_fatal_if(!out, "trace-cache: write to '%s' failed",
                      tmp.c_str());
    }
    {
        // Crash-injection window: the temp file is complete on disk
        // but not yet published. A SIGKILL here orphans it — exactly
        // what the open-time sweep must clean up.
        std::function<void()> hook;
        {
            std::lock_guard<std::mutex> lock(mu_);
            hook = storeCrashHook_;
        }
        if (hook)
            hook();
    }
    std::error_code ec;
    std::filesystem::rename(tmp, pathFor(key), ec);
    if (ec) {
        std::filesystem::remove(tmp);
        fatal("trace-cache: publish of '%s' failed: %s",
              pathFor(key).c_str(), ec.message().c_str());
    }
    profileCount("traceCache.bytesWritten", bytes.size());
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.stores;
}

TraceCache::Counters
TraceCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

Json
TraceCache::statsJson() const
{
    const Counters c = counters();
    StatGroup group("traceCache");
    Counter &hits = group.counter("hits");
    hits.set(c.hits);
    Counter &misses = group.counter("misses");
    misses.set(c.misses);
    group.counter("stores").set(c.stores);
    group.counter("evictedCorrupt").set(c.evictedCorrupt);
    group.counter("evictedStale").set(c.evictedStale);
    group.counter("collisions").set(c.collisions);
    group.counter("evictedOrphan").set(c.evictedOrphan);
    group.formula("hitRate", [&hits, &misses] {
        return Formula::ratio(hits.value(),
                              hits.value() + misses.value());
    });

    StatRegistry registry;
    registry.add(group);
    return registry.toJson();
}

} // namespace hard
