#include "trace/replayer.hh"

#include <cstring>

#include "common/logging.hh"

namespace hard
{

namespace
{

/** Dispatch one decoded event exactly as the live simulation would. */
inline void
dispatchEvent(const TraceEvent &te,
              const std::vector<AccessObserver *> &observers)
{
    switch (te.kind) {
      case TraceKind::Read:
      case TraceKind::Write: {
        MemEvent ev;
        ev.tid = te.tid;
        ev.core = te.tid; // threads are core-bound in recordings
        ev.addr = te.addr;
        ev.size = te.size;
        ev.write = te.kind == TraceKind::Write;
        ev.site = te.site;
        ev.at = te.at;
        ev.outcome.stateAfter = te.stateAfter;
        ev.outcome.sharers = te.sharers;
        for (AccessObserver *obs : observers) {
            if (ev.write)
                obs->onWrite(ev);
            else
                obs->onRead(ev);
        }
        break;
      }
      case TraceKind::LockAcquire:
      case TraceKind::LockRelease:
      case TraceKind::SemaPost:
      case TraceKind::SemaWait:
      case TraceKind::RwRdAcquire:
      case TraceKind::RwRdRelease:
      case TraceKind::RwWrAcquire:
      case TraceKind::RwWrRelease:
      case TraceKind::CondSignal:
      case TraceKind::CondBroadcast:
      case TraceKind::CondWait:
      case TraceKind::AtomicStore:
      case TraceKind::AtomicLoad: {
        SyncEvent ev{te.tid, te.tid, te.addr, te.site, te.at};
        for (AccessObserver *obs : observers) {
            switch (te.kind) {
              case TraceKind::LockAcquire:
                obs->onLockAcquire(ev);
                break;
              case TraceKind::LockRelease:
                obs->onLockRelease(ev);
                break;
              case TraceKind::SemaPost:
                obs->onSemaPost(ev);
                break;
              case TraceKind::RwRdAcquire:
                obs->onRwLockAcquire(ev, false);
                break;
              case TraceKind::RwRdRelease:
                obs->onRwLockRelease(ev, false);
                break;
              case TraceKind::RwWrAcquire:
                obs->onRwLockAcquire(ev, true);
                break;
              case TraceKind::RwWrRelease:
                obs->onRwLockRelease(ev, true);
                break;
              case TraceKind::CondSignal:
                obs->onCondSignal(ev);
                break;
              case TraceKind::CondBroadcast:
                obs->onCondBroadcast(ev);
                break;
              case TraceKind::CondWait:
                obs->onCondWait(ev);
                break;
              case TraceKind::AtomicStore:
                obs->onAtomicStore(ev);
                break;
              case TraceKind::AtomicLoad:
                obs->onAtomicLoad(ev);
                break;
              default:
                obs->onSemaWait(ev);
                break;
            }
        }
        break;
      }
      case TraceKind::Barrier: {
        BarrierEvent ev{te.addr, te.episode, te.at,
                        te.participants};
        for (AccessObserver *obs : observers)
            obs->onBarrier(ev);
        break;
      }
      case TraceKind::ThreadEnd:
        for (AccessObserver *obs : observers)
            obs->onThreadEnd(te.tid, te.at);
        break;
      case TraceKind::LineEvicted:
        for (AccessObserver *obs : observers)
            obs->onLineEvicted(te.addr, te.at);
        break;
    }
}

} // namespace

std::size_t
replayTrace(const Trace &trace,
            const std::vector<AccessObserver *> &observers)
{
    for (const TraceEvent &te : trace.events)
        dispatchEvent(te, observers);
    return trace.events.size();
}

std::size_t
replayPacked(const PackedTraceView &view,
             const std::vector<AccessObserver *> &observers)
{
    // Records may sit unaligned after the variable-length site table;
    // the per-record memcpy keeps the loads well-defined.
    for (std::uint64_t i = 0; i < view.nevents; ++i) {
        TraceEvent::Packed p;
        std::memcpy(&p, view.records + i * sizeof(p), sizeof(p));
        dispatchEvent(TraceEvent::unpack(p), observers);
    }
    return view.nevents;
}

} // namespace hard
