#include "trace/replayer.hh"

#include "common/logging.hh"

namespace hard
{

std::size_t
replayTrace(const Trace &trace,
            const std::vector<AccessObserver *> &observers)
{
    for (const TraceEvent &te : trace.events) {
        switch (te.kind) {
          case TraceKind::Read:
          case TraceKind::Write: {
            MemEvent ev;
            ev.tid = te.tid;
            ev.core = te.tid; // threads are core-bound in recordings
            ev.addr = te.addr;
            ev.size = te.size;
            ev.write = te.kind == TraceKind::Write;
            ev.site = te.site;
            ev.at = te.at;
            ev.outcome.stateAfter = te.stateAfter;
            ev.outcome.sharers = te.sharers;
            for (AccessObserver *obs : observers) {
                if (ev.write)
                    obs->onWrite(ev);
                else
                    obs->onRead(ev);
            }
            break;
          }
          case TraceKind::LockAcquire:
          case TraceKind::LockRelease:
          case TraceKind::SemaPost:
          case TraceKind::SemaWait: {
            SyncEvent ev{te.tid, te.tid, te.addr, te.site, te.at};
            for (AccessObserver *obs : observers) {
                switch (te.kind) {
                  case TraceKind::LockAcquire:
                    obs->onLockAcquire(ev);
                    break;
                  case TraceKind::LockRelease:
                    obs->onLockRelease(ev);
                    break;
                  case TraceKind::SemaPost:
                    obs->onSemaPost(ev);
                    break;
                  default:
                    obs->onSemaWait(ev);
                    break;
                }
            }
            break;
          }
          case TraceKind::Barrier: {
            BarrierEvent ev{te.addr, te.episode, te.at,
                            te.participants};
            for (AccessObserver *obs : observers)
                obs->onBarrier(ev);
            break;
          }
          case TraceKind::ThreadEnd:
            for (AccessObserver *obs : observers)
                obs->onThreadEnd(te.tid, te.at);
            break;
          case TraceKind::LineEvicted:
            for (AccessObserver *obs : observers)
                obs->onLineEvicted(te.addr, te.at);
            break;
        }
    }
    return trace.events.size();
}

} // namespace hard
