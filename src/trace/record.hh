/**
 * @file
 * recordRun(): the single cycle-level recording primitive behind fast
 * functional mode.
 *
 * Fast mode's contract is that one cycle-accurate run per (program,
 * config) is recorded once and every consumer — effectiveness units,
 * single-run hardsim, fuzz seeds, the corpus/weaken self-tests —
 * replays that same trace. All of them obtain the recording through
 * this helper so the record path cannot drift between callers.
 * Observers are pure (tests/test_observer_neutrality.cc), so a
 * recorder-only run produces the same interleaving as a run with a
 * detector battery attached; tests/test_fast_mode_identity.cc locks
 * the resulting report identity end to end.
 */

#ifndef HARD_TRACE_RECORD_HH
#define HARD_TRACE_RECORD_HH

#include "sim/program.hh"
#include "sim/sim_config.hh"
#include "trace/trace.hh"

namespace hard
{

/**
 * Simulate @p prog once at cycle level with only a TraceRecorder
 * attached and return the recording.
 *
 * @throws SimError exactly as System::run does (deadlock, cycle
 * budget, workload misbehaviour) — failed runs yield no trace and
 * must never be cached.
 */
Trace recordRun(const Program &prog, const SimConfig &sim);

} // namespace hard

#endif // HARD_TRACE_RECORD_HH
