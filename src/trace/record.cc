#include "trace/record.hh"

#include "sim/system.hh"
#include "trace/recorder.hh"

namespace hard
{

Trace
recordRun(const Program &prog, const SimConfig &sim)
{
    TraceRecorder recorder(prog);
    System sys(sim, prog);
    sys.addObserver(&recorder);
    sys.run();
    return recorder.take();
}

} // namespace hard
