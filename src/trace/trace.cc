#include "trace/trace.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <set>

#include "common/logging.hh"

namespace hard
{

namespace
{
constexpr char kMagic[8] = {'H', 'A', 'R', 'D', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersion = 1;
} // namespace

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Read:
        return "Read";
      case TraceKind::Write:
        return "Write";
      case TraceKind::LockAcquire:
        return "LockAcquire";
      case TraceKind::LockRelease:
        return "LockRelease";
      case TraceKind::Barrier:
        return "Barrier";
      case TraceKind::SemaPost:
        return "SemaPost";
      case TraceKind::SemaWait:
        return "SemaWait";
      case TraceKind::ThreadEnd:
        return "ThreadEnd";
      case TraceKind::LineEvicted:
        return "LineEvicted";
      case TraceKind::RwRdAcquire:
        return "RwRdAcquire";
      case TraceKind::RwRdRelease:
        return "RwRdRelease";
      case TraceKind::RwWrAcquire:
        return "RwWrAcquire";
      case TraceKind::RwWrRelease:
        return "RwWrRelease";
      case TraceKind::CondSignal:
        return "CondSignal";
      case TraceKind::CondBroadcast:
        return "CondBroadcast";
      case TraceKind::CondWait:
        return "CondWait";
      case TraceKind::AtomicStore:
        return "AtomicStore";
      case TraceKind::AtomicLoad:
        return "AtomicLoad";
    }
    return "?";
}

TraceEvent::Packed
TraceEvent::pack() const
{
    Packed p{};
    p.kind = static_cast<std::uint8_t>(kind);
    p.size = static_cast<std::uint8_t>(size);
    p.tid = static_cast<std::uint8_t>(tid & 0xff);
    if (kind == TraceKind::Read || kind == TraceKind::Write) {
        p.aux = static_cast<std::uint8_t>(
            (sharers << 2) | static_cast<unsigned>(stateAfter));
        p.site = site;
    } else if (kind == TraceKind::Barrier) {
        p.aux = static_cast<std::uint8_t>(participants);
        p.site = episode;
    } else {
        p.aux = 0;
        p.site = site;
    }
    p.addr = addr;
    p.at = at;
    return p;
}

TraceEvent
TraceEvent::unpack(const Packed &p)
{
    TraceEvent ev;
    hard_fatal_if(
        p.kind > static_cast<std::uint8_t>(TraceKind::AtomicLoad),
        "trace: corrupt event kind %u", p.kind);
    ev.kind = static_cast<TraceKind>(p.kind);
    ev.size = p.size;
    ev.tid = p.tid == 0xff ? invalidThread : p.tid;
    ev.addr = p.addr;
    ev.at = p.at;
    if (ev.kind == TraceKind::Read || ev.kind == TraceKind::Write) {
        ev.site = p.site;
        ev.sharers = p.aux >> 2;
        ev.stateAfter = static_cast<CState>(p.aux & 0x3);
    } else if (ev.kind == TraceKind::Barrier) {
        ev.episode = p.site;
        ev.participants = p.aux;
    } else {
        ev.site = p.site;
    }
    return ev;
}

unsigned
Trace::threadCount() const
{
    std::set<ThreadId> tids;
    for (const TraceEvent &ev : events)
        if (ev.tid != invalidThread)
            tids.insert(ev.tid);
    return static_cast<unsigned>(tids.size());
}

std::uint32_t
traceFormatVersion()
{
    return kVersion;
}

std::string
serializeTrace(const Trace &trace)
{
    std::string out;
    auto raw = [&](const void *p, std::size_t n) {
        out.append(static_cast<const char *>(p), n);
    };
    raw(kMagic, sizeof(kMagic));
    std::uint32_t version = kVersion;
    raw(&version, sizeof(version));

    std::uint32_t nsites =
        static_cast<std::uint32_t>(trace.siteNames.size());
    raw(&nsites, sizeof(nsites));
    for (const std::string &name : trace.siteNames) {
        std::uint32_t len = static_cast<std::uint32_t>(name.size());
        raw(&len, sizeof(len));
        raw(name.data(), len);
    }

    std::uint64_t nevents = trace.events.size();
    raw(&nevents, sizeof(nevents));
    for (const TraceEvent &ev : trace.events) {
        TraceEvent::Packed p = ev.pack();
        raw(&p, sizeof(p));
    }
    return out;
}

bool
openPackedTrace(std::string_view bytes, PackedTraceView *out,
                std::string *err, std::uint32_t *version_out)
{
    std::size_t pos = 0;
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    auto raw = [&](void *p, std::size_t n) {
        if (bytes.size() - pos < n)
            return false;
        std::memcpy(p, bytes.data() + pos, n);
        pos += n;
        return true;
    };

    char magic[8];
    if (!raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return fail("not a HARD trace");

    std::uint32_t version = 0;
    if (!raw(&version, sizeof(version)))
        return fail("truncated in header");
    if (version_out)
        *version_out = version;
    if (version != kVersion) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "unsupported version %u",
                      version);
        return fail(buf);
    }

    PackedTraceView view;
    std::uint32_t nsites = 0;
    if (!raw(&nsites, sizeof(nsites)))
        return fail("truncated in site table");
    for (std::uint32_t i = 0; i < nsites; ++i) {
        std::uint32_t len = 0;
        if (!raw(&len, sizeof(len)) || len > 4096)
            return fail("corrupt site name length");
        std::string name(len, '\0');
        if (!raw(name.data(), len))
            return fail("truncated in site table");
        view.siteNames.push_back(std::move(name));
    }

    std::uint64_t nevents = 0;
    if (!raw(&nevents, sizeof(nevents)))
        return fail("truncated before events");
    if ((bytes.size() - pos) / sizeof(TraceEvent::Packed) < nevents)
        return fail("truncated at event stream");
    if (bytes.size() - pos != nevents * sizeof(TraceEvent::Packed))
        return fail("trailing bytes past declared event count");
    // Pre-validate every record's kind (the first byte) in one strided
    // scan, so consumers of the view can decode without per-event
    // checks — and so a corrupt entry is rejected before a streaming
    // replay has dispatched half its events into live detectors.
    const char *rec = bytes.data() + pos;
    for (std::uint64_t i = 0; i < nevents; ++i)
        if (static_cast<std::uint8_t>(
                rec[i * sizeof(TraceEvent::Packed)]) >
            static_cast<std::uint8_t>(TraceKind::AtomicLoad))
            return fail("corrupt event kind");
    view.records = rec;
    view.nevents = nevents;
    *out = std::move(view);
    return true;
}

bool
deserializeTrace(std::string_view bytes, Trace *out, std::string *err,
                 std::uint32_t *version_out)
{
    PackedTraceView view;
    if (!openPackedTrace(bytes, &view, err, version_out))
        return false;
    Trace trace;
    trace.siteNames = std::move(view.siteNames);
    // Bulk-decode the fixed-width record array: openPackedTrace()
    // validated the whole stream, so the loop needs no per-event
    // tests. The variable-length site table means records may sit
    // unaligned — the per-record memcpy keeps the 64-bit loads
    // well-defined and compiles to plain unaligned moves.
    trace.events.resize(view.nevents);
    for (std::uint64_t i = 0; i < view.nevents; ++i) {
        TraceEvent::Packed p;
        std::memcpy(&p, view.records + i * sizeof(p), sizeof(p));
        trace.events[i] = TraceEvent::unpack(p);
    }
    *out = std::move(trace);
    return true;
}

void
writeTrace(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    hard_fatal_if(!out, "trace: cannot open '%s' for writing",
                  path.c_str());
    const std::string bytes = serializeTrace(trace);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    hard_fatal_if(!out, "trace: write to '%s' failed", path.c_str());
}

Trace
readTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    hard_fatal_if(!in, "trace: cannot open '%s'", path.c_str());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    hard_fatal_if(in.bad(), "trace: read from '%s' failed", path.c_str());
    Trace trace;
    std::string err;
    hard_fatal_if(!deserializeTrace(bytes, &trace, &err),
                  "trace: '%s': %s", path.c_str(), err.c_str());
    return trace;
}

} // namespace hard
