#include "trace/trace.hh"

#include <cstring>
#include <fstream>
#include <set>

#include "common/logging.hh"

namespace hard
{

namespace
{
constexpr char kMagic[8] = {'H', 'A', 'R', 'D', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersion = 1;
} // namespace

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Read:
        return "Read";
      case TraceKind::Write:
        return "Write";
      case TraceKind::LockAcquire:
        return "LockAcquire";
      case TraceKind::LockRelease:
        return "LockRelease";
      case TraceKind::Barrier:
        return "Barrier";
      case TraceKind::SemaPost:
        return "SemaPost";
      case TraceKind::SemaWait:
        return "SemaWait";
      case TraceKind::ThreadEnd:
        return "ThreadEnd";
      case TraceKind::LineEvicted:
        return "LineEvicted";
    }
    return "?";
}

TraceEvent::Packed
TraceEvent::pack() const
{
    Packed p{};
    p.kind = static_cast<std::uint8_t>(kind);
    p.size = static_cast<std::uint8_t>(size);
    p.tid = static_cast<std::uint8_t>(tid & 0xff);
    if (kind == TraceKind::Read || kind == TraceKind::Write) {
        p.aux = static_cast<std::uint8_t>(
            (sharers << 2) | static_cast<unsigned>(stateAfter));
        p.site = site;
    } else if (kind == TraceKind::Barrier) {
        p.aux = static_cast<std::uint8_t>(participants);
        p.site = episode;
    } else {
        p.aux = 0;
        p.site = site;
    }
    p.addr = addr;
    p.at = at;
    return p;
}

TraceEvent
TraceEvent::unpack(const Packed &p)
{
    TraceEvent ev;
    hard_fatal_if(
        p.kind > static_cast<std::uint8_t>(TraceKind::LineEvicted),
        "trace: corrupt event kind %u", p.kind);
    ev.kind = static_cast<TraceKind>(p.kind);
    ev.size = p.size;
    ev.tid = p.tid == 0xff ? invalidThread : p.tid;
    ev.addr = p.addr;
    ev.at = p.at;
    if (ev.kind == TraceKind::Read || ev.kind == TraceKind::Write) {
        ev.site = p.site;
        ev.sharers = p.aux >> 2;
        ev.stateAfter = static_cast<CState>(p.aux & 0x3);
    } else if (ev.kind == TraceKind::Barrier) {
        ev.episode = p.site;
        ev.participants = p.aux;
    } else {
        ev.site = p.site;
    }
    return ev;
}

unsigned
Trace::threadCount() const
{
    std::set<ThreadId> tids;
    for (const TraceEvent &ev : events)
        if (ev.tid != invalidThread)
            tids.insert(ev.tid);
    return static_cast<unsigned>(tids.size());
}

void
writeTrace(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    hard_fatal_if(!out, "trace: cannot open '%s' for writing",
                  path.c_str());

    out.write(kMagic, sizeof(kMagic));
    std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char *>(&version), sizeof(version));

    std::uint32_t nsites =
        static_cast<std::uint32_t>(trace.siteNames.size());
    out.write(reinterpret_cast<const char *>(&nsites), sizeof(nsites));
    for (const std::string &name : trace.siteNames) {
        std::uint32_t len = static_cast<std::uint32_t>(name.size());
        out.write(reinterpret_cast<const char *>(&len), sizeof(len));
        out.write(name.data(), len);
    }

    std::uint64_t nevents = trace.events.size();
    out.write(reinterpret_cast<const char *>(&nevents), sizeof(nevents));
    for (const TraceEvent &ev : trace.events) {
        TraceEvent::Packed p = ev.pack();
        out.write(reinterpret_cast<const char *>(&p), sizeof(p));
    }
    out.flush();
    hard_fatal_if(!out, "trace: write to '%s' failed", path.c_str());
}

Trace
readTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    hard_fatal_if(!in, "trace: cannot open '%s'", path.c_str());

    char magic[8];
    in.read(magic, sizeof(magic));
    hard_fatal_if(!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
                  "trace: '%s' is not a HARD trace", path.c_str());

    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    hard_fatal_if(!in || version != kVersion,
                  "trace: '%s' has unsupported version %u", path.c_str(),
                  version);

    Trace trace;
    std::uint32_t nsites = 0;
    in.read(reinterpret_cast<char *>(&nsites), sizeof(nsites));
    hard_fatal_if(!in, "trace: '%s' truncated in site table",
                  path.c_str());
    for (std::uint32_t i = 0; i < nsites; ++i) {
        std::uint32_t len = 0;
        in.read(reinterpret_cast<char *>(&len), sizeof(len));
        hard_fatal_if(!in || len > 4096,
                      "trace: '%s' corrupt site name length",
                      path.c_str());
        std::string name(len, '\0');
        in.read(name.data(), len);
        hard_fatal_if(!in, "trace: '%s' truncated in site table",
                      path.c_str());
        trace.siteNames.push_back(std::move(name));
    }

    std::uint64_t nevents = 0;
    in.read(reinterpret_cast<char *>(&nevents), sizeof(nevents));
    hard_fatal_if(!in, "trace: '%s' truncated before events",
                  path.c_str());
    trace.events.reserve(nevents);
    for (std::uint64_t i = 0; i < nevents; ++i) {
        TraceEvent::Packed p;
        in.read(reinterpret_cast<char *>(&p), sizeof(p));
        hard_fatal_if(!in, "trace: '%s' truncated at event %llu of %llu",
                      path.c_str(), static_cast<unsigned long long>(i),
                      static_cast<unsigned long long>(nevents));
        trace.events.push_back(TraceEvent::unpack(p));
    }
    return trace;
}

} // namespace hard
