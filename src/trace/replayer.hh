/**
 * @file
 * TraceReplayer: re-drive RaceDetectors from a recorded trace, with
 * no simulator in the loop (post-mortem analysis).
 */

#ifndef HARD_TRACE_REPLAYER_HH
#define HARD_TRACE_REPLAYER_HH

#include <vector>

#include "detectors/report.hh"
#include "trace/trace.hh"

namespace hard
{

/**
 * Replay @p trace into @p observers, dispatching each event exactly
 * as the live simulation would have.
 *
 * @return the number of events replayed.
 */
std::size_t replayTrace(const Trace &trace,
                        const std::vector<AccessObserver *> &observers);

/**
 * Replay a validated packed event stream (trace.hh, openPackedTrace)
 * into @p observers, decoding each record in place. Dispatch order and
 * content are identical to replayTrace() on the deserialized trace —
 * the warm cache path uses this to skip materializing the event
 * vector entirely.
 *
 * @return the number of events replayed.
 */
std::size_t replayPacked(const PackedTraceView &view,
                         const std::vector<AccessObserver *> &observers);

} // namespace hard

#endif // HARD_TRACE_REPLAYER_HH
