/**
 * @file
 * The operation "ISA" executed by simulated cores.
 *
 * Workloads are Pin-style traces: each thread is a deterministic
 * sequence of memory, compute and synchronization operations. The
 * interleaving is decided by the timing simulation, not by the
 * workload, so one program can be replayed under many configurations.
 */

#ifndef HARD_CPU_OP_HH
#define HARD_CPU_OP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hard
{

/** Kinds of simulated operation. */
enum class OpType : std::uint8_t
{
    /** Data load: addr/size. */
    Read,
    /** Data store: addr/size. */
    Write,
    /** Local computation: addr holds the cycle count. */
    Compute,
    /** Acquire the mutex whose lock word is at addr. */
    Lock,
    /** Release the mutex whose lock word is at addr. */
    Unlock,
    /** Arrive at the global barrier identified by addr. */
    Barrier,
    /**
     * Signal the counting semaphore at addr (hand-crafted / flag-style
     * synchronization: visible to happens-before as an ordering edge,
     * invisible to the lockset algorithm).
     */
    SemaPost,
    /** Block until the counting semaphore at addr is positive. */
    SemaWait,
    /** Acquire the rwlock at addr for shared (reader) access. */
    RwRdLock,
    /** Release a reader hold of the rwlock at addr. */
    RwRdUnlock,
    /** Acquire the rwlock at addr for exclusive (writer) access. */
    RwWrLock,
    /** Release the writer hold of the rwlock at addr. */
    RwWrUnlock,
    /** Signal the condition variable at addr (wake one waiter). */
    CondSignal,
    /** Broadcast the condition variable at addr (wake all waiters). */
    CondBroadcast,
    /**
     * Block on the condition variable at addr until signalled.
     * Modeled as a bare wait (no associated mutex is re-acquired):
     * the ordering edge is signal/broadcast happens-before the
     * waiter's return.
     */
    CondWait,
    /** Word-sized store with release semantics at addr. */
    AtomicStore,
    /** Word-sized load with acquire semantics at addr. */
    AtomicLoad,
    /** Thread termination (implicit at end of stream). */
    End,
};

/** @return printable name of @p t. */
inline const char *
opName(OpType t)
{
    switch (t) {
      case OpType::Read:
        return "Read";
      case OpType::Write:
        return "Write";
      case OpType::Compute:
        return "Compute";
      case OpType::Lock:
        return "Lock";
      case OpType::Unlock:
        return "Unlock";
      case OpType::Barrier:
        return "Barrier";
      case OpType::SemaPost:
        return "SemaPost";
      case OpType::SemaWait:
        return "SemaWait";
      case OpType::RwRdLock:
        return "RwRdLock";
      case OpType::RwRdUnlock:
        return "RwRdUnlock";
      case OpType::RwWrLock:
        return "RwWrLock";
      case OpType::RwWrUnlock:
        return "RwWrUnlock";
      case OpType::CondSignal:
        return "CondSignal";
      case OpType::CondBroadcast:
        return "CondBroadcast";
      case OpType::CondWait:
        return "CondWait";
      case OpType::AtomicStore:
        return "AtomicStore";
      case OpType::AtomicLoad:
        return "AtomicLoad";
      case OpType::End:
        return "End";
    }
    return "?";
}

/** One operation in a thread's stream. */
struct Op
{
    OpType type = OpType::End;
    /** Access size in bytes (Read/Write only). */
    std::uint8_t size = 0;
    /** Static source site for race reporting. */
    SiteId site = invalidSite;
    /**
     * Operand: byte address for Read/Write, lock-word address for
     * Lock/Unlock, barrier identifier for Barrier, and the cycle count
     * for Compute.
     */
    Addr addr = 0;
};

/** Convenience constructors. @{ */
inline Op
opRead(Addr a, std::uint8_t size, SiteId site)
{
    return Op{OpType::Read, size, site, a};
}

inline Op
opWrite(Addr a, std::uint8_t size, SiteId site)
{
    return Op{OpType::Write, size, site, a};
}

inline Op
opCompute(Cycle cycles)
{
    return Op{OpType::Compute, 0, invalidSite, cycles};
}

inline Op
opLock(LockAddr l, SiteId site)
{
    return Op{OpType::Lock, 0, site, l};
}

inline Op
opUnlock(LockAddr l, SiteId site)
{
    return Op{OpType::Unlock, 0, site, l};
}

inline Op
opBarrier(Addr barrier_id, SiteId site)
{
    return Op{OpType::Barrier, 0, site, barrier_id};
}

inline Op
opSemaPost(Addr sema, SiteId site)
{
    return Op{OpType::SemaPost, 0, site, sema};
}

inline Op
opSemaWait(Addr sema, SiteId site)
{
    return Op{OpType::SemaWait, 0, site, sema};
}

inline Op
opRwRdLock(LockAddr l, SiteId site)
{
    return Op{OpType::RwRdLock, 0, site, l};
}

inline Op
opRwRdUnlock(LockAddr l, SiteId site)
{
    return Op{OpType::RwRdUnlock, 0, site, l};
}

inline Op
opRwWrLock(LockAddr l, SiteId site)
{
    return Op{OpType::RwWrLock, 0, site, l};
}

inline Op
opRwWrUnlock(LockAddr l, SiteId site)
{
    return Op{OpType::RwWrUnlock, 0, site, l};
}

inline Op
opCondSignal(Addr cond, SiteId site)
{
    return Op{OpType::CondSignal, 0, site, cond};
}

inline Op
opCondBroadcast(Addr cond, SiteId site)
{
    return Op{OpType::CondBroadcast, 0, site, cond};
}

inline Op
opCondWait(Addr cond, SiteId site)
{
    return Op{OpType::CondWait, 0, site, cond};
}

inline Op
opAtomicStore(Addr a, SiteId site)
{
    return Op{OpType::AtomicStore, 0, site, a};
}

inline Op
opAtomicLoad(Addr a, SiteId site)
{
    return Op{OpType::AtomicLoad, 0, site, a};
}
/** @} */

/** The operation stream of one simulated thread. */
struct ThreadProgram
{
    ThreadId tid = 0;
    std::vector<Op> ops;
};

} // namespace hard

#endif // HARD_CPU_OP_HH
