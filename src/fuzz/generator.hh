/**
 * @file
 * Seeded random synthetic-workload generator for differential fuzzing.
 *
 * Each seed deterministically expands into a well-formed multithreaded
 * Program built through the ordinary workloads/builder API: nested
 * lock/unlock pairs (acquired in a global lock order, so generated
 * programs never deadlock), barrier-separated phases, semaphore
 * hand-offs, shared and private data accesses, and deliberate
 * lock-discipline violations (unlocked shared accesses, accesses under
 * the "wrong" lock) so the detectors under test actually have races to
 * disagree about. The generator honours every builder validation rule
 * (lock balance and nesting, common barrier sequence, line-aligned
 * accesses), so finish() never rejects a generated program.
 *
 * Two invariant-preserving caps matter for the differential oracle:
 *  - thread count never exceeds kMaxThreads (the vector-clock width);
 *  - lock nesting never exceeds maxNest, which defaults to
 *    2^counterBits - 1 = 3 so HARD's per-bit saturating counters stay
 *    exact and Bloom candidate sets only ever *over*-approximate the
 *    exact lock sets (the containment invariant hardfuzz enforces).
 */

#ifndef HARD_FUZZ_GENERATOR_HH
#define HARD_FUZZ_GENERATOR_HH

#include <cstdint>

#include "workloads/builder.hh"

namespace hard
{

/** Shape knobs of the random program generator. */
struct FuzzGenConfig
{
    /** Thread count range (clamped to [2, kMaxThreads]). */
    unsigned minThreads = 2;
    unsigned maxThreads = 4;
    /** Barrier-separated phases per program (range [1, maxPhases]). */
    unsigned maxPhases = 4;
    /** Random operations per thread per phase (range [4, maxOps]). */
    unsigned maxOps = 32;
    /** Distinct locks allocated. */
    unsigned numLocks = 6;
    /** Shared data regions (each lock nominally protects one slice). */
    unsigned numRegions = 4;
    /** Bytes per shared region. */
    unsigned regionBytes = 256;
    /** Bytes of private (single-thread) data per thread. */
    unsigned privateBytes = 128;
    /**
     * Maximum simultaneously held locks. Keep at or below
     * 2^counterBits - 1 (3 for the paper's 2-bit counters) or HARD's
     * Counter Registers saturate and the Bloom-containment invariant
     * no longer holds by design (§3.3).
     */
    unsigned maxNest = 3;

    /** Probability an op block is a locked critical section. */
    double pLocked = 0.55;
    /** Probability a locked access targets a "wrong" region (a
     * lock-discipline violation the detectors should flag). */
    double pWrongRegion = 0.15;
    /** Probability an access op is a write. */
    double pWrite = 0.45;
    /** Probability an unlocked op block touches shared (racy) data
     * rather than private data. */
    double pUnlockedShared = 0.4;
    /** Probability a phase boundary is a barrier (vs nothing). */
    double pBarrier = 0.75;
    /** Probability a phase starts with a semaphore hand-off. */
    double pSema = 0.35;

    /**
     * @name Extended sync grammar (rwlock/condvar/atomic)
     *
     * All default to "off" (zero), and every associated RNG draw,
     * allocation and site interning is gated behind the knob, so
     * default-config programs — and therefore trace-cache keys and
     * recorded corpus traces — are byte-identical to the pre-extension
     * generator.
     * @{
     */
    /** Reader-writer locks allocated (rwlock grammar needs both this
     * and pRwLocked nonzero). */
    unsigned numRwLocks = 0;
    /** Probability an op block is an rwlock critical section. */
    double pRwLocked = 0.0;
    /** Probability an rwlock section is writer-mode (else reader).
     * Reader-mode sections still draw pWrite: a write under only a
     * read hold is a deliberate discipline bug. */
    double pRwWriter = 0.3;
    /** Probability a phase starts with a condvar broadcast hand-off
     * (latched broadcast, so arrival order cannot deadlock). */
    double pCond = 0.0;
    /** Atomic words allocated (atomic grammar needs both this and
     * pAtomic nonzero). */
    unsigned numAtomics = 0;
    /** Probability an op block is an atomic store/load (pure
     * release-acquire sync, no data access). */
    double pAtomic = 0.0;
    /** @} */
};

/**
 * Deterministically generate a well-formed random Program from
 * @p seed. Equal (seed, cfg) pairs yield identical programs.
 */
Program generateFuzzProgram(std::uint64_t seed, const FuzzGenConfig &cfg);

} // namespace hard

#endif // HARD_FUZZ_GENERATOR_HH
