#include "fuzz/runner.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/error.hh"
#include "fuzz/explain_case.hh"
#include "harness/experiment.hh"
#include "harness/run_pool.hh"
#include "sim/system.hh"
#include "telemetry/profile.hh"
#include "trace/record.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"

namespace hard
{

Weaken
parseWeaken(const std::string &name)
{
    if (name.empty() || name == "none")
        return Weaken::None;
    if (name == "hard")
        return Weaken::Hard;
    if (name == "hb")
        return Weaken::Hb;
    if (name == "ideal")
        return Weaken::Ideal;
    if (name == "djit")
        return Weaken::Djit;
    if (name == "racetrack")
        return Weaken::Racetrack;
    throw ConfigError(
        errfmt("unknown --weaken '%s' (hard|hb|ideal|djit|racetrack|"
               "none)",
               name.c_str()));
}

const char *
weakenName(Weaken w)
{
    switch (w) {
      case Weaken::None:
        return "none";
      case Weaken::Hard:
        return "hard";
      case Weaken::Hb:
        return "hb";
      case Weaken::Ideal:
        return "ideal";
      case Weaken::Djit:
        return "djit";
      case Weaken::Racetrack:
        return "racetrack";
    }
    return "?";
}

std::vector<RaceDetector *>
FuzzBattery::detectors() const
{
    return {hard.get(),   ideal.get(), idealFine.get(),
            hybrid.get(),  hb.get(),    fasttrack.get(),
            djit.get(),    racetrack.get()};
}

std::vector<AccessObserver *>
FuzzBattery::sampledTaps() const
{
    std::vector<AccessObserver *> taps;
    if (idealSampledTap)
        taps.push_back(idealSampledTap.get());
    if (hbSampledTap)
        taps.push_back(hbSampledTap.get());
    return taps;
}

std::vector<RaceDetector *>
FuzzBattery::sampledDetectors() const
{
    std::vector<RaceDetector *> dets;
    if (idealSampled)
        dets.push_back(idealSampled.get());
    if (hbSampled)
        dets.push_back(hbSampled.get());
    return dets;
}

FuzzBattery
makeFuzzBattery(const FuzzConfig &cfg)
{
    hard_throw_if(cfg.granularity < 4 || cfg.granularity > 32 ||
                      (32 % cfg.granularity) != 0,
                  ConfigError, "fuzz: bad granularity %u (want 4..32 "
                  "dividing the 32B line)",
                  cfg.granularity);

    HardConfig hc;
    hc.granularityBytes = cfg.granularity;
    hc.bloomBits = cfg.bloomBits;
    // Unbounded metadata: the containment relations only hold when no
    // detector silently forgets evidence to capacity pressure.
    hc.unbounded = true;

    IdealLocksetConfig ic;
    ic.granularityBytes = cfg.granularity;
    IdealLocksetConfig icFine;
    icFine.granularityBytes = 4;

    FuzzBattery b;
    if (cfg.weaken == Weaken::Hard)
        b.hard = std::make_unique<DeafHardDetector>("hard", hc);
    else
        b.hard = std::make_unique<HardDetector>("hard", hc);
    if (cfg.weaken == Weaken::Ideal)
        b.ideal =
            std::make_unique<NoResetIdealLockset>("ideal-lockset", ic);
    else
        b.ideal =
            std::make_unique<IdealLocksetDetector>("ideal-lockset", ic);
    b.idealFine = std::make_unique<IdealLocksetDetector>(
        "ideal-lockset-fine", icFine);
    b.hybrid = std::make_unique<HybridDetector>("hybrid", hc);
    if (cfg.weaken == Weaken::Hb)
        b.hb = std::make_unique<DeafHbDetector>("happens-before-ideal",
                                                HbConfig::ideal());
    else
        b.hb = std::make_unique<HappensBeforeDetector>(
            "happens-before-ideal", HbConfig::ideal());
    b.fasttrack = std::make_unique<FastTrackDetector>("fasttrack", 4);
    if (cfg.weaken == Weaken::Djit)
        b.djit = std::make_unique<RwDeafDjitDetector>("djit-plus", 4);
    else
        b.djit = std::make_unique<DjitPlusDetector>("djit-plus", 4);
    RaceTrackConfig rtc;
    rtc.granularityBytes = 4;
    if (cfg.weaken == Weaken::Racetrack)
        b.racetrack =
            std::make_unique<ReadBlindRaceTrack>("racetrack", rtc);
    else
        b.racetrack =
            std::make_unique<RaceTrackDetector>("racetrack", rtc);

    // Sampled cross-check legs: honest (never weakened) clones of the
    // ideal lockset and HB detectors behind granule-mode sampling
    // taps. The default 32-byte sampling granule contains both
    // detector granularities, so each detector granule is fully
    // observed or fully invisible.
    hard_throw_if(!(cfg.sampleRate > 0.0) || cfg.sampleRate > 1.0,
                  ConfigError,
                  "fuzz: sample rate %g outside (0, 1]",
                  cfg.sampleRate);
    if (cfg.sampleRate < 1.0) {
        b.idealSampled = std::make_unique<IdealLocksetDetector>(
            "ideal-lockset-sampled", ic);
        b.hbSampled = std::make_unique<HappensBeforeDetector>(
            "happens-before-sampled", HbConfig::ideal());
        SamplingSpec spec;
        spec.mode = SamplingSpec::Mode::granule;
        spec.rate = cfg.sampleRate;
        spec.seed = cfg.sampleSeed;
        b.idealSampledTap =
            std::make_unique<SamplingObserver>(*b.idealSampled, spec);
        b.hbSampledTap =
            std::make_unique<SamplingObserver>(*b.hbSampled, spec);
    }
    return b;
}

namespace
{

/** Fill the sink-derived half of a FuzzReportSet from @p b. */
FuzzReportSet
collectKeys(const FuzzBattery &b, const Trace &trace,
            const FuzzConfig &cfg)
{
    FuzzReportSet r;
    r.granularity = cfg.granularity;
    r.sampleRate = cfg.sampleRate;
    if (b.idealSampled)
        r.idealSampled = reportKeys(b.idealSampled->sink());
    if (b.hbSampled)
        r.hbSampled = reportKeys(b.hbSampled->sink());
    r.hard = reportKeys(b.hard->sink());
    r.ideal = reportKeys(b.ideal->sink());
    r.idealFine = reportKeys(b.idealFine->sink());
    r.hybrid = reportKeys(b.hybrid->sink());
    r.hb = reportKeys(b.hb->sink());
    r.fasttrack = reportKeys(b.fasttrack->sink());
    r.djit = reportKeys(b.djit->sink());
    r.racetrack = reportKeys(b.racetrack->sink());
    {
        ScopedPhase phase("fuzz.analyze.oracle.lockset");
        r.oracleLs = oracleLockset(trace, cfg.granularity);
    }
    {
        ScopedPhase phase("fuzz.analyze.oracle.lockset-fine");
        r.oracleLsFine = oracleLockset(trace, 4);
    }
    {
        ScopedPhase phase("fuzz.analyze.oracle.happens-before");
        r.oracleHb = oracleHappensBefore(trace, 4);
    }
    {
        ScopedPhase phase("fuzz.analyze.oracle.happens-before-full");
        HbOracleOpts full;
        full.fullWriteVector = true;
        r.oracleHbFull = oracleHappensBefore(trace, 4, full);
    }
    return r;
}

void
fillDetectorKeyCounts(SeedResult &sr, const FuzzReportSet &r)
{
    sr.detectorKeys["hard"] = r.hard.size();
    sr.detectorKeys["ideal-lockset"] = r.ideal.size();
    sr.detectorKeys["ideal-lockset-fine"] = r.idealFine.size();
    sr.detectorKeys["hybrid"] = r.hybrid.size();
    sr.detectorKeys["happens-before-ideal"] = r.hb.size();
    sr.detectorKeys["fasttrack"] = r.fasttrack.size();
    sr.detectorKeys["djit-plus"] = r.djit.size();
    sr.detectorKeys["racetrack"] = r.racetrack.size();
    sr.detectorKeys["oracle-lockset"] = r.oracleLs.size();
    sr.detectorKeys["oracle-lockset-fine"] = r.oracleLsFine.size();
    sr.detectorKeys["oracle-happens-before"] = r.oracleHb.size();
    sr.detectorKeys["oracle-happens-before-full"] = r.oracleHbFull.size();
    // Only when the sampled legs ran: default sweeps stay
    // byte-identical to pre-sampling output.
    if (r.sampleRate < 1.0) {
        sr.detectorKeys["ideal-lockset-sampled"] = r.idealSampled.size();
        sr.detectorKeys["happens-before-sampled"] = r.hbSampled.size();
    }
}

std::string
hexAddr(Addr a)
{
    return errfmt("0x%llx", static_cast<unsigned long long>(a));
}

Json
violationJson(const Violation &v, const Trace &trace)
{
    Json jv = Json::object();
    jv.set("invariant", v.invariant);
    jv.set("detail", v.detail);
    jv.set("witnesses_total",
           static_cast<std::uint64_t>(v.totalWitnesses));
    Json jw = Json::array();
    for (const ReportKey &k : v.witnesses) {
        Json one = Json::object();
        one.set("addr", hexAddr(k.first));
        one.set("site", static_cast<std::uint64_t>(k.second));
        if (k.second < trace.siteNames.size())
            one.set("site_name", trace.siteNames[k.second]);
        jw.push(std::move(one));
    }
    jv.set("witnesses", std::move(jw));
    return jv;
}

/** Names of the violated invariants in @p vs (deduplicated, sorted). */
std::vector<std::string>
violatedNames(const std::vector<Violation> &vs)
{
    std::vector<std::string> names;
    for (const Violation &v : vs)
        names.push_back(v.invariant);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

} // namespace

SimConfig
fuzzSimConfig(const Program &prog)
{
    SimConfig sim = defaultSimConfig();
    // Keep one thread per core: fuzz programs are interleaving
    // artifacts already, oversubscription adds nothing but time.
    sim.memsys.numCores = std::max<unsigned>(
        sim.memsys.numCores,
        static_cast<unsigned>(prog.threads.size()));
    if (sim.maxCycles == 0)
        sim.maxCycles = defaultCycleBudget(prog);
    return sim;
}

TraceKey
fuzzTraceKey(std::uint64_t seed, const FuzzGenConfig &gen,
             const SimConfig &sim)
{
    TraceKey key;
    key.add("traceVersion",
            static_cast<std::uint64_t>(traceFormatVersion()))
        .add("kind", "fuzz")
        .add("seed", seed)
        .add("minThreads", static_cast<std::uint64_t>(gen.minThreads))
        .add("maxThreads", static_cast<std::uint64_t>(gen.maxThreads))
        .add("maxPhases", static_cast<std::uint64_t>(gen.maxPhases))
        .add("maxOps", static_cast<std::uint64_t>(gen.maxOps))
        .add("numLocks", static_cast<std::uint64_t>(gen.numLocks))
        .add("numRegions", static_cast<std::uint64_t>(gen.numRegions))
        .add("regionBytes", static_cast<std::uint64_t>(gen.regionBytes))
        .add("privateBytes",
             static_cast<std::uint64_t>(gen.privateBytes))
        .add("maxNest", static_cast<std::uint64_t>(gen.maxNest))
        .add("pLocked", gen.pLocked)
        .add("pWrongRegion", gen.pWrongRegion)
        .add("pWrite", gen.pWrite)
        .add("pUnlockedShared", gen.pUnlockedShared)
        .add("pBarrier", gen.pBarrier)
        .add("pSema", gen.pSema);
    // Extended-grammar knobs enter the key only when enabled, so every
    // pre-extension recording (and fixture) keeps its key.
    if (gen.numRwLocks > 0 || gen.pRwLocked > 0 || gen.pCond > 0 ||
        gen.numAtomics > 0 || gen.pAtomic > 0) {
        key.add("numRwLocks", static_cast<std::uint64_t>(gen.numRwLocks))
            .add("pRwLocked", gen.pRwLocked)
            .add("pRwWriter", gen.pRwWriter)
            .add("pCond", gen.pCond)
            .add("numAtomics",
                 static_cast<std::uint64_t>(gen.numAtomics))
            .add("pAtomic", gen.pAtomic);
    }
    addSimConfigFields(key, sim);
    return key;
}

FuzzReportSet
analyzeTrace(const Trace &trace, const FuzzConfig &cfg)
{
    FuzzBattery b = makeFuzzBattery(cfg);
    // With the profiler on, each battery member is wrapped in a
    // forwarding TimedObserver: one joint replay still yields the
    // per-detector dispatch-cost breakdown.
    std::vector<std::unique_ptr<TimedObserver>> timed;
    std::vector<AccessObserver *> obs;
    for (RaceDetector *d : b.detectors()) {
        if (Profiler::active() != nullptr) {
            timed.push_back(std::make_unique<TimedObserver>(
                d, "fuzz.analyze.detector." + d->name()));
            obs.push_back(timed.back().get());
        } else {
            obs.push_back(d);
        }
    }
    for (AccessObserver *tap : b.sampledTaps())
        obs.push_back(tap);
    {
        ScopedPhase phase("fuzz.analyze.replay");
        replayTrace(trace, obs);
    }
    for (RaceDetector *d : b.detectors())
        d->finalize();
    for (RaceDetector *d : b.sampledDetectors())
        d->finalize();
    return collectKeys(b, trace, cfg);
}

SeedResult
runFuzzSeed(std::uint64_t seed, const FuzzOptions &opts)
{
    SeedResult sr;
    sr.seed = seed;
    try {
        Program prog;
        {
            ScopedPhase phase("fuzz.seed.generate");
            prog = generateFuzzProgram(seed, opts.gen);
        }
        const SimConfig sim = fuzzSimConfig(prog);

        Trace trace;
        FuzzReportSet r;
        if (opts.mode == ExecMode::Fast) {
            // Record once (or reuse the cached recording — the key
            // ignores the analysis config, so weaken/granularity
            // sweeps share traces) and derive every key set from the
            // trace alone.
            const TraceKey key = fuzzTraceKey(seed, opts.gen, sim);
            std::optional<Trace> cached;
            if (opts.traceCache != nullptr)
                cached = opts.traceCache->lookup(key);
            if (cached) {
                trace = std::move(*cached);
            } else {
                {
                    ScopedPhase phase("fuzz.seed.record");
                    trace = recordRun(prog, sim);
                }
                if (opts.traceCache != nullptr)
                    opts.traceCache->store(key, trace);
            }
            r = analyzeTrace(trace, opts.cfg);
        } else {
            FuzzBattery battery = makeFuzzBattery(opts.cfg);
            TraceRecorder recorder(prog);

            {
                ScopedPhase phase("fuzz.seed.simulate");
                System sys(sim, prog);
                for (RaceDetector *d : battery.detectors())
                    sys.addObserver(d);
                for (AccessObserver *tap : battery.sampledTaps())
                    sys.addObserver(tap);
                sys.addObserver(&recorder);
                sys.run();
            }
            for (RaceDetector *d : battery.detectors())
                d->finalize();
            for (RaceDetector *d : battery.sampledDetectors())
                d->finalize();

            trace = recorder.take();

            // Live detector results vs trace-replayed oracles: a
            // recorder defect shows up here as an oracle mismatch.
            r = collectKeys(battery, trace, opts.cfg);
        }
        sr.events = trace.events.size();
        fillDetectorKeyCounts(sr, r);
        sr.violations = checkInvariants(r);
        if (sr.violations.empty())
            return sr;

        sr.outcome = "violation";

        Trace minTrace;
        if (opts.minimize) {
            ScopedPhase phase("fuzz.seed.minimize");
            // Reproduce-and-shrink entirely post-mortem: a candidate
            // still "fails" if replay analysis re-violates the primary
            // invariant.
            const std::string primary = sr.violations.front().invariant;
            auto predicate = [&](const Trace &cand) {
                std::vector<Violation> vs =
                    checkInvariants(analyzeTrace(cand, opts.cfg));
                for (const Violation &v : vs)
                    if (v.invariant == primary)
                        return true;
                return false;
            };
            minTrace = minimizeTrace(trace, predicate, opts.maxProbes,
                                     &sr.minStats);
            sr.minimized = true;
        }

        if (!opts.outDir.empty()) {
            ScopedPhase phase("fuzz.seed.case");
            std::filesystem::create_directories(opts.outDir);
            const std::string stem =
                opts.outDir + "/seed-" + std::to_string(seed);
            sr.tracePath = stem + ".trc";
            writeTrace(sr.tracePath, trace);
            if (sr.minimized) {
                sr.minTracePath = stem + ".min.trc";
                writeTrace(sr.minTracePath, minTrace);
            }

            // Corpus-style case file: everything needed to re-judge
            // the repro with `hardfuzz --corpus`.
            const Trace &caseTrace = sr.minimized ? minTrace : trace;
            std::vector<Violation> caseVs = checkInvariants(
                analyzeTrace(caseTrace, opts.cfg));
            Json doc = Json::object();
            doc.set("schema", "hard.fuzz.case.v1");
            doc.set("trace", std::string("seed-") + std::to_string(seed) +
                                 (sr.minimized ? ".min.trc" : ".trc"));
            Json jc = Json::object();
            jc.set("granularity", opts.cfg.granularity);
            jc.set("bloom_bits", opts.cfg.bloomBits);
            jc.set("weaken", weakenName(opts.cfg.weaken));
            doc.set("config", std::move(jc));
            Json jx = Json::array();
            for (const std::string &n : violatedNames(caseVs))
                jx.push(n);
            doc.set("expect_violations", std::move(jx));
            Json jd = Json::array();
            for (const Violation &v : caseVs)
                jd.push(violationJson(v, caseTrace));
            doc.set("violations", std::move(jd));
            // Provenance: which HARD/HB mechanism produced the
            // divergence this case captures.
            doc.set("explain", explainFuzzCase(caseTrace, opts.cfg));
            sr.casePath = stem + ".case.json";
            writeJsonFile(sr.casePath, doc);
        }
    } catch (const std::exception &) {
        sr.outcome = "failed";
        classifyException(std::current_exception(), &sr.errorType,
                          &sr.errorMessage);
    }
    return sr;
}

std::vector<SeedResult>
runFuzzSeeds(const FuzzOptions &opts)
{
    RunPool pool(opts.jobs);
    return pool.map<SeedResult>(opts.seeds.size(), [&](std::size_t i) {
        return runFuzzSeed(opts.seeds[i], opts);
    });
}

Json
fuzzJson(const FuzzOptions &opts, const std::vector<SeedResult> &results)
{
    Json doc = Json::object();
    doc.set("schema", "hard.fuzz.v1");

    Json jc = Json::object();
    // Cycle mode emits no field: cycle dumps stay byte-identical to
    // pre-fast-mode output.
    if (opts.mode == ExecMode::Fast)
        jc.set("mode", "fast");
    jc.set("granularity", opts.cfg.granularity);
    jc.set("bloom_bits", opts.cfg.bloomBits);
    jc.set("weaken", weakenName(opts.cfg.weaken));
    // Sampled legs enter the document only when they ran: default
    // sweeps stay byte-identical to pre-sampling output.
    if (opts.cfg.sampleRate < 1.0) {
        jc.set("sample_rate", opts.cfg.sampleRate);
        jc.set("sample_seed", opts.cfg.sampleSeed);
    }
    jc.set("minimize", opts.minimize);
    Json jg = Json::object();
    jg.set("min_threads", opts.gen.minThreads);
    jg.set("max_threads", opts.gen.maxThreads);
    jg.set("max_phases", opts.gen.maxPhases);
    jg.set("max_ops", opts.gen.maxOps);
    jg.set("num_locks", opts.gen.numLocks);
    jg.set("num_regions", opts.gen.numRegions);
    jg.set("max_nest", opts.gen.maxNest);
    // Emitted only when the extended grammar is on, keeping default
    // sweep documents byte-identical to pre-extension output.
    if (opts.gen.numRwLocks > 0)
        jg.set("num_rwlocks", opts.gen.numRwLocks);
    if (opts.gen.pCond > 0)
        jg.set("condvars", true);
    if (opts.gen.numAtomics > 0)
        jg.set("num_atomics", opts.gen.numAtomics);
    jc.set("generator", std::move(jg));
    doc.set("config", std::move(jc));

    Json jinv = Json::array();
    for (const std::string &n : invariantNames())
        jinv.push(n);
    if (opts.cfg.sampleRate < 1.0)
        for (const std::string &n : sampledInvariantNames())
            jinv.push(n);
    doc.set("invariants", std::move(jinv));

    std::uint64_t ok = 0, bad = 0, failed = 0, quarantined = 0;
    Json js = Json::array();
    for (const SeedResult &sr : results) {
        if (sr.outcome == "failed")
            ++failed;
        else if (sr.outcome == "quarantined")
            ++quarantined;
        else if (sr.outcome == "violation")
            ++bad;
        else
            ++ok;
        js.push(seedResultJson(sr));
    }
    doc.set("seeds", std::move(js));

    Json sum = Json::object();
    sum.set("seeds", static_cast<std::uint64_t>(results.size()));
    sum.set("ok", ok);
    sum.set("violations", bad);
    sum.set("failed", failed);
    // Only campaign merges can contain quarantined seeds; ordinary
    // sweeps keep their summary byte-identical to pre-campaign output.
    if (quarantined != 0)
        sum.set("quarantined", quarantined);
    doc.set("summary", std::move(sum));
    return doc;
}

Json
seedResultJson(const SeedResult &sr)
{
    Json one = Json::object();
    one.set("seed", sr.seed);
    one.set("outcome", sr.outcome);
    if (sr.outcome == "failed" || sr.outcome == "quarantined") {
        one.set("error_type", sr.errorType);
        one.set("error", sr.errorMessage);
        return one;
    }
    one.set("events", static_cast<std::uint64_t>(sr.events));
    Json jk = Json::object();
    for (const auto &[name, count] : sr.detectorKeys)
        jk.set(name, static_cast<std::uint64_t>(count));
    one.set("report_keys", std::move(jk));
    if (sr.outcome == "violation") {
        Json jv = Json::array();
        for (const Violation &v : sr.violations) {
            Json x = Json::object();
            x.set("invariant", v.invariant);
            x.set("detail", v.detail);
            x.set("witnesses_total",
                  static_cast<std::uint64_t>(v.totalWitnesses));
            jv.push(std::move(x));
        }
        one.set("violations", std::move(jv));
        if (sr.minimized) {
            Json jm = Json::object();
            jm.set("events",
                   static_cast<std::uint64_t>(sr.minStats.finalEvents));
            jm.set("probes",
                   static_cast<std::uint64_t>(sr.minStats.probes));
            jm.set("capped", sr.minStats.capped);
            one.set("minimized", std::move(jm));
        }
        if (!sr.casePath.empty()) {
            Json ja = Json::object();
            ja.set("trace", sr.tracePath);
            if (!sr.minTracePath.empty())
                ja.set("min_trace", sr.minTracePath);
            ja.set("case", sr.casePath);
            one.set("artifacts", std::move(ja));
        }
    }
    return one;
}

SeedResult
seedResultFromJson(const Json &j)
{
    hard_throw_if(!j.isObject() || !j.has("seed") || !j.has("outcome"),
                  ConfigError,
                  "fuzz payload: not a seed-result object");
    SeedResult sr;
    sr.seed = j["seed"].asUint();
    sr.outcome = j["outcome"].asString();
    if (sr.outcome == "failed" || sr.outcome == "quarantined") {
        sr.errorType = j["error_type"].asString();
        sr.errorMessage = j["error"].asString();
        return sr;
    }
    sr.events = static_cast<std::size_t>(j["events"].asUint());
    for (const auto &[name, count] : j["report_keys"].members())
        sr.detectorKeys[name] = static_cast<std::size_t>(count.asUint());
    if (sr.outcome == "violation") {
        const Json &jv = j["violations"];
        for (std::size_t i = 0; i < jv.size(); ++i) {
            const Json &x = jv.at(i);
            Violation v;
            v.invariant = x["invariant"].asString();
            v.detail = x["detail"].asString();
            v.totalWitnesses =
                static_cast<std::size_t>(x["witnesses_total"].asUint());
            sr.violations.push_back(std::move(v));
        }
        if (j.has("minimized")) {
            const Json &jm = j["minimized"];
            sr.minimized = true;
            sr.minStats.finalEvents =
                static_cast<std::size_t>(jm["events"].asUint());
            sr.minStats.probes =
                static_cast<std::size_t>(jm["probes"].asUint());
            sr.minStats.capped = jm["capped"].asBool();
        }
        if (j.has("artifacts")) {
            const Json &ja = j["artifacts"];
            sr.tracePath = ja["trace"].asString();
            if (ja.has("min_trace"))
                sr.minTracePath = ja["min_trace"].asString();
            sr.casePath = ja["case"].asString();
        }
    }
    return sr;
}

std::string
fuzzSignature(const FuzzOptions &opts)
{
    // Seed sets can span up to a million entries, so the signature
    // carries count + bounds + an order-sensitive FNV-1a fold rather
    // than the full list.
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint64_t s : opts.seeds) {
        h ^= s;
        h *= 1099511628211ull;
    }
    std::string sig = "fuzz;seeds=" + std::to_string(opts.seeds.size());
    if (!opts.seeds.empty())
        sig += ":" + std::to_string(opts.seeds.front()) + ".." +
               std::to_string(opts.seeds.back());
    char hex[32];
    std::snprintf(hex, sizeof hex, ":%016llx",
                  static_cast<unsigned long long>(h));
    sig += hex;
    sig += ";gen=" + std::to_string(opts.gen.minThreads) + "," +
           std::to_string(opts.gen.maxThreads) + "," +
           std::to_string(opts.gen.maxPhases) + "," +
           std::to_string(opts.gen.maxOps) + "," +
           std::to_string(opts.gen.numLocks) + "," +
           std::to_string(opts.gen.numRegions) + "," +
           std::to_string(opts.gen.maxNest);
    // Extended grammar enters the signature only when enabled, so
    // pre-extension campaign journals keep matching.
    if (opts.gen.numRwLocks > 0 || opts.gen.pRwLocked > 0 ||
        opts.gen.pCond > 0 || opts.gen.numAtomics > 0 ||
        opts.gen.pAtomic > 0) {
        sig += ";prims=rw:" + std::to_string(opts.gen.numRwLocks) + "," +
               std::to_string(opts.gen.pRwLocked) + "," +
               std::to_string(opts.gen.pRwWriter) +
               ";cond:" + std::to_string(opts.gen.pCond) +
               ";atomic:" + std::to_string(opts.gen.numAtomics) + "," +
               std::to_string(opts.gen.pAtomic);
    }
    sig += ";granularity=" + std::to_string(opts.cfg.granularity);
    sig += ";bloom=" + std::to_string(opts.cfg.bloomBits);
    sig += ";weaken=" + std::string(weakenName(opts.cfg.weaken));
    // Conditional, so pre-sampling campaign journals keep matching.
    if (opts.cfg.sampleRate < 1.0) {
        char rate[48];
        std::snprintf(rate, sizeof rate, ";sample-rate=%g:%llu",
                      opts.cfg.sampleRate,
                      static_cast<unsigned long long>(
                          opts.cfg.sampleSeed));
        sig += rate;
    }
    sig += ";minimize=" + std::to_string(opts.minimize ? 1 : 0);
    sig += ";max-probes=" + std::to_string(opts.maxProbes);
    if (!opts.outDir.empty())
        sig += ";out=" + opts.outDir;
    if (opts.mode == ExecMode::Fast)
        sig += ";mode=fast";
    return sig;
}

std::vector<std::uint64_t>
parseSeedSpec(const std::string &spec)
{
    hard_throw_if(spec.empty(), ConfigError, "--seeds: empty spec");
    const auto dots = spec.find("..");
    std::uint64_t lo = 0, hi = 0;
    try {
        if (dots == std::string::npos) {
            const std::uint64_t n = std::stoull(spec);
            hard_throw_if(n == 0, ConfigError,
                          "--seeds: count must be positive");
            lo = 0;
            hi = n - 1;
        } else {
            lo = std::stoull(spec.substr(0, dots));
            hi = std::stoull(spec.substr(dots + 2));
        }
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        throw ConfigError(
            errfmt("--seeds: bad spec '%s' (want N or A..B)",
                   spec.c_str()));
    }
    hard_throw_if(hi < lo, ConfigError,
                  "--seeds: empty range '%s'", spec.c_str());
    hard_throw_if(hi - lo >= 1'000'000, ConfigError,
                  "--seeds: range '%s' too large", spec.c_str());
    std::vector<std::uint64_t> out;
    out.reserve(hi - lo + 1);
    for (std::uint64_t s = lo; s <= hi; ++s)
        out.push_back(s);
    return out;
}

} // namespace hard
