/**
 * @file
 * Delta-debugging (ddmin) trace minimizer.
 *
 * When the fuzzer finds an invariant violation it shrinks the recorded
 * event trace to a (1-minimal) subsequence that still violates the
 * same invariant, then dumps it as an ordinary replayable trace file.
 * Reduction works on the trace, not the generator program: any event
 * subsequence is a legal trace, whereas subsetting builder calls would
 * have to re-satisfy the workload validator at every probe.
 *
 * Removing events can unbalance locking, which the production
 * exact-lockset detector treats as an internal invariant violation
 * (panic). Candidates are therefore sanitized — re-acquisitions of a
 * held lock and releases of an unheld lock are dropped — before every
 * predicate probe, and the returned minimum is itself sanitized.
 */

#ifndef HARD_FUZZ_MINIMIZER_HH
#define HARD_FUZZ_MINIMIZER_HH

#include <cstddef>
#include <functional>

#include "trace/trace.hh"

namespace hard
{

/** How a minimization run went. */
struct MinimizeStats
{
    /** Events in the (sanitized) input trace. */
    std::size_t originalEvents = 0;
    /** Events in the returned minimum. */
    std::size_t finalEvents = 0;
    /** Predicate evaluations performed. */
    std::size_t probes = 0;
    /** True if the probe cap stopped refinement early. */
    bool capped = false;
};

/**
 * Drop events that would unbalance per-thread locking: LockAcquire of
 * an already-held lock and LockRelease of an unheld lock. All other
 * events (and event order) are preserved.
 */
Trace sanitizeTrace(const Trace &trace);

/**
 * Zeller-style ddmin over @p trace's event sequence.
 *
 * @param trace The failing trace; must satisfy @p predicate after
 * sanitization (hard_panic otherwise — a non-reproducing predicate
 * means the caller's analysis is itself nondeterministic).
 * @param predicate Evaluated on sanitized candidates; true = "still
 * fails".
 * @param max_probes Upper bound on predicate evaluations; when hit,
 * the best reduction so far is returned (stats->capped set).
 * @param stats Optional run statistics.
 * @return a sanitized subsequence of @p trace that satisfies
 * @p predicate; 1-minimal unless capped.
 */
Trace minimizeTrace(const Trace &trace,
                    const std::function<bool(const Trace &)> &predicate,
                    std::size_t max_probes = 2000,
                    MinimizeStats *stats = nullptr);

} // namespace hard

#endif // HARD_FUZZ_MINIMIZER_HH
