/**
 * @file
 * Differential fuzzing runner: one seed = generate a random program,
 * simulate it once with the full detector battery and a TraceRecorder
 * attached, replay the recording through the independent oracles,
 * cross-check the containment invariants, and — on violation — ddmin
 * the trace to a minimal repro and dump corpus-style artifacts.
 *
 * Seeds are independent, so sweeps fan out through the PR-1 RunPool
 * with index-ordered merging; per-seed failures are contained (PR-2
 * style keep-going) and the hard.fuzz.v1 JSON summary is byte-identical
 * at any --jobs.
 */

#ifndef HARD_FUZZ_RUNNER_HH
#define HARD_FUZZ_RUNNER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/hard_detector.hh"
#include "core/hybrid.hh"
#include "detectors/djit_plus.hh"
#include "detectors/fasttrack.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "detectors/racetrack.hh"
#include "fuzz/generator.hh"
#include "fuzz/invariants.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/weaken.hh"
#include "harness/experiment.hh"
#include "sim/sampling.hh"
#include "trace/trace.hh"
#include "trace/trace_cache.hh"

namespace hard
{

/** Analysis-side configuration of one fuzz unit. */
struct FuzzConfig
{
    /** HARD/ideal/hybrid comparison granularity (4..32, power of 2). */
    unsigned granularity = 32;
    /** BFVector width for HARD and the hybrid. */
    unsigned bloomBits = 16;
    /** Detector sabotage hook (self-test; None for honest runs). */
    Weaken weaken = Weaken::None;
    /**
     * Detection-sampling rate of the sampled cross-check legs in
     * (0, 1]; 1 disables them. When < 1, two extra detectors (an
     * ideal lockset and an ideal happens-before) run behind a
     * granule-mode SamplingObserver and the fuzzer enforces that
     * their report sets are subsets of the unsampled ones. Granule
     * mode only — epoch duty-cycling voids the subset guarantee.
     */
    double sampleRate = 1.0;
    /** Seed of the sampled legs' granule schedule. */
    std::uint64_t sampleSeed = 1;
};

/** Whole-sweep options. */
struct FuzzOptions
{
    /** Seeds to run (each is one independent fuzz unit). */
    std::vector<std::uint64_t> seeds;
    /** RunPool fan-out (0 = hardware concurrency). */
    unsigned jobs = 1;
    FuzzGenConfig gen;
    FuzzConfig cfg;
    /** ddmin violating traces down to minimal repros. */
    bool minimize = true;
    /** Predicate-probe cap per minimization. */
    std::size_t maxProbes = 2000;
    /** Directory for violation artifacts ("" = don't write any). */
    std::string outDir;
    /**
     * ExecMode::Fast records each seed's program once (or loads the
     * recording from @ref traceCache) and derives every detector and
     * oracle key set from the trace via analyzeTrace(), skipping the
     * live cycle-level run. Results are identical to cycle mode
     * (replay equivalence); only the live-vs-replayed recorder
     * cross-check degenerates, since both sides then share the trace.
     */
    ExecMode mode = ExecMode::Cycle;
    /**
     * Recording store for fast mode (not owned; may be null). Keyed by
     * (seed, generator shape, sim config) — deliberately NOT by the
     * analysis config, so one recording serves sweeps across
     * granularities, bloom widths and weaken variants.
     */
    TraceCache *traceCache = nullptr;
};

/**
 * @return the SimConfig a fuzz unit simulates @p prog under: Table 1
 * defaults widened to one core per generated thread, with the default
 * cycle budget applied (shared by the live and fast paths, and by the
 * tests that re-record fuzz programs).
 */
SimConfig fuzzSimConfig(const Program &prog);

/** @return the fast-mode cache key of fuzz seed @p seed generated
 * under @p gen and simulated under @p sim. */
TraceKey fuzzTraceKey(std::uint64_t seed, const FuzzGenConfig &gen,
                      const SimConfig &sim);

/** The detector battery a fuzz unit drives (one fresh set per run). */
struct FuzzBattery
{
    std::unique_ptr<HardDetector> hard;
    std::unique_ptr<IdealLocksetDetector> ideal;
    std::unique_ptr<IdealLocksetDetector> idealFine;
    std::unique_ptr<HybridDetector> hybrid;
    std::unique_ptr<HappensBeforeDetector> hb;
    std::unique_ptr<FastTrackDetector> fasttrack;
    std::unique_ptr<DjitPlusDetector> djit;
    std::unique_ptr<RaceTrackDetector> racetrack;

    /** Sampled cross-check legs (null unless cfg.sampleRate < 1):
     * clones of the ideal lockset and HB detectors fed through
     * granule-mode SamplingObserver taps. */
    std::unique_ptr<IdealLocksetDetector> idealSampled;
    std::unique_ptr<HappensBeforeDetector> hbSampled;
    std::unique_ptr<SamplingObserver> idealSampledTap;
    std::unique_ptr<SamplingObserver> hbSampledTap;

    /** All unsampled detectors, in a stable order (these observe the
     * full event stream directly). */
    std::vector<RaceDetector *> detectors() const;

    /** Sampling taps to attach as observers (empty when rate = 1). */
    std::vector<AccessObserver *> sampledTaps() const;

    /** The sampled legs' detectors, for finalize/key collection
     * (empty when rate = 1). Never attach these directly — they must
     * only see the substream their tap forwards. */
    std::vector<RaceDetector *> sampledDetectors() const;
};

/** @return a fresh battery per @p cfg (weakened member included). */
FuzzBattery makeFuzzBattery(const FuzzConfig &cfg);

/**
 * Post-mortem analysis of a trace: replay it through a fresh battery
 * and the oracles, returning every key set checkInvariants() needs.
 */
FuzzReportSet analyzeTrace(const Trace &trace, const FuzzConfig &cfg);

/** Outcome of one fuzz seed. */
struct SeedResult
{
    std::uint64_t seed = 0;
    /** "ok" | "violation" | "failed" | "quarantined" (the last
     * synthesized by the campaign supervisor for a seed that
     * repeatedly crashed its shard; never produced by runFuzzSeed). */
    std::string outcome = "ok";
    /** Set when outcome == "failed" (or "quarantined"). */
    std::string errorType;
    std::string errorMessage;
    /** Recorded trace length (events). */
    std::size_t events = 0;
    /** Detector name -> distinct (granule, site) report keys. */
    std::map<std::string, std::size_t> detectorKeys;
    std::vector<Violation> violations;
    /** Minimization statistics (when a violation was minimized). */
    bool minimized = false;
    MinimizeStats minStats;
    /** Artifact paths (set when FuzzOptions::outDir is nonempty). */
    std::string tracePath;
    std::string minTracePath;
    std::string casePath;
};

/**
 * Run one fuzz seed end to end. Exceptions from the simulation are
 * contained and reported as outcome "failed".
 */
SeedResult runFuzzSeed(std::uint64_t seed, const FuzzOptions &opts);

/**
 * Run every seed in @p opts across a RunPool. Results are merged in
 * seed-index order regardless of --jobs.
 */
std::vector<SeedResult> runFuzzSeeds(const FuzzOptions &opts);

/** Build the hard.fuzz.v1 summary document (no --jobs dependence). */
Json fuzzJson(const FuzzOptions &opts,
              const std::vector<SeedResult> &results);

/**
 * One seed's entry in the hard.fuzz.v1 "seeds" array — also the
 * journal payload of a fuzz campaign unit. seedResultFromJson() is
 * its lossless inverse (for every field the document carries), so a
 * campaign-merged summary is byte-identical to a single-process one.
 */
Json seedResultJson(const SeedResult &sr);
SeedResult seedResultFromJson(const Json &j);

/**
 * Canonical description of a fuzz sweep (campaign journal headers):
 * the seed set, generator shape, analysis config, minimization and
 * artifact settings. Two invocations with equal signatures produce
 * unit-for-unit interchangeable payloads.
 */
std::string fuzzSignature(const FuzzOptions &opts);

/**
 * Parse a --seeds spec: "N" (seeds 0..N-1) or "A..B" (inclusive).
 * @throws ConfigError on malformed specs.
 */
std::vector<std::uint64_t> parseSeedSpec(const std::string &spec);

} // namespace hard

#endif // HARD_FUZZ_RUNNER_HH
