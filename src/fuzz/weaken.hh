/**
 * @file
 * Deliberately broken detector variants — fuzzer self-test hooks.
 *
 * A differential fuzzer that never fires is indistinguishable from one
 * that cannot fire. These subclasses each disable one load-bearing
 * piece of a production detector so the corresponding invariant *must*
 * trip on workloads that exercise it; `hardfuzz --weaken=...` (and the
 * ctest wired as WILL_FAIL) prove the whole
 * generate→check→minimize→repro pipeline end to end.
 */

#ifndef HARD_FUZZ_WEAKEN_HH
#define HARD_FUZZ_WEAKEN_HH

#include <string>

#include "core/hard_detector.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"

namespace hard
{

/** Which production detector to sabotage (None = honest run). */
enum class Weaken
{
    None,
    /** HARD ignores lock acquire/release: Lock Register stays empty,
     * every armed access reports → breaks hard-subset-of-ideal. */
    Hard,
    /** Happens-before ignores semaphore edges: sema-ordered hand-offs
     * look racy → breaks hb-matches-oracle and hb-matches-fasttrack. */
    Hb,
    /** Ideal lockset skips the §3.5 barrier flash-reset: stale
     * pre-barrier evidence persists → breaks lockset-matches-oracle
     * (and typically fine-subset-of-coarse, since only the
     * coarse-granularity instance is sabotaged). */
    Ideal,
};

/** Parse a --weaken= value; empty/"none" → None; fatal on junk. */
Weaken parseWeaken(const std::string &name);

/** @return the CLI name of @p w. */
const char *weakenName(Weaken w);

/** HARD that never updates its Lock/Counter Registers. */
class DeafHardDetector : public HardDetector
{
  public:
    DeafHardDetector(const std::string &name, const HardConfig &cfg)
        : HardDetector(name, cfg)
    {
    }

    void onLockAcquire(const SyncEvent &ev) override { (void)ev; }
    void onLockRelease(const SyncEvent &ev) override { (void)ev; }
};

/** Happens-before that is deaf to semaphore synchronization. */
class DeafHbDetector : public HappensBeforeDetector
{
  public:
    DeafHbDetector(const std::string &name, const HbConfig &cfg)
        : HappensBeforeDetector(name, cfg)
    {
    }

    void onSemaPost(const SyncEvent &ev) override { (void)ev; }
    void onSemaWait(const SyncEvent &ev) override { (void)ev; }
};

/** Ideal lockset that forgets to flash-reset at barriers. */
class NoResetIdealLockset : public IdealLocksetDetector
{
  public:
    NoResetIdealLockset(const std::string &name,
                        const IdealLocksetConfig &cfg)
        : IdealLocksetDetector(name, cfg)
    {
    }

    void onBarrier(const BarrierEvent &ev) override { (void)ev; }
};

} // namespace hard

#endif // HARD_FUZZ_WEAKEN_HH
