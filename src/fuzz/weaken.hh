/**
 * @file
 * Deliberately broken detector variants — fuzzer self-test hooks.
 *
 * A differential fuzzer that never fires is indistinguishable from one
 * that cannot fire. These subclasses each disable one load-bearing
 * piece of a production detector so the corresponding invariant *must*
 * trip on workloads that exercise it; `hardfuzz --weaken=...` (and the
 * ctest wired as WILL_FAIL) prove the whole
 * generate→check→minimize→repro pipeline end to end.
 */

#ifndef HARD_FUZZ_WEAKEN_HH
#define HARD_FUZZ_WEAKEN_HH

#include <string>

#include "core/hard_detector.hh"
#include "detectors/djit_plus.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "detectors/racetrack.hh"

namespace hard
{

/** Which production detector to sabotage (None = honest run). */
enum class Weaken
{
    None,
    /** HARD ignores lock acquire/release: Lock Register stays empty,
     * every armed access reports → breaks hard-subset-of-ideal. */
    Hard,
    /** Happens-before ignores semaphore edges: sema-ordered hand-offs
     * look racy → breaks hb-matches-oracle and hb-matches-fasttrack
     * (and hb-subset-of-djit, since DJIT+ stays honest). */
    Hb,
    /** Ideal lockset skips the §3.5 barrier flash-reset: stale
     * pre-barrier evidence persists → breaks lockset-matches-oracle
     * (and typically fine-subset-of-coarse, since only the
     * coarse-granularity instance is sabotaged). */
    Ideal,
    /** DJIT+ ignores rwlock release→acquire edges: rwlock-ordered
     * hand-offs look racy → breaks djit-matches-oracle (and
     * hb-subset-of-djit stays intact — the sabotage only *adds*
     * DJIT+ reports). */
    Djit,
    /** RaceTrack drops reader-mode rwlock holds on the floor: reads
     * under a reader hold look unprotected and its HB side loses the
     * writer→reader edges → breaks racetrack-subset-of-ideal. */
    Racetrack,
};

/** Parse a --weaken= value; empty/"none" → None; fatal on junk. */
Weaken parseWeaken(const std::string &name);

/** @return the CLI name of @p w. */
const char *weakenName(Weaken w);

/** HARD that never updates its Lock/Counter Registers. */
class DeafHardDetector : public HardDetector
{
  public:
    DeafHardDetector(const std::string &name, const HardConfig &cfg)
        : HardDetector(name, cfg)
    {
    }

    void onLockAcquire(const SyncEvent &ev) override { (void)ev; }
    void onLockRelease(const SyncEvent &ev) override { (void)ev; }
};

/** Happens-before that is deaf to semaphore synchronization. */
class DeafHbDetector : public HappensBeforeDetector
{
  public:
    DeafHbDetector(const std::string &name, const HbConfig &cfg)
        : HappensBeforeDetector(name, cfg)
    {
    }

    void onSemaPost(const SyncEvent &ev) override { (void)ev; }
    void onSemaWait(const SyncEvent &ev) override { (void)ev; }
};

/** Ideal lockset that forgets to flash-reset at barriers. */
class NoResetIdealLockset : public IdealLocksetDetector
{
  public:
    NoResetIdealLockset(const std::string &name,
                        const IdealLocksetConfig &cfg)
        : IdealLocksetDetector(name, cfg)
    {
    }

    void onBarrier(const BarrierEvent &ev) override { (void)ev; }
};

/** DJIT+ that is deaf to rwlock release→acquire edges. */
class RwDeafDjitDetector : public DjitPlusDetector
{
  public:
    RwDeafDjitDetector(const std::string &name, unsigned granularity)
        : DjitPlusDetector(name, granularity)
    {
    }

    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        (void)ev;
        (void)writer;
    }

    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        (void)ev;
        (void)writer;
    }
};

/** RaceTrack that ignores reader-mode rwlock holds entirely: neither
 * the read-held lockset nor the writer→reader ordering is tracked. */
class ReadBlindRaceTrack : public RaceTrackDetector
{
  public:
    ReadBlindRaceTrack(const std::string &name,
                       const RaceTrackConfig &cfg)
        : RaceTrackDetector(name, cfg)
    {
    }

    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        if (writer)
            RaceTrackDetector::onRwLockAcquire(ev, writer);
    }

    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        if (writer)
            RaceTrackDetector::onRwLockRelease(ev, writer);
    }
};

} // namespace hard

#endif // HARD_FUZZ_WEAKEN_HH
