/**
 * @file
 * Seed-corpus regression checking.
 *
 * A corpus case is a pair of files produced by the fuzzer's artifact
 * writer (or committed by hand):
 *   <name>.trc        — a (minimized) replayable trace
 *   <name>.case.json  — hard.fuzz.case.v1: analysis config + the
 *                       invariant violations the trace must reproduce
 *                       (empty list = the trace must be clean)
 *
 * checkCorpus() re-judges every case in a directory: replay the trace
 * through a fresh battery + oracles under the recorded config and
 * compare the violated-invariant set against the expectation. This is
 * the fuzzing analogue of a unit-test suite: every bug the fuzzer ever
 * caught stays caught.
 */

#ifndef HARD_FUZZ_CORPUS_HH
#define HARD_FUZZ_CORPUS_HH

#include <set>
#include <string>
#include <vector>

#include "fuzz/runner.hh"

namespace hard
{

/** Outcome of re-judging one corpus case. */
struct CorpusVerdict
{
    /** Case name (the files' shared stem). */
    std::string name;
    bool ok = false;
    /** Diagnostic when !ok. */
    std::string message;
};

/** One parsed corpus case: analysis config, trace and expectation. */
struct CorpusCase
{
    FuzzConfig cfg;
    Trace trace;
    /** Invariant names the trace must violate (empty = must be clean). */
    std::set<std::string> expected;
};

/**
 * Parse one <name>.case.json (plus the trace it references, resolved
 * relative to the case file). The single reader for the
 * hard.fuzz.case.v1 format — the corpus checker, the explain pipeline
 * and the tests all load cases through here.
 * @throws ConfigError on unreadable/malformed cases.
 */
CorpusCase loadCorpusCase(const std::string &case_path);

/**
 * Re-judge one corpus case.
 * @param case_path Path to the <name>.case.json file.
 */
CorpusVerdict checkCorpusCase(const std::string &case_path);

/**
 * Re-judge every *.case.json under @p dir (sorted by name).
 * @throws ConfigError if @p dir does not exist or holds no cases.
 */
std::vector<CorpusVerdict> checkCorpus(const std::string &dir);

} // namespace hard

#endif // HARD_FUZZ_CORPUS_HH
