#include "fuzz/explain_case.hh"

#include <memory>
#include <string>

#include "common/error.hh"
#include "explain/classifier.hh"
#include "explain/explain_json.hh"
#include "fuzz/invariants.hh"
#include "fuzz/oracle.hh"
#include "trace/replayer.hh"

namespace hard
{

const char *const kSemaEdgesCategory = "semaphore-edges";
const char *const kRwlockEdgesCategory = "rwlock-edges";
const char *const kCondEdgesCategory = "condvar-edges";
const char *const kAtomicEdgesCategory = "atomic-edges";
const char *const kReaderHoldBlindCategory = "reader-hold-blind";

namespace
{

std::string
hexAddr(Addr a)
{
    return errfmt("0x%llx", static_cast<unsigned long long>(a));
}

Json
divergenceEntry(bool extra, Addr addr, SiteId site, const Trace &trace,
                const std::string &category, const std::string &evidence)
{
    Json jd = Json::object();
    jd.set("direction", extra ? "extra" : "missing");
    jd.set("addr", hexAddr(addr));
    jd.set("site", static_cast<std::uint64_t>(site));
    if (site < trace.siteNames.size())
        jd.set("site_name", trace.siteNames[site]);
    jd.set("category", category);
    jd.set("evidence", evidence);
    return jd;
}

/** HARD (honest or Lock-Register-deaf) or no-reset exact lockset vs
 * the exact references, via the hard_explain classifier. */
Json
explainLocksetSubject(const Trace &trace, const FuzzConfig &cfg)
{
    ExplainConfig ec;
    if (cfg.weaken == Weaken::Ideal) {
        // NoResetIdealLockset ignores barriers; an exact subject
        // configured without the flash-reset behaves identically, and
        // the classifier's R2 reference then names the sabotage.
        ec.subject = ExplainConfig::Subject::IdealLockset;
        ec.ideal.granularityBytes = cfg.granularity;
        ec.ideal.barrierReset = false;
    } else {
        ec.subject = ExplainConfig::Subject::Hard;
        ec.hard.granularityBytes = cfg.granularity;
        ec.hard.bloomBits = cfg.bloomBits;
        // The fuzz battery runs HARD unbounded (containment needs it).
        ec.hard.unbounded = true;
        if (cfg.weaken == Weaken::Hard)
            ec.makeHard = [](const HardConfig &hc) {
                return std::unique_ptr<HardDetector>(
                    new DeafHardDetector("explain-subject", hc));
            };
    }

    ExplainResult res = explainTrace(trace, ec);

    Json j = Json::object();
    j.set("subject", cfg.weaken == Weaken::Ideal ? "ideal-lockset"
                                                 : "hard");
    j.set("weaken", weakenName(cfg.weaken));
    j.set("attribution", attributionJson(res));
    Json list = Json::array();
    for (const Divergence &d : res.divergences)
        list.push(divergenceEntry(d.extra, d.addr, d.site, trace,
                                  divergenceCategoryName(d.category),
                                  d.evidence));
    j.set("divergences", std::move(list));
    return j;
}

/**
 * Clock-detector edge ablation: compare the subject's keys against the
 * vector-clock oracle (epoch mode for happens-before, full-write-vector
 * mode for DJIT+) with each synchronization edge family removed in
 * turn. An extra key that only an ablated oracle reproduces is
 * attributable to that family's missing edges.
 */
Json
explainClockSubject(const Trace &trace, const FuzzConfig &cfg)
{
    const bool djit = cfg.weaken == Weaken::Djit;

    std::unique_ptr<RaceDetector> subject;
    if (djit)
        subject =
            std::make_unique<RwDeafDjitDetector>("explain-subject", 4);
    else if (cfg.weaken == Weaken::Hb)
        subject = std::make_unique<DeafHbDetector>("explain-subject",
                                                   HbConfig::ideal());
    else
        subject = std::make_unique<HappensBeforeDetector>(
            "explain-subject", HbConfig::ideal());
    std::vector<AccessObserver *> obs{subject.get()};
    replayTrace(trace, obs);
    subject->finalize();

    const KeySet subj = reportKeys(subject->sink());
    HbOracleOpts base;
    base.fullWriteVector = djit;
    const KeySet full = oracleHappensBefore(trace, 4, base);

    struct Family
    {
        const char *category;
        bool HbOracleOpts::*edge;
        KeySet keys;
    };
    std::vector<Family> families = {
        {kSemaEdgesCategory, &HbOracleOpts::semaEdges, {}},
        {kRwlockEdgesCategory, &HbOracleOpts::rwlockEdges, {}},
        {kCondEdgesCategory, &HbOracleOpts::condEdges, {}},
        {kAtomicEdgesCategory, &HbOracleOpts::atomicEdges, {}},
    };
    for (Family &f : families) {
        HbOracleOpts opts = base;
        opts.*(f.edge) = false;
        f.keys = oracleHappensBefore(trace, 4, opts);
    }

    unsigned extra = 0, missing = 0, unknown = 0;
    std::map<std::string, unsigned> famCounts;
    Json list = Json::array();
    for (const ReportKey &k : subj) {
        if (full.count(k))
            continue;
        ++extra;
        const Family *hit = nullptr;
        for (const Family &f : families)
            if (f.keys.count(k)) {
                hit = &f;
                break;
            }
        if (hit != nullptr) {
            ++famCounts[hit->category];
            list.push(divergenceEntry(
                true, k.first, k.second, trace, hit->category,
                std::string("the vector-clock oracle reports this key "
                            "only with ") +
                    hit->category +
                    " removed — the subject ignored that ordering"));
        } else {
            ++unknown;
            list.push(divergenceEntry(
                true, k.first, k.second, trace, "unknown",
                "neither the full nor any edge-ablated oracle "
                "reproduces this report"));
        }
    }
    for (const ReportKey &k : full) {
        if (subj.count(k))
            continue;
        ++missing;
        ++unknown;
        list.push(divergenceEntry(
            false, k.first, k.second, trace, "unknown",
            "removing synchronization edges can only add reports; a "
            "missing one implicates the subject's clock bookkeeping"));
    }

    Json j = Json::object();
    j.set("subject", djit ? "djit-plus" : "happens-before");
    j.set("weaken", weakenName(cfg.weaken));
    Json attr = Json::object();
    attr.set("extra", extra);
    attr.set("missing", missing);
    Json cats = Json::object();
    for (const Family &f : families)
        cats.set(f.category, famCounts[f.category]);
    cats.set("unknown", unknown);
    attr.set("categories", std::move(cats));
    j.set("attribution", std::move(attr));
    j.set("divergences", std::move(list));
    return j;
}

/**
 * RaceTrack read-blind explain: the sabotaged subject against the
 * honest RaceTrack over the same trace. Every extra key is evidence of
 * the dropped reader-mode holds (lost read-held locks and lost
 * writer→reader ordering); missing keys would implicate something
 * else entirely and stay unknown.
 */
Json
explainRacetrackSubject(const Trace &trace, const FuzzConfig &cfg)
{
    RaceTrackConfig rtc;
    rtc.granularityBytes = 4;
    rtc.tolerateUnbalanced = true;
    ReadBlindRaceTrack subject("explain-subject", rtc);
    RaceTrackDetector honest("explain-ref", rtc);
    std::vector<AccessObserver *> obs{&subject, &honest};
    replayTrace(trace, obs);
    subject.finalize();
    honest.finalize();

    const KeySet subj = reportKeys(subject.sink());
    const KeySet ref = reportKeys(honest.sink());

    unsigned extra = 0, missing = 0, blind = 0, unknown = 0;
    Json list = Json::array();
    for (const ReportKey &k : subj) {
        if (ref.count(k))
            continue;
        ++extra;
        ++blind;
        list.push(divergenceEntry(
            true, k.first, k.second, trace, kReaderHoldBlindCategory,
            "the honest RaceTrack does not report this key — dropping "
            "reader-mode holds emptied the candidate set or lost the "
            "writer→reader ordering that suppressed it"));
    }
    for (const ReportKey &k : ref) {
        if (subj.count(k))
            continue;
        ++missing;
        ++unknown;
        list.push(divergenceEntry(
            false, k.first, k.second, trace, "unknown",
            "ignoring reader holds can only add reports; a missing "
            "one implicates the subject's state machine"));
    }

    Json j = Json::object();
    j.set("subject", "racetrack");
    j.set("weaken", weakenName(cfg.weaken));
    Json attr = Json::object();
    attr.set("extra", extra);
    attr.set("missing", missing);
    Json cats = Json::object();
    cats.set(kReaderHoldBlindCategory, blind);
    cats.set("unknown", unknown);
    attr.set("categories", std::move(cats));
    j.set("attribution", std::move(attr));
    j.set("divergences", std::move(list));
    return j;
}

} // namespace

Json
explainFuzzCase(const Trace &trace, const FuzzConfig &cfg)
{
    switch (cfg.weaken) {
      case Weaken::Hb:
      case Weaken::Djit:
        return explainClockSubject(trace, cfg);
      case Weaken::Racetrack:
        return explainRacetrackSubject(trace, cfg);
      default:
        return explainLocksetSubject(trace, cfg);
    }
}

} // namespace hard
