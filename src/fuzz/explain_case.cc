#include "fuzz/explain_case.hh"

#include <memory>
#include <string>

#include "common/error.hh"
#include "explain/classifier.hh"
#include "explain/explain_json.hh"
#include "fuzz/invariants.hh"
#include "fuzz/oracle.hh"
#include "trace/replayer.hh"

namespace hard
{

const char *const kSemaEdgesCategory = "semaphore-edges";

namespace
{

std::string
hexAddr(Addr a)
{
    return errfmt("0x%llx", static_cast<unsigned long long>(a));
}

Json
divergenceEntry(bool extra, Addr addr, SiteId site, const Trace &trace,
                const std::string &category, const std::string &evidence)
{
    Json jd = Json::object();
    jd.set("direction", extra ? "extra" : "missing");
    jd.set("addr", hexAddr(addr));
    jd.set("site", static_cast<std::uint64_t>(site));
    if (site < trace.siteNames.size())
        jd.set("site_name", trace.siteNames[site]);
    jd.set("category", category);
    jd.set("evidence", evidence);
    return jd;
}

/** HARD (honest or Lock-Register-deaf) or no-reset exact lockset vs
 * the exact references, via the hard_explain classifier. */
Json
explainLocksetSubject(const Trace &trace, const FuzzConfig &cfg)
{
    ExplainConfig ec;
    if (cfg.weaken == Weaken::Ideal) {
        // NoResetIdealLockset ignores barriers; an exact subject
        // configured without the flash-reset behaves identically, and
        // the classifier's R2 reference then names the sabotage.
        ec.subject = ExplainConfig::Subject::IdealLockset;
        ec.ideal.granularityBytes = cfg.granularity;
        ec.ideal.barrierReset = false;
    } else {
        ec.subject = ExplainConfig::Subject::Hard;
        ec.hard.granularityBytes = cfg.granularity;
        ec.hard.bloomBits = cfg.bloomBits;
        // The fuzz battery runs HARD unbounded (containment needs it).
        ec.hard.unbounded = true;
        if (cfg.weaken == Weaken::Hard)
            ec.makeHard = [](const HardConfig &hc) {
                return std::unique_ptr<HardDetector>(
                    new DeafHardDetector("explain-subject", hc));
            };
    }

    ExplainResult res = explainTrace(trace, ec);

    Json j = Json::object();
    j.set("subject", cfg.weaken == Weaken::Ideal ? "ideal-lockset"
                                                 : "hard");
    j.set("weaken", weakenName(cfg.weaken));
    j.set("attribution", attributionJson(res));
    Json list = Json::array();
    for (const Divergence &d : res.divergences)
        list.push(divergenceEntry(d.extra, d.addr, d.site, trace,
                                  divergenceCategoryName(d.category),
                                  d.evidence));
    j.set("divergences", std::move(list));
    return j;
}

/**
 * Happens-before sema-ablation: compare the subject's keys against the
 * vector-clock oracle with and without post→wait edges. An extra key
 * that only the ablated oracle reproduces is attributable to missing
 * semaphore ordering.
 */
Json
explainHbSubject(const Trace &trace, const FuzzConfig &cfg)
{
    std::unique_ptr<HappensBeforeDetector> hb;
    if (cfg.weaken == Weaken::Hb)
        hb = std::make_unique<DeafHbDetector>("explain-subject",
                                              HbConfig::ideal());
    else
        hb = std::make_unique<HappensBeforeDetector>("explain-subject",
                                                     HbConfig::ideal());
    std::vector<AccessObserver *> obs{hb.get()};
    replayTrace(trace, obs);
    hb->finalize();

    const KeySet subj = reportKeys(hb->sink());
    const KeySet full = oracleHappensBefore(trace, 4, true);
    const KeySet ablated = oracleHappensBefore(trace, 4, false);

    unsigned extra = 0, missing = 0, sema = 0, unknown = 0;
    Json list = Json::array();
    for (const ReportKey &k : subj) {
        if (full.count(k))
            continue;
        ++extra;
        if (ablated.count(k)) {
            ++sema;
            list.push(divergenceEntry(
                true, k.first, k.second, trace, kSemaEdgesCategory,
                "the vector-clock oracle reports this key only with "
                "post->wait edges removed — the subject ignored "
                "semaphore ordering"));
        } else {
            ++unknown;
            list.push(divergenceEntry(
                true, k.first, k.second, trace, "unknown",
                "neither the full nor the sema-ablated oracle "
                "reproduces this report"));
        }
    }
    for (const ReportKey &k : full) {
        if (subj.count(k))
            continue;
        ++missing;
        ++unknown;
        list.push(divergenceEntry(
            false, k.first, k.second, trace, "unknown",
            "removing synchronization edges can only add reports; a "
            "missing one implicates the subject's clock bookkeeping"));
    }

    Json j = Json::object();
    j.set("subject", "happens-before");
    j.set("weaken", weakenName(cfg.weaken));
    Json attr = Json::object();
    attr.set("extra", extra);
    attr.set("missing", missing);
    Json cats = Json::object();
    cats.set(kSemaEdgesCategory, sema);
    cats.set("unknown", unknown);
    attr.set("categories", std::move(cats));
    j.set("attribution", std::move(attr));
    j.set("divergences", std::move(list));
    return j;
}

} // namespace

Json
explainFuzzCase(const Trace &trace, const FuzzConfig &cfg)
{
    return cfg.weaken == Weaken::Hb ? explainHbSubject(trace, cfg)
                                    : explainLocksetSubject(trace, cfg);
}

} // namespace hard
