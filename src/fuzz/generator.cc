#include "fuzz/generator.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "detectors/vclock.hh"

namespace hard
{

namespace
{

/** Pick an aligned (never line-crossing) access inside a region. */
Addr
pickAccess(Rng &rng, Addr base, std::uint64_t bytes, unsigned &size)
{
    static const unsigned kSizes[] = {1, 2, 4, 8};
    size = kSizes[rng.below(4)];
    const std::uint64_t slots = bytes / size;
    return base + size * rng.below(slots);
}

} // namespace

Program
generateFuzzProgram(std::uint64_t seed, const FuzzGenConfig &cfg)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xfade);

    const unsigned lo = std::max(2u, std::min(cfg.minThreads, kMaxThreads));
    const unsigned hi =
        std::max(lo, std::min(cfg.maxThreads, kMaxThreads));
    const unsigned nthreads =
        static_cast<unsigned>(rng.range(lo, hi));

    WorkloadBuilder b("fuzz-" + std::to_string(seed), nthreads);

    // Layout: shared regions, per-thread private slabs, sync objects.
    const unsigned nregions = std::max(1u, cfg.numRegions);
    const unsigned region_bytes = std::max(32u, cfg.regionBytes);
    std::vector<Addr> regions;
    for (unsigned r = 0; r < nregions; ++r)
        regions.push_back(b.alloc("region" + std::to_string(r),
                                  region_bytes, 32));
    const unsigned priv_bytes = std::max(32u, cfg.privateBytes);
    std::vector<Addr> priv;
    for (unsigned t = 0; t < nthreads; ++t)
        priv.push_back(b.alloc("private" + std::to_string(t),
                               priv_bytes, 32));

    const unsigned nlocks = std::max(1u, cfg.numLocks);
    std::vector<LockAddr> locks;
    for (unsigned l = 0; l < nlocks; ++l)
        locks.push_back(b.allocLock("lock" + std::to_string(l)));

    const Addr barrier = b.allocBarrier("phaseBarrier");

    // One dedicated semaphore per phase hand-off. Sharing a semaphore
    // across phases is a real deadlock: without an intervening barrier
    // a fast consumer can satisfy its phase-k+1 wait with a phase-k
    // token, starving the phase-k+1 producer at its own phase-k wait.
    const unsigned nphases =
        static_cast<unsigned>(rng.range(1, std::max(1u, cfg.maxPhases)));
    std::vector<Addr> semas;
    for (unsigned p = 0; p < nphases; ++p)
        semas.push_back(b.allocSema("handoff" + std::to_string(p)));

    // Extended-grammar objects, allocated only when enabled so the
    // default layout (and hence trace-cache keys) never moves.
    const bool useRw = cfg.numRwLocks > 0 && cfg.pRwLocked > 0;
    const bool useCond = cfg.pCond > 0;
    const bool useAtomic = cfg.numAtomics > 0 && cfg.pAtomic > 0;
    std::vector<LockAddr> rwlocks;
    if (useRw)
        for (unsigned l = 0; l < cfg.numRwLocks; ++l)
            rwlocks.push_back(b.allocRwLock("rw" + std::to_string(l)));
    std::vector<Addr> conds;
    if (useCond)
        for (unsigned p = 0; p < nphases; ++p)
            conds.push_back(b.allocCond("phasecond" + std::to_string(p)));
    std::vector<Addr> atomics;
    if (useAtomic)
        for (unsigned a = 0; a < cfg.numAtomics; ++a)
            atomics.push_back(b.allocAtomic("atom" + std::to_string(a)));

    // Sites: one per (lock, region) pair plus the unlocked/private
    // families, so reports discriminate the access context.
    const SiteId s_bar = b.site("phase.barrier");
    const SiteId s_post = b.site("handoff.post");
    const SiteId s_wait = b.site("handoff.wait");
    const SiteId s_priv_rd = b.site("private.read");
    const SiteId s_priv_wr = b.site("private.write");
    std::vector<SiteId> s_lk, s_ulk, s_rd, s_wr, s_urd, s_uwr;
    for (unsigned l = 0; l < nlocks; ++l) {
        s_lk.push_back(b.site("lock" + std::to_string(l) + ".acq"));
        s_ulk.push_back(b.site("lock" + std::to_string(l) + ".rel"));
    }
    for (unsigned r = 0; r < nregions; ++r) {
        const std::string rn = "region" + std::to_string(r);
        s_rd.push_back(b.site(rn + ".locked.read"));
        s_wr.push_back(b.site(rn + ".locked.write"));
        s_urd.push_back(b.site(rn + ".unlocked.read"));
        s_uwr.push_back(b.site(rn + ".unlocked.write"));
    }
    // Extended-grammar sites, interned only when enabled so default
    // SiteIds stay stable.
    std::vector<SiteId> s_rw_acq, s_rw_rel, s_rwrd, s_rwwr;
    if (useRw) {
        for (unsigned l = 0; l < cfg.numRwLocks; ++l) {
            s_rw_acq.push_back(b.site("rw" + std::to_string(l) + ".acq"));
            s_rw_rel.push_back(b.site("rw" + std::to_string(l) + ".rel"));
        }
        for (unsigned r = 0; r < nregions; ++r) {
            const std::string rn = "region" + std::to_string(r);
            s_rwrd.push_back(b.site(rn + ".rw.read"));
            s_rwwr.push_back(b.site(rn + ".rw.write"));
        }
    }
    SiteId s_cbc = 0, s_cwt = 0;
    if (useCond) {
        s_cbc = b.site("handoff.cond.broadcast");
        s_cwt = b.site("handoff.cond.wait");
    }
    SiteId s_ast = 0, s_ald = 0;
    if (useAtomic) {
        s_ast = b.site("atomic.store");
        s_ald = b.site("atomic.load");
    }

    for (unsigned phase = 0; phase < nphases; ++phase) {
        // Optional semaphore hand-off: one producer posts a token per
        // consumer before any consumer waits, on this phase's own
        // semaphore. The producer never blocks on anything its
        // consumers publish and tokens cannot leak across phases, so
        // the pattern cannot deadlock regardless of the surrounding
        // ops.
        if (nthreads >= 2 && rng.chance(cfg.pSema)) {
            const ThreadId producer =
                static_cast<ThreadId>(rng.below(nthreads));
            const Addr sema = semas[phase];
            for (unsigned t = 0; t < nthreads; ++t)
                if (t != producer)
                    b.semaPost(producer, sema, s_post);
            for (unsigned t = 0; t < nthreads; ++t)
                if (t != producer)
                    b.semaWait(static_cast<ThreadId>(t), sema, s_wait);
        }

        // Optional condvar hand-off on this phase's own condition
        // variable: one broadcaster, everyone else waits. Broadcasts
        // latch in the simulator, so a waiter arriving after the
        // broadcast proceeds immediately — deadlock-free in any
        // arrival order, and (like the semaphore hand-off) each wait
        // depends only on its own phase's broadcaster, which in turn
        // only has to clear earlier phases' hand-offs.
        if (useCond && nthreads >= 2 && rng.chance(cfg.pCond)) {
            const ThreadId caster =
                static_cast<ThreadId>(rng.below(nthreads));
            b.condBroadcast(caster, conds[phase], s_cbc);
            for (unsigned t = 0; t < nthreads; ++t)
                if (t != caster)
                    b.condWait(static_cast<ThreadId>(t), conds[phase],
                               s_cwt);
        }

        for (unsigned t = 0; t < nthreads; ++t) {
            const ThreadId tid = static_cast<ThreadId>(t);
            const unsigned nops = static_cast<unsigned>(
                rng.range(4, std::max(4u, cfg.maxOps)));
            for (unsigned i = 0; i < nops; ++i) {
                if (useRw && rng.chance(cfg.pRwLocked)) {
                    // Rwlock critical section: one rwlock, one mode.
                    // The rwlock nominally protects its own region
                    // slice; reader-mode sections still draw pWrite,
                    // so a write under only a read hold is generated
                    // as a deliberate discipline bug.
                    const unsigned l = static_cast<unsigned>(
                        rng.below(rwlocks.size()));
                    const bool writerMode = rng.chance(cfg.pRwWriter);
                    if (writerMode)
                        b.wrlock(tid, rwlocks[l], s_rw_acq[l]);
                    else
                        b.rdlock(tid, rwlocks[l], s_rw_acq[l]);
                    const unsigned naccess =
                        static_cast<unsigned>(rng.range(1, 4));
                    for (unsigned a = 0; a < naccess; ++a) {
                        unsigned r = l % nregions;
                        if (rng.chance(cfg.pWrongRegion))
                            r = static_cast<unsigned>(
                                rng.below(nregions));
                        unsigned size = 0;
                        const Addr addr = pickAccess(
                            rng, regions[r], region_bytes, size);
                        if (rng.chance(cfg.pWrite))
                            b.write(tid, addr, size, s_rwwr[r]);
                        else
                            b.read(tid, addr, size, s_rwrd[r]);
                    }
                    if (writerMode)
                        b.wrunlock(tid, rwlocks[l], s_rw_rel[l]);
                    else
                        b.rdunlock(tid, rwlocks[l], s_rw_rel[l]);
                } else if (useAtomic && rng.chance(cfg.pAtomic)) {
                    // Atomic release-acquire sync: pure ordering, no
                    // data access of its own.
                    const unsigned a = static_cast<unsigned>(
                        rng.below(atomics.size()));
                    if (rng.chance(0.5))
                        b.atomicStore(tid, atomics[a], s_ast);
                    else
                        b.atomicLoad(tid, atomics[a], s_ald);
                } else if (rng.chance(cfg.pLocked)) {
                    // Critical section under 1..maxNest locks taken
                    // in ascending global order (deadlock-free) and
                    // released in reverse (properly nested).
                    const unsigned depth = static_cast<unsigned>(
                        rng.range(1, std::min(std::max(1u, cfg.maxNest),
                                              nlocks)));
                    std::vector<unsigned> held;
                    unsigned next = 0;
                    for (unsigned d = 0; d < depth; ++d) {
                        const unsigned room =
                            nlocks - next - (depth - d - 1);
                        const unsigned pick = next +
                            static_cast<unsigned>(rng.below(room));
                        held.push_back(pick);
                        next = pick + 1;
                    }
                    for (unsigned l : held)
                        b.lock(tid, locks[l], s_lk[l]);
                    const unsigned naccess =
                        static_cast<unsigned>(rng.range(1, 4));
                    for (unsigned a = 0; a < naccess; ++a) {
                        // The innermost lock nominally protects its
                        // own region slice; sometimes reach into a
                        // "wrong" region instead (a discipline bug).
                        unsigned r = held.back() % nregions;
                        if (rng.chance(cfg.pWrongRegion))
                            r = static_cast<unsigned>(
                                rng.below(nregions));
                        unsigned size = 0;
                        const Addr addr = pickAccess(
                            rng, regions[r], region_bytes, size);
                        if (rng.chance(cfg.pWrite))
                            b.write(tid, addr, size, s_wr[r]);
                        else
                            b.read(tid, addr, size, s_rd[r]);
                    }
                    for (auto it = held.rbegin(); it != held.rend();
                         ++it)
                        b.unlock(tid, locks[*it], s_ulk[*it]);
                } else if (rng.chance(cfg.pUnlockedShared)) {
                    // Lock-free shared access: the racy raw material
                    // every detector family must classify.
                    const unsigned r =
                        static_cast<unsigned>(rng.below(nregions));
                    unsigned size = 0;
                    const Addr addr =
                        pickAccess(rng, regions[r], region_bytes, size);
                    if (rng.chance(cfg.pWrite))
                        b.write(tid, addr, size, s_uwr[r]);
                    else
                        b.read(tid, addr, size, s_urd[r]);
                } else if (rng.chance(0.5)) {
                    // Private access: never racy, exercises the
                    // Virgin/Exclusive fast paths.
                    unsigned size = 0;
                    const Addr addr = pickAccess(rng, priv[t],
                                                 priv_bytes, size);
                    if (rng.chance(cfg.pWrite))
                        b.write(tid, addr, size, s_priv_wr);
                    else
                        b.read(tid, addr, size, s_priv_rd);
                } else {
                    b.compute(tid, rng.range(1, 40));
                }
            }
        }

        // Phase boundary: a barrier with probability pBarrier (drawn
        // once per phase, outside any thread loop, so every thread
        // sees the same barrier sequence). The final phase never
        // needs one.
        if (phase + 1 < nphases && rng.chance(cfg.pBarrier))
            b.barrierAll(barrier, s_bar);
    }

    return b.finish();
}

} // namespace hard
