#include "fuzz/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hh"

namespace hard
{

namespace
{

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    hard_throw_if(!in, ConfigError, "corpus: cannot open %s",
                  path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
joinNames(const std::set<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ",";
        out += n;
    }
    return out.empty() ? "(none)" : out;
}

} // namespace

CorpusCase
loadCorpusCase(const std::string &case_path)
{
    namespace fs = std::filesystem;
    std::string err;
    Json doc = Json::parse(readFileOrThrow(case_path), &err);
    hard_throw_if(!err.empty() || !doc.isObject(), ConfigError,
                  "corpus: %s: bad JSON: %s", case_path.c_str(),
                  err.c_str());
    hard_throw_if(!doc.has("schema") ||
                      doc["schema"].asString() != "hard.fuzz.case.v1",
                  ConfigError, "corpus: %s: not a hard.fuzz.case.v1",
                  case_path.c_str());

    CorpusCase c;
    const Json &jc = doc["config"];
    c.cfg.granularity =
        static_cast<unsigned>(jc["granularity"].asUint());
    c.cfg.bloomBits = static_cast<unsigned>(jc["bloom_bits"].asUint());
    c.cfg.weaken = parseWeaken(jc["weaken"].asString());

    const fs::path trc =
        fs::path(case_path).parent_path() / doc["trace"].asString();
    c.trace = readTrace(trc.string());

    const Json &jx = doc["expect_violations"];
    for (std::size_t i = 0; i < jx.size(); ++i)
        c.expected.insert(jx.at(i).asString());
    return c;
}

CorpusVerdict
checkCorpusCase(const std::string &case_path)
{
    namespace fs = std::filesystem;
    CorpusVerdict v;
    v.name = fs::path(case_path).filename().string();
    const std::string suffix = ".case.json";
    if (v.name.size() > suffix.size() &&
        v.name.compare(v.name.size() - suffix.size(), suffix.size(),
                       suffix) == 0)
        v.name.resize(v.name.size() - suffix.size());

    try {
        const CorpusCase c = loadCorpusCase(case_path);

        std::set<std::string> got;
        for (const Violation &viol :
             checkInvariants(analyzeTrace(c.trace, c.cfg)))
            got.insert(viol.invariant);

        if (got == c.expected) {
            v.ok = true;
        } else {
            v.message = "expected violations [" + joinNames(c.expected) +
                        "] but replay produced [" + joinNames(got) + "]";
        }
    } catch (const std::exception &e) {
        v.message = e.what();
    }
    return v;
}

std::vector<CorpusVerdict>
checkCorpus(const std::string &dir)
{
    namespace fs = std::filesystem;
    hard_throw_if(!fs::is_directory(dir), ConfigError,
                  "corpus: %s is not a directory", dir.c_str());

    std::vector<std::string> cases;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 10 &&
            name.compare(name.size() - 10, 10, ".case.json") == 0)
            cases.push_back(entry.path().string());
    }
    std::sort(cases.begin(), cases.end());
    hard_throw_if(cases.empty(), ConfigError,
                  "corpus: no *.case.json files under %s", dir.c_str());

    std::vector<CorpusVerdict> out;
    for (const std::string &c : cases)
        out.push_back(checkCorpusCase(c));
    return out;
}

} // namespace hard
