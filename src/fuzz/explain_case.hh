/**
 * @file
 * Provenance for fuzz cases: the "explain" block embedded in
 * hard.fuzz.case.v1 documents.
 *
 * A minimized violation trace is only half a repro — the other half is
 * *which mechanism* the weakened (or buggy) detector got wrong. This
 * glue picks the right classifier subject for the case's FuzzConfig:
 *
 *  - weaken none/hard — the HARD detector (honest or Lock-Register-
 *    deaf) against the exact-lockset references, via explainTrace().
 *  - weaken ideal     — the no-flash-reset exact lockset as subject,
 *    so the divergence attributes to barrier-reset.
 *  - weaken hb/djit   — clock detectors have no lockset reference;
 *    instead the subject's keys are compared against the vector-clock
 *    oracle (epoch or full-write-vector mode) with each edge family
 *    (sema, rwlock, condvar, atomic) ablated in turn: an extra key
 *    only an ablated oracle reproduces attributes to that family's
 *    missing edges. Lives here rather than in hard_explain because
 *    the oracles are a fuzz-layer concept.
 *  - weaken racetrack — the read-blind subject against the honest
 *    RaceTrack: extra keys attribute to the dropped reader holds.
 */

#ifndef HARD_FUZZ_EXPLAIN_CASE_HH
#define HARD_FUZZ_EXPLAIN_CASE_HH

#include "common/json.hh"
#include "fuzz/runner.hh"
#include "trace/trace.hh"

namespace hard
{

/** Category name used for happens-before sema-ablation divergences. */
extern const char *const kSemaEdgesCategory;
/** Category for rwlock release→acquire edge-ablation divergences. */
extern const char *const kRwlockEdgesCategory;
/** Category for condvar signal/broadcast→wait ablation divergences. */
extern const char *const kCondEdgesCategory;
/** Category for atomic release-acquire edge-ablation divergences. */
extern const char *const kAtomicEdgesCategory;
/** Category for RaceTrack reader-hold-blind divergences. */
extern const char *const kReaderHoldBlindCategory;

/**
 * Build the "explain" block for one fuzz case: subject name, an
 * attribution summary ({extra, missing, categories}) and the attributed
 * divergence list with human-readable evidence.
 */
Json explainFuzzCase(const Trace &trace, const FuzzConfig &cfg);

} // namespace hard

#endif // HARD_FUZZ_EXPLAIN_CASE_HH
