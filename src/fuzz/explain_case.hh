/**
 * @file
 * Provenance for fuzz cases: the "explain" block embedded in
 * hard.fuzz.case.v1 documents.
 *
 * A minimized violation trace is only half a repro — the other half is
 * *which mechanism* the weakened (or buggy) detector got wrong. This
 * glue picks the right classifier subject for the case's FuzzConfig:
 *
 *  - weaken none/hard — the HARD detector (honest or Lock-Register-
 *    deaf) against the exact-lockset references, via explainTrace().
 *  - weaken ideal     — the no-flash-reset exact lockset as subject,
 *    so the divergence attributes to barrier-reset.
 *  - weaken hb        — happens-before has no lockset reference;
 *    instead the subject's keys are compared against the vector-clock
 *    oracle with and without semaphore edges (sema-ablation), which
 *    lives here rather than in hard_explain because the oracles are a
 *    fuzz-layer concept.
 */

#ifndef HARD_FUZZ_EXPLAIN_CASE_HH
#define HARD_FUZZ_EXPLAIN_CASE_HH

#include "common/json.hh"
#include "fuzz/runner.hh"
#include "trace/trace.hh"

namespace hard
{

/** Category name used for happens-before sema-ablation divergences. */
extern const char *const kSemaEdgesCategory;

/**
 * Build the "explain" block for one fuzz case: subject name, an
 * attribution summary ({extra, missing, categories}) and the attributed
 * divergence list with human-readable evidence.
 */
Json explainFuzzCase(const Trace &trace, const FuzzConfig &cfg);

} // namespace hard

#endif // HARD_FUZZ_EXPLAIN_CASE_HH
