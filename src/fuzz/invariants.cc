#include "fuzz/invariants.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace hard
{

KeySet
reportKeys(const ReportSink &sink)
{
    KeySet keys;
    for (const RaceReport &r : sink.reports())
        keys.insert({r.addr, r.site});
    return keys;
}

KeySet
coarsenKeys(const KeySet &keys, unsigned gran)
{
    KeySet out;
    for (const ReportKey &k : keys)
        out.insert({alignDown(k.first, gran), k.second});
    return out;
}

namespace
{

/** Keys of @p a missing from @p b. */
std::vector<ReportKey>
missingFrom(const KeySet &a, const KeySet &b)
{
    std::vector<ReportKey> out;
    for (const ReportKey &k : a)
        if (b.count(k) == 0)
            out.push_back(k);
    return out;
}

void
recordViolation(std::vector<Violation> &out, const std::string &name,
                const std::string &detail,
                std::vector<ReportKey> offenders)
{
    if (offenders.empty())
        return;
    Violation v;
    v.invariant = name;
    v.detail = detail;
    v.totalWitnesses = offenders.size();
    if (offenders.size() > Violation::kMaxWitnesses)
        offenders.resize(Violation::kMaxWitnesses);
    v.witnesses = std::move(offenders);
    out.push_back(std::move(v));
}

void
checkSubset(std::vector<Violation> &out, const std::string &name,
            const std::string &detail, const KeySet &sub,
            const KeySet &super)
{
    recordViolation(out, name, detail, missingFrom(sub, super));
}

void
checkEqual(std::vector<Violation> &out, const std::string &name,
           const std::string &detail, const KeySet &a, const KeySet &b)
{
    std::vector<ReportKey> offenders = missingFrom(a, b);
    std::vector<ReportKey> extra = missingFrom(b, a);
    offenders.insert(offenders.end(), extra.begin(), extra.end());
    std::sort(offenders.begin(), offenders.end());
    recordViolation(out, name, detail, std::move(offenders));
}

} // namespace

const std::vector<std::string> &
invariantNames()
{
    static const std::vector<std::string> names = {
        "hard-subset-of-ideal",      "hybrid-subset-of-hard",
        "fine-subset-of-coarse",     "lockset-matches-oracle",
        "hb-matches-oracle",         "hb-matches-fasttrack",
        "djit-matches-oracle",       "hb-subset-of-djit",
        "racetrack-subset-of-ideal",
    };
    return names;
}

const std::vector<std::string> &
sampledInvariantNames()
{
    static const std::vector<std::string> names = {
        "sampled-subset-of-ideal",
        "sampled-subset-of-hb",
    };
    return names;
}

std::vector<Violation>
checkInvariants(const FuzzReportSet &r)
{
    std::vector<Violation> out;

    checkSubset(out, "hard-subset-of-ideal",
                "hard(unbounded) \xE2\x8A\x86 ideal-lockset", r.hard,
                r.ideal);
    checkSubset(out, "hybrid-subset-of-hard",
                "hybrid \xE2\x8A\x86 hard(unbounded)", r.hybrid, r.hard);
    checkSubset(out, "fine-subset-of-coarse",
                "coarsen(ideal-lockset@4) \xE2\x8A\x86 ideal-lockset",
                coarsenKeys(r.idealFine, r.granularity), r.ideal);
    checkEqual(out, "lockset-matches-oracle",
               "ideal-lockset == reference lockset", r.ideal, r.oracleLs);
    checkEqual(out, "lockset-matches-oracle",
               "ideal-lockset@4 == reference lockset@4", r.idealFine,
               r.oracleLsFine);
    checkEqual(out, "hb-matches-oracle",
               "happens-before-ideal == reference happens-before", r.hb,
               r.oracleHb);
    checkEqual(out, "hb-matches-fasttrack",
               "happens-before-ideal == fasttrack@4", r.hb, r.fasttrack);
    checkEqual(out, "djit-matches-oracle",
               "djit-plus == reference happens-before (full write "
               "vector)",
               r.djit, r.oracleHbFull);
    checkSubset(out, "hb-subset-of-djit",
                "happens-before-ideal \xE2\x8A\x86 djit-plus", r.hb,
                r.djit);
    checkSubset(out, "racetrack-subset-of-ideal",
                "racetrack \xE2\x8A\x86 ideal-lockset@4", r.racetrack,
                r.idealFine);

    // Sampled legs (granule mode only — see the file comment): an
    // exact per-granule substream can only narrow a per-granule-
    // independent detector's report set, never grow it.
    if (r.sampleRate < 1.0) {
        checkSubset(out, "sampled-subset-of-ideal",
                    "sampled ideal-lockset \xE2\x8A\x86 ideal-lockset",
                    r.idealSampled, r.ideal);
        checkSubset(out, "sampled-subset-of-hb",
                    "sampled happens-before \xE2\x8A\x86 "
                    "happens-before-ideal",
                    r.hbSampled, r.hb);
    }

    return out;
}

} // namespace hard
