/**
 * @file
 * Precise reference analyses for differential fuzzing.
 *
 * The oracles re-implement the Eraser lockset discipline and the
 * vector-clock happens-before relation from the algorithm definitions,
 * consuming a recorded Trace directly — no AccessObserver plumbing, no
 * MetaCache, no shared code with the production detectors beyond the
 * trace format itself. A disagreement between an oracle and the
 * corresponding detector therefore implicates the detector (or the
 * recorder), not a shared helper.
 *
 * Both oracles model unbounded metadata and ignore LineEvicted events,
 * matching the "ideal" detector configurations they are compared
 * against.
 */

#ifndef HARD_FUZZ_ORACLE_HH
#define HARD_FUZZ_ORACLE_HH

#include <set>
#include <utility>

#include "trace/trace.hh"

namespace hard
{

/** Source-level identity of a race report: (granule base, site). */
using ReportKey = std::pair<Addr, SiteId>;

/** An ordered set of report keys (ordered, so diffs are stable). */
using KeySet = std::set<ReportKey>;

/**
 * Reference Eraser lockset analysis of @p trace at @p granularity_bytes
 * granule size. Applies the Figure 2 state machine with exact per-thread
 * lock sets and exact candidate sets, and the §3.5 barrier flash-reset
 * when @p barrier_reset is set. Rwlock events maintain separate
 * read-held and write-held sets: a write intersects with the
 * write-held locks only, a read with the union (mirroring
 * ThreadLocksets::effective, re-derived here independently).
 *
 * Unlike the production detector it tolerates unbalanced lock events
 * (re-acquire and release-of-unheld are ignored), so it can evaluate
 * minimizer-reduced traces.
 *
 * @return the set of (granule, site) keys the discipline flags racy.
 */
KeySet oracleLockset(const Trace &trace, unsigned granularity_bytes,
                     bool barrier_reset = true);

/**
 * Edge-family selection and representation options of the
 * happens-before oracle. Disabling one family yields an ablated
 * oracle: a subject divergence that disappears against it is
 * attributable to that family's missing edges.
 */
struct HbOracleOpts
{
    /** Honor SemaPost→SemaWait edges. */
    bool semaEdges = true;
    /** Honor rwlock release→acquire edges (mode-correct: writers
     * order after all prior holders, readers after writers only). */
    bool rwlockEdges = true;
    /** Honor CondSignal/CondBroadcast→CondWait edges. */
    bool condEdges = true;
    /** Honor AtomicStore→AtomicLoad release-acquire edges. */
    bool atomicEdges = true;
    /**
     * Keep a full per-thread write vector per granule instead of a
     * last-write epoch (DJIT+ semantics): a race with *any* unordered
     * prior write is reported, and read clocks survive writes. The
     * exact reference for DjitPlusDetector.
     */
    bool fullWriteVector = false;
};

/**
 * Reference vector-clock happens-before analysis of @p trace at
 * @p granularity_bytes granule size: full read vectors and a last-write
 * epoch (or, with opts.fullWriteVector, a full write vector) per
 * granule; release→acquire, post→wait, rwlock, condvar, atomic and
 * barrier episodes create the synchronization order per @p opts.
 *
 * @return the set of (granule, site) keys with unordered conflicts.
 */
KeySet oracleHappensBefore(const Trace &trace, unsigned granularity_bytes,
                           const HbOracleOpts &opts = {});

/** Convenience overload: full oracle with/without semaphore edges. */
KeySet oracleHappensBefore(const Trace &trace, unsigned granularity_bytes,
                           bool sema_edges);

} // namespace hard

#endif // HARD_FUZZ_ORACLE_HH
