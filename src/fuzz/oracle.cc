#include "fuzz/oracle.hh"

#include <array>
#include <cstdint>
#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "detectors/vclock.hh"

namespace hard
{

namespace
{

/** Eraser variable phases, re-derived from the paper's Figure 2. */
enum class Phase : std::uint8_t
{
    Untouched,
    SingleThread,
    ReadShared,
    ReadWriteShared,
};

/** Exact candidate set: universe until the first intersection. */
struct Candidate
{
    bool universe = true;
    std::set<LockAddr> locks;

    void
    intersect(const std::set<LockAddr> &held)
    {
        if (universe) {
            universe = false;
            locks = held;
            return;
        }
        std::set<LockAddr> kept;
        for (LockAddr l : locks)
            if (held.count(l))
                kept.insert(l);
        locks = std::move(kept);
    }

    bool empty() const { return !universe && locks.empty(); }
};

struct LsGranule
{
    Phase phase = Phase::Untouched;
    ThreadId owner = invalidThread;
    Candidate cand;
};

/** Last-write epoch plus full read vector, one per granule. */
struct HbGranule
{
    ThreadId writeTid = invalidThread;
    std::uint32_t writeClk = 0;
    std::array<std::uint32_t, kMaxThreads> readClk{};
};

} // namespace

KeySet
oracleLockset(const Trace &trace, unsigned granularity_bytes,
              bool barrier_reset)
{
    hard_panic_if(granularity_bytes == 0 ||
                      !isPowerOf2(granularity_bytes),
                  "oracle-lockset: bad granularity %u", granularity_bytes);

    KeySet out;
    std::map<Addr, LsGranule> shadow;
    std::map<ThreadId, std::set<LockAddr>> held;

    for (const TraceEvent &ev : trace.events) {
        switch (ev.kind) {
          case TraceKind::LockAcquire:
            held[ev.tid].insert(ev.addr);
            break;
          case TraceKind::LockRelease:
            held[ev.tid].erase(ev.addr);
            break;
          case TraceKind::Barrier:
            // Flash-reset: all evidence gathered before the barrier is
            // ordered against everything after it.
            if (barrier_reset)
                shadow.clear();
            break;
          case TraceKind::Read:
          case TraceKind::Write: {
            const bool write = ev.kind == TraceKind::Write;
            const std::set<LockAddr> &locks = held[ev.tid];
            const Addr lo = alignDown(ev.addr, granularity_bytes);
            const Addr hi = ev.addr + (ev.size ? ev.size : 1);
            for (Addr a = lo; a < hi; a += granularity_bytes) {
                LsGranule &g = shadow[a];
                bool track = false;  // refine candidate set?
                bool arm = false;    // empty candidate == race?
                switch (g.phase) {
                  case Phase::Untouched:
                    g.phase = Phase::SingleThread;
                    g.owner = ev.tid;
                    break;
                  case Phase::SingleThread:
                    if (ev.tid == g.owner)
                        break;
                    g.phase = write ? Phase::ReadWriteShared
                                    : Phase::ReadShared;
                    g.owner = invalidThread;
                    track = true;
                    arm = write;
                    break;
                  case Phase::ReadShared:
                    if (write)
                        g.phase = Phase::ReadWriteShared;
                    track = true;
                    arm = write;
                    break;
                  case Phase::ReadWriteShared:
                    track = true;
                    arm = true;
                    break;
                }
                if (track) {
                    g.cand.intersect(locks);
                    if (arm && g.cand.empty())
                        out.insert({a, ev.site});
                }
            }
            break;
          }
          default:
            break; // sema, thread-end, eviction: invisible to lockset
        }
    }
    return out;
}

KeySet
oracleHappensBefore(const Trace &trace, unsigned granularity_bytes,
                    bool sema_edges)
{
    hard_panic_if(granularity_bytes == 0 ||
                      !isPowerOf2(granularity_bytes),
                  "oracle-hb: bad granularity %u", granularity_bytes);

    KeySet out;
    std::map<Addr, HbGranule> shadow;
    std::array<VClock, kMaxThreads> tvc{};
    for (unsigned t = 0; t < kMaxThreads; ++t)
        tvc[t][t] = 1;
    std::map<LockAddr, VClock> lockVc;
    std::map<Addr, VClock> semaVc;

    auto checkTid = [](const TraceEvent &ev) {
        hard_panic_if(ev.tid >= kMaxThreads,
                      "oracle-hb: thread id %u too large", ev.tid);
    };

    for (const TraceEvent &ev : trace.events) {
        switch (ev.kind) {
          case TraceKind::LockAcquire: {
            checkTid(ev);
            auto it = lockVc.find(ev.addr);
            if (it != lockVc.end())
                tvc[ev.tid].join(it->second);
            break;
          }
          case TraceKind::LockRelease:
            checkTid(ev);
            lockVc[ev.addr].join(tvc[ev.tid]);
            ++tvc[ev.tid][ev.tid];
            break;
          case TraceKind::SemaPost:
            checkTid(ev);
            if (sema_edges) {
                semaVc[ev.addr].join(tvc[ev.tid]);
                ++tvc[ev.tid][ev.tid];
            }
            break;
          case TraceKind::SemaWait: {
            checkTid(ev);
            if (sema_edges) {
                auto it = semaVc.find(ev.addr);
                if (it != semaVc.end())
                    tvc[ev.tid].join(it->second);
            }
            break;
          }
          case TraceKind::Barrier: {
            VClock all;
            for (unsigned t = 0; t < kMaxThreads; ++t)
                all.join(tvc[t]);
            for (unsigned t = 0; t < kMaxThreads; ++t) {
                tvc[t] = all;
                ++tvc[t][t];
            }
            break;
          }
          case TraceKind::Read:
          case TraceKind::Write: {
            checkTid(ev);
            const bool write = ev.kind == TraceKind::Write;
            const VClock &vc = tvc[ev.tid];
            const Addr lo = alignDown(ev.addr, granularity_bytes);
            const Addr hi = ev.addr + (ev.size ? ev.size : 1);
            for (Addr a = lo; a < hi; a += granularity_bytes) {
                HbGranule &g = shadow[a];
                bool race = g.writeTid != invalidThread &&
                            g.writeClk > vc[g.writeTid];
                if (write && !race) {
                    for (unsigned u = 0; u < kMaxThreads; ++u) {
                        if (u != ev.tid && g.readClk[u] > vc[u]) {
                            race = true;
                            break;
                        }
                    }
                }
                if (race)
                    out.insert({a, ev.site});
                if (write) {
                    g.writeTid = ev.tid;
                    g.writeClk = vc[ev.tid];
                    g.readClk.fill(0);
                } else {
                    g.readClk[ev.tid] = vc[ev.tid];
                }
            }
            break;
          }
          default:
            break;
        }
    }
    return out;
}

} // namespace hard
