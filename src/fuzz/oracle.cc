#include "fuzz/oracle.hh"

#include <array>
#include <cstdint>
#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "detectors/vclock.hh"

namespace hard
{

namespace
{

/** Eraser variable phases, re-derived from the paper's Figure 2. */
enum class Phase : std::uint8_t
{
    Untouched,
    SingleThread,
    ReadShared,
    ReadWriteShared,
};

/** Exact candidate set: universe until the first intersection. */
struct Candidate
{
    bool universe = true;
    std::set<LockAddr> locks;

    void
    intersect(const std::set<LockAddr> &held)
    {
        if (universe) {
            universe = false;
            locks = held;
            return;
        }
        std::set<LockAddr> kept;
        for (LockAddr l : locks)
            if (held.count(l))
                kept.insert(l);
        locks = std::move(kept);
    }

    bool empty() const { return !universe && locks.empty(); }
};

struct LsGranule
{
    Phase phase = Phase::Untouched;
    ThreadId owner = invalidThread;
    Candidate cand;
};

/**
 * Per-thread holds, split by mode. Independent re-derivation of the
 * detectors' ThreadLocksets: writes are protected only by write-mode
 * holds (mutexes, writer rwlocks); reads by holds in either mode.
 */
struct OracleHeld
{
    std::set<LockAddr> wr;
    std::set<LockAddr> rd;

    std::set<LockAddr>
    effective(bool write) const
    {
        if (write)
            return wr;
        std::set<LockAddr> out = wr;
        out.insert(rd.begin(), rd.end());
        return out;
    }
};

/** Last-write epoch plus full read vector, one per granule. The
 * writeVec component is maintained only in fullWriteVector mode. */
struct HbGranule
{
    ThreadId writeTid = invalidThread;
    std::uint32_t writeClk = 0;
    std::array<std::uint32_t, kMaxThreads> readClk{};
    std::array<std::uint32_t, kMaxThreads> writeVec{};
};

/** Write-release/read-release clocks of one rwlock. */
struct OracleRwVc
{
    VClock writeVc;
    VClock readVc;
};

} // namespace

KeySet
oracleLockset(const Trace &trace, unsigned granularity_bytes,
              bool barrier_reset)
{
    hard_panic_if(granularity_bytes == 0 ||
                      !isPowerOf2(granularity_bytes),
                  "oracle-lockset: bad granularity %u", granularity_bytes);

    KeySet out;
    std::map<Addr, LsGranule> shadow;
    std::map<ThreadId, OracleHeld> held;

    for (const TraceEvent &ev : trace.events) {
        switch (ev.kind) {
          case TraceKind::LockAcquire:
          case TraceKind::RwWrAcquire:
            held[ev.tid].wr.insert(ev.addr);
            break;
          case TraceKind::LockRelease:
          case TraceKind::RwWrRelease:
            held[ev.tid].wr.erase(ev.addr);
            break;
          case TraceKind::RwRdAcquire:
            held[ev.tid].rd.insert(ev.addr);
            break;
          case TraceKind::RwRdRelease:
            held[ev.tid].rd.erase(ev.addr);
            break;
          case TraceKind::Barrier:
            // Flash-reset: all evidence gathered before the barrier is
            // ordered against everything after it.
            if (barrier_reset)
                shadow.clear();
            break;
          case TraceKind::Read:
          case TraceKind::Write: {
            const bool write = ev.kind == TraceKind::Write;
            const std::set<LockAddr> locks =
                held[ev.tid].effective(write);
            const Addr lo = alignDown(ev.addr, granularity_bytes);
            const Addr hi = ev.addr + (ev.size ? ev.size : 1);
            for (Addr a = lo; a < hi; a += granularity_bytes) {
                LsGranule &g = shadow[a];
                bool track = false;  // refine candidate set?
                bool arm = false;    // empty candidate == race?
                switch (g.phase) {
                  case Phase::Untouched:
                    g.phase = Phase::SingleThread;
                    g.owner = ev.tid;
                    break;
                  case Phase::SingleThread:
                    if (ev.tid == g.owner)
                        break;
                    g.phase = write ? Phase::ReadWriteShared
                                    : Phase::ReadShared;
                    g.owner = invalidThread;
                    track = true;
                    arm = write;
                    break;
                  case Phase::ReadShared:
                    if (write)
                        g.phase = Phase::ReadWriteShared;
                    track = true;
                    arm = write;
                    break;
                  case Phase::ReadWriteShared:
                    track = true;
                    arm = true;
                    break;
                }
                if (track) {
                    g.cand.intersect(locks);
                    if (arm && g.cand.empty())
                        out.insert({a, ev.site});
                }
            }
            break;
          }
          default:
            // sema, condvar, atomic, thread-end, eviction: these
            // create ordering, not lock discipline — invisible here.
            break;
        }
    }
    return out;
}

KeySet
oracleHappensBefore(const Trace &trace, unsigned granularity_bytes,
                    const HbOracleOpts &opts)
{
    hard_panic_if(granularity_bytes == 0 ||
                      !isPowerOf2(granularity_bytes),
                  "oracle-hb: bad granularity %u", granularity_bytes);

    KeySet out;
    std::map<Addr, HbGranule> shadow;
    std::array<VClock, kMaxThreads> tvc{};
    for (unsigned t = 0; t < kMaxThreads; ++t)
        tvc[t][t] = 1;
    std::map<LockAddr, VClock> lockVc;
    std::map<Addr, VClock> semaVc;
    std::map<LockAddr, OracleRwVc> rwVc;
    std::map<Addr, VClock> condVc;
    std::map<Addr, VClock> atomVc;

    auto checkTid = [](const TraceEvent &ev) {
        hard_panic_if(ev.tid >= kMaxThreads,
                      "oracle-hb: thread id %u too large", ev.tid);
    };

    // release(map): bank the thread's history and open a new epoch.
    auto release = [&](std::map<Addr, VClock> &vcs,
                       const TraceEvent &ev) {
        vcs[ev.addr].join(tvc[ev.tid]);
        ++tvc[ev.tid][ev.tid];
    };
    auto acquire = [&](const std::map<Addr, VClock> &vcs,
                       const TraceEvent &ev) {
        auto it = vcs.find(ev.addr);
        if (it != vcs.end())
            tvc[ev.tid].join(it->second);
    };

    for (const TraceEvent &ev : trace.events) {
        switch (ev.kind) {
          case TraceKind::LockAcquire:
            checkTid(ev);
            acquire(lockVc, ev);
            break;
          case TraceKind::LockRelease:
            checkTid(ev);
            release(lockVc, ev);
            break;
          case TraceKind::SemaPost:
            checkTid(ev);
            if (opts.semaEdges)
                release(semaVc, ev);
            break;
          case TraceKind::SemaWait:
            checkTid(ev);
            if (opts.semaEdges)
                acquire(semaVc, ev);
            break;
          case TraceKind::RwRdAcquire:
          case TraceKind::RwWrAcquire: {
            checkTid(ev);
            if (!opts.rwlockEdges)
                break;
            auto it = rwVc.find(ev.addr);
            if (it == rwVc.end())
                break;
            // Mode-correct ordering: a writer is ordered after every
            // prior holder; a reader only after prior writers, so
            // concurrent readers stay unordered with each other.
            tvc[ev.tid].join(it->second.writeVc);
            if (ev.kind == TraceKind::RwWrAcquire)
                tvc[ev.tid].join(it->second.readVc);
            break;
          }
          case TraceKind::RwRdRelease:
          case TraceKind::RwWrRelease: {
            checkTid(ev);
            if (!opts.rwlockEdges)
                break;
            OracleRwVc &rw = rwVc[ev.addr];
            (ev.kind == TraceKind::RwWrRelease ? rw.writeVc : rw.readVc)
                .join(tvc[ev.tid]);
            ++tvc[ev.tid][ev.tid];
            break;
          }
          case TraceKind::CondSignal:
          case TraceKind::CondBroadcast:
            checkTid(ev);
            if (opts.condEdges)
                release(condVc, ev);
            break;
          case TraceKind::CondWait:
            checkTid(ev);
            if (opts.condEdges)
                acquire(condVc, ev);
            break;
          case TraceKind::AtomicStore:
            checkTid(ev);
            if (opts.atomicEdges)
                release(atomVc, ev);
            break;
          case TraceKind::AtomicLoad:
            checkTid(ev);
            if (opts.atomicEdges)
                acquire(atomVc, ev);
            break;
          case TraceKind::Barrier: {
            VClock all;
            for (unsigned t = 0; t < kMaxThreads; ++t)
                all.join(tvc[t]);
            for (unsigned t = 0; t < kMaxThreads; ++t) {
                tvc[t] = all;
                ++tvc[t][t];
            }
            break;
          }
          case TraceKind::Read:
          case TraceKind::Write: {
            checkTid(ev);
            const bool write = ev.kind == TraceKind::Write;
            const VClock &vc = tvc[ev.tid];
            const Addr lo = alignDown(ev.addr, granularity_bytes);
            const Addr hi = ev.addr + (ev.size ? ev.size : 1);
            for (Addr a = lo; a < hi; a += granularity_bytes) {
                HbGranule &g = shadow[a];
                bool race = false;
                if (opts.fullWriteVector) {
                    // DJIT+ semantics: any unordered prior write races.
                    for (unsigned u = 0; u < kMaxThreads; ++u) {
                        if (u != ev.tid && g.writeVec[u] > vc[u]) {
                            race = true;
                            break;
                        }
                    }
                } else {
                    race = g.writeTid != invalidThread &&
                           g.writeClk > vc[g.writeTid];
                }
                if (write && !race) {
                    for (unsigned u = 0; u < kMaxThreads; ++u) {
                        if (u != ev.tid && g.readClk[u] > vc[u]) {
                            race = true;
                            break;
                        }
                    }
                }
                if (race)
                    out.insert({a, ev.site});
                if (write) {
                    if (opts.fullWriteVector) {
                        // Full vectors: read clocks survive writes.
                        g.writeVec[ev.tid] = vc[ev.tid];
                    } else {
                        g.writeTid = ev.tid;
                        g.writeClk = vc[ev.tid];
                        g.readClk.fill(0);
                    }
                } else {
                    g.readClk[ev.tid] = vc[ev.tid];
                }
            }
            break;
          }
          default:
            break;
        }
    }
    return out;
}

KeySet
oracleHappensBefore(const Trace &trace, unsigned granularity_bytes,
                    bool sema_edges)
{
    HbOracleOpts opts;
    opts.semaEdges = sema_edges;
    return oracleHappensBefore(trace, granularity_bytes, opts);
}

} // namespace hard
