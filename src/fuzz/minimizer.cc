#include "fuzz/minimizer.hh"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/logging.hh"

namespace hard
{

Trace
sanitizeTrace(const Trace &trace)
{
    Trace out;
    out.siteNames = trace.siteNames;
    out.events.reserve(trace.events.size());
    std::map<ThreadId, std::set<Addr>> held;
    // Per-thread rwlock holds by mode ('r' or 'w'): a subsequence can
    // strand a re-acquire (in any mode) or a release of an unheld or
    // wrong-mode rwlock; both are dropped so detectors that panic on
    // unbalanced rwlock events can evaluate ddmin candidates.
    std::map<ThreadId, std::map<Addr, char>> rwHeld;
    for (const TraceEvent &ev : trace.events) {
        if (ev.kind == TraceKind::LockAcquire) {
            if (!held[ev.tid].insert(ev.addr).second)
                continue;
        } else if (ev.kind == TraceKind::LockRelease) {
            if (held[ev.tid].erase(ev.addr) == 0)
                continue;
        } else if (ev.kind == TraceKind::RwRdAcquire ||
                   ev.kind == TraceKind::RwWrAcquire) {
            auto &holds = rwHeld[ev.tid];
            if (holds.count(ev.addr))
                continue;
            holds[ev.addr] =
                ev.kind == TraceKind::RwWrAcquire ? 'w' : 'r';
        } else if (ev.kind == TraceKind::RwRdRelease ||
                   ev.kind == TraceKind::RwWrRelease) {
            auto &holds = rwHeld[ev.tid];
            auto it = holds.find(ev.addr);
            const char mode =
                ev.kind == TraceKind::RwWrRelease ? 'w' : 'r';
            if (it == holds.end() || it->second != mode)
                continue;
            holds.erase(it);
        }
        out.events.push_back(ev);
    }
    return out;
}

namespace
{

/** Rebuild a trace from the events whose indices are in @p keep. */
Trace
subsequence(const Trace &trace, const std::vector<std::size_t> &keep)
{
    Trace out;
    out.siteNames = trace.siteNames;
    out.events.reserve(keep.size());
    for (std::size_t i : keep)
        out.events.push_back(trace.events[i]);
    return out;
}

} // namespace

Trace
minimizeTrace(const Trace &trace,
              const std::function<bool(const Trace &)> &predicate,
              std::size_t max_probes, MinimizeStats *stats)
{
    Trace base = sanitizeTrace(trace);
    MinimizeStats st;
    st.originalEvents = base.events.size();

    hard_panic_if(!predicate(base),
                  "minimizeTrace: sanitized input does not reproduce "
                  "the failure (nondeterministic predicate?)");
    ++st.probes;

    // Working set: indices into base.events, always in order.
    std::vector<std::size_t> keep(base.events.size());
    for (std::size_t i = 0; i < keep.size(); ++i)
        keep[i] = i;

    auto probe = [&](const std::vector<std::size_t> &cand) {
        ++st.probes;
        return predicate(sanitizeTrace(subsequence(base, cand)));
    };

    // Classic ddmin: split into n chunks, try each chunk alone, then
    // each complement; on success recurse on the reduced set, else
    // double n until chunks are single events.
    std::size_t n = 2;
    while (keep.size() >= 2) {
        if (st.probes >= max_probes) {
            st.capped = true;
            break;
        }
        if (n > keep.size())
            n = keep.size();

        const std::size_t chunk = (keep.size() + n - 1) / n;
        bool reduced = false;

        for (std::size_t c = 0; c * chunk < keep.size(); ++c) {
            if (st.probes >= max_probes)
                break;
            const std::size_t lo = c * chunk;
            const std::size_t hi = std::min(lo + chunk, keep.size());

            // Try the complement of chunk c (i.e. delete the chunk).
            std::vector<std::size_t> cand;
            cand.reserve(keep.size() - (hi - lo));
            cand.insert(cand.end(), keep.begin(),
                        keep.begin() + static_cast<std::ptrdiff_t>(lo));
            cand.insert(cand.end(),
                        keep.begin() + static_cast<std::ptrdiff_t>(hi),
                        keep.end());
            if (cand.empty())
                continue;
            if (probe(cand)) {
                keep = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }

            // Try the chunk on its own (jump straight to a subset).
            if (hi - lo < keep.size() && n > 2) {
                std::vector<std::size_t> alone(
                    keep.begin() + static_cast<std::ptrdiff_t>(lo),
                    keep.begin() + static_cast<std::ptrdiff_t>(hi));
                if (probe(alone)) {
                    keep = std::move(alone);
                    n = 2;
                    reduced = true;
                    break;
                }
            }
        }

        if (!reduced) {
            if (n >= keep.size())
                break; // 1-minimal
            n = std::min(keep.size(), n * 2);
        }
    }

    Trace out = sanitizeTrace(subsequence(base, keep));
    st.finalEvents = out.events.size();
    if (stats != nullptr)
        *stats = st;
    return out;
}

} // namespace hard
