/**
 * @file
 * Cross-detector containment invariants checked by the fuzzer.
 *
 * All comparisons are over (granule base address, site) report keys —
 * the source-level identity a report dedups on — extracted from each
 * detector's ReportSink after driving every detector over the *same*
 * event stream. The enforced relations:
 *
 *  - hard-subset-of-ideal: with unbounded metadata, equal granularity
 *    and lock nesting within the Counter Register range, HARD's Bloom
 *    candidate sets are supersets of the exact candidate sets (each
 *    held lock keeps its own signature bits alive through every AND),
 *    so a Bloom-empty set implies an exact-empty set and HARD's
 *    reports are contained in the ideal lockset detector's. Aliasing
 *    can only *hide* races (the paper's §3.2 missing-race
 *    probability), never invent ones the exact detector lacks.
 *  - hybrid-subset-of-hard: the hybrid runs HARD's lockset protocol
 *    unchanged and only *suppresses* reports whose parties are ordered
 *    by non-lock synchronization (§7).
 *  - fine-subset-of-coarse: Eraser state is monotone and coarse
 *    granules see a superset of the accesses (and hence a subset of
 *    the candidate locks) of each fine granule they contain, so every
 *    fine-granularity ideal report maps into a coarse-granularity one.
 *  - lockset-matches-oracle: the production exact-lockset detector
 *    must agree exactly with the independent reference implementation
 *    replayed over the recorded trace (both granularities).
 *  - hb-matches-oracle: the production vector-clock happens-before
 *    detector must agree exactly with the independent reference.
 *  - hb-matches-fasttrack: FastTrack's adaptive read epochs are
 *    detection-equivalent to full read vectors (Flanagan & Freund).
 *  - djit-matches-oracle: the DJIT+ full-vector detector must agree
 *    exactly with the reference happens-before oracle run in
 *    full-write-vector mode.
 *  - hb-subset-of-djit: at equal granularity the epoch representation
 *    can only forget history the full vectors keep (the last write is
 *    one of the vector's writes; read clocks are never clobbered), so
 *    every epoch-HB report is also a DJIT+ report.
 *  - racetrack-subset-of-ideal: RaceTrack runs the identical Eraser
 *    state machine and effective-lockset intersection as the fine
 *    ideal lockset detector and only ever *suppresses* alarms via its
 *    full happens-before check.
 *  - sampled-subset-of-ideal / sampled-subset-of-hb (only when the
 *    sweep runs with --sample-rate < 1): granule-mode sampling shows
 *    a detector an exact per-granule substream — every granule is
 *    fully observed or fully invisible, and sync events always pass —
 *    so a per-granule-independent detector's sampled report set must
 *    be contained in its unsampled one. Granule mode only: epoch
 *    duty-cycling can make an HB detector flag a stale last-writer
 *    the full run already ordered, so no subset relation holds there.
 *
 * Deliberately NOT checked: lockset vs happens-before in either
 * direction — the families are incomparable (read-shared suppression
 * vs. interleaving sensitivity).
 */

#ifndef HARD_FUZZ_INVARIANTS_HH
#define HARD_FUZZ_INVARIANTS_HH

#include <string>
#include <vector>

#include "detectors/report.hh"
#include "fuzz/oracle.hh"

namespace hard
{

/** @return the deduplicated (granule, site) keys in @p sink. */
KeySet reportKeys(const ReportSink &sink);

/** @return @p keys with every granule base re-aligned to @p gran. */
KeySet coarsenKeys(const KeySet &keys, unsigned gran);

/** Everything checkInvariants() compares. */
struct FuzzReportSet
{
    /** Granularity of hard/ideal/hybrid report keys (bytes). */
    unsigned granularity = 32;
    KeySet hard;             ///< HardDetector, unbounded, granularity
    KeySet ideal;            ///< IdealLockset at granularity
    KeySet idealFine;        ///< IdealLockset at 4 bytes
    KeySet hybrid;           ///< HybridDetector, unbounded, granularity
    KeySet hb;               ///< HappensBefore, HbConfig::ideal()
    KeySet fasttrack;        ///< FastTrack at 4 bytes
    KeySet djit;             ///< DjitPlus at 4 bytes
    KeySet racetrack;        ///< RaceTrack at 4 bytes
    KeySet oracleLs;         ///< reference lockset at granularity
    KeySet oracleLsFine;     ///< reference lockset at 4 bytes
    KeySet oracleHb;         ///< reference happens-before at 4 bytes
    KeySet oracleHbFull;     ///< reference HB, full-write-vector, 4B
    /** Granule-sampling rate of the sampled legs (1 = legs absent). */
    double sampleRate = 1.0;
    KeySet idealSampled;     ///< IdealLockset at granularity, sampled
    KeySet hbSampled;        ///< HappensBefore ideal, sampled
};

/** One violated invariant, with a bounded witness list. */
struct Violation
{
    /** Stable invariant name (see file comment). */
    std::string invariant;
    /** Human-readable relation that failed, e.g. "hard ⊆ ideal". */
    std::string detail;
    /** Offending keys (sorted, capped at kMaxWitnesses). */
    std::vector<ReportKey> witnesses;
    /** Total offending keys before capping. */
    std::size_t totalWitnesses = 0;

    static constexpr std::size_t kMaxWitnesses = 8;
};

/** Names of every invariant, in the order they are checked. */
const std::vector<std::string> &invariantNames();

/** Names of the sampled-leg invariants, checked only when the sweep
 * runs with a granule sampling rate < 1. */
const std::vector<std::string> &sampledInvariantNames();

/**
 * Check every containment/equality invariant over @p r.
 * @return violations in a deterministic order (empty when all hold).
 */
std::vector<Violation> checkInvariants(const FuzzReportSet &r);

} // namespace hard

#endif // HARD_FUZZ_INVARIANTS_HH
