/**
 * @file
 * Bit-manipulation helpers used throughout the cache and Bloom-filter
 * models.
 */

#ifndef HARD_COMMON_BITOPS_HH
#define HARD_COMMON_BITOPS_HH

#include <cstdint>

#include "types.hh"

namespace hard
{

/** @return true if @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/**
 * Extract bits [first, last] (inclusive, last >= first) of @p v,
 * right-justified.
 */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (v >> first) & mask;
}

/** Align @p a down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

} // namespace hard

#endif // HARD_COMMON_BITOPS_HH
