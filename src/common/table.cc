#include "table.hh"

#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace hard
{

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    hard_panic_if(!header_.empty() && row.size() != header_.size(),
                  "Table '%s': row has %zu cells, header has %zu",
                  title_.c_str(), row.size(), header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    // Compute per-column widths over header and all rows.
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = std::max(width[c], header_[c].size());
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto line = [&](char fill, char sep) {
        std::string s;
        s += sep;
        for (std::size_t c = 0; c < ncols; ++c) {
            s += std::string(width[c] + 2, fill);
            s += sep;
        }
        s += '\n';
        return s;
    };
    auto renderRow = [&](const std::vector<std::string> &r) {
        std::string s = "|";
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string &cell = c < r.size() ? r[c] : std::string();
            s += ' ';
            s += cell;
            s += std::string(width[c] - cell.size() + 1, ' ');
            s += '|';
        }
        s += '\n';
        return s;
    };

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    out += line('-', '+');
    if (!header_.empty()) {
        out += renderRow(header_);
        out += line('=', '+');
    }
    for (const auto &r : rows_)
        out += renderRow(r);
    out += line('-', '+');
    return out;
}

std::string
Table::csv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += '"';
            q += ch;
        }
        q += '"';
        return q;
    };
    std::string out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                out += ',';
            out += quote(r[c]);
        }
        out += '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return out;
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

} // namespace hard
