/**
 * @file
 * Deterministic pseudo-random number generator (splitmix64/xorshift).
 *
 * Every stochastic choice in the reproduction (bug-injection sites,
 * workload layouts, Monte-Carlo collision studies) draws from this RNG so
 * that runs are exactly reproducible from a seed.
 */

#ifndef HARD_COMMON_RNG_HH
#define HARD_COMMON_RNG_HH

#include <cstdint>

#include "logging.hh"

namespace hard
{

/**
 * Small, fast, seedable PRNG (xorshift128+ seeded via splitmix64).
 * Not cryptographic; statistically fine for simulation use.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Reset the generator to the stream defined by @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread low-entropy seeds across the state.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** @return the next 64 uniformly random bits. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** @return a uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        hard_panic_if(bound == 0, "Rng::below called with bound 0");
        // Rejection-free modulo is fine for simulation purposes.
        return next64() % bound;
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        hard_panic_if(lo > hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    std::uint64_t s0_ = 0;
    std::uint64_t s1_ = 0;
};

} // namespace hard

#endif // HARD_COMMON_RNG_HH
