/**
 * @file
 * Minimal named-statistics framework, loosely modelled on gem5's stats
 * package: named scalar counters grouped under an owning component, with
 * a flat dump interface used by the experiment harness.
 */

#ifndef HARD_COMMON_STATS_HH
#define HARD_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hard
{

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A group of named counters belonging to one simulated component.
 * Counters are created lazily on first reference and live for the
 * lifetime of the group.
 */
class StatGroup
{
  public:
    /** @param name Dotted prefix for all counters in this group. */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Fetch (creating if needed) the counter called @p stat. */
    Counter &counter(const std::string &stat) { return counters_[stat]; }

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t
    value(const std::string &stat) const
    {
        auto it = counters_.find(stat);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Reset every counter in the group. */
    void
    resetAll()
    {
        for (auto &kv : counters_)
            kv.second.reset();
    }

    const std::string &name() const { return name_; }

    /** Dump "group.stat value" lines, sorted by stat name. */
    std::vector<std::pair<std::string, std::uint64_t>>
    dump() const
    {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        out.reserve(counters_.size());
        for (const auto &kv : counters_)
            out.emplace_back(name_ + "." + kv.first, kv.second.value());
        return out;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace hard

#endif // HARD_COMMON_STATS_HH
