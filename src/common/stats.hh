/**
 * @file
 * Named-statistics framework, loosely modelled on gem5's stats
 * package (v2).
 *
 * Components own a StatGroup of named statistics; four flavours are
 * supported:
 *
 *  - Counter       monotonic 64-bit event counts
 *  - Histogram     bucketed value distributions (linear or log2)
 *  - Distribution  running min/max/mean/stddev summaries
 *  - Formula       derived ratios evaluated lazily at dump time
 *
 * Stat names are unique within a group across all four flavours
 * (collisions panic), and every dump — text or JSON — iterates in
 * sorted name order so output is deterministic and diffable. Groups
 * register into a hierarchical StatRegistry (telemetry/stat_registry)
 * under dotted component names.
 */

#ifndef HARD_COMMON_STATS_HH
#define HARD_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

namespace hard
{

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A bucketed histogram of 64-bit samples.
 *
 * Two bucketing schemes:
 *  - Linear: bucket i covers [i*width, (i+1)*width); the last bucket
 *    absorbs everything above.
 *  - Log2: bucket 0 holds the value 0, bucket i >= 1 covers
 *    [2^(i-1), 2^i); the last bucket absorbs everything above (65
 *    buckets cover the full uint64 range exactly).
 */
class Histogram
{
  public:
    enum class Scale
    {
        Linear,
        Log2,
    };

    /** Log2 over the full uint64 range by default. */
    Histogram() : Histogram(Scale::Log2, 1, 65) {}

    /**
     * @param scale Bucketing scheme.
     * @param bucket_width Linear bucket width (ignored for Log2).
     * @param num_buckets Bucket count; out-of-range samples clamp into
     * the last bucket.
     */
    Histogram(Scale scale, std::uint64_t bucket_width, unsigned num_buckets)
        : scale_(scale), width_(bucket_width ? bucket_width : 1),
          buckets_(num_buckets ? num_buckets : 1, 0)
    {
    }

    /** Record @p v (@p count times). */
    void
    sample(std::uint64_t v, std::uint64_t count = 1)
    {
        if (count == 0)
            return;
        buckets_[bucketOf(v)] += count;
        count_ += count;
        sum_ += v * count;
        if (count_ == count || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** @return the bucket index @p v falls into. */
    std::size_t
    bucketOf(std::uint64_t v) const
    {
        std::size_t idx;
        if (scale_ == Scale::Linear) {
            idx = static_cast<std::size_t>(v / width_);
        } else {
            // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i).
            idx = v == 0 ? 0 : floorLog2U64(v) + 1;
        }
        return idx < buckets_.size() ? idx : buckets_.size() - 1;
    }

    Scale scale() const { return scale_; }
    std::uint64_t bucketWidth() const { return width_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** @return the smallest sample (0 when empty). */
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }

    void
    reset()
    {
        buckets_.assign(buckets_.size(), 0);
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

    /** {"scale","buckets","count","sum","min","max"} (sorted keys). */
    Json
    toJson() const
    {
        Json j = Json::object();
        Json b = Json::array();
        for (std::uint64_t v : buckets_)
            b.push(v);
        j.set("buckets", std::move(b));
        j.set("count", count_);
        j.set("max", max_);
        j.set("min", min());
        j.set("scale", scale_ == Scale::Linear ? "linear" : "log2");
        j.set("sum", sum_);
        if (scale_ == Scale::Linear)
            j.set("width", width_);
        return j;
    }

  private:
    static unsigned
    floorLog2U64(std::uint64_t v)
    {
        unsigned l = 0;
        while (v >>= 1)
            ++l;
        return l;
    }

    Scale scale_ = Scale::Log2;
    std::uint64_t width_ = 1;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/**
 * Running summary of 64-bit samples: count, sum, min, max, mean and
 * (population) standard deviation. Cheaper than a Histogram when only
 * the moments matter.
 */
class Distribution
{
  public:
    void
    sample(std::uint64_t v, std::uint64_t count = 1)
    {
        if (count == 0)
            return;
        const bool first = count_ == 0;
        count_ += count;
        sum_ += v * count;
        sumSq_ += static_cast<double>(v) * static_cast<double>(v) *
            static_cast<double>(count);
        if (first || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                static_cast<double>(count_);
    }

    double
    stddev() const
    {
        if (count_ == 0)
            return 0.0;
        const double m = mean();
        const double var = sumSq_ / static_cast<double>(count_) - m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0;
        sumSq_ = 0.0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

    Json
    toJson() const
    {
        Json j = Json::object();
        j.set("count", count_);
        j.set("max", max_);
        j.set("mean", mean());
        j.set("min", min());
        j.set("stddev", stddev());
        j.set("sum", sum_);
        return j;
    }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    double sumSq_ = 0.0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/**
 * A derived statistic evaluated lazily at dump time (e.g. a miss rate
 * or bytes/transaction ratio over live counters).
 */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    double value() const { return fn_ ? fn_() : 0.0; }

    /** @return num/den * scale, or 0.0 when the denominator is 0. */
    static double
    ratio(std::uint64_t num, std::uint64_t den, double scale = 1.0)
    {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                static_cast<double>(den) * scale;
    }

  private:
    std::function<double()> fn_;
};

/**
 * A group of named statistics belonging to one simulated component.
 * Stats are created lazily on first reference and live for the
 * lifetime of the group; a name is unique across all stat flavours
 * within the group (collisions panic).
 */
class StatGroup
{
  public:
    /** @param name Dotted prefix for all stats in this group. */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Fetch (creating if needed) the counter called @p stat. */
    Counter &
    counter(const std::string &stat)
    {
        if (counters_.find(stat) == counters_.end())
            checkFresh(stat, "counter");
        return counters_[stat];
    }

    /**
     * Fetch (creating if needed) the histogram called @p stat. The
     * shape arguments apply on first creation only.
     */
    Histogram &
    histogram(const std::string &stat,
              Histogram::Scale scale = Histogram::Scale::Log2,
              std::uint64_t bucket_width = 1, unsigned num_buckets = 65)
    {
        auto it = histograms_.find(stat);
        if (it != histograms_.end())
            return it->second;
        checkFresh(stat, "histogram");
        return histograms_
            .emplace(stat, Histogram(scale, bucket_width, num_buckets))
            .first->second;
    }

    /** Fetch (creating if needed) the distribution called @p stat. */
    Distribution &
    distribution(const std::string &stat)
    {
        if (distributions_.find(stat) == distributions_.end())
            checkFresh(stat, "distribution");
        return distributions_[stat];
    }

    /** Register the derived statistic @p stat (collisions panic). */
    void
    formula(const std::string &stat, std::function<double()> fn)
    {
        checkFresh(stat, "formula");
        formulas_.emplace(stat, Formula(std::move(fn)));
    }

    /** Read-only counter lookup; returns 0 for unknown counters. */
    std::uint64_t
    value(const std::string &stat) const
    {
        auto it = counters_.find(stat);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** @return true if any stat flavour named @p stat exists. */
    bool
    has(const std::string &stat) const
    {
        return counters_.count(stat) != 0 ||
            histograms_.count(stat) != 0 ||
            distributions_.count(stat) != 0 ||
            formulas_.count(stat) != 0;
    }

    /**
     * Zero every counter, histogram and distribution in the group
     * (formulas recompute from the zeroed inputs). Used between batch
     * units sharing a process so per-run stats never leak across runs.
     */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
        for (auto &kv : distributions_)
            kv.second.reset();
    }

    /** Back-compat alias for reset(). */
    void resetAll() { reset(); }

    const std::string &name() const { return name_; }

    /**
     * Dump "group.stat value" counter lines, sorted by stat name
     * (std::map iteration order).
     */
    std::vector<std::pair<std::string, std::uint64_t>>
    dump() const
    {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        out.reserve(counters_.size());
        for (const auto &kv : counters_)
            out.emplace_back(name_ + "." + kv.first, kv.second.value());
        return out;
    }

    /**
     * Full JSON form: {"counters":{...},"histograms":{...},
     * "distributions":{...},"formulas":{...}}, each section sorted by
     * stat name and omitted when empty.
     */
    Json
    toJson() const
    {
        Json j = Json::object();
        if (!counters_.empty()) {
            Json c = Json::object();
            for (const auto &kv : counters_)
                c.set(kv.first, kv.second.value());
            j.set("counters", std::move(c));
        }
        if (!distributions_.empty()) {
            Json d = Json::object();
            for (const auto &kv : distributions_)
                d.set(kv.first, kv.second.toJson());
            j.set("distributions", std::move(d));
        }
        if (!formulas_.empty()) {
            Json f = Json::object();
            for (const auto &kv : formulas_)
                f.set(kv.first, kv.second.value());
            j.set("formulas", std::move(f));
        }
        if (!histograms_.empty()) {
            Json h = Json::object();
            for (const auto &kv : histograms_)
                h.set(kv.first, kv.second.toJson());
            j.set("histograms", std::move(h));
        }
        return j;
    }

  private:
    /** Panic if @p stat already exists under a different flavour. */
    void
    checkFresh(const std::string &stat, const char *kind) const
    {
        hard_panic_if(has(stat),
                      "stats: %s '%s.%s' collides with an existing stat",
                      kind, name_.c_str(), stat.c_str());
    }

    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Formula> formulas_;
};

} // namespace hard

#endif // HARD_COMMON_STATS_HH
