/**
 * @file
 * Typed, recoverable simulation errors.
 *
 * The paper's results are aggregates over many randomly-seeded runs,
 * so one pathological run (a bad seed, a bad configuration, a hung
 * workload) must not destroy a whole sweep. Per-run failures therefore
 * throw a SimError subclass carrying structured context — what went
 * wrong, at which cycle, and (for deadlocks) a per-thread diagnostic
 * snapshot — instead of aborting the process the way panic()/fatal()
 * do. The batch driver catches them, classifies each run's outcome
 * (ok | failed | deadlock | budget_exceeded) and keeps going.
 *
 * panic()/fatal() remain for what they were meant for: internal
 * invariant violations and unrecoverable process-level errors.
 */

#ifndef HARD_COMMON_ERROR_HH
#define HARD_COMMON_ERROR_HH

#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hard
{

/** Coarse classification of a recoverable simulation error. */
enum class SimErrorKind
{
    /** Invalid user/machine configuration (bad geometry, unknown
     * workload, incompatible options). */
    Config,
    /** The workload program itself is malformed or misbehaves
     * (unbalanced locks, out-of-bounds access, exit holding a lock). */
    Workload,
    /** The run stopped making forward progress (structural deadlock or
     * watchdog-detected livelock/no-progress). */
    Deadlock,
    /** The run exceeded its cycle budget (maxCycles). */
    CycleBudget,
    /** The run exceeded its host wall-clock budget (wallMsBudget).
     * Distinct from CycleBudget: simulated time can stay within
     * budget while the host spins forever (e.g. a simulator bug or a
     * pathological workload blowup the cycle accounting never
     * reaches). */
    Timeout,
};

/** @return the batch-outcome label for @p kind:
 * "failed" | "deadlock" | "budget_exceeded" | "timeout". */
const char *outcomeName(SimErrorKind kind);

/**
 * Diagnostic snapshot of one simulated thread, captured when a run is
 * declared dead. Says what the thread was doing (pc/op index), what it
 * holds and what it is waiting for — enough to reconstruct the wait
 * cycle from the error message alone.
 */
struct ThreadSnapshot
{
    ThreadId tid = invalidThread;
    /** Printable scheduler state: Ready/WaitLock/WaitBarrier/WaitSema/
     * Done. */
    std::string status;
    /** Next op index in the thread's stream (its "pc"). */
    std::size_t pc = 0;
    /** Total ops in the stream (so pc is meaningful in isolation). */
    std::size_t opCount = 0;
    /** Sync object being awaited (lock word / barrier / semaphore
     * address; invalidAddr when not waiting). */
    Addr waitAddr = invalidAddr;
    /** Kind of @ref waitAddr: "lock", "barrier", "sema" or "". */
    std::string waitKind;
    /** Source site of the blocking operation (invalidSite if none). */
    SiteId waitSite = invalidSite;
    /** Lock words this thread currently holds. */
    std::vector<Addr> heldLocks;

    /** One-line rendering ("t1 WaitLock pc=7/12 holds[0x...] awaits
     * lock 0x..."). */
    std::string describe() const;
};

/** Base class of every recoverable simulation error. */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    SimErrorKind kind() const { return kind_; }
    /** @return the batch-outcome label for this error. */
    const char *outcome() const { return outcomeName(kind_); }
    /** @return the error's class name ("DeadlockError", ...). */
    const char *typeName() const;

  private:
    SimErrorKind kind_;
};

/** Invalid configuration (recoverable per run; fix the config). */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &what)
        : SimError(SimErrorKind::Config, what)
    {
    }
};

/** Malformed or misbehaving workload program. */
class WorkloadError : public SimError
{
  public:
    explicit WorkloadError(const std::string &what)
        : SimError(SimErrorKind::Workload, what)
    {
    }
};

/** The run exceeded its cycle budget (SimConfig::maxCycles). */
class CycleBudgetError : public SimError
{
  public:
    CycleBudgetError(const std::string &what, Cycle cycle, Cycle budget)
        : SimError(SimErrorKind::CycleBudget, what), cycle_(cycle),
          budget_(budget)
    {
    }

    /** Simulated cycle at which the budget was found exceeded. */
    Cycle cycle() const { return cycle_; }
    /** The budget that was exceeded. */
    Cycle budget() const { return budget_; }

  private:
    Cycle cycle_;
    Cycle budget_;
};

/** The run exceeded its host wall-clock budget
 * (SimConfig::wallMsBudget). Unlike every other SimError, whether
 * this fires depends on host speed, so timeout outcomes are
 * machine-dependent and a journaled "timeout" unit may succeed when
 * re-run on a faster host. */
class TimeoutError : public SimError
{
  public:
    TimeoutError(const std::string &what, std::uint64_t elapsedMs,
                 std::uint64_t budgetMs)
        : SimError(SimErrorKind::Timeout, what), elapsedMs_(elapsedMs),
          budgetMs_(budgetMs)
    {
    }

    /** Host milliseconds elapsed when the budget was found exceeded. */
    std::uint64_t elapsedMs() const { return elapsedMs_; }
    /** The wall-clock budget that was exceeded, in milliseconds. */
    std::uint64_t budgetMs() const { return budgetMs_; }

  private:
    std::uint64_t elapsedMs_;
    std::uint64_t budgetMs_;
};

/**
 * The run stopped making forward progress: either a structural
 * deadlock (every live thread blocked on sync that can never be
 * signalled) or a watchdog-detected stall (no op retired for
 * SimConfig::watchdogCycles while live threads spin/poll).
 */
class DeadlockError : public SimError
{
  public:
    DeadlockError(const std::string &what, Cycle cycle, Cycle stalledFor,
                  std::vector<ThreadSnapshot> threads)
        : SimError(SimErrorKind::Deadlock, what), cycle_(cycle),
          stalledFor_(stalledFor), threads_(std::move(threads))
    {
    }

    /** Simulated cycle at which the run was declared dead. */
    Cycle cycle() const { return cycle_; }
    /** Cycles since the last retired operation (0 for structural
     * deadlocks detected immediately). */
    Cycle stalledFor() const { return stalledFor_; }
    /** Per-thread diagnostic snapshot at declaration time. */
    const std::vector<ThreadSnapshot> &threads() const { return threads_; }

  private:
    Cycle cycle_;
    Cycle stalledFor_;
    std::vector<ThreadSnapshot> threads_;
};

/**
 * Classify an in-flight exception into a batch outcome label:
 * "deadlock" / "budget_exceeded" for the dedicated errors, "failed"
 * for every other exception. @p typeName (optional) receives the
 * error's class name, @p message its what() text.
 */
std::string classifyException(std::exception_ptr err,
                              std::string *typeName = nullptr,
                              std::string *message = nullptr);

/** printf-style formatting into a std::string (throw-site helper). */
std::string errfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Conditionally throw an error type whose constructor takes one
 * preformatted message string.
 */
#define hard_throw_if(cond, ErrorType, ...)                                 \
    do {                                                                    \
        if (cond) {                                                         \
            throw ErrorType(::hard::errfmt(__VA_ARGS__));                   \
        }                                                                   \
    } while (0)

} // namespace hard

#endif // HARD_COMMON_ERROR_HH
