/**
 * @file
 * Fundamental scalar types shared by every HARD module.
 */

#ifndef HARD_COMMON_TYPES_HH
#define HARD_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace hard
{

/** Simulated physical/virtual address (flat address space). */
using Addr = std::uint64_t;

/** Simulated time in clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a simulated software thread. */
using ThreadId = std::uint32_t;

/** Identifier of a processor core in the CMP. */
using CoreId = std::uint32_t;

/** Identifier of a lock object (its simulated address). */
using LockAddr = Addr;

/** Interned identifier of a static source site (see SiteRegistry). */
using SiteId = std::uint32_t;

/** Sentinel for "no thread". */
constexpr ThreadId invalidThread = std::numeric_limits<ThreadId>::max();

/** Sentinel for "no core". */
constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel for "no site". */
constexpr SiteId invalidSite = std::numeric_limits<SiteId>::max();

/** Sentinel address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

} // namespace hard

#endif // HARD_COMMON_TYPES_HH
