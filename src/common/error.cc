#include "common/error.hh"

#include <cstdarg>
#include <cstdio>

#include "common/logging.hh"

namespace hard
{

const char *
outcomeName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Config:
      case SimErrorKind::Workload:
        return "failed";
      case SimErrorKind::Deadlock:
        return "deadlock";
      case SimErrorKind::CycleBudget:
        return "budget_exceeded";
      case SimErrorKind::Timeout:
        return "timeout";
    }
    return "failed";
}

const char *
SimError::typeName() const
{
    switch (kind_) {
      case SimErrorKind::Config:
        return "ConfigError";
      case SimErrorKind::Workload:
        return "WorkloadError";
      case SimErrorKind::Deadlock:
        return "DeadlockError";
      case SimErrorKind::CycleBudget:
        return "CycleBudgetError";
      case SimErrorKind::Timeout:
        return "TimeoutError";
    }
    return "SimError";
}

std::string
ThreadSnapshot::describe() const
{
    std::string out = errfmt("t%u %s pc=%zu/%zu", tid, status.c_str(),
                             pc, opCount);
    if (!heldLocks.empty()) {
        out += " holds[";
        for (std::size_t i = 0; i < heldLocks.size(); ++i) {
            if (i)
                out += ",";
            out += errfmt("0x%llx",
                          static_cast<unsigned long long>(heldLocks[i]));
        }
        out += "]";
    }
    if (!waitKind.empty()) {
        out += errfmt(" awaits %s 0x%llx", waitKind.c_str(),
                      static_cast<unsigned long long>(waitAddr));
        if (waitSite != invalidSite)
            out += errfmt(" (site %u)", waitSite);
    }
    return out;
}

std::string
classifyException(std::exception_ptr err, std::string *typeName,
                  std::string *message)
{
    if (typeName)
        typeName->clear();
    if (message)
        message->clear();
    if (!err)
        return "ok";
    try {
        std::rethrow_exception(err);
    } catch (const SimError &e) {
        if (typeName)
            *typeName = e.typeName();
        if (message)
            *message = e.what();
        return e.outcome();
    } catch (const std::exception &e) {
        if (typeName)
            *typeName = "exception";
        if (message)
            *message = e.what();
        return "failed";
    } catch (...) {
        if (typeName)
            *typeName = "exception";
        if (message)
            *message = "unknown exception";
        return "failed";
    }
}

std::string
errfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

} // namespace hard
