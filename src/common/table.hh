/**
 * @file
 * Plain-text table printer used by the benchmark harness to emit
 * paper-style result tables (Tables 2-6) and CSV for post-processing.
 */

#ifndef HARD_COMMON_TABLE_HH
#define HARD_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace hard
{

/**
 * Accumulates rows of string cells and renders them either as an
 * aligned ASCII table or as CSV.
 */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render an aligned, boxed ASCII table. */
    std::string render() const;

    /** Render as CSV (header row first). */
    std::string csv() const;

    const std::string &title() const { return title_; }
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helper: "%.1f"-style fixed formatting of a double. */
std::string fmtDouble(double v, int precision);

} // namespace hard

#endif // HARD_COMMON_TABLE_HH
