/**
 * @file
 * Minimal JSON document model with a serializer and a parser.
 *
 * The batch experiment driver emits machine-readable results (per-run
 * and aggregate detection/overhead numbers) so sweeps can be archived,
 * diffed and post-processed without scraping ASCII tables. The model
 * is deliberately small: objects preserve insertion order (so dumps
 * are deterministic and diffable), numbers distinguish unsigned /
 * signed / floating values (so 64-bit cycle and byte counters
 * round-trip exactly), and parse(dump(v)) == v for every value this
 * library can produce.
 */

#ifndef HARD_COMMON_JSON_HH
#define HARD_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hard
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * One JSON value: null, bool, number, string, array or object.
 *
 * Objects preserve insertion order. Numbers keep their original
 * flavour (Uint / Int / Double) so integer counters are emitted and
 * re-parsed without any floating-point rounding.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Uint,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    /** @name Constructors (one per JSON flavour)
     * @{
     */
    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Uint), uint_(v) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}

    /** @return an empty array value. */
    static Json array();
    /** @return an empty object value. */
    static Json object();
    /** @} */

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @return true for any numeric flavour. */
    bool
    isNumber() const
    {
        return type_ == Type::Uint || type_ == Type::Int ||
            type_ == Type::Double;
    }

    /** @name Scalar accessors (panic on type mismatch)
     * @{
     */
    bool asBool() const;
    std::uint64_t asUint() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;
    /** @} */

    /** @name Array interface
     * @{
     */
    /** Append @p v; panics unless this is an array. */
    Json &push(Json v);
    /** Element count of an array or object (0 otherwise). */
    std::size_t size() const;
    /** @return array element @p i (panics if out of range). */
    const Json &at(std::size_t i) const;
    /** @} */

    /** @name Object interface
     * @{
     */
    /** Set member @p key (insertion-ordered; replaces an existing
     * member in place). Panics unless this is an object. */
    Json &set(const std::string &key, Json v);
    /** @return true if object member @p key exists. */
    bool has(const std::string &key) const;
    /** @return member @p key (panics if missing). */
    const Json &operator[](const std::string &key) const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /** @} */

    /**
     * Serialize.
     * @param indent Spaces per nesting level; 0 yields a compact
     * single-line form.
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text.
     * @param error Receives a diagnostic on failure (optional).
     * @return the parsed value, or a Null value with *error set.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

    /** Structural equality (numeric flavours compare by value). */
    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Write @p v (pretty-printed) to @p path; fatal() on I/O failure. */
void writeJsonFile(const std::string &path, const Json &v);

} // namespace hard

#endif // HARD_COMMON_JSON_HH
