#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hard
{

namespace
{
// Atomic: read by pool workers while the main thread may toggle it.
std::atomic<bool> quietFlag{false};

// Thread-local so each pool worker can capture its own unit's output.
thread_local LogSink logSink;
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = std::move(logSink);
    logSink = std::move(sink);
    return prev;
}

ScopedLogCapture::ScopedLogCapture()
{
    prev_ = setLogSink([this](LogLevel level, const std::string &msg) {
        lines_.push_back(
            (level == LogLevel::Warn ? "warn: " : "info: ") + msg);
    });
}

ScopedLogCapture::~ScopedLogCapture()
{
    setLogSink(std::move(prev_));
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (logSink) {
        logSink(LogLevel::Warn, msg);
        return;
    }
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (logSink) {
        logSink(LogLevel::Inform, msg);
        return;
    }
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace hard
