/**
 * @file
 * gem5-style status/error reporting: panic(), fatal(), warn(), inform().
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly.
 */

#ifndef HARD_COMMON_LOGGING_HH
#define HARD_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

namespace hard
{

/**
 * Report an internal error that should never happen and abort().
 * Use for simulator bugs, not user mistakes.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but non-fatal conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool isQuiet();

/** Severity tag passed to a LogSink. */
enum class LogLevel
{
    Warn,
    Inform,
};

/**
 * A pluggable destination for warn()/inform() lines. The sink
 * receives the formatted message without the "warn: "/"info: " prefix
 * or trailing newline. setQuiet() is honoured *before* the sink is
 * consulted, so quiet mode silences sinks too.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install @p sink as this thread's log destination (thread-local, so
 * batch/fuzz pool workers can each capture their own unit's lines
 * without interleaving on stderr). Pass an empty function to restore
 * the default stderr/stdout behaviour.
 *
 * @return the previously installed sink (empty if none).
 */
LogSink setLogSink(LogSink sink);

/**
 * RAII capture of this thread's warn()/inform() lines into a vector,
 * restoring the previous sink on destruction. Each entry is
 * "warn: msg" or "info: msg" (prefix preserved so the journal reads
 * like the console would have).
 */
class ScopedLogCapture
{
  public:
    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    const std::vector<std::string> &lines() const { return lines_; }

  private:
    std::vector<std::string> lines_;
    LogSink prev_;
};

/** Format printf-style arguments into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/**
 * Internal helper behind the panic_if/fatal_if convenience macros.
 * @{
 */
#define hard_panic_if(cond, ...)                                            \
    do {                                                                    \
        if (cond) {                                                         \
            ::hard::panic(__VA_ARGS__);                                     \
        }                                                                   \
    } while (0)

#define hard_fatal_if(cond, ...)                                            \
    do {                                                                    \
        if (cond) {                                                         \
            ::hard::fatal(__VA_ARGS__);                                     \
        }                                                                   \
    } while (0)
/** @} */

} // namespace hard

#endif // HARD_COMMON_LOGGING_HH
