#include "common/json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace hard
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                // UTF-8 bytes pass through verbatim.
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    hard_panic_if(type_ != Type::Bool, "Json: not a bool");
    return bool_;
}

std::uint64_t
Json::asUint() const
{
    switch (type_) {
      case Type::Uint:
        return uint_;
      case Type::Int:
        hard_panic_if(int_ < 0, "Json: negative value read as uint");
        return static_cast<std::uint64_t>(int_);
      default:
        panic("Json: not an integer");
    }
}

std::int64_t
Json::asInt() const
{
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        hard_panic_if(uint_ > static_cast<std::uint64_t>(INT64_MAX),
                      "Json: uint value overflows int64");
        return static_cast<std::int64_t>(uint_);
      default:
        panic("Json: not an integer");
    }
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::Double:
        return double_;
      case Type::Uint:
        return static_cast<double>(uint_);
      case Type::Int:
        return static_cast<double>(int_);
      default:
        panic("Json: not a number");
    }
}

const std::string &
Json::asString() const
{
    hard_panic_if(type_ != Type::String, "Json: not a string");
    return str_;
}

Json &
Json::push(Json v)
{
    hard_panic_if(type_ != Type::Array, "Json: push on non-array");
    arr_.push_back(std::move(v));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    hard_panic_if(type_ != Type::Array, "Json: at() on non-array");
    hard_panic_if(i >= arr_.size(), "Json: array index %zu out of range",
                  i);
    return arr_[i];
}

Json &
Json::set(const std::string &key, Json v)
{
    hard_panic_if(type_ != Type::Object, "Json: set on non-object");
    for (auto &[k, val] : obj_) {
        if (k == key) {
            val = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

bool
Json::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, val] : obj_)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::operator[](const std::string &key) const
{
    hard_panic_if(type_ != Type::Object, "Json: [] on non-object");
    for (const auto &[k, val] : obj_)
        if (k == key)
            return val;
    panic("Json: no member '%s'", key.c_str());
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    hard_panic_if(type_ != Type::Object, "Json: members() on non-object");
    return obj_;
}

namespace
{

void
appendNewline(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

std::string
formatDouble(double v)
{
    hard_panic_if(!std::isfinite(v),
                  "Json: non-finite double cannot be serialized");
    char buf[40];
    // %.17g round-trips every finite double exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // Keep doubles distinguishable from integers on re-parse.
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[40];
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Uint:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, uint_);
        out += buf;
        break;
      case Type::Int:
        std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
        out += buf;
        break;
      case Type::Double:
        out += formatDouble(double_);
        break;
      case Type::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i != 0)
                out += ',';
            appendNewline(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i != 0)
                out += ',';
            appendNewline(out, indent, depth + 1);
            out += '"';
            out += jsonEscape(obj_[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    Json
    parse(std::string *error)
    {
        error_.clear();
        Json v = value();
        skipWs();
        if (error_.empty() && pos_ != text_.size())
            fail("trailing characters after value");
        if (!error_.empty()) {
            if (error != nullptr)
                *error = error_;
            return Json();
        }
        return v;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why + " at offset " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (c == 't') {
            if (literal("true"))
                return Json(true);
            fail("bad literal");
            return Json();
        }
        if (c == 'f') {
            if (literal("false"))
                return Json(false);
            fail("bad literal");
            return Json();
        }
        if (c == 'n') {
            if (literal("null"))
                return Json();
            fail("bad literal");
            return Json();
        }
        return number();
    }

    Json
    object()
    {
        Json obj = Json::object();
        ++pos_; // '{'
        skipWs();
        if (eat('}'))
            return obj;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return obj;
            }
            std::string key = string();
            if (!eat(':')) {
                fail("expected ':'");
                return obj;
            }
            obj.set(key, value());
            if (!error_.empty())
                return obj;
            if (eat(','))
                continue;
            if (eat('}'))
                return obj;
            fail("expected ',' or '}'");
            return obj;
        }
    }

    Json
    array()
    {
        Json arr = Json::array();
        ++pos_; // '['
        skipWs();
        if (eat(']'))
            return arr;
        while (true) {
            arr.push(value());
            if (!error_.empty())
                return arr;
            if (eat(','))
                continue;
            if (eat(']'))
                return arr;
            fail("expected ',' or ']'");
            return arr;
        }
    }

    std::string
    string()
    {
        std::string out;
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return out;
                    }
                }
                // Encode the code point as UTF-8 (BMP only; the
                // serializer never emits surrogate pairs).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    number()
    {
        std::size_t start = pos_;
        bool negative = false;
        bool floating = false;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            negative = true;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                floating = floating || c == '.' || c == 'e' || c == 'E';
                ++pos_;
            } else {
                break;
            }
        }
        std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-") {
            fail("bad number");
            return Json();
        }
        if (floating)
            return Json(std::strtod(tok.c_str(), nullptr));
        if (negative)
            return Json(static_cast<std::int64_t>(
                std::strtoll(tok.c_str(), nullptr, 10)));
        return Json(static_cast<std::uint64_t>(
            std::strtoull(tok.c_str(), nullptr, 10)));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text).parse(error);
}

bool
Json::operator==(const Json &other) const
{
    // Numeric flavours compare by value so that, e.g., a Uint 3 equals
    // an Int 3 (the parser picks a flavour from the textual form).
    if (isNumber() && other.isNumber()) {
        if (type_ == Type::Double || other.type_ == Type::Double)
            return asDouble() == other.asDouble();
        bool neg_a = type_ == Type::Int && int_ < 0;
        bool neg_b = other.type_ == Type::Int && other.int_ < 0;
        if (neg_a != neg_b)
            return false;
        if (neg_a)
            return int_ == other.int_;
        return asUint() == other.asUint();
    }
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::String:
        return str_ == other.str_;
      case Type::Array:
        return arr_ == other.arr_;
      case Type::Object:
        return obj_ == other.obj_;
      default:
        return false; // numbers handled above
    }
}

void
writeJsonFile(const std::string &path, const Json &v)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    hard_fatal_if(f == nullptr, "cannot open '%s' for writing",
                  path.c_str());
    std::string text = v.dump(2);
    text += '\n';
    std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    int rc = std::fclose(f);
    hard_fatal_if(written != text.size() || rc != 0,
                  "short write to '%s'", path.c_str());
}

} // namespace hard
