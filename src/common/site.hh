/**
 * @file
 * Registry of static source sites.
 *
 * The paper counts false alarms "at source code level": each reported
 * race is mapped back to a static program location, and distinct
 * locations are counted once. Workload programs label every access with
 * a SiteId obtained from this registry; detectors report races against
 * SiteIds so the harness can deduplicate exactly as the paper does.
 */

#ifndef HARD_COMMON_SITE_HH
#define HARD_COMMON_SITE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "types.hh"

namespace hard
{

/** Interns human-readable site names ("app.cc:forces_loop") to SiteIds. */
class SiteRegistry
{
  public:
    /** Intern @p name, returning a stable SiteId. Idempotent. */
    SiteId
    intern(const std::string &name)
    {
        auto it = byName_.find(name);
        if (it != byName_.end())
            return it->second;
        SiteId id = static_cast<SiteId>(names_.size());
        names_.push_back(name);
        byName_.emplace(name, id);
        return id;
    }

    /** @return the name for @p id ("<unknown>" if out of range). */
    const std::string &
    name(SiteId id) const
    {
        static const std::string unknown = "<unknown>";
        return id < names_.size() ? names_[id] : unknown;
    }

    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, SiteId> byName_;
};

} // namespace hard

#endif // HARD_COMMON_SITE_HH
