/**
 * @file
 * Per-granule provenance recorder: the audit trail behind every HARD
 * verdict.
 *
 * A race report (and every HARD-vs-exact-lockset divergence) is the
 * product of invisible micro-state — BFVector intersections, Counter
 * Register saturation (§3.3), metadata displacement (§3.6) and barrier
 * flash-resets (§3.5). The ProvRecorder captures that metadata
 * lifecycle as a bounded ring of events per granule plus a small
 * never-dropped summary, so a report can be rendered as a causal chain
 * and the divergence classifier can attribute extra/missing reports to
 * a concrete mechanism.
 *
 * The recorder is *pull-in only*: detectors hold a `ProvRecorder *`
 * that is null unless explicitly attached (`--explain`), and every
 * hook site is guarded by that null check — the same zero-cost-when-
 * off discipline as the telemetry layers (byte-identity is locked down
 * by tests/test_explain_neutrality.cc). Header-only so the low-level
 * detector libraries can record without a link-time dependency on the
 * classifier library.
 */

#ifndef HARD_EXPLAIN_PROV_HH
#define HARD_EXPLAIN_PROV_HH

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/bloom.hh"
#include "detectors/lockset_state.hh"

namespace hard
{

/** Kinds of provenance events in a granule's audit trail. */
enum class ProvKind : std::uint8_t
{
    /** Candidate-set AND with the Lock Register (HARD side). */
    Narrow = 0,
    /** Candidate-set intersection with an exact lock set. */
    ExactNarrow = 1,
    /** A race report was emitted for this granule. */
    Report = 2,
    /** Metadata lost to L2 displacement (§3.6). */
    MetaLoss = 3,
    /** Fresh metadata line (re)created after a loss. */
    Refetch = 4,
    /** Candidate set broadcast on a shared read (§3.4). */
    Broadcast = 5,
    /** Barrier flash-reset wiped the candidate set (§3.5). */
    FlashReset = 6,
};

/** @return printable name of @p k. */
const char *provKindName(ProvKind k);

/** One provenance event. Fields are kind-dependent; unused stay 0. */
struct ProvEvent
{
    /** ExactNarrow candSize value meaning "still the universe". */
    static constexpr unsigned kUniverse = ~0u;

    ProvKind kind = ProvKind::Narrow;
    Cycle at = 0;
    ThreadId tid = invalidThread;
    SiteId site = invalidSite;
    bool write = false;
    /** Narrow/ExactNarrow: LState transition of the access. */
    LState stateBefore = LState::Virgin;
    LState stateAfter = LState::Virgin;
    /** Narrow: raw BFVector before, Lock Register value, BFVector
     * after. Broadcast: bfAfter = the broadcast candidate set. */
    std::uint32_t bfBefore = 0;
    std::uint32_t lockset = 0;
    std::uint32_t bfAfter = 0;
    /** Narrow: Lock Register bits that have saturated since the last
     * register reset (undercounted — may clear early on release). */
    std::uint32_t satMask = 0;
    /** ExactNarrow: union BFVector signature of the exact held set. */
    std::uint32_t exactSig = 0;
    /** ExactNarrow: exact held-lock count. */
    unsigned heldSize = 0;
    /** ExactNarrow: candidate size after (kUniverse if untouched). */
    unsigned candSize = kUniverse;
    /** FlashReset: barrier episode ordinal. */
    unsigned episode = 0;
};

/** Audit trail of one granule: bounded ring + never-dropped summary. */
struct GranuleProv
{
    /** Most recent events, oldest first; bounded by the ring depth. */
    std::deque<ProvEvent> ring;
    /** Events that fell off the front of the ring. */
    std::uint64_t dropped = 0;

    // --- summary: maintained for the whole run, never dropped ---
    bool accessed = false;
    Cycle firstAccessAt = 0;
    ThreadId firstAccessor = invalidThread;
    ThreadId lastAccessor = invalidThread;
    /** Most recent accessor that differs from lastAccessor — the
     * "other side" a lockset report can name (RaceReport::other). */
    ThreadId lastOtherAccessor = invalidThread;
    Cycle lastOtherAt = 0;

    bool narrowed = false;
    Cycle firstNarrowAt = 0;
    std::uint64_t narrows = 0;
    /** Narrowings performed while the Lock Register had saturated
     * (undercounted) bits — counter-saturation suspects. */
    std::uint64_t satNarrows = 0;

    std::uint64_t losses = 0;
    Cycle lastLossAt = 0;
    std::uint64_t refetches = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t flashes = 0;
    Cycle lastFlashAt = 0;

    std::uint64_t reports = 0;
    Cycle firstReportAt = 0;

    /** Last known candidate state (HARD: raw BFVector). */
    bool haveBf = false;
    std::uint32_t lastBf = 0xffffffffu;
    /** Last known exact candidate size (ExactNarrow side). */
    bool haveExact = false;
    unsigned lastCandSize = ProvEvent::kUniverse;
};

/**
 * Bounded per-granule provenance store for one detector instance.
 *
 * Granules are keyed by their base address in an ordered map, so every
 * iteration (and hence every JSON dump built from one) is
 * deterministic.
 */
class ProvRecorder
{
  public:
    /**
     * @param granularity_bytes Granule size of the observed detector.
     * @param bloom_bits BFVector width (for exact-set signatures).
     * @param ring_depth Events kept per granule before dropping.
     */
    explicit ProvRecorder(unsigned granularity_bytes,
                          unsigned bloom_bits = 16,
                          unsigned ring_depth = kDefaultDepth)
        : gran_(granularity_bytes), bloomBits_(bloom_bits),
          depth_(ring_depth ? ring_depth : 1)
    {
    }

    static constexpr unsigned kDefaultDepth = 32;

    /** Track accessor history of @p granule (call once per access). */
    void
    noteAccess(Addr granule, ThreadId tid, Cycle at)
    {
        GranuleProv &g = granules_[granule];
        if (!g.accessed) {
            g.accessed = true;
            g.firstAccessAt = at;
            g.firstAccessor = tid;
        }
        if (g.lastAccessor != invalidThread && g.lastAccessor != tid) {
            g.lastOtherAccessor = g.lastAccessor;
            g.lastOtherAt = at;
        }
        g.lastAccessor = tid;
    }

    /** @return the last accessor of @p granule other than the current
     * one (invalidThread when single-threaded so far). */
    ThreadId
    lastOther(Addr granule) const
    {
        auto it = granules_.find(granule);
        return it == granules_.end() ? invalidThread
                                     : it->second.lastOtherAccessor;
    }

    /** A HARD candidate-set AND against the Lock Register. */
    void
    recordNarrow(Addr granule, ThreadId tid, SiteId site, bool write,
                 Cycle at, LState state_before, LState state_after,
                 std::uint32_t bf_before, std::uint32_t lockset,
                 std::uint32_t bf_after, std::uint32_t sat_mask)
    {
        GranuleProv &g = granules_[granule];
        if (!g.narrowed) {
            g.narrowed = true;
            g.firstNarrowAt = at;
        }
        ++g.narrows;
        if (sat_mask != 0)
            ++g.satNarrows;
        g.haveBf = true;
        g.lastBf = bf_after;
        ProvEvent e;
        e.kind = ProvKind::Narrow;
        e.at = at;
        e.tid = tid;
        e.site = site;
        e.write = write;
        e.stateBefore = state_before;
        e.stateAfter = state_after;
        e.bfBefore = bf_before;
        e.lockset = lockset;
        e.bfAfter = bf_after;
        e.satMask = sat_mask;
        push(g, e);
    }

    /** An exact-lockset candidate intersection (reference side). */
    void
    recordExactNarrow(Addr granule, ThreadId tid, SiteId site,
                      bool write, Cycle at, LState state_before,
                      LState state_after,
                      const std::set<LockAddr> &held, bool universe_after,
                      unsigned cand_size_after)
    {
        GranuleProv &g = granules_[granule];
        if (!g.narrowed) {
            g.narrowed = true;
            g.firstNarrowAt = at;
        }
        ++g.narrows;
        g.haveExact = true;
        g.lastCandSize =
            universe_after ? ProvEvent::kUniverse : cand_size_after;
        ProvEvent e;
        e.kind = ProvKind::ExactNarrow;
        e.at = at;
        e.tid = tid;
        e.site = site;
        e.write = write;
        e.stateBefore = state_before;
        e.stateAfter = state_after;
        e.heldSize = static_cast<unsigned>(held.size());
        for (LockAddr l : held)
            e.exactSig |= BfVector::signatureBits(l, bloomBits_);
        e.candSize = g.lastCandSize;
        push(g, e);
    }

    /** A race report was emitted for @p granule. */
    void
    recordReport(Addr granule, ThreadId tid, SiteId site, bool write,
                 Cycle at)
    {
        GranuleProv &g = granules_[granule];
        if (g.reports == 0)
            g.firstReportAt = at;
        ++g.reports;
        ProvEvent e;
        e.kind = ProvKind::Report;
        e.at = at;
        e.tid = tid;
        e.site = site;
        e.write = write;
        push(g, e);
    }

    /**
     * Metadata of the line at @p line_addr was displaced (§3.6): every
     * already-tracked granule inside the line loses its history.
     */
    void
    recordMetaLoss(Addr line_addr, unsigned line_bytes, Cycle at)
    {
        forEachInLine(line_addr, line_bytes, [&](GranuleProv &g) {
            ++g.losses;
            g.lastLossAt = at;
            g.haveBf = false;
            g.haveExact = false;
            ProvEvent e;
            e.kind = ProvKind::MetaLoss;
            e.at = at;
            push(g, e);
        });
    }

    /** A fresh metadata line replaced previously-lost state. */
    void
    recordRefetch(Addr line_addr, unsigned line_bytes, Cycle at)
    {
        forEachInLine(line_addr, line_bytes, [&](GranuleProv &g) {
            if (g.losses == 0)
                return; // first fetch, nothing was lost
            ++g.refetches;
            ProvEvent e;
            e.kind = ProvKind::Refetch;
            e.at = at;
            push(g, e);
        });
    }

    /** The candidate set of @p granule rode a §3.4 broadcast. */
    void
    recordBroadcast(Addr granule, Cycle at, std::uint32_t bf)
    {
        GranuleProv &g = granules_[granule];
        ++g.broadcasts;
        ProvEvent e;
        e.kind = ProvKind::Broadcast;
        e.at = at;
        e.bfAfter = bf;
        push(g, e);
    }

    /** A §3.5 barrier flash-reset wiped every candidate set. */
    void
    recordFlashReset(Cycle at, unsigned episode)
    {
        flashResets_.emplace_back(at, episode);
        for (auto &kv : granules_) {
            GranuleProv &g = kv.second;
            ++g.flashes;
            g.lastFlashAt = at;
            g.haveBf = false;
            g.haveExact = false;
            ProvEvent e;
            e.kind = ProvKind::FlashReset;
            e.at = at;
            e.episode = episode;
            push(g, e);
        }
    }

    /** @return the trail for @p granule, or null if never touched. */
    const GranuleProv *
    find(Addr granule) const
    {
        auto it = granules_.find(granule);
        return it == granules_.end() ? nullptr : &it->second;
    }

    /** All granule trails, in address order (deterministic). */
    const std::map<Addr, GranuleProv> &granules() const
    {
        return granules_;
    }

    /** Every flash-reset as (cycle, episode), in occurrence order. */
    const std::vector<std::pair<Cycle, unsigned>> &flashResets() const
    {
        return flashResets_;
    }

    /** @return true if a flash-reset happened in cycles (lo, hi]. */
    bool
    flashBetween(Cycle lo, Cycle hi) const
    {
        for (const auto &fr : flashResets_)
            if (fr.first > lo && fr.first <= hi)
                return true;
        return false;
    }

    unsigned granularity() const { return gran_; }
    unsigned bloomBits() const { return bloomBits_; }
    unsigned ringDepth() const { return depth_; }

  private:
    void
    push(GranuleProv &g, const ProvEvent &e)
    {
        if (g.ring.size() >= depth_) {
            g.ring.pop_front();
            ++g.dropped;
        }
        g.ring.push_back(e);
    }

    template <typename Fn>
    void
    forEachInLine(Addr line_addr, unsigned line_bytes, Fn &&fn)
    {
        auto it = granules_.lower_bound(line_addr);
        for (; it != granules_.end() && it->first < line_addr + line_bytes;
             ++it)
            fn(it->second);
    }

    unsigned gran_;
    unsigned bloomBits_;
    unsigned depth_;
    std::map<Addr, GranuleProv> granules_;
    std::vector<std::pair<Cycle, unsigned>> flashResets_;
};

inline const char *
provKindName(ProvKind k)
{
    switch (k) {
      case ProvKind::Narrow: return "narrow";
      case ProvKind::ExactNarrow: return "exact-narrow";
      case ProvKind::Report: return "report";
      case ProvKind::MetaLoss: return "meta-loss";
      case ProvKind::Refetch: return "refetch";
      case ProvKind::Broadcast: return "broadcast";
      case ProvKind::FlashReset: return "flash-reset";
    }
    return "?";
}

} // namespace hard

#endif // HARD_EXPLAIN_PROV_HH
