/**
 * @file
 * hard.explain.v1 serialization and the human-readable rendering of
 * provenance chains / divergence attributions.
 */

#ifndef HARD_EXPLAIN_EXPLAIN_JSON_HH
#define HARD_EXPLAIN_EXPLAIN_JSON_HH

#include <string>

#include "common/json.hh"
#include "explain/classifier.hh"
#include "trace/trace.hh"

namespace hard
{

/**
 * Full `hard.explain.v1` document: subject config echo, every subject
 * report with its causal chain, and the attributed divergence list.
 * @param workload Label recorded in the document (may be empty).
 */
Json explainJson(const ExplainResult &res, const Trace &trace,
                 const std::string &workload);

/**
 * Compact attribution block for embedding in `hard.batch.v2` runs and
 * `hard.fuzz.case.v1` documents: extra/missing totals plus one count
 * per category (all defined categories always present).
 */
Json attributionJson(const ExplainResult &res);

/**
 * Terminal rendering: one block per subject report (its causal chain,
 * oldest event first) followed by the divergence attributions.
 */
std::string renderExplain(const ExplainResult &res, const Trace &trace);

} // namespace hard

#endif // HARD_EXPLAIN_EXPLAIN_JSON_HH
