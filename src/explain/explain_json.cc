#include "explain/explain_json.hh"

#include <cstdio>

#include "core/bloom.hh"

namespace hard
{

namespace
{

std::string
hex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
siteName(const Trace &trace, SiteId site)
{
    if (site == invalidSite || site >= trace.siteNames.size())
        return "";
    return trace.siteNames[site];
}

const char *
subjectName(const ExplainConfig &cfg)
{
    return cfg.subject == ExplainConfig::Subject::Hard
        ? "hard"
        : "ideal-lockset";
}

Json
eventJson(const ProvEvent &e)
{
    Json j = Json::object();
    j.set("kind", provKindName(e.kind));
    j.set("at", e.at);
    switch (e.kind) {
      case ProvKind::Narrow:
        j.set("tid", unsigned{e.tid});
        j.set("site", unsigned{e.site});
        j.set("write", e.write);
        j.set("stateBefore", lstateName(e.stateBefore));
        j.set("stateAfter", lstateName(e.stateAfter));
        j.set("bfBefore", e.bfBefore);
        j.set("lockset", e.lockset);
        j.set("bfAfter", e.bfAfter);
        if (e.satMask != 0)
            j.set("saturatedBits", e.satMask);
        break;
      case ProvKind::ExactNarrow:
        j.set("tid", unsigned{e.tid});
        j.set("site", unsigned{e.site});
        j.set("write", e.write);
        j.set("stateBefore", lstateName(e.stateBefore));
        j.set("stateAfter", lstateName(e.stateAfter));
        j.set("heldLocks", e.heldSize);
        j.set("heldSignature", e.exactSig);
        if (e.candSize == ProvEvent::kUniverse)
            j.set("candidate", "universe");
        else
            j.set("candidate", e.candSize);
        break;
      case ProvKind::Report:
        j.set("tid", unsigned{e.tid});
        j.set("site", unsigned{e.site});
        j.set("write", e.write);
        break;
      case ProvKind::MetaLoss:
      case ProvKind::Refetch:
        break;
      case ProvKind::Broadcast:
        j.set("bf", e.bfAfter);
        break;
      case ProvKind::FlashReset:
        j.set("episode", e.episode);
        break;
    }
    return j;
}

Json
categoriesJson(const ExplainResult &res)
{
    Json cats = Json::object();
    for (const std::string &name : divergenceCategoryNames()) {
        auto it = res.categoryCounts.find(name);
        cats.set(name,
                 it == res.categoryCounts.end() ? 0u : it->second);
    }
    return cats;
}

} // namespace

Json
explainJson(const ExplainResult &res, const Trace &trace,
            const std::string &workload)
{
    Json doc = Json::object();
    doc.set("schema", "hard.explain.v1");
    if (!workload.empty())
        doc.set("workload", workload);
    doc.set("subject", subjectName(res.cfg));

    Json cfg = Json::object();
    cfg.set("granularityBytes", res.granularity);
    if (res.cfg.subject == ExplainConfig::Subject::Hard) {
        const HardConfig &h = res.cfg.hard;
        cfg.set("bloomBits", h.bloomBits);
        cfg.set("counterBits", h.counterBits);
        cfg.set("metaBytes", h.metaGeometry.sizeBytes);
        cfg.set("unbounded", h.unbounded);
        cfg.set("coupleToCaches", h.coupleToCaches);
        cfg.set("barrierReset", h.barrierReset);
    } else {
        cfg.set("barrierReset", res.cfg.ideal.barrierReset);
    }
    cfg.set("fineGranularityBytes", res.cfg.fineGranularity);
    cfg.set("ringDepth", res.cfg.ringDepth);
    doc.set("config", std::move(cfg));
    doc.set("events", std::uint64_t{res.eventsReplayed});

    Json reports = Json::array();
    for (const ExplainedReport &er : res.reports) {
        const RaceReport &r = er.report;
        Json jr = Json::object();
        jr.set("addr", r.addr);
        jr.set("size", r.size);
        jr.set("site", unsigned{r.site});
        jr.set("siteName", siteName(trace, r.site));
        jr.set("tid", unsigned{r.tid});
        jr.set("write", r.write);
        jr.set("at", r.at);
        if (r.other != invalidThread)
            jr.set("other", unsigned{r.other});
        else
            jr.set("other", Json());
        jr.set("droppedEvents", er.dropped);
        Json chain = Json::array();
        for (const ProvEvent &e : er.chain)
            chain.push(eventJson(e));
        jr.set("chain", std::move(chain));
        reports.push(std::move(jr));
    }
    doc.set("reports", std::move(reports));

    Json div = Json::object();
    div.set("reference",
            "exact-lockset@" + std::to_string(res.cfg.fineGranularity) +
                "B");
    unsigned extra = 0, missing = 0;
    for (const Divergence &d : res.divergences)
        (d.extra ? extra : missing) += 1;
    div.set("extra", extra);
    div.set("missing", missing);
    div.set("categories", categoriesJson(res));
    Json list = Json::array();
    for (const Divergence &d : res.divergences) {
        Json jd = Json::object();
        jd.set("direction", d.extra ? "extra" : "missing");
        jd.set("addr", d.addr);
        jd.set("site", unsigned{d.site});
        jd.set("siteName", siteName(trace, d.site));
        jd.set("category", divergenceCategoryName(d.category));
        jd.set("evidence", d.evidence);
        list.push(std::move(jd));
    }
    div.set("divergences", std::move(list));
    doc.set("divergence", std::move(div));
    return doc;
}

Json
attributionJson(const ExplainResult &res)
{
    Json j = Json::object();
    unsigned extra = 0, missing = 0;
    for (const Divergence &d : res.divergences)
        (d.extra ? extra : missing) += 1;
    j.set("extra", extra);
    j.set("missing", missing);
    j.set("categories", categoriesJson(res));
    return j;
}

std::string
renderExplain(const ExplainResult &res, const Trace &trace)
{
    std::string out;
    auto line = [&out](const std::string &s) {
        out += s;
        out += '\n';
    };

    line("explain: subject=" + std::string(subjectName(res.cfg)) +
         " granularity=" + std::to_string(res.granularity) + "B" +
         " events=" + std::to_string(res.eventsReplayed) +
         " reports=" + std::to_string(res.reports.size()) +
         " divergences=" + std::to_string(res.divergences.size()));

    for (const ExplainedReport &er : res.reports) {
        const RaceReport &r = er.report;
        std::string head = "report granule=" + hex(r.addr) + " site=" +
            std::to_string(r.site);
        std::string sn = siteName(trace, r.site);
        if (!sn.empty())
            head += " (" + sn + ")";
        head += std::string(" ") + (r.write ? "write" : "read") +
            " by t" + std::to_string(r.tid) + " at cycle " +
            std::to_string(r.at);
        if (r.other != invalidThread)
            head += ", other side t" + std::to_string(r.other);
        line(head);
        if (er.dropped > 0)
            line("  (" + std::to_string(er.dropped) +
                 " older events dropped from the ring)");
        for (const ProvEvent &e : er.chain) {
            std::string s = "  [" + std::to_string(e.at) + "] " +
                provKindName(e.kind);
            switch (e.kind) {
              case ProvKind::Narrow:
                s += std::string(" t") + std::to_string(e.tid) +
                    (e.write ? " write " : " read ") +
                    lstateName(e.stateBefore) + "->" +
                    lstateName(e.stateAfter) + " bf " +
                    hex(e.bfBefore) + " & lockset " + hex(e.lockset) +
                    " -> " + hex(e.bfAfter);
                if (e.satMask != 0)
                    s += " [saturated " + hex(e.satMask) + "]";
                break;
              case ProvKind::ExactNarrow:
                s += std::string(" t") + std::to_string(e.tid) +
                    (e.write ? " write " : " read ") +
                    lstateName(e.stateBefore) + "->" +
                    lstateName(e.stateAfter) + " held=" +
                    std::to_string(e.heldSize) + " candidate=" +
                    (e.candSize == ProvEvent::kUniverse
                         ? std::string("universe")
                         : std::to_string(e.candSize));
                break;
              case ProvKind::Report:
                s += " t" + std::to_string(e.tid) + " site " +
                    std::to_string(e.site);
                break;
              case ProvKind::MetaLoss:
                s += " metadata displaced (§3.6)";
                break;
              case ProvKind::Refetch:
                s += " fresh metadata after loss";
                break;
              case ProvKind::Broadcast:
                s += " candidate " + hex(e.bfAfter) +
                    " broadcast (§3.4)";
                break;
              case ProvKind::FlashReset:
                s += " barrier episode " + std::to_string(e.episode) +
                    " flash-reset (§3.5)";
                break;
            }
            line(s);
        }
    }

    line("divergence vs exact-lockset@" +
         std::to_string(res.cfg.fineGranularity) + "B:");
    if (res.divergences.empty())
        line("  none — subject and ideal agree on every report key");
    for (const Divergence &d : res.divergences) {
        std::string s = std::string("  ") +
            (d.extra ? "extra" : "missing") + " granule=" +
            hex(d.addr) + " site=" + std::to_string(d.site);
        std::string sn = siteName(trace, d.site);
        if (!sn.empty())
            s += " (" + sn + ")";
        s += ": " + std::string(divergenceCategoryName(d.category)) +
            " — " + d.evidence;
        line(s);
    }
    return out;
}

} // namespace hard
