/**
 * @file
 * Divergence classifier: run the subject detector alongside exact-
 * lockset references over one recorded trace and attribute every
 * extra/missing report to a concrete HARD mechanism.
 *
 * Three references are replayed with the subject:
 *
 *  - R  — exact lockset at the *subject's* granularity, unbounded,
 *         mirroring the subject's barrier-reset setting. Any subject
 *         divergence from R is an implementation artifact (Bloom
 *         encoding, Counter Register, bounded metadata); agreement
 *         with R pushes the divergence out to the granularity layer.
 *  - R2 — exact lockset at the subject's granularity *with* the §3.5
 *         flash-reset (only built when the subject disables it), used
 *         to attribute barrier-reset divergences.
 *  - R3 — exact lockset at the subject's granularity with HARD's
 *         mode-blind rwlock view (only built for hard subjects): a
 *         missing report that R has but R3 also lacks is explained by
 *         the hardware seeing one lock-word RMW per rwlock acquire
 *         regardless of mode, not by any Bloom artifact.
 *  - F  — exact lockset at fine (4-byte) granularity with the flash-
 *         reset: the paper's "ideal" (§4). The divergence universe is
 *         subject vs. coarsen(F).
 *
 * Attribution is a priority chain over the provenance evidence, so
 * every divergence lands in exactly one category.
 */

#ifndef HARD_EXPLAIN_CLASSIFIER_HH
#define HARD_EXPLAIN_CLASSIFIER_HH

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/hard_detector.hh"
#include "detectors/ideal_lockset.hh"
#include "explain/prov.hh"
#include "trace/trace.hh"

namespace hard
{

/** Source-level report identity: (granule base address, site). */
using ExplainKey = std::pair<Addr, SiteId>;
using ExplainKeySet = std::set<ExplainKey>;

/** Root causes a HARD-vs-exact-lockset divergence is attributed to. */
enum class DivergenceCategory : std::uint8_t
{
    /** BFVector signature mis-represents the exact lock set (§3.2). */
    BloomAliasing = 0,
    /** 2-bit Counter Register saturated; a bit cleared early (§3.3). */
    CounterSaturation = 1,
    /** Candidate set lost to L2 displacement (§3.6). */
    MetadataEviction = 2,
    /** §3.5 flash-reset semantics differ from the reference. */
    BarrierReset = 3,
    /** Coarse-granule false sharing vs the 4-byte ideal. */
    Granularity = 4,
    /** HARD's mode-blind rwlock view (one lock-word RMW either way)
     * kept a reader hold in the candidate set where the mode-aware
     * reference excludes it for writes — the report is missing by
     * design, not by Bloom artifact. */
    RwlockModeBlind = 5,
    /** No mechanism matched (must stay empty on honest configs). */
    Unknown = 6,
};

/** @return stable kebab-case name of @p c (JSON vocabulary). */
const char *divergenceCategoryName(DivergenceCategory c);

/** All category names, in enum order (schema validation). */
const std::vector<std::string> &divergenceCategoryNames();

/** What to explain and against which ideal. */
struct ExplainConfig
{
    enum class Subject : std::uint8_t
    {
        Hard,
        IdealLockset,
    };

    Subject subject = Subject::Hard;
    /** Subject hardware config (Subject::Hard). */
    HardConfig hard;
    /** Subject config (Subject::IdealLockset). */
    IdealLocksetConfig ideal;
    /** Granularity of the F reference (the paper ideal: 4 bytes). */
    unsigned fineGranularity = 4;
    /** Events kept per granule in each provenance ring. */
    unsigned ringDepth = ProvRecorder::kDefaultDepth;

    /**
     * Optional subject builder overrides (e.g. the fuzzer's sabotaged
     * detector variants). When set, the classifier instruments the
     * returned instance instead of a stock detector; the references
     * stay exact, so the attribution names what the override broke.
     */
    std::function<std::unique_ptr<HardDetector>(const HardConfig &)>
        makeHard;
    std::function<std::unique_ptr<IdealLocksetDetector>(
        const IdealLocksetConfig &)>
        makeIdeal;
};

/** One subject report plus the granule's recorded causal chain. */
struct ExplainedReport
{
    RaceReport report;
    /** Recent provenance of the granule, oldest first. */
    std::vector<ProvEvent> chain;
    /** Events that fell off the bounded ring before the report. */
    std::uint64_t dropped = 0;
};

/** One attributed extra/missing report key. */
struct Divergence
{
    /** true: subject-only report; false: reference-only (missing). */
    bool extra = false;
    Addr addr = 0;
    SiteId site = invalidSite;
    DivergenceCategory category = DivergenceCategory::Unknown;
    /** Human-readable causal note backing the attribution. */
    std::string evidence;
};

/** Everything explainTrace() derives from one trace. */
struct ExplainResult
{
    ExplainConfig cfg;
    /** Subject granularity in bytes (divergence keys align to it). */
    unsigned granularity = 32;
    std::size_t eventsReplayed = 0;

    /** Subject reports with their provenance chains, in sink order. */
    std::vector<ExplainedReport> reports;
    /** Attributed divergences: extras first, then missing, each in
     * key order (deterministic). */
    std::vector<Divergence> divergences;
    /** Count per category name; every defined category is present. */
    std::map<std::string, unsigned> categoryCounts;

    /** Subject report keys. */
    ExplainKeySet subjectKeys;
    /** F (fine ideal) keys coarsened to the subject granularity. */
    ExplainKeySet referenceKeys;
    /** R (exact at subject granularity) keys. */
    ExplainKeySet sameGranKeys;

    /** @return true when no divergence fell into Unknown. */
    bool unknownFree() const;
};

/**
 * Replay @p trace through an instrumented subject and the exact
 * references and attribute every divergence.
 */
ExplainResult explainTrace(const Trace &trace, const ExplainConfig &cfg);

} // namespace hard

#endif // HARD_EXPLAIN_CLASSIFIER_HH
