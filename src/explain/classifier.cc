#include "explain/classifier.hh"

#include <cstdio>
#include <memory>

#include "common/bitops.hh"
#include "trace/replayer.hh"

namespace hard
{

const char *
divergenceCategoryName(DivergenceCategory c)
{
    switch (c) {
      case DivergenceCategory::BloomAliasing: return "bloom-aliasing";
      case DivergenceCategory::CounterSaturation:
        return "counter-saturation";
      case DivergenceCategory::MetadataEviction:
        return "metadata-eviction";
      case DivergenceCategory::BarrierReset: return "barrier-reset";
      case DivergenceCategory::Granularity: return "granularity";
      case DivergenceCategory::RwlockModeBlind:
        return "rwlock-mode-blind";
      case DivergenceCategory::Unknown: return "unknown";
    }
    return "?";
}

const std::vector<std::string> &
divergenceCategoryNames()
{
    static const std::vector<std::string> names = {
        "bloom-aliasing",   "counter-saturation", "metadata-eviction",
        "barrier-reset",    "granularity",        "rwlock-mode-blind",
        "unknown",
    };
    return names;
}

bool
ExplainResult::unknownFree() const
{
    auto it = categoryCounts.find("unknown");
    return it == categoryCounts.end() || it->second == 0;
}

namespace
{

std::string
hex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

ExplainKeySet
keysOf(const ReportSink &sink)
{
    ExplainKeySet out;
    for (const RaceReport &r : sink.reports())
        out.insert({r.addr, r.site});
    return out;
}

ExplainKeySet
coarsen(const ExplainKeySet &keys, unsigned gran)
{
    ExplainKeySet out;
    for (const ExplainKey &k : keys)
        out.insert({alignDown(k.first, gran), k.second});
    return out;
}

/**
 * Cross-reference a subject Narrow against the exact reference's
 * ExactNarrow at the same (cycle, thread): bits of the exact held
 * set's signature that the subject's Lock Register lacked. Those are
 * the fingerprints of deaf/mis-hashed Bloom state and of counters
 * that saturated and cleared a bit early.
 */
struct UnderRep
{
    bool found = false;          ///< any matched narrow pair
    std::uint32_t missingBits = 0;
    std::uint32_t missingSat = 0; ///< missing bits that had saturated
    Cycle at = 0;
};

/** R3: exact lockset with HARD's mode-blind rwlock view — a reader
 * hold enters (and leaves) the write-held set like a mutex. */
class ModeBlindLockset : public IdealLocksetDetector
{
  public:
    using IdealLocksetDetector::IdealLocksetDetector;

    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        (void)writer;
        onLockAcquire(ev);
    }

    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        (void)writer;
        onLockRelease(ev);
    }
};

UnderRep
findUnderRepresentation(const GranuleProv *subj, const GranuleProv *ref)
{
    UnderRep u;
    if (subj == nullptr || ref == nullptr)
        return u;
    for (const ProvEvent &n : subj->ring) {
        if (n.kind != ProvKind::Narrow)
            continue;
        for (const ProvEvent &e : ref->ring) {
            if (e.kind != ProvKind::ExactNarrow || e.at != n.at ||
                e.tid != n.tid)
                continue;
            std::uint32_t missing = e.exactSig & ~n.lockset;
            if (missing != 0) {
                u.found = true;
                u.missingBits |= missing;
                u.missingSat |= missing & n.satMask;
                u.at = n.at;
            }
        }
    }
    return u;
}

} // namespace

ExplainResult
explainTrace(const Trace &trace, const ExplainConfig &cfg)
{
    const bool hard_subject =
        cfg.subject == ExplainConfig::Subject::Hard;
    const unsigned gran = hard_subject ? cfg.hard.granularityBytes
                                       : cfg.ideal.granularityBytes;
    const bool subj_reset = hard_subject ? cfg.hard.barrierReset
                                         : cfg.ideal.barrierReset;
    const unsigned bloom_bits = cfg.hard.bloomBits;

    ExplainResult res;
    res.cfg = cfg;
    res.granularity = gran;

    // Subject, instrumented.
    ProvRecorder subj_prov(gran, bloom_bits, cfg.ringDepth);
    std::unique_ptr<HardDetector> hard_det;
    std::unique_ptr<IdealLocksetDetector> ideal_det;
    RaceDetector *subject = nullptr;
    if (hard_subject) {
        hard_det = cfg.makeHard
            ? cfg.makeHard(cfg.hard)
            : std::make_unique<HardDetector>("explain-subject",
                                             cfg.hard);
        hard_det->attachProvenance(&subj_prov);
        subject = hard_det.get();
    } else {
        IdealLocksetConfig ic = cfg.ideal;
        ic.tolerateUnbalanced = true;
        ideal_det = cfg.makeIdeal
            ? cfg.makeIdeal(ic)
            : std::make_unique<IdealLocksetDetector>("explain-subject",
                                                     ic);
        ideal_det->attachProvenance(&subj_prov);
        subject = ideal_det.get();
    }

    // R: exact lockset at the subject's granularity and barrier
    // semantics — isolates implementation artifacts.
    IdealLocksetConfig rc;
    rc.granularityBytes = gran;
    rc.barrierReset = subj_reset;
    rc.tolerateUnbalanced = true;
    IdealLocksetDetector ref_same("explain-ref-same", rc);
    ProvRecorder ref_prov(gran, bloom_bits, cfg.ringDepth);
    ref_same.attachProvenance(&ref_prov);

    // R2: exact at subject granularity WITH the flash-reset; only
    // needed to attribute barrier-reset divergences of no-reset
    // subjects.
    std::unique_ptr<IdealLocksetDetector> ref_reset;
    if (!subj_reset) {
        IdealLocksetConfig r2c = rc;
        r2c.barrierReset = true;
        ref_reset = std::make_unique<IdealLocksetDetector>(
            "explain-ref-reset", r2c);
    }

    // R3: exact at subject granularity with HARD's mode-blind rwlock
    // view; only hard subjects can diverge from R this way.
    std::unique_ptr<IdealLocksetDetector> ref_blind;
    if (hard_subject)
        ref_blind =
            std::make_unique<ModeBlindLockset>("explain-ref-blind", rc);

    // F: the paper ideal — exact, fine-grained, flash-reset on.
    IdealLocksetConfig fc;
    fc.granularityBytes = cfg.fineGranularity;
    fc.barrierReset = true;
    fc.tolerateUnbalanced = true;
    IdealLocksetDetector ref_fine("explain-ref-fine", fc);

    std::vector<AccessObserver *> observers = {subject, &ref_same,
                                               &ref_fine};
    if (ref_reset)
        observers.push_back(ref_reset.get());
    if (ref_blind)
        observers.push_back(ref_blind.get());
    res.eventsReplayed = replayTrace(trace, observers);

    res.subjectKeys = keysOf(subject->sink());
    res.sameGranKeys = keysOf(ref_same.sink());
    res.referenceKeys = coarsen(keysOf(ref_fine.sink()), gran);
    const ExplainKeySet ref_reset_keys =
        ref_reset ? keysOf(ref_reset->sink()) : ExplainKeySet{};
    const ExplainKeySet ref_blind_keys =
        ref_blind ? keysOf(ref_blind->sink()) : ExplainKeySet{};

    // Subject reports with causal chains.
    for (const RaceReport &r : subject->sink().reports()) {
        ExplainedReport er;
        er.report = r;
        if (const GranuleProv *gp = subj_prov.find(r.addr)) {
            er.chain.assign(gp->ring.begin(), gp->ring.end());
            er.dropped = gp->dropped;
        }
        res.reports.push_back(std::move(er));
    }

    for (const std::string &name : divergenceCategoryNames())
        res.categoryCounts[name] = 0;
    auto attribute = [&res](bool extra, const ExplainKey &k,
                            DivergenceCategory cat, std::string why) {
        Divergence d;
        d.extra = extra;
        d.addr = k.first;
        d.site = k.second;
        d.category = cat;
        d.evidence = std::move(why);
        ++res.categoryCounts[divergenceCategoryName(cat)];
        res.divergences.push_back(std::move(d));
    };

    // Extra: subject reports the 4-byte ideal does not have.
    for (const ExplainKey &k : res.subjectKeys) {
        if (res.referenceKeys.count(k))
            continue;
        if (res.sameGranKeys.count(k)) {
            if (!subj_reset && ref_reset_keys.count(k) == 0) {
                attribute(true, k, DivergenceCategory::BarrierReset,
                          "exact lockset at " + std::to_string(gran) +
                              "B granules reports this site only when "
                              "the §3.5 flash-reset is disabled — "
                              "pre-barrier evidence was held against "
                              "post-barrier accesses");
                continue;
            }
            attribute(true, k, DivergenceCategory::Granularity,
                      "exact lockset at " + std::to_string(gran) +
                          "B granules reports the same site; the " +
                          std::to_string(cfg.fineGranularity) +
                          "B ideal does not — coarse-granule false "
                          "sharing merged unrelated accesses");
            continue;
        }
        // Even exact tracking at the subject's granularity stays
        // clean: the subject's lock set under-represented the truth.
        UnderRep u = findUnderRepresentation(subj_prov.find(k.first),
                                             ref_prov.find(k.first));
        const GranuleProv *gp = subj_prov.find(k.first);
        if ((u.found && u.missingSat != 0) ||
            (!u.found && gp && gp->satNarrows > 0)) {
            attribute(true, k, DivergenceCategory::CounterSaturation,
                      "Lock Register bits " + hex(u.missingSat) +
                          " had saturated counters (§3.3); lost "
                          "increments cleared them early and the "
                          "candidate set over-narrowed");
        } else if (u.found) {
            attribute(true, k, DivergenceCategory::BloomAliasing,
                      "Lock Register value lacked signature bits " +
                          hex(u.missingBits) +
                          " of the exactly-held locks at cycle " +
                          std::to_string(u.at) +
                          " — the Bloom encoding under-represented "
                          "the lock set");
        } else if (gp && gp->narrows > 0) {
            attribute(true, k, DivergenceCategory::BloomAliasing,
                      "candidate set narrowed to Bloom-empty while the "
                      "exact candidate set stayed non-empty");
        } else {
            attribute(true, k, DivergenceCategory::Unknown,
                      "no provenance recorded for this granule");
        }
    }

    // Missing: 4-byte-ideal reports the subject never produced.
    for (const ExplainKey &k : res.referenceKeys) {
        if (res.subjectKeys.count(k))
            continue;
        const GranuleProv *gp = subj_prov.find(k.first);
        const GranuleProv *rp = ref_prov.find(k.first);
        if (res.sameGranKeys.count(k) == 0) {
            attribute(false, k, DivergenceCategory::Granularity,
                      "exact lockset at " + std::to_string(gran) +
                          "B granules also lacks this report — the "
                          "divergence is purely the granule size");
            continue;
        }
        const Cycle ref_at = rp && rp->reports ? rp->firstReportAt : 0;
        // Mode-blindness is checked first: R3 is exact, so when it
        // also lacks the report no probabilistic artifact needs to be
        // invoked — the miss is fully explained by the hardware's
        // mode-blind rwlock view keeping the reader hold alive.
        if (ref_blind && ref_blind_keys.count(k) == 0) {
            attribute(false, k, DivergenceCategory::RwlockModeBlind,
                      "the mode-blind exact reference also lacks this "
                      "report — a reader-mode rwlock hold stayed in "
                      "the candidate set the hardware tracks, where "
                      "the mode-aware reference excludes it");
            continue;
        }
        if (gp && gp->losses > 0) {
            attribute(false, k, DivergenceCategory::MetadataEviction,
                      "granule metadata was displaced " +
                          std::to_string(gp->losses) +
                          " time(s) (§3.6), last at cycle " +
                          std::to_string(gp->lastLossAt) +
                          "; the narrowing history restarted from the "
                          "all-ones candidate set");
            continue;
        }
        if (hard_subject && gp && gp->narrowed && gp->haveBf &&
            !BfVector::rawSetEmpty(gp->lastBf, bloom_bits)) {
            attribute(false, k, DivergenceCategory::BloomAliasing,
                      "exact candidate set emptied by cycle " +
                          std::to_string(ref_at) +
                          " but the BFVector still held bits " +
                          hex(gp->lastBf) +
                          " — aliased signatures kept the set alive "
                          "(§3.2 missing-race probability)");
            continue;
        }
        if (subj_reset && gp && gp->flashes > 0) {
            attribute(false, k, DivergenceCategory::BarrierReset,
                      "a §3.5 flash-reset wiped the granule's "
                      "evidence before the report point");
            continue;
        }
        if (hard_subject) {
            attribute(false, k, DivergenceCategory::BloomAliasing,
                      "subject kept a non-empty candidate set where "
                      "the exact reference reported");
        } else {
            attribute(false, k, DivergenceCategory::Unknown,
                      "exact subject diverged from the equally-"
                      "configured exact reference");
        }
    }

    return res;
}

} // namespace hard
