#include "detectors/happens_before.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

HappensBeforeDetector::HappensBeforeDetector(const std::string &name,
                                             const HbConfig &cfg)
    : RaceDetector(name), cfg_(cfg), meta_(cfg.metaGeometry, cfg.unbounded)
{
    const unsigned line = cfg_.metaGeometry.lineBytes;
    hard_fatal_if(cfg_.granularityBytes == 0 ||
                      cfg_.granularityBytes > line ||
                      line % cfg_.granularityBytes != 0,
                  "hb: granularity %u does not divide line size %u",
                  cfg_.granularityBytes, line);
    hard_fatal_if(line / cfg_.granularityBytes > 8,
                  "hb: more than 8 granules per line unsupported");
    // Initial vector clocks: each thread starts at its own epoch 1.
    for (unsigned t = 0; t < kMaxThreads; ++t)
        threadVc_[t][t] = 1;
}

void
HappensBeforeDetector::access(const MemEvent &ev, bool write)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    bool fresh = false;
    Line &line = meta_.lookup(ev.addr, fresh);

    const unsigned gran = cfg_.granularityBytes;
    const Addr line_base = cfg_.metaGeometry.lineAddr(ev.addr);
    const Addr lo = alignDown(ev.addr, gran);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const VClock &vc = threadVc_[ev.tid];

    for (Addr a = lo; a < hi; a += gran) {
        Granule &g = line.g[(a - line_base) / gran];

        bool race = !g.lastWrite.ordered(vc);
        ThreadId other = race ? g.lastWrite.tid : invalidThread;
        if (write && !race) {
            for (unsigned u = 0; u < kMaxThreads; ++u) {
                if (u != ev.tid && g.readClk[u] > vc[u]) {
                    race = true;
                    other = static_cast<ThreadId>(u);
                    break;
                }
            }
        }
        if (race)
            emit(ev.tid, a, gran, ev.site, write, ev.at, other);

        if (write) {
            g.lastWrite = Epoch{ev.tid, vc[ev.tid]};
            g.readClk.fill(0);
        } else {
            g.readClk[ev.tid] = vc[ev.tid];
        }
    }
}

void
HappensBeforeDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
HappensBeforeDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
HappensBeforeDetector::onLockAcquire(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    auto it = lockVc_.find(ev.lock);
    if (it != lockVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
HappensBeforeDetector::onLockRelease(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    VClock &lvc = lockVc_[ev.lock];
    lvc.join(threadVc_[ev.tid]);
    // Advance the releasing thread into a new epoch so later accesses
    // are not ordered before the released critical section.
    ++threadVc_[ev.tid][ev.tid];
}

void
HappensBeforeDetector::onSemaPost(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    // Happens-before understands hand-crafted synchronization (this is
    // precisely where it generates fewer false alarms than lockset):
    // a post releases the poster's history into the semaphore...
    VClock &svc = semaVc_[ev.lock];
    svc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
HappensBeforeDetector::onSemaWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    // ... and a completed wait acquires it.
    auto it = semaVc_.find(ev.lock);
    if (it != semaVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
HappensBeforeDetector::onRwLockAcquire(const SyncEvent &ev, bool writer)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    auto it = rwVc_.find(ev.lock);
    if (it == rwVc_.end())
        return;
    // Writers are ordered after every prior holder; readers only after
    // prior writers (two readers in the same read-side epoch stay
    // concurrent).
    threadVc_[ev.tid].join(it->second.writeVc);
    if (writer)
        threadVc_[ev.tid].join(it->second.readVc);
}

void
HappensBeforeDetector::onRwLockRelease(const SyncEvent &ev, bool writer)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    RwVc &rw = rwVc_[ev.lock];
    (writer ? rw.writeVc : rw.readVc).join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
HappensBeforeDetector::onCondSignal(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    // Signal/broadcast releases the signaller's history into the
    // condvar; a completed wait acquires it (same shape as semaphores).
    VClock &cvc = condVc_[ev.lock];
    cvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
HappensBeforeDetector::onCondBroadcast(const SyncEvent &ev)
{
    onCondSignal(ev);
}

void
HappensBeforeDetector::onCondWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    auto it = condVc_.find(ev.lock);
    if (it != condVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
HappensBeforeDetector::onAtomicStore(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    // Store-release publishes the storer's history at the location;
    // load-acquire picks it up. Sound for the recorded global
    // completion order (each load observes the latest prior store).
    VClock &avc = atomVc_[ev.lock];
    avc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
HappensBeforeDetector::onAtomicLoad(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hb: thread id %u too large",
                  ev.tid);
    auto it = atomVc_.find(ev.lock);
    if (it != atomVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
HappensBeforeDetector::onBarrier(const BarrierEvent &ev)
{
    (void)ev;
    // All participants synchronize: join everything, then advance each
    // thread into a fresh epoch.
    VClock all;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        all.join(threadVc_[t]);
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        threadVc_[t] = all;
        ++threadVc_[t][t];
    }
}

} // namespace hard
