#include "detectors/lockset_state.hh"

#include "common/logging.hh"

namespace hard
{

const char *
lstateName(LState s)
{
    switch (s) {
      case LState::Virgin:
        return "Virgin";
      case LState::Exclusive:
        return "Exclusive";
      case LState::Shared:
        return "Shared";
      case LState::SharedModified:
        return "SharedModified";
    }
    return "?";
}

LStateStep
lstateAccess(LState cur, ThreadId owner, ThreadId tid, bool write)
{
    LStateStep out;
    switch (cur) {
      case LState::Virgin:
        // First touch: enter Exclusive owned by the toucher. No
        // candidate update, no reports (initialization is safe).
        out.next = LState::Exclusive;
        out.owner = tid;
        break;

      case LState::Exclusive:
        if (tid == owner) {
            // Still single-threaded: remain Exclusive, no updates.
            out.next = LState::Exclusive;
            out.owner = owner;
            break;
        }
        // Second thread arrives: the sharing phase begins and the
        // candidate set starts being maintained.
        out.next = write ? LState::SharedModified : LState::Shared;
        out.owner = invalidThread;
        out.updateCandidate = true;
        out.reportIfEmpty = write;
        break;

      case LState::Shared:
        // Read-shared data: keep refining the candidate set but stay
        // silent; unlocked read-only sharing is safe.
        out.next = write ? LState::SharedModified : LState::Shared;
        out.owner = invalidThread;
        out.updateCandidate = true;
        out.reportIfEmpty = write;
        break;

      case LState::SharedModified:
        out.next = LState::SharedModified;
        out.owner = invalidThread;
        out.updateCandidate = true;
        out.reportIfEmpty = true;
        break;
    }
    return out;
}

std::set<LockAddr>
ThreadLocksets::effective(bool write) const
{
    if (write)
        return writeHeld;
    std::set<LockAddr> out = writeHeld;
    out.insert(readHeld.begin(), readHeld.end());
    return out;
}

} // namespace hard
