#include "detectors/report.hh"

namespace hard
{

void
ReportSink::report(const RaceReport &r)
{
    ++dynamic_;
    // Key: site in the high bits, granule base in the low bits. Granule
    // bases are < 2^40 in practice; sites < 2^24.
    std::uint64_t key =
        (static_cast<std::uint64_t>(r.site) << 40) ^ (r.addr & 0xffffffffffULL);
    if (!seenPairs_.insert(key).second)
        return;
    sites_.insert(r.site);
    kept_.push_back(r);
}

bool
ReportSink::overlaps(Addr lo, unsigned len) const
{
    const Addr hi = lo + len;
    for (const auto &r : kept_) {
        if (r.addr < hi && lo < r.addr + r.size)
            return true;
    }
    return false;
}

void
ReportSink::clear()
{
    kept_.clear();
    sites_.clear();
    seenPairs_.clear();
    dynamic_ = 0;
}

} // namespace hard
