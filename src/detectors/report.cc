#include "detectors/report.hh"

#include "telemetry/sampler.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_event.hh"

namespace hard
{

void
ReportSink::report(const RaceReport &r)
{
    ++dynamic_;
    // Key: site in the high bits, granule base in the low bits. Granule
    // bases are < 2^40 in practice; sites < 2^24.
    std::uint64_t key =
        (static_cast<std::uint64_t>(r.site) << 40) ^ (r.addr & 0xffffffffffULL);
    if (!seenPairs_.insert(key).second)
        return;
    sites_.insert(r.site);
    kept_.push_back(r);
}

bool
ReportSink::overlaps(Addr lo, unsigned len) const
{
    const Addr hi = lo + len;
    for (const auto &r : kept_) {
        if (r.addr < hi && lo < r.addr + r.size)
            return true;
    }
    return false;
}

void
ReportSink::clear()
{
    kept_.clear();
    sites_.clear();
    seenPairs_.clear();
    dynamic_ = 0;
}

void
RaceDetector::syncStats()
{
    stats_.counter("dynamicReports").set(sink_.dynamicCount());
    stats_.counter("reportSites").set(sink_.distinctSiteCount());
}

void
RaceDetector::registerStats(StatRegistry &registry)
{
    // The six-detector batteries may (in principle) carry duplicate
    // display names; the registry's group names are unique, so only
    // the first same-named detector registers.
    if (registry.find(stats_.name()) != nullptr)
        return;
    registry.add(stats_);
    registry.addRefreshHook([this] { syncStats(); });
}

void
RaceDetector::registerProbes(IntervalSampler &sampler)
{
    sampler.addRate(name_ + ".reportsPerMcycle",
                    [this] { return sink_.dynamicCount(); }, 1e6);
    // Per-interval new dynamic reports (Counter probes emit deltas):
    // the live time-to-last-report signal monitoring dashboards key
    // on.
    sampler.addCounter(name_ + ".newReports",
                       [this] { return sink_.dynamicCount(); });
}

void
RaceDetector::emit(ThreadId tid, Addr addr, unsigned size, SiteId site,
                   bool write, Cycle at, ThreadId other)
{
    sink_.report(RaceReport{tid, addr, size, site, write, at, other});
    if (tracer_ && tracer_->wants(kTraceDetector)) {
        Json args = Json::object();
        args.set("addr", addr);
        args.set("detector", name_);
        args.set("site", site);
        args.set("tid", tid);
        args.set("write", write);
        tracer_->instant(kTraceDetector, EventTracer::kDetectorTrack,
                         name_ + ":race", at, std::move(args));
    }
}

} // namespace hard
