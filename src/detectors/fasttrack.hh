/**
 * @file
 * FastTrack-style epoch-optimized happens-before detector.
 *
 * The baseline HappensBeforeDetector keeps a full read vector clock
 * per granule. FastTrack's observation (Flanagan & Freund, PLDI'09)
 * is that reads are usually totally ordered too, so a single "read
 * epoch" suffices on the fast path; the representation adaptively
 * inflates to a full read vector only while reads are genuinely
 * concurrent. Detection results are identical — asserted against the
 * vector-clock implementation by property tests — while the common
 * case does O(1) work instead of O(threads).
 *
 * Included as an alternative baseline implementation: it shows the
 * detector interface supports different algorithmic trade-offs, and
 * bench_micro quantifies the constant-factor win.
 */

#ifndef HARD_DETECTORS_FASTTRACK_HH
#define HARD_DETECTORS_FASTTRACK_HH

#include <array>
#include <unordered_map>

#include "detectors/meta_cache.hh"
#include "detectors/report.hh"
#include "detectors/vclock.hh"

namespace hard
{

/** Epoch-optimized happens-before detector (FastTrack-style). */
class FastTrackDetector : public RaceDetector
{
  public:
    /**
     * @param name Detector name for reporting.
     * @param granularity_bytes Shadow granularity (4..32).
     */
    FastTrackDetector(const std::string &name,
                      unsigned granularity_bytes = 4);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onSemaPost(const SyncEvent &ev) override;
    void onSemaWait(const SyncEvent &ev) override;
    void onRwLockAcquire(const SyncEvent &ev, bool writer) override;
    void onRwLockRelease(const SyncEvent &ev, bool writer) override;
    void onCondSignal(const SyncEvent &ev) override;
    void onCondBroadcast(const SyncEvent &ev) override;
    void onCondWait(const SyncEvent &ev) override;
    void onAtomicStore(const SyncEvent &ev) override;
    void onAtomicLoad(const SyncEvent &ev) override;

    /** @return reads handled on the O(1) same-epoch fast path. */
    std::uint64_t fastPathReads() const { return fastReads_; }

    /** @return granules currently holding an inflated read vector. */
    std::uint64_t inflations() const { return inflations_; }

  private:
    /** Shadow state of one granule. */
    struct Shadow
    {
        Epoch lastWrite{};
        /** Read epoch (valid while not inflated). */
        Epoch lastRead{};
        /** Inflated read vector (allocated only when needed). */
        std::unique_ptr<VClock> readVc;
    };

    void access(const MemEvent &ev, bool write);

    /** Per-rwlock release clocks (see HappensBeforeDetector::RwVc). */
    struct RwVc
    {
        VClock writeVc;
        VClock readVc;
    };

    unsigned gran_;
    std::unordered_map<Addr, Shadow> shadow_;
    std::array<VClock, kMaxThreads> threadVc_{};
    std::unordered_map<LockAddr, VClock> lockVc_;
    std::unordered_map<Addr, VClock> semaVc_;
    std::unordered_map<LockAddr, RwVc> rwVc_;
    std::unordered_map<Addr, VClock> condVc_;
    std::unordered_map<Addr, VClock> atomVc_;
    std::uint64_t fastReads_ = 0;
    std::uint64_t inflations_ = 0;
};

} // namespace hard

#endif // HARD_DETECTORS_FASTTRACK_HH
