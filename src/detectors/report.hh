/**
 * @file
 * Race reports and the common RaceDetector base class.
 *
 * The paper counts false positives "at source code level" (§5.1): every
 * report is mapped back to a static site and distinct sites are counted
 * once. ReportSink performs that deduplication eagerly so that long
 * runs do not accumulate unbounded dynamic-report lists.
 */

#ifndef HARD_DETECTORS_REPORT_HH
#define HARD_DETECTORS_REPORT_HH

#include <cstdint>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "sim/observer.hh"

namespace hard
{

/** One potential data race, reported at granule granularity. */
struct RaceReport
{
    /** Thread whose access triggered the report. */
    ThreadId tid = invalidThread;
    /** Base address of the racing granule. */
    Addr addr = 0;
    /** Granule size in bytes. */
    unsigned size = 0;
    /** Static site of the triggering access. */
    SiteId site = invalidSite;
    /** True if the triggering access was a write. */
    bool write = false;
    /** Report cycle. */
    Cycle at = 0;
    /**
     * The other side of the race, when the algorithm knows it
     * (happens-before variants report the unordered prior accessor;
     * lockset is pairless and leaves this invalid).
     */
    ThreadId other = invalidThread;
};

/**
 * Collects race reports with source-level deduplication.
 *
 * Only the first dynamic report per (site, granule) pair is stored;
 * total dynamic report counts are still tracked.
 */
class ReportSink
{
  public:
    /** Record a report (deduplicated). */
    void report(const RaceReport &r);

    /** @return stored (first-per-site-and-granule) reports. */
    const std::vector<RaceReport> &reports() const { return kept_; }

    /** @return the set of distinct static sites reported. */
    const std::set<SiteId> &sites() const { return sites_; }

    /** @return distinct source-level alarm count (the paper's metric). */
    std::size_t distinctSiteCount() const { return sites_.size(); }

    /** @return total dynamic reports, including deduplicated ones. */
    std::uint64_t dynamicCount() const { return dynamic_; }

    /**
     * @return true if any stored report's byte range overlaps
     * [lo, lo+len).
     */
    bool overlaps(Addr lo, unsigned len) const;

    /** Forget everything (reused sinks in sweeps). */
    void clear();

  private:
    std::vector<RaceReport> kept_;
    std::set<SiteId> sites_;
    std::unordered_set<std::uint64_t> seenPairs_;
    std::uint64_t dynamic_ = 0;
};

/**
 * Base class for all race detectors: an AccessObserver with a name and
 * a ReportSink.
 */
class RaceDetector : public AccessObserver
{
  public:
    explicit RaceDetector(std::string name)
        : name_(std::move(name)), stats_("detector." + name_)
    {
    }

    const std::string &name() const { return name_; }
    ReportSink &sink() { return sink_; }
    const ReportSink &sink() const { return sink_; }

    /** This detector's "detector.<name>" statistics group. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Hook invoked by the harness after the simulation finishes. */
    virtual void finalize() {}

    /**
     * Mirror internal state (sink counts, algorithm-specific structs)
     * into stats(). Invoked by the registry's refresh hook before
     * every dump/sample, never on the access hot path.
     */
    virtual void syncStats();

    /**
     * Register stats() under "detector.<name>". When two same-named
     * detectors observe one System only the first registers (the
     * registry's group names are unique).
     */
    void registerStats(StatRegistry &registry) override;

    void attachTracer(EventTracer *tracer) override { tracer_ = tracer; }

    /** Base probes: dynamic reports per Mcycle. */
    void registerProbes(IntervalSampler &sampler) override;

  protected:
    /**
     * Emit a race report into the sink (and onto the detector trace
     * track when tracing is enabled).
     */
    void emit(ThreadId tid, Addr addr, unsigned size, SiteId site,
              bool write, Cycle at, ThreadId other = invalidThread);

    /** Trace sink for subclass instants; null when tracing is off. */
    EventTracer *tracer_ = nullptr;

  private:
    std::string name_;
    ReportSink sink_;
    StatGroup stats_;
};

} // namespace hard

#endif // HARD_DETECTORS_REPORT_HH
