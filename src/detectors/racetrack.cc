#include "detectors/racetrack.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

RaceTrackDetector::RaceTrackDetector(const std::string &name,
                                     const RaceTrackConfig &cfg)
    : RaceDetector(name), cfg_(cfg)
{
    hard_fatal_if(cfg_.granularityBytes == 0 ||
                      !isPowerOf2(cfg_.granularityBytes),
                  "racetrack: bad granularity %u", cfg_.granularityBytes);
    for (unsigned t = 0; t < kMaxThreads; ++t)
        threadVc_[t][t] = 1;
}

const std::set<LockAddr> &
RaceTrackDetector::lockset(ThreadId tid) const
{
    static const std::set<LockAddr> empty;
    auto it = held_.find(tid);
    return it == held_.end() ? empty : it->second.writeHeld;
}

const std::set<LockAddr> &
RaceTrackDetector::readLockset(ThreadId tid) const
{
    static const std::set<LockAddr> empty;
    auto it = held_.find(tid);
    return it == held_.end() ? empty : it->second.readHeld;
}

void
RaceTrackDetector::access(const MemEvent &ev, bool write)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    const unsigned gran = cfg_.granularityBytes;
    const Addr lo = alignDown(ev.addr, gran);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const std::set<LockAddr> locks = held_[ev.tid].effective(write);
    const VClock &vc = threadVc_[ev.tid];

    for (Addr a = lo; a < hi; a += gran) {
        Granule &g = shadow_[a];
        LStateStep step = lstateAccess(g.state, g.owner, ev.tid, write);
        g.state = step.next;
        g.owner = step.owner;
        if (step.updateCandidate) {
            g.candidate.intersect(locks);
            if (step.reportIfEmpty && g.candidate.empty()) {
                // The lockset side flags a violation; the adaptive
                // side withdraws it when every other thread's last
                // access is ordered before this one by *any*
                // synchronization, lock edges included.
                bool all_ordered = true;
                ThreadId other = invalidThread;
                for (unsigned u = 0; u < kMaxThreads; ++u) {
                    if (u == ev.tid)
                        continue;
                    if (g.accessClk[u] > vc[u]) {
                        all_ordered = false;
                        other = static_cast<ThreadId>(u);
                        break;
                    }
                }
                if (all_ordered)
                    ++suppressed_;
                else
                    emit(ev.tid, a, gran, ev.site, write, ev.at, other);
            }
        }
        g.accessClk[ev.tid] = vc[ev.tid];
    }
}

void
RaceTrackDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
RaceTrackDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
RaceTrackDetector::onLockAcquire(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    ThreadLocksets &ls = held_[ev.tid];
    bool inserted = ls.writeHeld.insert(ev.lock).second;
    hard_panic_if(!inserted && !cfg_.tolerateUnbalanced,
                  "racetrack: thread %u re-acquired lock %llx", ev.tid,
                  static_cast<unsigned long long>(ev.lock));
    auto it = lockVc_.find(ev.lock);
    if (it != lockVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
RaceTrackDetector::onLockRelease(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    std::size_t erased = held_[ev.tid].writeHeld.erase(ev.lock);
    hard_panic_if(erased == 0 && !cfg_.tolerateUnbalanced,
                  "racetrack: thread %u released unheld lock %llx",
                  ev.tid, static_cast<unsigned long long>(ev.lock));
    VClock &lvc = lockVc_[ev.lock];
    lvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
RaceTrackDetector::onSemaPost(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    VClock &svc = semaVc_[ev.lock];
    svc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
RaceTrackDetector::onSemaWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    auto it = semaVc_.find(ev.lock);
    if (it != semaVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
RaceTrackDetector::onRwLockAcquire(const SyncEvent &ev, bool writer)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    ThreadLocksets &ls = held_[ev.tid];
    bool inserted =
        (writer ? ls.writeHeld : ls.readHeld).insert(ev.lock).second;
    hard_panic_if(!inserted && !cfg_.tolerateUnbalanced,
                  "racetrack: thread %u re-acquired rwlock %llx", ev.tid,
                  static_cast<unsigned long long>(ev.lock));
    auto it = rwVc_.find(ev.lock);
    if (it != rwVc_.end()) {
        threadVc_[ev.tid].join(it->second.writeVc);
        if (writer)
            threadVc_[ev.tid].join(it->second.readVc);
    }
}

void
RaceTrackDetector::onRwLockRelease(const SyncEvent &ev, bool writer)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    ThreadLocksets &ls = held_[ev.tid];
    std::size_t erased =
        (writer ? ls.writeHeld : ls.readHeld).erase(ev.lock);
    hard_panic_if(erased == 0 && !cfg_.tolerateUnbalanced,
                  "racetrack: thread %u released unheld rwlock %llx",
                  ev.tid, static_cast<unsigned long long>(ev.lock));
    RwVc &rw = rwVc_[ev.lock];
    (writer ? rw.writeVc : rw.readVc).join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
RaceTrackDetector::onCondSignal(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    VClock &cvc = condVc_[ev.lock];
    cvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
RaceTrackDetector::onCondBroadcast(const SyncEvent &ev)
{
    onCondSignal(ev);
}

void
RaceTrackDetector::onCondWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    auto it = condVc_.find(ev.lock);
    if (it != condVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
RaceTrackDetector::onAtomicStore(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    VClock &avc = atomVc_[ev.lock];
    avc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
RaceTrackDetector::onAtomicLoad(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads,
                  "racetrack: thread id %u too large", ev.tid);
    auto it = atomVc_.find(ev.lock);
    if (it != atomVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
RaceTrackDetector::onBarrier(const BarrierEvent &ev)
{
    (void)ev;
    if (cfg_.barrierReset) {
        // §3.5-equivalent flash reset: pre-barrier evidence must not
        // be held against post-barrier accesses (matches the ideal
        // lockset detector, preserving racetrack-subset-of-ideal).
        for (auto &kv : shadow_) {
            kv.second.candidate.resetToUniverse();
            kv.second.state = LState::Virgin;
            kv.second.owner = invalidThread;
        }
    }
    VClock all;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        all.join(threadVc_[t]);
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        threadVc_[t] = all;
        ++threadVc_[t][t];
    }
}

} // namespace hard
