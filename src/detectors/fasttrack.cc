#include "detectors/fasttrack.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

FastTrackDetector::FastTrackDetector(const std::string &name,
                                     unsigned granularity_bytes)
    : RaceDetector(name), gran_(granularity_bytes)
{
    hard_fatal_if(gran_ == 0 || !isPowerOf2(gran_),
                  "fasttrack: bad granularity %u", gran_);
    for (unsigned t = 0; t < kMaxThreads; ++t)
        threadVc_[t][t] = 1;
}

void
FastTrackDetector::access(const MemEvent &ev, bool write)
{
    hard_panic_if(ev.tid >= kMaxThreads, "fasttrack: thread id %u",
                  ev.tid);
    const Addr lo = alignDown(ev.addr, gran_);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const VClock &vc = threadVc_[ev.tid];

    for (Addr a = lo; a < hi; a += gran_) {
        Shadow &s = shadow_[a];

        // Write-write / read-write with the last writer.
        bool race = !s.lastWrite.ordered(vc);
        ThreadId other = race ? s.lastWrite.tid : invalidThread;

        if (write) {
            // Write must also be ordered after all reads.
            if (!race) {
                if (s.readVc) {
                    for (unsigned u = 0; u < kMaxThreads && !race;
                         ++u) {
                        if (u != ev.tid && (*s.readVc)[u] > vc[u]) {
                            race = true;
                            other = static_cast<ThreadId>(u);
                        }
                    }
                } else if (s.lastRead.tid != ev.tid &&
                           !s.lastRead.ordered(vc)) {
                    race = true;
                    other = s.lastRead.tid;
                }
            }
            if (race)
                emit(ev.tid, a, gran_, ev.site, write, ev.at, other);
            // Write shadows all previous reads (FastTrack's "write
            // exclusive" fast state).
            s.lastWrite = Epoch{ev.tid, vc[ev.tid]};
            s.lastRead = Epoch{};
            s.readVc.reset();
            continue;
        }

        if (race)
            emit(ev.tid, a, gran_, ev.site, write, ev.at, other);

        // Read bookkeeping.
        if (s.readVc) {
            // Already inflated: O(threads) slow path.
            (*s.readVc)[ev.tid] = vc[ev.tid];
        } else if (s.lastRead.tid == ev.tid ||
                   s.lastRead.tid == invalidThread) {
            // Same-thread (or first) read: O(1) fast path.
            s.lastRead = Epoch{ev.tid, vc[ev.tid]};
            ++fastReads_;
        } else if (s.lastRead.ordered(vc)) {
            // Previous read happens-before this one: the single epoch
            // still suffices.
            s.lastRead = Epoch{ev.tid, vc[ev.tid]};
            ++fastReads_;
        } else {
            // Genuinely concurrent reads: inflate to a read vector.
            s.readVc = std::make_unique<VClock>();
            (*s.readVc)[s.lastRead.tid] = s.lastRead.clk;
            (*s.readVc)[ev.tid] = vc[ev.tid];
            s.lastRead = Epoch{};
            ++inflations_;
        }
    }
}

void
FastTrackDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
FastTrackDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
FastTrackDetector::onLockAcquire(const SyncEvent &ev)
{
    auto it = lockVc_.find(ev.lock);
    if (it != lockVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
FastTrackDetector::onLockRelease(const SyncEvent &ev)
{
    VClock &lvc = lockVc_[ev.lock];
    lvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
FastTrackDetector::onBarrier(const BarrierEvent &ev)
{
    (void)ev;
    VClock all;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        all.join(threadVc_[t]);
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        threadVc_[t] = all;
        ++threadVc_[t][t];
    }
}

void
FastTrackDetector::onSemaPost(const SyncEvent &ev)
{
    VClock &svc = semaVc_[ev.lock];
    svc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
FastTrackDetector::onSemaWait(const SyncEvent &ev)
{
    auto it = semaVc_.find(ev.lock);
    if (it != semaVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
FastTrackDetector::onRwLockAcquire(const SyncEvent &ev, bool writer)
{
    auto it = rwVc_.find(ev.lock);
    if (it == rwVc_.end())
        return;
    threadVc_[ev.tid].join(it->second.writeVc);
    if (writer)
        threadVc_[ev.tid].join(it->second.readVc);
}

void
FastTrackDetector::onRwLockRelease(const SyncEvent &ev, bool writer)
{
    RwVc &rw = rwVc_[ev.lock];
    (writer ? rw.writeVc : rw.readVc).join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
FastTrackDetector::onCondSignal(const SyncEvent &ev)
{
    VClock &cvc = condVc_[ev.lock];
    cvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
FastTrackDetector::onCondBroadcast(const SyncEvent &ev)
{
    onCondSignal(ev);
}

void
FastTrackDetector::onCondWait(const SyncEvent &ev)
{
    auto it = condVc_.find(ev.lock);
    if (it != condVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
FastTrackDetector::onAtomicStore(const SyncEvent &ev)
{
    VClock &avc = atomVc_[ev.lock];
    avc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
FastTrackDetector::onAtomicLoad(const SyncEvent &ev)
{
    auto it = atomVc_.find(ev.lock);
    if (it != atomVc_.end())
        threadVc_[ev.tid].join(it->second);
}

} // namespace hard
