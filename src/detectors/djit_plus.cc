#include "detectors/djit_plus.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

DjitPlusDetector::DjitPlusDetector(const std::string &name,
                                   unsigned granularity_bytes)
    : RaceDetector(name), gran_(granularity_bytes)
{
    hard_fatal_if(gran_ == 0 || !isPowerOf2(gran_),
                  "djit+: bad granularity %u", gran_);
    for (unsigned t = 0; t < kMaxThreads; ++t)
        threadVc_[t][t] = 1;
}

void
DjitPlusDetector::access(const MemEvent &ev, bool write)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    const Addr lo = alignDown(ev.addr, gran_);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const VClock &vc = threadVc_[ev.tid];

    for (Addr a = lo; a < hi; a += gran_) {
        Shadow &g = shadow_[a];

        // A race with *any* unordered prior write, not just the
        // latest one — the full vector remembers writes an epoch
        // representation would have overwritten.
        bool race = false;
        ThreadId other = invalidThread;
        for (unsigned u = 0; u < kMaxThreads; ++u) {
            if (u == ev.tid)
                continue;
            if (g.writeClk[u] > vc[u]) {
                race = true;
                other = static_cast<ThreadId>(u);
                if (other != g.lastWriter)
                    ++nonLatest_;
                break;
            }
        }
        if (write && !race) {
            for (unsigned u = 0; u < kMaxThreads; ++u) {
                if (u != ev.tid && g.readClk[u] > vc[u]) {
                    race = true;
                    other = static_cast<ThreadId>(u);
                    break;
                }
            }
        }
        if (race)
            emit(ev.tid, a, gran_, ev.site, write, ev.at, other);

        if (write) {
            g.writeClk[ev.tid] = vc[ev.tid];
            g.lastWriter = ev.tid;
        } else {
            g.readClk[ev.tid] = vc[ev.tid];
        }
    }
}

void
DjitPlusDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
DjitPlusDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
DjitPlusDetector::onLockAcquire(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    auto it = lockVc_.find(ev.lock);
    if (it != lockVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
DjitPlusDetector::onLockRelease(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    VClock &lvc = lockVc_[ev.lock];
    lvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
DjitPlusDetector::onSemaPost(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    VClock &svc = semaVc_[ev.lock];
    svc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
DjitPlusDetector::onSemaWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    auto it = semaVc_.find(ev.lock);
    if (it != semaVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
DjitPlusDetector::onRwLockAcquire(const SyncEvent &ev, bool writer)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    auto it = rwVc_.find(ev.lock);
    if (it == rwVc_.end())
        return;
    // Writers order after every prior holder; readers only after prior
    // writers, so concurrent readers stay unordered.
    threadVc_[ev.tid].join(it->second.writeVc);
    if (writer)
        threadVc_[ev.tid].join(it->second.readVc);
}

void
DjitPlusDetector::onRwLockRelease(const SyncEvent &ev, bool writer)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    RwVc &rw = rwVc_[ev.lock];
    (writer ? rw.writeVc : rw.readVc).join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
DjitPlusDetector::onCondSignal(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    VClock &cvc = condVc_[ev.lock];
    cvc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
DjitPlusDetector::onCondBroadcast(const SyncEvent &ev)
{
    onCondSignal(ev);
}

void
DjitPlusDetector::onCondWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    auto it = condVc_.find(ev.lock);
    if (it != condVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
DjitPlusDetector::onAtomicStore(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    VClock &avc = atomVc_[ev.lock];
    avc.join(threadVc_[ev.tid]);
    ++threadVc_[ev.tid][ev.tid];
}

void
DjitPlusDetector::onAtomicLoad(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "djit+: thread id %u too large",
                  ev.tid);
    auto it = atomVc_.find(ev.lock);
    if (it != atomVc_.end())
        threadVc_[ev.tid].join(it->second);
}

void
DjitPlusDetector::onBarrier(const BarrierEvent &ev)
{
    (void)ev;
    VClock all;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        all.join(threadVc_[t]);
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        threadVc_[t] = all;
        ++threadVc_[t][t];
    }
}

} // namespace hard
