/**
 * @file
 * Happens-before race detector — the comparison baseline of the paper.
 *
 * Timestamps are kept per granule (default: cache-line granularity, in
 * cache-limited storage, mirroring how the paper's hardware
 * happens-before implementation stores timestamps in cache lines and
 * loses them on L2 displacement). The "ideal" variant uses 4-byte
 * granules and unbounded storage.
 *
 * The algorithm is DJIT+/FastTrack-style: a last-write epoch and a
 * per-thread read clock per granule; lock release->acquire and barrier
 * episodes create the synchronization order.
 */

#ifndef HARD_DETECTORS_HAPPENS_BEFORE_HH
#define HARD_DETECTORS_HAPPENS_BEFORE_HH

#include <array>
#include <unordered_map>

#include "detectors/meta_cache.hh"
#include "detectors/report.hh"
#include "detectors/vclock.hh"

namespace hard
{

/** Configuration of a happens-before detector instance. */
struct HbConfig
{
    /** Timestamp granularity in bytes (4..lineBytes; Table 3 sweep). */
    unsigned granularityBytes = 32;
    /**
     * Geometry of the timestamp store (mirrors the simulated L2;
     * Tables 4/5 sweep its size).
     */
    CacheConfig metaGeometry{1024 * 1024, 8, 32, 0};
    /** Ideal mode: unbounded storage (use with 4-byte granules). */
    bool unbounded = false;

    /** @return the paper's "ideal happens-before" configuration. */
    static HbConfig
    ideal()
    {
        HbConfig cfg;
        cfg.granularityBytes = 4;
        cfg.unbounded = true;
        return cfg;
    }
};

/** Vector-clock happens-before detector. */
class HappensBeforeDetector : public RaceDetector
{
  public:
    /**
     * @param name Detector name for reporting.
     * @param cfg Granularity/storage configuration.
     */
    HappensBeforeDetector(const std::string &name, const HbConfig &cfg);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onSemaPost(const SyncEvent &ev) override;
    void onSemaWait(const SyncEvent &ev) override;
    void onRwLockAcquire(const SyncEvent &ev, bool writer) override;
    void onRwLockRelease(const SyncEvent &ev, bool writer) override;
    void onCondSignal(const SyncEvent &ev) override;
    void onCondBroadcast(const SyncEvent &ev) override;
    void onCondWait(const SyncEvent &ev) override;
    void onAtomicStore(const SyncEvent &ev) override;
    void onAtomicLoad(const SyncEvent &ev) override;

    /** @return timestamp lines displaced (history lost). */
    std::uint64_t metadataEvictions() const { return meta_.evictions(); }

    const HbConfig &config() const { return cfg_; }

  private:
    /** Shadow state of one granule. */
    struct Granule
    {
        Epoch lastWrite{};
        std::array<std::uint32_t, kMaxThreads> readClk{};
    };

    /** Shadow state of one metadata line. */
    struct Line
    {
        std::array<Granule, 8> g{};
    };

    /** Apply one access to every granule it overlaps. */
    void access(const MemEvent &ev, bool write);

    /**
     * Synchronization clocks of one rwlock: writeVc carries the
     * history released by write-unlocks, readVc the history released
     * by read-unlocks. A write acquire joins both (the writer is
     * ordered after every prior holder); a read acquire joins writeVc
     * only, so concurrent readers stay unordered with each other.
     */
    struct RwVc
    {
        VClock writeVc;
        VClock readVc;
    };

    HbConfig cfg_;
    MetaCache<Line> meta_;
    std::array<VClock, kMaxThreads> threadVc_{};
    std::unordered_map<LockAddr, VClock> lockVc_;
    std::unordered_map<Addr, VClock> semaVc_;
    std::unordered_map<LockAddr, RwVc> rwVc_;
    std::unordered_map<Addr, VClock> condVc_;
    std::unordered_map<Addr, VClock> atomVc_;
};

} // namespace hard

#endif // HARD_DETECTORS_HAPPENS_BEFORE_HH
