/**
 * @file
 * The Eraser per-variable state machine (paper Figure 2) used for
 * false-positive pruning in both HARD and the ideal lockset detector.
 *
 * Variables start Virgin; the first access makes them Exclusive to the
 * accessing thread (initialization is lock-free but safe); a second
 * thread moves them to Shared (read) or SharedModified (write); any
 * write in Shared also moves to SharedModified. Candidate sets are
 * updated in Shared and SharedModified; races are only *reported* in
 * SharedModified.
 */

#ifndef HARD_DETECTORS_LOCKSET_STATE_HH
#define HARD_DETECTORS_LOCKSET_STATE_HH

#include <cstdint>
#include <set>

#include "common/types.hh"

namespace hard
{

/** Lockset algorithm variable state (distinct from coherence CState). */
enum class LState : std::uint8_t
{
    Virgin,
    Exclusive,
    Shared,
    SharedModified,
};

/** @return printable name of @p s. */
const char *lstateName(LState s);

/** Result of applying one access to the state machine. */
struct LStateStep
{
    /** State after the access. */
    LState next = LState::Virgin;
    /** Owner after the access (meaningful in Exclusive). */
    ThreadId owner = invalidThread;
    /** True if the candidate set must be intersected with L(t). */
    bool updateCandidate = false;
    /** True if an empty candidate set must be reported as a race. */
    bool reportIfEmpty = false;
};

/**
 * Apply one access to the Figure 2 state machine.
 *
 * @param cur Current state.
 * @param owner Current owning thread (Exclusive state only).
 * @param tid Accessing thread.
 * @param write True for stores.
 */
LStateStep lstateAccess(LState cur, ThreadId owner, ThreadId tid,
                        bool write);

/**
 * Read-held vs write-held lock sets of one thread, for rwlock-aware
 * lockset detectors. Mutex and writer-mode rwlock holds live in
 * writeHeld; reader-mode rwlock holds in readHeld (the two are
 * disjoint — a thread holds a rwlock in one mode at a time).
 */
struct ThreadLocksets
{
    std::set<LockAddr> writeHeld;
    std::set<LockAddr> readHeld;

    /**
     * @return the locks that actually protect an access: a write is
     * protected only by write-held locks (a reader hold admits
     * concurrent readers of the same data), while a read is protected
     * by locks held in either mode (any hold excludes writers).
     */
    std::set<LockAddr> effective(bool write) const;
};

} // namespace hard

#endif // HARD_DETECTORS_LOCKSET_STATE_HH
